"""Tests for vectorized device fleets (:mod:`repro.continuum.fleet`).

The load-bearing property is the RNG contract: :meth:`DeviceFleet.step`
(one ``random(n)`` batch pair) must be state-for-state, joule-for-joule
identical to :meth:`DeviceFleet.step_reference` (scalar per-device draws
in index order) — that equivalence is what lets the 10k-device scenario
replace per-object device churn without changing any replayed trace.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.continuum import DeviceFleet
from repro.core.errors import ConfigurationError
from repro.runtime import RuntimeContext


def _fleet(seed: int, size: int = 16, **kwargs) -> DeviceFleet:
    return DeviceFleet("zone-x", size, ctx=RuntimeContext(seed=seed),
                       **kwargs)


class TestVectorizedEqualsReference:
    @settings(max_examples=25)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1),
           size=st.integers(min_value=1, max_value=40),
           steps=st.integers(min_value=1, max_value=8))
    def test_step_equals_step_reference(self, seed, size, steps):
        """Same seed, same stream: the vectorized batch path and the
        scalar per-device loop produce identical state and telemetry."""
        fast = _fleet(seed, size, fail_rate_per_s=2e-2,
                      repair_rate_per_s=2e-1)
        slow = _fleet(seed, size, fail_rate_per_s=2e-2,
                      repair_rate_per_s=2e-1)
        for _ in range(steps):
            fast.step(5.0)
            slow.step_reference(5.0)
        assert np.array_equal(fast.up, slow.up)
        assert np.array_equal(fast.energy_j, slow.energy_j)
        assert np.array_equal(fast.downtime_s, slow.downtime_s)
        assert np.array_equal(fast.utilization, slow.utilization)
        assert fast.scorecard() == slow.scorecard()

    def test_telemetry_streams_identical(self):
        fast = _fleet(9, fail_rate_per_s=1e-2)
        slow = _fleet(9, fail_rate_per_s=1e-2)
        for _ in range(5):
            fast.step(10.0)
            slow.step_reference(10.0)
        fast_tele = [rec.payload for rec in fast.ctx.trace
                     if rec.topic.startswith("shard.fleet.telemetry.")]
        slow_tele = [rec.payload for rec in slow.ctx.trace
                     if rec.topic.startswith("shard.fleet.telemetry.")]
        assert len(fast_tele) == 5
        assert fast_tele == slow_tele


class TestChurnAccounting:
    def test_energy_integrates_only_while_up(self):
        fleet = _fleet(1, size=4, fail_rate_per_s=0.0,
                       repair_rate_per_s=0.0)
        fleet.step(10.0)
        assert bool(fleet.up.all())
        assert (fleet.energy_j > 0).all()
        assert fleet.downtime_s.sum() == 0.0
        assert fleet.availability() == 1.0

    def test_forced_outage_darkens_and_recovers(self):
        fleet = _fleet(2, size=32, fail_rate_per_s=0.0,
                       repair_rate_per_s=0.5)
        fleet.start(5.0)
        fleet.schedule_outage(10.0, 15.0)
        fleet.ctx.sim.run(until=100.0)
        # The outage dipped availability; the repair process healed it.
        assert fleet.forced_failures > 0
        assert fleet.repairs > 0
        assert 0.0 < fleet.availability() < 1.0
        topics = [rec.topic for rec in fleet.ctx.trace]
        assert "chaos.zone.fail" in topics
        assert "chaos.zone.repair" in topics
        assert int(fleet.up.sum()) > 0  # recovered by the horizon

    def test_outage_consumes_draws_for_replay(self):
        """A dark zone still consumes its draw pair per step: the stream
        position is part of the replay contract, so post-outage state
        matches a run that was never forced dark only in stream position,
        not in state."""
        forced = _fleet(3, size=8, fail_rate_per_s=0.0,
                        repair_rate_per_s=50.0)
        free = _fleet(3, size=8, fail_rate_per_s=0.0,
                      repair_rate_per_s=50.0)
        forced.forced_outage = True
        forced.step(1.0)
        forced.forced_outage = False
        free.step(1.0)
        forced.step(1.0)
        free.step(1.0)
        # Second step saw the same draws in both fleets: identical
        # utilization samples even though the first steps diverged.
        assert np.array_equal(forced.utilization, free.utilization)

    def test_start_drives_periodic_steps(self):
        fleet = _fleet(4, size=2)
        fleet.start(10.0)
        fleet.ctx.sim.run(until=100.0)
        assert fleet.steps == 10
        assert fleet.elapsed_s == 100.0

    def test_scorecard_is_json_primitive(self):
        fleet = _fleet(5, size=3)
        fleet.step(1.0)
        card = fleet.scorecard()
        assert json.loads(json.dumps(card)) == card


class TestFleetValidation:
    def test_bad_configuration_raises(self):
        with pytest.raises(ConfigurationError):
            _fleet(0, size=0)
        with pytest.raises(ConfigurationError):
            _fleet(0, fail_rate_per_s=-1.0)
        fleet = _fleet(0)
        with pytest.raises(ConfigurationError):
            fleet.start(0.0)
        with pytest.raises(ConfigurationError):
            fleet.schedule_outage(1.0, 0.0)
