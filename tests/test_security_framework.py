"""Tests for security levels (Table II), channels, auth, and trust."""

import pytest

from repro.core.errors import SecurityError
from repro.security import (
    AuthModule,
    Identity,
    InteractionOutcome,
    SecureChannel,
    SecurityLevel,
    SecuritySuite,
    SUITE_DESCRIPTORS,
    TrustEngine,
    aggregate_reputation,
    negotiate_level,
)


@pytest.fixture(scope="module")
def identities():
    return Identity("alice", seed=1), Identity("bob", seed=1)


class TestSecurityLevels:
    def test_ordering(self):
        assert SecurityLevel.HIGH.rank > SecurityLevel.MEDIUM.rank \
            > SecurityLevel.LOW.rank

    def test_satisfies(self):
        assert SecurityLevel.HIGH.satisfies(SecurityLevel.LOW)
        assert not SecurityLevel.LOW.satisfies(SecurityLevel.HIGH)
        assert SecurityLevel.MEDIUM.satisfies(SecurityLevel.MEDIUM)

    def test_parse(self):
        assert SecurityLevel.parse("HIGH") is SecurityLevel.HIGH
        with pytest.raises(SecurityError):
            SecurityLevel.parse("ultra")

    def test_table2_descriptor_contents(self):
        """The descriptors must reproduce the Table II cells."""
        high = SUITE_DESCRIPTORS[SecurityLevel.HIGH]
        assert high.encryption == "AES-256"
        assert "Dilithium" in high.authentication
        assert "Kyber" in high.key_exchange
        assert high.hashing == "SHA-512"
        assert high.pqc_resistant
        medium = SUITE_DESCRIPTORS[SecurityLevel.MEDIUM]
        assert medium.encryption == "AES-128"
        assert "RSA" in medium.authentication
        assert not medium.pqc_resistant
        low = SUITE_DESCRIPTORS[SecurityLevel.LOW]
        assert low.encryption == "ASCON-128"
        assert "ECDSA" in low.authentication
        assert low.hashing == "ASCON-Hash"

    def test_negotiate_picks_weakest_satisfying(self):
        assert negotiate_level(SecurityLevel.LOW, ["high"]) \
            is SecurityLevel.LOW
        assert negotiate_level(SecurityLevel.MEDIUM, ["high"]) \
            is SecurityLevel.MEDIUM

    def test_negotiate_fails_when_capability_too_weak(self):
        with pytest.raises(SecurityError):
            negotiate_level(SecurityLevel.HIGH, ["medium"])


class TestSecuritySuite:
    @pytest.mark.parametrize("level", list(SecurityLevel))
    def test_encrypt_decrypt_roundtrip(self, level, identities):
        alice, _ = identities
        suite = SecuritySuite(level, alice)
        key = bytes(range(suite.session_key_size()))
        sealed = suite.encrypt(key, b"\x01" * 16, b"payload", b"ad")
        assert suite.decrypt(key, b"\x01" * 16, sealed, b"ad") == b"payload"

    @pytest.mark.parametrize("level", list(SecurityLevel))
    def test_sign_verify_roundtrip(self, level, identities):
        alice, bob = identities
        suite_a = SecuritySuite(level, alice)
        suite_b = SecuritySuite(level, bob)
        sig = suite_a.sign(b"manifest")
        assert suite_b.verify(alice, b"manifest", sig)
        assert not suite_b.verify(alice, b"tampered", sig)

    @pytest.mark.parametrize("level", list(SecurityLevel))
    def test_kem_roundtrip(self, level, identities):
        alice, bob = identities
        suite_a = SecuritySuite(level, alice)
        suite_b = SecuritySuite(level, bob)
        secret, ct = suite_a.encapsulate(bob)
        assert suite_b.decapsulate(alice, ct) == secret

    @pytest.mark.parametrize("level", list(SecurityLevel))
    def test_hash_deterministic_and_sized(self, level, identities):
        suite = SecuritySuite(level, identities[0])
        d = suite.hash(b"data")
        assert d == suite.hash(b"data")
        expected = {SecurityLevel.HIGH: 64, SecurityLevel.MEDIUM: 32,
                    SecurityLevel.LOW: 32}[level]
        assert len(d) == expected

    def test_counters_track_operations(self, identities):
        suite = SecuritySuite(SecurityLevel.MEDIUM, identities[0])
        key = bytes(16)
        suite.encrypt(key, b"\x00" * 12, b"12345")
        suite.hash(b"x")
        assert suite.counters.encryptions == 1
        assert suite.counters.hashes == 1
        assert suite.counters.bytes_protected == 5


class TestSecureChannel:
    @pytest.mark.parametrize("level", list(SecurityLevel))
    def test_bidirectional_messaging(self, level, identities):
        alice, bob = identities
        ca, cb = SecureChannel.establish(alice, bob, level)
        assert cb.open(ca.seal(b"ping")) == b"ping"
        assert ca.open(cb.seal(b"pong")) == b"pong"

    def test_replay_rejected(self, identities):
        alice, bob = identities
        ca, cb = SecureChannel.establish(alice, bob, SecurityLevel.LOW)
        wire = ca.seal(b"once")
        cb.open(wire)
        with pytest.raises(SecurityError):
            cb.open(wire)

    def test_out_of_order_old_counter_rejected(self, identities):
        alice, bob = identities
        ca, cb = SecureChannel.establish(alice, bob, SecurityLevel.LOW)
        w0 = ca.seal(b"first")
        w1 = ca.seal(b"second")
        cb.open(w1)
        with pytest.raises(SecurityError):
            cb.open(w0)

    def test_tampered_record_rejected(self, identities):
        alice, bob = identities
        ca, cb = SecureChannel.establish(alice, bob, SecurityLevel.MEDIUM)
        wire = bytearray(ca.seal(b"data"))
        wire[-1] ^= 1
        with pytest.raises(SecurityError):
            cb.open(bytes(wire))

    def test_handshake_sizes_grow_with_level(self, identities):
        alice, bob = identities
        sizes = {}
        for level in SecurityLevel:
            ca, _ = SecureChannel.establish(alice, bob, level)
            sizes[level] = ca.transcript.total_bytes
        # PQC handshakes are much heavier than classical ones.
        assert sizes[SecurityLevel.HIGH] > sizes[SecurityLevel.MEDIUM]
        assert sizes[SecurityLevel.HIGH] > sizes[SecurityLevel.LOW]

    def test_message_counters(self, identities):
        alice, bob = identities
        ca, cb = SecureChannel.establish(alice, bob, SecurityLevel.LOW)
        cb.open(ca.seal(b"a"))
        cb.open(ca.seal(b"b"))
        assert ca.messages_sent == 2
        assert cb.messages_received == 2


class TestAuthModule:
    def make(self, now=0.0):
        clock = {"t": now}
        auth = AuthModule(b"super-secret-key!", now_fn=lambda: clock["t"])
        return auth, clock

    def test_issue_and_authenticate(self):
        auth, _ = self.make()
        auth.register_user("fp", ["operator"])
        token = auth.issue_token("fp")
        user = auth.authenticate(token)
        assert user.name == "fp"
        assert auth.auth_successes == 1

    def test_expired_token_rejected(self):
        auth, clock = self.make()
        auth.register_user("fp", ["operator"])
        token = auth.issue_token("fp", ttl_s=10)
        clock["t"] = 11
        with pytest.raises(SecurityError):
            auth.authenticate(token)
        assert auth.auth_failures == 1

    def test_forged_token_rejected(self):
        auth, _ = self.make()
        auth.register_user("fp", ["operator"])
        token = bytearray(auth.issue_token("fp"))
        token[-1] ^= 1
        with pytest.raises(SecurityError):
            auth.authenticate(bytes(token))

    def test_revoked_user_rejected(self):
        auth, _ = self.make()
        auth.register_user("fp", ["operator"])
        token = auth.issue_token("fp")
        auth.revoke("fp")
        with pytest.raises(SecurityError):
            auth.authenticate(token)

    def test_authorization_by_role(self):
        auth, _ = self.make()
        dev = auth.register_user("dev", ["developer"])
        auth.authorize(dev, "deploy")
        with pytest.raises(SecurityError):
            auth.authorize(dev, "reconfigure")

    def test_admin_has_all_permissions(self):
        auth, _ = self.make()
        admin = auth.register_user("root", ["admin"])
        for perm in ("deploy", "undeploy", "observe", "reconfigure",
                     "manage-users", "manage-slices"):
            auth.authorize(admin, perm)

    def test_unknown_role_rejected(self):
        auth, _ = self.make()
        with pytest.raises(SecurityError):
            auth.register_user("x", ["superuser"])

    def test_unknown_permission_rejected(self):
        auth, _ = self.make()
        user = auth.register_user("x", ["admin"])
        with pytest.raises(SecurityError):
            auth.authorize(user, "fly")

    def test_weak_secret_rejected(self):
        with pytest.raises(SecurityError):
            AuthModule(b"short")

    def test_malformed_token_rejected(self):
        auth, _ = self.make()
        with pytest.raises(SecurityError):
            auth.authenticate(b"not-a-token")


class TestTrustEngine:
    def make(self, now=0.0):
        clock = {"t": now}
        engine = TrustEngine("observer", now_fn=lambda: clock["t"])
        return engine, clock

    def test_unknown_component_neutral(self):
        engine, _ = self.make()
        assert engine.trust("ghost") == 0.5

    def test_successes_raise_trust(self):
        engine, _ = self.make()
        for _ in range(10):
            engine.observe("node", InteractionOutcome(0, True, 1.0))
        assert engine.trust("node") > 0.8

    def test_failures_lower_trust(self):
        engine, _ = self.make()
        for _ in range(10):
            engine.observe("node", InteractionOutcome(0, False, 0.0))
        assert engine.trust("node") < 0.2

    def test_kpi_adherence_matters(self):
        good, _ = self.make()
        sloppy, _ = self.make()
        for _ in range(5):
            good.observe("n", InteractionOutcome(0, True, 1.0))
            sloppy.observe("n", InteractionOutcome(0, True, 0.1))
        assert good.trust("n") > sloppy.trust("n")

    def test_decay_towards_neutral(self):
        engine, clock = self.make()
        for _ in range(10):
            engine.observe("node", InteractionOutcome(0, True, 1.0))
        high = engine.trust("node")
        clock["t"] = 3600.0  # one half-life later
        decayed = engine.trust("node")
        assert 0.5 < decayed < high
        assert decayed == pytest.approx(0.5 + (high - 0.5) * 0.5)

    def test_trustworthy_threshold(self):
        engine, _ = self.make()
        assert not engine.trustworthy("fresh", threshold=0.6)
        for _ in range(10):
            engine.observe("fresh", InteractionOutcome(0, True, 1.0))
        assert engine.trustworthy("fresh", threshold=0.6)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TrustEngine("o", alpha=0)
        with pytest.raises(ValueError):
            TrustEngine("o", half_life_s=-1)

    def test_known_components(self):
        engine, _ = self.make()
        engine.observe("b", InteractionOutcome(0, True))
        engine.observe("a", InteractionOutcome(0, True))
        assert engine.known_components() == ["a", "b"]


class TestReputationAggregation:
    def test_weighted_by_reporter_trust(self):
        # A distrusted reporter badmouths; trusted reporters praise.
        reports = {
            "honest-1": (0.9, 1.0),
            "honest-2": (0.9, 0.9),
            "liar": (0.05, 0.0),
        }
        assert aggregate_reputation(reports) > 0.85

    def test_no_reports_neutral(self):
        assert aggregate_reputation({}) == 0.5

    def test_zero_weight_reports_neutral(self):
        assert aggregate_reputation({"x": (0.0, 1.0)}) == 0.5

    def test_scores_clamped(self):
        assert aggregate_reputation({"x": (1.0, 5.0)}) == 1.0
