"""Tests for placement strategies, constraints and simulated execution."""

import random

import pytest

from repro.core.errors import OrchestrationError
from repro.continuum import (
    Layer,
    Simulator,
    Task,
    TaskRequirements,
    build_reference_infrastructure,
)
from repro.continuum.workload import Application, KernelClass, PrivacyClass
from repro.mirto.placement import (
    PlacementConstraints,
    eligible_devices,
    estimate_placement_kpis,
    execute_placement,
    make_strategy,
)


def infra():
    return build_reference_infrastructure(Simulator())


def pipeline_app(privacy=PrivacyClass.PUBLIC, security="low"):
    app = Application("pipe")
    reqs = TaskRequirements(latency_budget_s=10.0, privacy=privacy,
                            min_security_level=security)
    app.add_task(Task("ingest", 200, input_bytes=100_000,
                      requirements=reqs))
    app.add_task(Task("process", 5000, kernel=KernelClass.DSP,
                      requirements=reqs))
    app.add_task(Task("report", 100, requirements=reqs))
    app.connect("ingest", "process", 100_000)
    app.connect("process", "report", 5_000)
    return app


class TestEligibility:
    def test_public_task_can_go_anywhere(self):
        infrastructure = infra()
        task = pipeline_app().task("ingest")
        devices = eligible_devices(task, infrastructure,
                                   PlacementConstraints())
        layers = {d.spec.layer for d in devices}
        assert layers == {Layer.EDGE, Layer.FOG, Layer.CLOUD}

    def test_raw_personal_stays_at_edge(self):
        infrastructure = infra()
        app = pipeline_app(privacy=PrivacyClass.RAW_PERSONAL)
        devices = eligible_devices(app.task("process"), infrastructure,
                                   PlacementConstraints())
        assert devices
        assert all(d.spec.layer == Layer.EDGE for d in devices)

    def test_aggregated_reaches_fog_not_cloud(self):
        infrastructure = infra()
        app = pipeline_app(privacy=PrivacyClass.AGGREGATED)
        devices = eligible_devices(app.task("process"), infrastructure,
                                   PlacementConstraints())
        layers = {d.spec.layer for d in devices}
        assert Layer.CLOUD not in layers
        assert Layer.FOG in layers

    def test_security_floor_filters_weak_devices(self):
        infrastructure = infra()
        app = pipeline_app(security="high")
        devices = eligible_devices(
            app.task("process"), infrastructure,
            PlacementConstraints(min_security_level="high"))
        assert devices
        assert all(d.spec.max_security_level == "high" for d in devices)

    def test_trust_threshold_filters(self):
        infrastructure = infra()
        task = pipeline_app().task("ingest")
        trusted = {name: 1.0 for name in infrastructure.devices}
        trusted["cloud-00"] = 0.1
        constraints = PlacementConstraints(trust_threshold=0.5,
                                           trusted=trusted)
        devices = eligible_devices(task, infrastructure, constraints)
        assert "cloud-00" not in {d.name for d in devices}

    def test_memory_filters(self):
        infrastructure = infra()
        big = Task("big", 10, memory_bytes=100 * 1024**3)
        devices = eligible_devices(big, infrastructure,
                                   PlacementConstraints())
        assert devices
        assert all(d.spec.memory_bytes >= 100 * 1024**3 for d in devices)


class TestStrategies:
    @pytest.mark.parametrize("name", ["random", "round-robin", "greedy",
                                      "pso", "aco"])
    def test_strategy_produces_complete_valid_placement(self, name):
        infrastructure = infra()
        app = pipeline_app()
        strategy = make_strategy(name, random.Random(0))
        placement = strategy.place(app, infrastructure,
                                   PlacementConstraints())
        assert set(placement.assignment) == {"ingest", "process",
                                             "report"}
        for device_name in placement.assignment.values():
            infrastructure.device(device_name)  # must exist

    def test_unknown_strategy_rejected(self):
        with pytest.raises(OrchestrationError):
            make_strategy("oracle")

    def test_impossible_constraints_raise(self):
        infrastructure = infra()
        app = pipeline_app(privacy=PrivacyClass.RAW_PERSONAL,
                           security="high")
        # RAW_PERSONAL forces edge; only the FPGA is 'high' at the edge;
        # demand more memory than it has.
        impossible = Application("x")
        impossible.add_task(Task(
            "t", 10, memory_bytes=64 * 1024**3,
            requirements=TaskRequirements(
                privacy=PrivacyClass.RAW_PERSONAL,
                min_security_level="high")))
        strategy = make_strategy("greedy")
        with pytest.raises(OrchestrationError, match="no eligible"):
            strategy.place(impossible, infrastructure,
                           PlacementConstraints(
                               min_security_level="high"))

    def test_greedy_beats_random_on_estimate(self):
        infrastructure = infra()
        app = pipeline_app()
        greedy = make_strategy("greedy").place(
            app, infrastructure, PlacementConstraints())
        rnd = make_strategy("random", random.Random(4)).place(
            app, infrastructure, PlacementConstraints())
        g_lat, _ = estimate_placement_kpis(app, greedy, infrastructure)
        r_lat, _ = estimate_placement_kpis(app, rnd, infrastructure)
        assert g_lat <= r_lat * 1.01

    def test_cognitive_at_least_as_good_as_greedy(self):
        infrastructure = infra()
        app = pipeline_app()
        constraints = PlacementConstraints()
        greedy = make_strategy("greedy").place(app, infrastructure,
                                               constraints)
        g_lat, g_energy = estimate_placement_kpis(app, greedy,
                                                  infrastructure)
        for name in ("pso", "aco"):
            cognitive = make_strategy(name, random.Random(0)).place(
                app, infrastructure, constraints)
            c_lat, c_energy = estimate_placement_kpis(
                app, cognitive, infrastructure)
            # Cognitive optimizes a blended objective: allow slightly
            # worse latency only if energy improved.
            assert c_lat <= g_lat * 1.25
            if c_lat > g_lat:
                assert c_energy < g_energy


class TestExecution:
    def test_execution_report_fields(self):
        infrastructure = infra()
        app = pipeline_app()
        placement = make_strategy("greedy").place(
            app, infrastructure, PlacementConstraints())
        report = execute_placement(app, placement, infrastructure)
        assert report.makespan_s > 0
        assert report.energy_j > 0
        assert len(report.records) == 3
        assert report.strategy == "greedy"

    def test_execution_counts_offloads(self):
        infrastructure = infra()
        app = pipeline_app()
        # Force a cross-device placement.
        assignment = {"ingest": "fpga-00-0", "process": "cloud-00",
                      "report": "fpga-00-0"}
        from repro.mirto.placement import Placement
        report = execute_placement(app, Placement(assignment, "manual"),
                                   infrastructure)
        assert report.offloads == 2
        assert infrastructure.offloads.vertical_up >= 1
        assert infrastructure.offloads.vertical_down >= 1

    def test_same_device_placement_has_no_offloads(self):
        infrastructure = infra()
        app = pipeline_app()
        from repro.mirto.placement import Placement
        assignment = {t.name: "cloud-00" for t in app.tasks}
        report = execute_placement(app, Placement(assignment, "manual"),
                                   infrastructure)
        assert report.offloads == 0

    def test_estimate_correlates_with_simulation(self):
        """The analytic estimate must rank placements like the DES."""
        infrastructure = infra()
        app = pipeline_app()
        from repro.mirto.placement import Placement
        fast = Placement({t.name: "cloud-00" for t in app.tasks}, "fast")
        slow = Placement({t.name: "riscv-00-0" for t in app.tasks},
                         "slow")
        fast_est, _ = estimate_placement_kpis(app, fast, infrastructure)
        slow_est, _ = estimate_placement_kpis(app, slow, infrastructure)
        fast_sim = execute_placement(app, fast,
                                     infra()).makespan_s
        slow_sim = execute_placement(app, slow,
                                     infra()).makespan_s
        assert (fast_est < slow_est) == (fast_sim < slow_sim)


class TestFireflyStrategy:
    def test_firefly_produces_valid_placement(self):
        infrastructure = infra()
        app = pipeline_app()
        placement = make_strategy("firefly", random.Random(0)).place(
            app, infrastructure, PlacementConstraints())
        assert set(placement.assignment) == {"ingest", "process",
                                             "report"}
        assert placement.strategy == "firefly"

    def test_firefly_competitive_with_random(self):
        infrastructure = infra()
        app = pipeline_app()
        constraints = PlacementConstraints()
        firefly = make_strategy("firefly", random.Random(1)).place(
            app, infrastructure, constraints)
        rnd = make_strategy("random", random.Random(1)).place(
            app, infrastructure, constraints)
        f_lat, _ = estimate_placement_kpis(app, firefly, infrastructure)
        r_lat, _ = estimate_placement_kpis(app, rnd, infrastructure)
        assert f_lat <= r_lat * 1.05
