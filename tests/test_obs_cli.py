"""Tests for the repro-obs inspection CLI."""

import json

from repro.obs import DesProfiler
from repro.obs.cli import (
    load_records,
    main,
    render_metrics,
    render_profile,
    render_timeline,
    render_tree,
)
from repro.runtime import RuntimeContext


def export_trace(tmp_path, with_profile=True):
    """A small but complete trace: spans, publishes, snapshots."""
    ctx = RuntimeContext(seed=21)
    if with_profile:
        DesProfiler().install(ctx.sim)
    with ctx.tracer.start_span("deploy", layer="mirto") as outer:
        ctx.bus.publish("mirto.deploy.start", {"app": "demo"})
        with ctx.tracer.start_span("solve", layer="mirto"):
            ctx.bus.publish("mirto.placement.done", None)
    ctx.sim.timeout(1.0)
    ctx.run()
    ctx.metrics.counter("test.cli.ops").inc(3)
    ctx.snapshot_observability()
    path = tmp_path / "trace.jsonl"
    ctx.trace.export_jsonl(path)
    return path, outer.context.trace_id


class TestRenderTree:
    def test_tree_nests_children(self, tmp_path):
        path, trace_id = export_trace(tmp_path)
        out = render_tree(load_records(str(path)))
        assert f"trace {trace_id}" in out
        assert "deploy (mirto)" in out
        assert "└─ solve (mirto)" in out

    def test_trace_id_filter(self, tmp_path):
        path, trace_id = export_trace(tmp_path)
        records = load_records(str(path))
        assert f"trace {trace_id}" in render_tree(records,
                                                  trace_id=trace_id)
        assert render_tree(records, trace_id="f" * 16) == "(no spans)"

    def test_orphan_parent_becomes_root(self):
        records = [{"topic": "obs.span", "time_s": 1.0, "payload": {
            "name": "lost", "layer": "x", "trace_id": "t1",
            "span_id": "s1", "parent_id": "missing",
            "start_s": 0.0, "end_s": 1.0, "status": "ok", "attrs": {}}}]
        out = render_tree(records)
        assert "lost (x)" in out

    def test_error_status_rendered(self):
        records = [{"topic": "obs.span", "time_s": 1.0, "payload": {
            "name": "boom", "layer": "x", "trace_id": "t1",
            "span_id": "s1", "parent_id": None,
            "start_s": 0.0, "end_s": 1.0, "status": "error",
            "attrs": {}}}]
        assert "[error]" in render_tree(records)


class TestRenderTimeline:
    def test_chronological_with_trace_markers(self, tmp_path):
        path, trace_id = export_trace(tmp_path)
        out = render_timeline(load_records(str(path)))
        assert "mirto.deploy.start" in out
        assert trace_id[:8] in out  # publishes made in-span are marked
        assert "obs.span" not in out  # snapshots filtered out

    def test_by_topic_counts(self, tmp_path):
        path, _ = export_trace(tmp_path)
        out = render_timeline(load_records(str(path)), by="topic")
        counts = dict(line.rsplit(None, 1) for line in out.splitlines())
        assert counts["mirto.deploy.start"] == "1"

    def test_by_layer_counts(self, tmp_path):
        path, _ = export_trace(tmp_path)
        out = render_timeline(load_records(str(path)), by="layer")
        assert "mirto" in out


class TestRenderMetricsAndProfile:
    def test_metrics_exposition(self, tmp_path):
        path, _ = export_trace(tmp_path)
        out = render_metrics(load_records(str(path)))
        assert "# TYPE repro_test_cli_ops counter" in out
        assert "repro_test_cli_ops 3" in out
        assert "repro_runtime_bus_publishes" in out

    def test_metrics_missing_snapshot_message(self):
        out = render_metrics([])
        assert "no metrics snapshot" in out

    def test_profile_table_and_flame(self, tmp_path):
        path, _ = export_trace(tmp_path)
        out = render_profile(load_records(str(path)))
        assert "kernel:timeout" in out
        assert "█" in out and "▒" in out

    def test_profile_missing_snapshot_message(self):
        out = render_profile([])
        assert "no profile snapshot" in out


class TestMain:
    def test_all_subcommands_exit_zero_nonempty(self, tmp_path, capsys):
        path, _ = export_trace(tmp_path)
        for sub in ("tree", "timeline", "metrics", "profile"):
            assert main([sub, str(path)]) == 0
            assert capsys.readouterr().out.strip()

    def test_tree_trace_id_flag(self, tmp_path, capsys):
        path, trace_id = export_trace(tmp_path)
        assert main(["tree", str(path), "--trace-id", trace_id]) == 0
        assert trace_id in capsys.readouterr().out

    def test_timeline_by_flag(self, tmp_path, capsys):
        path, _ = export_trace(tmp_path)
        assert main(["timeline", str(path), "--by", "topic"]) == 0
        assert capsys.readouterr().out.strip()

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["tree", str(tmp_path / "absent.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_module_entry_point_importable(self):
        import repro.obs.__main__  # noqa: F401


class TestLoadRecords:
    def test_skips_blank_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        record = {"topic": "a.b.c", "time_s": 0.0, "payload": None}
        path.write_text(json.dumps(record) + "\n\n")
        assert load_records(str(path)) == [record]
