"""Known-answer and property tests for the from-scratch crypto primitives."""

import hashlib
import hmac as stdlib_hmac
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import SecurityError
from repro.security.primitives import lattice
from repro.security.primitives.aes import (
    AES,
    aes_ctr,
    aes_decrypt,
    aes_encrypt,
)
from repro.security.primitives.ascon import (
    ascon128_decrypt,
    ascon128_encrypt,
    ascon_hash,
    lightweight_sponge_hash,
)
from repro.security.primitives import ecdsa, rsa
from repro.security.primitives.sha2 import hkdf, hmac, sha256, sha512


class TestSha2KnownAnswers:
    """NIST FIPS-180 test vectors."""

    def test_sha256_empty(self):
        assert sha256(b"").hex() == (
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        )

    def test_sha256_abc(self):
        assert sha256(b"abc").hex() == (
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )

    def test_sha512_abc(self):
        assert sha512(b"abc").hex() == (
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f"
        )

    @given(st.binary(max_size=512))
    @settings(max_examples=50)
    def test_sha256_matches_hashlib(self, data):
        assert sha256(data) == hashlib.sha256(data).digest()

    @given(st.binary(max_size=512))
    @settings(max_examples=30)
    def test_sha512_matches_hashlib(self, data):
        assert sha512(data) == hashlib.sha512(data).digest()


class TestHmacHkdf:
    @given(st.binary(min_size=1, max_size=100), st.binary(max_size=200))
    @settings(max_examples=30)
    def test_hmac_matches_stdlib(self, key, msg):
        assert hmac(key, msg) == stdlib_hmac.new(
            key, msg, hashlib.sha256).digest()

    def test_hmac_sha512_matches_stdlib(self):
        key, msg = b"k" * 200, b"payload"
        assert hmac(key, msg, sha512) == stdlib_hmac.new(
            key, msg, hashlib.sha512).digest()

    def test_hkdf_length_and_determinism(self):
        a = hkdf(b"ikm", 42, salt=b"s", info=b"i")
        b = hkdf(b"ikm", 42, salt=b"s", info=b"i")
        assert a == b and len(a) == 42

    def test_hkdf_context_separation(self):
        assert hkdf(b"ikm", 32, info=b"a") != hkdf(b"ikm", 32, info=b"b")


class TestAesKnownAnswers:
    """FIPS-197 Appendix C vectors."""

    PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")

    def test_aes128_fips(self):
        cipher = AES(bytes(range(16)))
        assert cipher.encrypt_block(self.PLAINTEXT).hex() == \
            "69c4e0d86a7b0430d8cdb78070b4c55a"

    def test_aes256_fips(self):
        cipher = AES(bytes(range(32)))
        assert cipher.encrypt_block(self.PLAINTEXT).hex() == \
            "8ea2b7ca516745bfeafc49904b496089"

    def test_decrypt_inverts_encrypt(self):
        for key_len in (16, 32):
            cipher = AES(bytes(range(key_len)))
            ct = cipher.encrypt_block(self.PLAINTEXT)
            assert cipher.decrypt_block(ct) == self.PLAINTEXT

    def test_bad_key_length_rejected(self):
        with pytest.raises(SecurityError):
            AES(b"short")

    def test_bad_block_length_rejected(self):
        with pytest.raises(SecurityError):
            AES(bytes(16)).encrypt_block(b"tiny")


class TestAesAead:
    KEY = bytes(range(32))
    NONCE = b"\x01" * 12

    @given(st.binary(max_size=300), st.binary(max_size=50))
    @settings(max_examples=25)
    def test_roundtrip(self, plaintext, ad):
        sealed = aes_encrypt(self.KEY, self.NONCE, plaintext, ad)
        assert aes_decrypt(self.KEY, self.NONCE, sealed, ad) == plaintext

    def test_tamper_detected(self):
        sealed = bytearray(aes_encrypt(self.KEY, self.NONCE, b"secret"))
        sealed[0] ^= 1
        with pytest.raises(SecurityError):
            aes_decrypt(self.KEY, self.NONCE, bytes(sealed))

    def test_wrong_ad_detected(self):
        sealed = aes_encrypt(self.KEY, self.NONCE, b"secret", b"ad1")
        with pytest.raises(SecurityError):
            aes_decrypt(self.KEY, self.NONCE, sealed, b"ad2")

    def test_ctr_is_involution(self):
        data = b"x" * 33
        once = aes_ctr(self.KEY, self.NONCE, data)
        assert aes_ctr(self.KEY, self.NONCE, once) == data

    def test_short_ciphertext_rejected(self):
        with pytest.raises(SecurityError):
            aes_decrypt(self.KEY, self.NONCE, b"tooshort")


class TestAsconKnownAnswers:
    """Official ASCON v1.2 KAT values (key/nonce = 000102...0f)."""

    KEY = bytes(range(16))
    NONCE = bytes(range(16))

    def test_aead_empty_kat(self):
        sealed = ascon128_encrypt(self.KEY, self.NONCE, b"", b"")
        assert sealed.hex() == "e355159f292911f794cb1432a0103a8a"

    def test_hash_empty_kat(self):
        assert ascon_hash(b"").hex() == (
            "7346bc14f036e87ae03d0997913088f5"
            "f68411434b3cf8b54fa796a80d251f91"
        )

    @given(st.binary(max_size=200), st.binary(max_size=40))
    @settings(max_examples=25)
    def test_roundtrip(self, plaintext, ad):
        sealed = ascon128_encrypt(self.KEY, self.NONCE, plaintext, ad)
        assert ascon128_decrypt(self.KEY, self.NONCE, sealed, ad) == plaintext

    def test_tamper_detected(self):
        sealed = bytearray(ascon128_encrypt(self.KEY, self.NONCE, b"data"))
        sealed[-1] ^= 0x80
        with pytest.raises(SecurityError):
            ascon128_decrypt(self.KEY, self.NONCE, bytes(sealed))

    def test_wrong_key_rejected(self):
        sealed = ascon128_encrypt(self.KEY, self.NONCE, b"data")
        with pytest.raises(SecurityError):
            ascon128_decrypt(b"\xff" * 16, self.NONCE, sealed)

    def test_bad_key_size(self):
        with pytest.raises(SecurityError):
            ascon128_encrypt(b"short", self.NONCE, b"")

    def test_lightweight_hash_properties(self):
        d1 = lightweight_sponge_hash(b"abc")
        assert len(d1) == 20
        assert d1 == lightweight_sponge_hash(b"abc")
        assert d1 != lightweight_sponge_hash(b"abd")


class TestRsa:
    @pytest.fixture(scope="class")
    def key(self):
        return rsa.generate_keypair(768, random.Random(99))

    def test_sign_verify(self, key):
        sig = rsa.sign(key, b"message")
        assert rsa.verify(key.public, b"message", sig)

    def test_verify_rejects_other_message(self, key):
        sig = rsa.sign(key, b"message")
        assert not rsa.verify(key.public, b"other", sig)

    def test_verify_rejects_bad_length(self, key):
        assert not rsa.verify(key.public, b"m", b"\x00" * 5)

    def test_kem_roundtrip(self, key):
        secret, ct = rsa.kem_encapsulate(key.public, random.Random(5))
        assert rsa.kem_decapsulate(key, ct) == secret
        assert len(secret) == 32

    def test_kem_bad_ciphertext_length(self, key):
        with pytest.raises(SecurityError):
            rsa.kem_decapsulate(key, b"\x00" * 3)

    def test_miller_rabin_classifies_correctly(self):
        rng = random.Random(0)
        primes = [2, 3, 5, 97, 7919, 104729]
        composites = [1, 4, 100, 561, 7917, 104730]  # 561 is a Carmichael
        for p in primes:
            assert rsa.is_probable_prime(p, rng)
        for c in composites:
            assert not rsa.is_probable_prime(c, rng)

    def test_generated_prime_has_requested_bits(self):
        p = rsa.generate_prime(96, random.Random(3))
        assert p.bit_length() == 96


class TestEcdsa:
    @pytest.fixture(scope="class")
    def key(self):
        return ecdsa.generate_keypair(random.Random(7))

    def test_generator_on_curve(self):
        assert ecdsa.is_on_curve((ecdsa.GX, ecdsa.GY))

    def test_public_key_on_curve(self, key):
        assert ecdsa.is_on_curve(key.q)

    def test_scalar_mult_order_gives_infinity(self):
        assert ecdsa.scalar_mult(ecdsa.N, (ecdsa.GX, ecdsa.GY)) is None

    def test_sign_verify(self, key):
        sig = ecdsa.sign(key, b"hello")
        assert ecdsa.verify(key.q, b"hello", sig)

    def test_verify_rejects_other_message(self, key):
        sig = ecdsa.sign(key, b"hello")
        assert not ecdsa.verify(key.q, b"HELLO", sig)

    def test_deterministic_signatures(self, key):
        assert ecdsa.sign(key, b"m") == ecdsa.sign(key, b"m")

    def test_verify_rejects_out_of_range(self, key):
        assert not ecdsa.verify(key.q, b"m", (0, 1))
        assert not ecdsa.verify(key.q, b"m", (ecdsa.N, 1))

    def test_ecdh_symmetry(self):
        a = ecdsa.generate_keypair(random.Random(1))
        b = ecdsa.generate_keypair(random.Random(2))
        assert ecdsa.ecdh_shared_secret(a.d, b.q) == \
            ecdsa.ecdh_shared_secret(b.d, a.q)

    def test_public_key_encoding_roundtrip(self, key):
        decoded = ecdsa.public_key_from_bytes(key.public_bytes)
        assert decoded == key.q

    def test_malformed_public_key_rejected(self):
        with pytest.raises(SecurityError):
            ecdsa.public_key_from_bytes(b"\x05" + b"\x00" * 64)


class TestLatticeKem:
    @pytest.fixture(scope="class")
    def keypair(self):
        return lattice.kem_generate_keypair(np.random.default_rng(11))

    def test_roundtrip_many(self, keypair):
        rng = np.random.default_rng(12)
        for _ in range(10):
            secret, ct = lattice.kem_encapsulate(keypair.public, rng)
            assert lattice.kem_decapsulate(keypair, ct) == secret

    def test_ciphertext_size(self, keypair):
        _, ct = lattice.kem_encapsulate(keypair.public,
                                        np.random.default_rng(1))
        assert len(ct) == lattice.kem_ciphertext_bytes()

    def test_bad_ciphertext_length_rejected(self, keypair):
        with pytest.raises(SecurityError):
            lattice.kem_decapsulate(keypair, b"\x00" * 7)

    def test_secrets_differ_per_encapsulation(self, keypair):
        rng = np.random.default_rng(13)
        s1, _ = lattice.kem_encapsulate(keypair.public, rng)
        s2, _ = lattice.kem_encapsulate(keypair.public, rng)
        assert s1 != s2


class TestLatticeSignature:
    @pytest.fixture(scope="class")
    def keypair(self):
        return lattice.sig_generate_keypair(np.random.default_rng(21))

    def test_sign_verify(self, keypair):
        rng = np.random.default_rng(22)
        sig = lattice.sig_sign(keypair, b"deploy request", rng)
        assert lattice.sig_verify(keypair.public, b"deploy request", sig)

    def test_verify_rejects_other_message(self, keypair):
        rng = np.random.default_rng(23)
        sig = lattice.sig_sign(keypair, b"a", rng)
        assert not lattice.sig_verify(keypair.public, b"b", sig)

    def test_verify_rejects_oversized_z(self, keypair):
        rng = np.random.default_rng(24)
        c, z = lattice.sig_sign(keypair, b"m", rng)
        z_bad = z.copy()
        z_bad[0, 0] = lattice.SIG_GAMMA
        assert not lattice.sig_verify(keypair.public, b"m", (c, z_bad))

    def test_wrong_key_rejected(self, keypair):
        other = lattice.sig_generate_keypair(np.random.default_rng(25))
        sig = lattice.sig_sign(keypair, b"m", np.random.default_rng(26))
        assert not lattice.sig_verify(other.public, b"m", sig)

    def test_challenge_weight(self):
        high = np.zeros((lattice.SIG_K, lattice.SIG_N), dtype=np.int64)
        c = lattice._challenge(high, b"msg")
        assert int(np.sum(np.abs(c))) == lattice.SIG_TAU


class TestRingArithmetic:
    @given(st.integers(0, 2**31))
    @settings(max_examples=20)
    def test_negacyclic_reduction(self, seed):
        """x^n == -1 in Z_q[x]/(x^n+1): multiplying by x^n negates."""
        rng = np.random.default_rng(seed)
        a = rng.integers(0, lattice.KEM_Q, lattice.KEM_N, dtype=np.int64)
        x_n_minus_1 = np.zeros(lattice.KEM_N, dtype=np.int64)
        x_n_minus_1[-1] = 1  # x^(n-1)
        x_one = np.zeros(lattice.KEM_N, dtype=np.int64)
        x_one[1] = 1  # x
        # (a * x^(n-1)) * x == a * x^n == -a
        step = lattice._poly_mul(a, x_n_minus_1, lattice.KEM_Q, lattice.KEM_N)
        result = lattice._poly_mul(step, x_one, lattice.KEM_Q, lattice.KEM_N)
        assert np.array_equal(result, np.mod(-a, lattice.KEM_Q))

    def test_poly_mul_identity(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, lattice.KEM_Q, lattice.KEM_N, dtype=np.int64)
        one = np.zeros(lattice.KEM_N, dtype=np.int64)
        one[0] = 1
        assert np.array_equal(
            lattice._poly_mul(a, one, lattice.KEM_Q, lattice.KEM_N), a)


class TestHmacRfc4231:
    """Official HMAC-SHA256 test vectors from RFC 4231."""

    def test_case_1(self):
        key = b"\x0b" * 20
        data = b"Hi There"
        assert hmac(key, data).hex() == (
            "b0344c61d8db38535ca8afceaf0bf12b"
            "881dc200c9833da726e9376c2e32cff7"
        )

    def test_case_2(self):
        key = b"Jefe"
        data = b"what do ya want for nothing?"
        assert hmac(key, data).hex() == (
            "5bdcc146bf60754e6a042426089575c7"
            "5a003f089d2739839dec58b964ec3843"
        )

    def test_case_3(self):
        key = b"\xaa" * 20
        data = b"\xdd" * 50
        assert hmac(key, data).hex() == (
            "773ea91e36800e46854db8ebd09181a7"
            "2959098b3ef8c122d9635514ced565fe"
        )

    def test_case_6_long_key(self):
        key = b"\xaa" * 131
        data = b"Test Using Larger Than Block-Size Key - Hash Key First"
        assert hmac(key, data).hex() == (
            "60e431591ee0b67f0d8a26aacbf5b77f"
            "8e0bc6213728c5140546040f0ee37f54"
        )
