"""Continuum-scale observability across the sharded backends.

The headline property (pinned here, promised in
``ShardedContext.aggregate_metrics``): the merged span forest and the
aggregated metrics payload are *byte-identical* across a single-shard
run, a multi-shard :class:`ShardedContext` and a
:class:`ParallelShardedContext` for workers in {1, 2, 4}. Alongside it:
one injected fault yields exactly one causal span tree crossing zones
(fault root → relay deliveries → watcher reactions → repair), the
cross-shard relay fast path emits records byte-identical to the generic
``resume + start_span`` path it hand-inlines (including the error
status), metrics merge/delta algebra, ``ShardProfiler`` accounting and
digest-neutrality, and the ``repro-obs`` subcommands over a merged
sharded export.

Builders live at module level so the specs stay picklable under any
multiprocessing start method.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.continuum import DeviceFleet
from repro.obs.cli import main as obs_main
from repro.obs.metrics import MetricsRegistry, payload_delta
from repro.obs.profiler import ShardProfiler
from repro.obs.spans import SpanContext
from repro.runtime import ParallelShardedContext, ShardedContext
from repro.runtime.shard import relay_deliver


def _zone_names(n_zones: int) -> list[str]:
    return [f"z{i}" for i in range(n_zones)]


def _build_obs_zone(ctx, zone: str, args: dict) -> dict:
    """Cross-zone chaos scenario with full observability exercised:
    per-zone fleets, a forced outage on the last zone (root fault span),
    and a zone-0 watcher that reacts to relayed chaos events inside a
    nested span while bumping a labelled counter."""
    names = args["names"]
    if zone == names[0]:
        reactions = ctx.metrics.counter(
            "watch.chaos.reactions",
            "relayed chaos events the watcher reacted to",
            label_key="zone")

        def on_chaos(topic, payload):
            # Runs inside relay_deliver's resumed span, so this span
            # lands on the fault's causal tree as a relay grandchild.
            with ctx.tracer.start_span("watch.chaos.react", layer="watch",
                                       zone=zone, src=payload["zone"]):
                reactions.inc(label=payload["zone"])

        ctx.subscribe("chaos.zone.**", on_chaos)
    fleet = DeviceFleet(zone, args["devices"], ctx=ctx,
                        fail_rate_per_s=5e-3, repair_rate_per_s=5e-2)
    if zone == names[-1]:
        fleet.schedule_outage(10.0, 5.0)
    fleet.start(2.5)
    return {"fleet": fleet}


def _finalize_obs_zone(state: dict, zone: str, args: dict) -> dict:
    return {"scorecard": state["fleet"].scorecard()}


def _sequential_obs(seed, names, devices, n_shards, horizon=30.0):
    sharded = ShardedContext(seed=seed, zones=names, n_shards=n_shards,
                             link_latency_s=0.5)
    args = {"names": names, "devices": devices}
    for name in names:
        _build_obs_zone(sharded.zone(name), name, args)
    sharded.run(until=horizon)
    return sharded


def _parallel_obs(seed, names, devices, workers, horizon=30.0):
    args = {"names": names, "devices": devices}
    with ParallelShardedContext(
            seed=seed, zones=names, workers=workers, link_latency_s=0.5,
            zone_builder=_build_obs_zone, zone_args=args,
            zone_finalizer=_finalize_obs_zone) as parallel:
        parallel.run(until=horizon)
        parallel.finalize()
    return parallel


def _span_forest(sharded) -> list[str]:
    """The obs.span rows of the merged JSONL, bytes included."""
    return [line for line in sharded.to_jsonl().splitlines()
            if '"topic":"obs.span"' in line]


def _metrics_bytes(sharded) -> str:
    """Canonical serialization of the aggregated metrics payload."""
    return json.dumps(sharded.snapshot_observability()["metrics"],
                      sort_keys=True, separators=(",", ":"))


class TestCrossBackendByteIdentity:
    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1),
           n_zones=st.integers(min_value=2, max_value=4),
           workers=st.sampled_from([1, 2, 4]),
           devices=st.integers(min_value=1, max_value=6))
    def test_span_forest_and_metrics_identical(self, seed, n_zones,
                                               workers, devices):
        """Single-shard, multi-shard and multiprocess runs of the same
        scenario produce byte-identical merged span forests and
        byte-identical aggregated metrics payloads."""
        names = _zone_names(n_zones)
        single = _sequential_obs(seed, names, devices, n_shards=1)
        multi = _sequential_obs(seed, names, devices, n_shards=n_zones)
        par = _parallel_obs(seed, names, devices, workers)

        spans = _span_forest(single)
        assert spans  # outage + relays: the forest is never empty
        assert _span_forest(multi) == spans
        assert _span_forest(par) == spans

        metrics = _metrics_bytes(single)
        assert _metrics_bytes(multi) == metrics
        assert _metrics_bytes(par) == metrics

        assert single.digest() == multi.digest() == par.digest()

    def test_aggregate_excludes_shard_scoped_metrics(self):
        """Per-zone execution details (trace ring counters, per-heap
        event counts) never leak into the aggregated payload; the
        backend-invariant event total is re-derived instead."""
        names = _zone_names(3)
        sharded = _sequential_obs(21, names, 3, n_shards=3)
        payload = sharded.snapshot_observability()["metrics"]
        assert "runtime.trace.records" not in payload
        assert "runtime.trace.dropped" not in payload
        assert payload["continuum.sim.events_executed"]["value"] == \
            sharded.events_executed
        # The watcher's labelled counter survives aggregation with its
        # per-zone split intact (the outage zone dominates).
        reactions = payload["watch.chaos.reactions"]
        assert reactions["label_key"] == "zone"
        assert reactions["labels"].get(names[-1], 0) > 0


class TestOneFaultOneTree:
    def test_fault_spans_one_connected_cross_zone_tree(self):
        """The forced outage is the causal root of exactly one tree:
        relay deliveries in other zones, watcher reactions and the
        eventual repair all chain back to the fault span's id."""
        names = _zone_names(3)
        sharded = _sequential_obs(7, names, 4, n_shards=3)
        rows = [json.loads(line) for line in
                sharded.to_jsonl().splitlines()]
        spans = [(row["zone"], row["payload"]) for row in rows
                 if row["topic"] == "obs.span"]

        faults = [p for _, p in spans
                  if p["name"] == "continuum.fault.inject"]
        assert len(faults) == 1
        fault = faults[0]
        assert fault["parent_id"] is None  # root=True

        tree = [(z, p) for z, p in spans
                if p["trace_id"] == fault["trace_id"]]
        ids = {p["span_id"] for _, p in tree}
        roots = [p for _, p in tree if p["parent_id"] is None]
        assert roots == [fault]
        assert all(p["parent_id"] in ids
                   for _, p in tree if p["parent_id"] is not None)

        # The tree crosses zones: relay deliveries land outside the
        # faulted zone, watcher reactions hang off them in zone 0.
        relays = [(z, p) for z, p in tree
                  if p["name"] == "shard.relay.deliver"]
        assert relays
        assert all(z != names[-1] for z, _ in relays)
        reacts = [(z, p) for z, p in tree
                  if p["name"] == "watch.chaos.react"]
        assert reacts
        assert all(z == names[0] for z, _ in reacts)
        relay_ids = {p["span_id"] for _, p in relays}
        assert all(p["parent_id"] in relay_ids for _, p in reacts)

        # The repair rides the same tree (resumed fault context).
        repairs = [p for _, p in tree
                   if p["name"] == "continuum.fault.repair"]
        assert len(repairs) == 1
        assert repairs[0]["parent_id"] == fault["span_id"]


class TestRelayFastPathByteIdentity:
    """relay_deliver hand-inlines ``resume + start_span``; the comment
    in shard.py promises byte-identical records, pinned here."""

    @staticmethod
    def _solo(seed):
        sharded = ShardedContext(seed=seed, zones=("solo",), n_shards=1)
        return sharded, sharded.zone_runtimes[0], sharded.zone("solo")

    def test_matches_generic_resume_start_span(self):
        tid, sid = "ab" * 8, "cd" * 8
        payload = {"zone": "solo", "up": 9, "time_s": 0.0}

        fast, dest, fast_ctx = self._solo(11)
        relay_deliver(dest, "relay.test.msg", payload, span=(tid, sid))
        relay_deliver(dest, "relay.test.msg", {"up": 8}, span=None)

        ref, _, ref_ctx = self._solo(11)
        with ref_ctx.tracer.resume(SpanContext(tid, sid)):
            with ref_ctx.tracer.start_span(
                    "shard.relay.deliver", layer="runtime",
                    topic="relay.test.msg", zone="solo"):
                ref_ctx.bus.publish("relay.test.msg", payload)
        ref_ctx.bus.publish("relay.test.msg", {"up": 8})

        assert fast_ctx.trace.to_jsonl() == ref_ctx.trace.to_jsonl()
        assert fast_ctx.tracer.spans_recorded == \
            ref_ctx.tracer.spans_recorded

    def test_error_status_recorded_and_exception_propagates(self):
        tid, sid = "ab" * 8, "cd" * 8

        def boom(topic, payload):
            raise RuntimeError("handler exploded")

        fast, dest, fast_ctx = self._solo(12)
        fast_ctx.subscribe("relay.err.msg", boom)
        with pytest.raises(RuntimeError, match="handler exploded"):
            relay_deliver(dest, "relay.err.msg", {"n": 1},
                          span=(tid, sid))
        span_rows = [r for r in fast_ctx.trace if r.topic == "obs.span"]
        assert span_rows[-1].payload["status"] == "error"

        ref, _, ref_ctx = self._solo(12)
        ref_ctx.subscribe("relay.err.msg", boom)
        with pytest.raises(RuntimeError):
            with ref_ctx.tracer.resume(SpanContext(tid, sid)):
                with ref_ctx.tracer.start_span(
                        "shard.relay.deliver", layer="runtime",
                        topic="relay.err.msg", zone="solo"):
                    ref_ctx.bus.publish("relay.err.msg", {"n": 1})
        assert fast_ctx.trace.to_jsonl() == ref_ctx.trace.to_jsonl()

    def test_disabled_tracer_relays_without_spans(self):
        fast, dest, ctx = self._solo(13)
        ctx.tracer.enabled = False
        before = len(ctx.trace)
        relay_deliver(dest, "relay.test.msg", {"n": 1},
                      span=("ab" * 8, "cd" * 8))
        topics = [r.topic for r in ctx.trace][before:]
        assert topics == ["relay.test.msg"]


class TestMetricsMergeAlgebra:
    @staticmethod
    def _source():
        src = MetricsRegistry()
        hits = src.counter("app.web.hits", "requests", label_key="zone")
        hits.inc(2, label="z0")
        hits.inc(1, label="z1")
        src.gauge("app.web.level").set(4.0)
        lat = src.histogram("app.web.lat_seconds", "latency",
                            buckets=(0.1, 1.0))
        lat.observe(0.05)
        lat.observe(5.0)
        return src

    def test_merge_adds_counters_gauges_histograms(self):
        src = self._source()
        dst = MetricsRegistry()
        dst.counter("app.web.hits", label_key="zone").inc(5, label="z0")
        dst.merge_payload(src.to_payload())
        payload = dst.to_payload()
        assert payload["app.web.hits"]["value"] == 8
        assert payload["app.web.hits"]["labels"] == {"z0": 7, "z1": 1}
        assert payload["app.web.level"]["value"] == 4.0
        hist = payload["app.web.lat_seconds"]
        assert hist["counts"] == [1, 0, 1]
        assert hist["count"] == 2
        assert hist["sum"] == pytest.approx(5.05)
        # Merging the same snapshot again doubles everything: the fold
        # is plain addition, commutative and associative.
        dst.merge_payload(src.to_payload())
        assert dst.to_payload()["app.web.hits"]["value"] == 11

    def test_merge_exclude_drops_named_metrics(self):
        dst = MetricsRegistry()
        dst.merge_payload(self._source().to_payload(),
                          exclude=frozenset({"app.web.hits"}))
        payload = dst.to_payload()
        assert "app.web.hits" not in payload
        assert "app.web.level" in payload

    def test_merge_histogram_bucket_mismatch_raises(self):
        dst = MetricsRegistry()
        dst.histogram("app.web.lat_seconds", buckets=(0.5, 2.0))
        with pytest.raises(TypeError, match="bucket mismatch"):
            dst.merge_payload(self._source().to_payload())

    def test_merge_unknown_kind_raises(self):
        with pytest.raises(TypeError, match="cannot merge"):
            MetricsRegistry().merge_payload(
                {"app.web.x": {"kind": "summary", "value": 1}})

    def test_payload_delta_ships_changed_entries_whole(self):
        src = self._source()
        prev = src.to_payload()
        src.counter("app.web.hits").inc(1, label="z0")
        src.counter("app.web.errors").inc(1)
        delta = payload_delta(prev, src.to_payload())
        assert set(delta) == {"app.web.hits", "app.web.errors"}
        assert delta["app.web.hits"]["labels"]["z0"] == 3
        assert payload_delta(src.to_payload(), src.to_payload()) == {}


class TestShardProfiler:
    def test_epoch_accounting_wait_and_critical_path(self):
        prof = ShardProfiler(3, "test")
        # Tie on the slowest advance: lowest index wins.
        assert prof.record_epoch(0, 1.0, [5, 9, 9], [1, 0, 2]) == 1
        assert prof.epochs[0]["wait_ns"] == [4, 0, 0]
        assert prof.record_epoch(1, 2.0, [10, 2, 3], [0, 0, 0]) == 0
        payload = prof.to_payload()
        assert payload["backend"] == "test"
        assert payload["n_shards"] == 3
        assert len(payload["epochs"]) == 2
        assert payload["shards"] == [
            {"advance_ns": 15, "wait_ns": 4, "relay": 1,
             "critical_epochs": 1},
            {"advance_ns": 11, "wait_ns": 8, "relay": 0,
             "critical_epochs": 1},
            {"advance_ns": 12, "wait_ns": 7, "relay": 2,
             "critical_epochs": 0},
        ]

    def test_profiling_is_digest_neutral(self):
        """Enabling profiling must not perturb any zone's record stream
        — wall times live on the coordinator only."""
        names = _zone_names(2)
        args = {"names": names, "devices": 3}

        def run(profile):
            sharded = ShardedContext(seed=9, zones=names, n_shards=2,
                                     link_latency_s=0.5, profile=profile)
            for name in names:
                _build_obs_zone(sharded.zone(name), name, args)
            sharded.run(until=20.0)
            return sharded

        plain, profiled = run(False), run(True)
        assert profiled.digest() == plain.digest()
        snapshot = profiled.snapshot_observability()
        assert snapshot["profile"]["backend"] == "sequential"
        assert snapshot["profile"]["epochs"]
        assert "profile" not in plain.snapshot_observability()
        # Epoch wall histograms register on the coordinator alongside.
        coord = profiled.metrics.to_payload()
        assert coord["runtime.shard.epoch.advance_seconds"]["count"] > 0
        assert coord["runtime.shard.epoch.wait_seconds"]["count"] > 0


class TestObsCli:
    @pytest.fixture()
    def exported(self, tmp_path):
        names = _zone_names(2)
        sharded = ShardedContext(seed=15, zones=names, n_shards=2,
                                 link_latency_s=0.5, profile=True)
        args = {"names": names, "devices": 3}
        for name in names:
            _build_obs_zone(sharded.zone(name), name, args)
        sharded.run(until=30.0)
        path = tmp_path / "trace.jsonl"
        sharded.export_jsonl(path, observability=True)
        return path

    def test_shards_renders_barrier_profile(self, exported, capsys):
        assert obs_main(["shards", str(exported), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "shard profile: sequential backend, 2 shards" in out
        assert "straggler epochs" in out

    def test_tree_zone_filter(self, exported, capsys):
        assert obs_main(["tree", str(exported),
                         "--zone", "z1"]) == 0
        out = capsys.readouterr().out
        assert "continuum.fault.inject" in out
        assert obs_main(["timeline", str(exported),
                         "--zone", "z0"]) == 0
        assert "z0" in capsys.readouterr().out

    def test_metrics_renders_aggregated_exposition(self, exported,
                                                   capsys):
        assert obs_main(["metrics", str(exported)]) == 0
        out = capsys.readouterr().out
        assert "repro_watch_chaos_reactions" in out
        assert "repro_continuum_sim_events_executed" in out
