"""Unit tests for repro.core: ids, units, errors."""

import pytest

from repro.core import (
    IdGenerator,
    qualified_name,
    ValidationError,
    format_bytes,
    format_duration,
    format_energy,
    KIB,
    MIB,
    GIB,
    MS,
    US,
    MINUTE,
)


class TestIdGenerator:
    def test_sequential_per_prefix(self):
        gen = IdGenerator()
        assert gen.next("pod") == "pod-0000"
        assert gen.next("pod") == "pod-0001"
        assert gen.next("node") == "node-0000"

    def test_peek_does_not_advance(self):
        gen = IdGenerator()
        assert gen.peek("x") == 0
        gen.next("x")
        assert gen.peek("x") == 1

    def test_reset_single_prefix(self):
        gen = IdGenerator()
        gen.next("a")
        gen.next("b")
        gen.reset("a")
        assert gen.next("a") == "a-0000"
        assert gen.next("b") == "b-0001"

    def test_reset_all(self):
        gen = IdGenerator()
        gen.next("a")
        gen.next("b")
        gen.reset()
        assert gen.next("a") == "a-0000"
        assert gen.next("b") == "b-0000"

    def test_custom_width(self):
        gen = IdGenerator(width=2)
        assert gen.next("n") == "n-00"

    def test_rejects_empty_prefix(self):
        with pytest.raises(ValueError):
            IdGenerator().next("")

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            IdGenerator(width=0)


class TestQualifiedName:
    def test_joins_parts(self):
        assert qualified_name("edge", "dev", "pmc") == "edge.dev.pmc"

    def test_skips_empty_parts(self):
        assert qualified_name("a", "", "b") == "a.b"

    def test_all_empty_raises(self):
        with pytest.raises(ValueError):
            qualified_name("", "")


class TestUnits:
    def test_binary_prefixes(self):
        assert KIB == 1024
        assert MIB == 1024 * KIB
        assert GIB == 1024 * MIB

    def test_format_bytes(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(1536) == "1.50 KiB"
        assert format_bytes(3 * MIB) == "3.00 MiB"
        assert format_bytes(2 * GIB) == "2.00 GiB"

    def test_format_duration(self):
        assert format_duration(2 * MINUTE) == "2.00 min"
        assert format_duration(1.5) == "1.50 s"
        assert format_duration(2 * MS) == "2.00 ms"
        assert format_duration(5 * US) == "5.00 us"

    def test_format_energy(self):
        assert format_energy(1.5) == "1.500 J"
        assert format_energy(0.0021) == "2.10 mJ"


class TestValidationError:
    def test_collects_problems(self):
        err = ValidationError("doc invalid", ["missing name", "bad type"])
        assert "missing name" in str(err)
        assert "bad type" in str(err)
        assert err.problems == ["missing name", "bad type"]

    def test_without_problems(self):
        err = ValidationError("plain")
        assert str(err) == "plain"
