"""Tests for the TOSCA model, parser, validator and CSAR packaging."""

import pytest

from repro.core.errors import ValidationError
from repro.tosca import (
    CsarArchive,
    NodeTemplate,
    Policy,
    Requirement,
    ServiceTemplate,
    ToscaValidator,
    dump_service_template,
    effective_properties,
    parse_service_template,
    resolve_type,
)

VALID_DOC = """
tosca_definitions_version: myrtus_tosca_1_0
metadata: {template_name: demo}
topology_template:
  inputs: {rate: 10}
  node_templates:
    feed:
      type: myrtus.nodes.Container
      properties:
        image: "feed:1"
        cpu_millicores: 200
        memory_bytes: 104857600
    detector:
      type: myrtus.nodes.AcceleratedKernel
      properties:
        image: "det:1"
        cpu_millicores: 1000
        memory_bytes: 536870912
        bitstream: "cnn.bit"
      requirements:
        - connection:
            node: feed
            relationship: tosca.relationships.ConnectsTo
  policies:
    - secure-all:
        type: myrtus.policies.Security
        targets: ["*"]
        properties: {min_level: medium}
    - fast:
        type: myrtus.policies.Latency
        targets: [detector]
        properties: {end_to_end_budget_s: 0.1}
"""


def valid_service():
    return parse_service_template(VALID_DOC)


class TestTypeSystem:
    def test_resolve_known_type(self):
        assert resolve_type("myrtus.nodes.Container").name \
            == "myrtus.nodes.Container"

    def test_resolve_unknown_raises(self):
        with pytest.raises(ValidationError):
            resolve_type("nope.Type")

    def test_effective_properties_inherit(self):
        props = effective_properties("myrtus.nodes.EdgeDevice")
        assert "device_kind" in props  # own
        assert "num_cpus" in props  # inherited from Compute

    def test_property_type_checks(self):
        props = effective_properties("myrtus.nodes.Container")
        assert props["cpu_millicores"].check(100)
        assert not props["cpu_millicores"].check("many")
        assert not props["cpu_millicores"].check(True)  # bool is not int
        assert props["image"].check("x:1")


class TestParser:
    def test_parse_valid_document(self):
        svc = valid_service()
        assert svc.name == "demo"
        assert set(svc.node_templates) == {"feed", "detector"}
        assert svc.inputs == {"rate": 10}
        assert len(svc.policies) == 2

    def test_requirement_parsed(self):
        svc = valid_service()
        req = svc.node_templates["detector"].requirement("connection")
        assert req.target == "feed"
        assert req.relationship == "tosca.relationships.ConnectsTo"

    def test_short_form_requirement(self):
        doc = VALID_DOC.replace(
            """        - connection:
            node: feed
            relationship: tosca.relationships.ConnectsTo""",
            "        - host: feed")
        svc = parse_service_template(doc)
        assert svc.node_templates["detector"].requirement("host").target \
            == "feed"

    def test_bad_yaml_rejected(self):
        with pytest.raises(ValidationError):
            parse_service_template(": : :")

    def test_missing_version_rejected(self):
        with pytest.raises(ValidationError, match="tosca_definitions"):
            parse_service_template("topology_template: {}")

    def test_missing_topology_rejected(self):
        with pytest.raises(ValidationError):
            parse_service_template(
                "tosca_definitions_version: myrtus_tosca_1_0")

    def test_empty_node_templates_rejected(self):
        with pytest.raises(ValidationError):
            parse_service_template(
                "tosca_definitions_version: myrtus_tosca_1_0\n"
                "topology_template:\n  node_templates: {}\n")

    def test_yaml_roundtrip(self):
        svc = valid_service()
        again = parse_service_template(dump_service_template(svc))
        assert set(again.node_templates) == set(svc.node_templates)
        assert [p.name for p in again.policies] \
            == [p.name for p in svc.policies]
        assert again.node_templates["detector"].properties["bitstream"] \
            == "cnn.bit"


class TestValidator:
    def test_valid_template_passes(self):
        assert ToscaValidator().check(valid_service()) == []

    def test_unknown_type_reported(self):
        svc = valid_service()
        svc.add_node(NodeTemplate("bad", type="nope.Type"))
        problems = ToscaValidator().check(svc)
        assert any("unknown type" in p for p in problems)

    def test_missing_required_property(self):
        svc = valid_service()
        svc.add_node(NodeTemplate("c2", type="myrtus.nodes.Container",
                                  properties={"image": "x"}))
        problems = ToscaValidator().check(svc)
        assert any("missing required property cpu_millicores" in p
                   for p in problems)

    def test_wrong_property_type(self):
        svc = valid_service()
        svc.node_templates["feed"].properties["cpu_millicores"] = "lots"
        problems = ToscaValidator().check(svc)
        assert any("not a integer" in p for p in problems)

    def test_unknown_property(self):
        svc = valid_service()
        svc.node_templates["feed"].properties["color"] = "red"
        problems = ToscaValidator().check(svc)
        assert any("unknown property color" in p for p in problems)

    def test_dangling_requirement(self):
        svc = valid_service()
        svc.node_templates["feed"].requirements.append(
            Requirement("host", "ghost"))
        problems = ToscaValidator().check(svc)
        assert any("unknown template ghost" in p for p in problems)

    def test_self_requirement(self):
        svc = valid_service()
        svc.node_templates["feed"].requirements.append(
            Requirement("host", "feed"))
        problems = ToscaValidator().check(svc)
        assert any("targets itself" in p for p in problems)

    def test_hosting_cycle_detected(self):
        svc = valid_service()
        svc.node_templates["feed"].requirements.append(
            Requirement("host", "detector",
                        "tosca.relationships.HostedOn"))
        svc.node_templates["detector"].requirements.append(
            Requirement("host", "feed", "tosca.relationships.HostedOn"))
        problems = ToscaValidator().check(svc)
        assert any("hosting cycle" in p for p in problems)

    def test_unknown_policy_type(self):
        svc = valid_service()
        svc.add_policy(Policy("p", "nope.Policy", ["feed"]))
        problems = ToscaValidator().check(svc)
        assert any("unknown type nope.Policy" in p for p in problems)

    def test_policy_unknown_target(self):
        svc = valid_service()
        svc.add_policy(Policy("p", "myrtus.policies.Latency", ["ghost"],
                              {"end_to_end_budget_s": 1.0}))
        problems = ToscaValidator().check(svc)
        assert any("unknown target ghost" in p for p in problems)

    def test_bad_security_level_value(self):
        svc = valid_service()
        svc.add_policy(Policy("p", "myrtus.policies.Security", ["feed"],
                              {"min_level": "ultra"}))
        problems = ToscaValidator().check(svc)
        assert any("min_level" in p for p in problems)

    def test_nonpositive_latency_budget(self):
        svc = valid_service()
        svc.add_policy(Policy("p", "myrtus.policies.Latency", ["feed"],
                              {"end_to_end_budget_s": -1.0}))
        problems = ToscaValidator().check(svc)
        assert any("must be positive" in p for p in problems)

    def test_validate_raises_with_all_problems(self):
        svc = valid_service()
        svc.add_node(NodeTemplate("bad", type="nope.Type"))
        svc.add_policy(Policy("p", "nope.Policy", ["feed"]))
        with pytest.raises(ValidationError) as excinfo:
            ToscaValidator().validate(svc)
        assert len(excinfo.value.problems) >= 2


class TestServiceTemplateApi:
    def test_duplicate_template_rejected(self):
        svc = ServiceTemplate("s")
        svc.add_node(NodeTemplate("a", "myrtus.nodes.Container"))
        with pytest.raises(ValidationError):
            svc.add_node(NodeTemplate("a", "myrtus.nodes.Container"))

    def test_containers_include_derived_types(self):
        svc = valid_service()
        names = {c.name for c in svc.containers()}
        assert names == {"feed", "detector"}  # AcceleratedKernel derives

    def test_policies_for_wildcard(self):
        svc = valid_service()
        assert [p.name for p in svc.policies_for("feed")] == ["secure-all"]
        assert {p.name for p in svc.policies_for("detector")} \
            == {"secure-all", "fast"}

    def test_policies_of_type(self):
        svc = valid_service()
        assert len(svc.policies_of_type("myrtus.policies.Latency")) == 1


class TestCsar:
    def test_roundtrip(self):
        archive = CsarArchive(valid_service())
        archive.add_artifact("bitstreams/cnn.bit", b"\x00" * 64)
        archive.add_artifact("meta/operating-points.json", b"{}")
        data = archive.to_bytes()
        back = CsarArchive.from_bytes(data)
        assert back.service.name == "demo"
        assert back.artifact_inventory() == {
            "bitstreams/cnn.bit": 64,
            "meta/operating-points.json": 2,
        }

    def test_bad_zip_rejected(self):
        with pytest.raises(ValidationError):
            CsarArchive.from_bytes(b"not a zip")

    def test_missing_meta_rejected(self):
        import io
        import zipfile
        buffer = io.BytesIO()
        with zipfile.ZipFile(buffer, "w") as z:
            z.writestr("random.txt", "hi")
        with pytest.raises(ValidationError):
            CsarArchive.from_bytes(buffer.getvalue())

    def test_bad_artifact_path_rejected(self):
        archive = CsarArchive(valid_service())
        with pytest.raises(ValidationError):
            archive.add_artifact("/absolute", b"")
