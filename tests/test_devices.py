"""Unit tests for device models: execution, energy, operating points, PMCs."""

import pytest

from repro.core.errors import CapacityError, ConfigurationError, NotFoundError
from repro.continuum.devices import (
    DEFAULT_OPERATING_POINTS,
    DeviceKind,
    DeviceSpec,
    Layer,
    OperatingPoint,
    SPEC_CATALOGUE,
    make_device,
)
from repro.continuum.simulator import Simulator
from repro.continuum.workload import KernelClass, Task


def fpga(sim=None):
    return make_device("fpga", DeviceKind.HMPSOC_FPGA, ctx=sim or Simulator())


class TestSpecValidation:
    def test_catalogue_covers_all_kinds(self):
        assert set(SPEC_CATALOGUE) == set(DeviceKind)

    def test_catalogue_layers_match_paper(self):
        assert SPEC_CATALOGUE[DeviceKind.HMPSOC_FPGA].layer == Layer.EDGE
        assert SPEC_CATALOGUE[DeviceKind.FMDC].layer == Layer.FOG
        assert SPEC_CATALOGUE[DeviceKind.CLOUD_SERVER].layer == Layer.CLOUD

    def test_invalid_cores(self):
        with pytest.raises(ConfigurationError):
            DeviceSpec(kind=DeviceKind.EDGE_MULTICORE, layer=Layer.EDGE,
                       cores=0, gops=1, memory_bytes=1, io_bw_bps=1,
                       idle_power_w=1, busy_power_w=2)

    def test_busy_power_below_idle_rejected(self):
        with pytest.raises(ConfigurationError):
            DeviceSpec(kind=DeviceKind.EDGE_MULTICORE, layer=Layer.EDGE,
                       cores=1, gops=1, memory_bytes=1, io_bw_bps=1,
                       idle_power_w=5, busy_power_w=2)

    def test_operating_point_scales_positive(self):
        with pytest.raises(ConfigurationError):
            OperatingPoint("bad", perf_scale=0, power_scale=1)


class TestExecution:
    def test_task_completes_with_record(self):
        sim = Simulator()
        dev = fpga(sim)
        task = Task("t", megaops=100, input_bytes=1000, output_bytes=500)
        p = sim.process(dev.execute(task))
        rec = sim.run(until=p)
        assert rec.task_name == "t"
        assert rec.device_name == "fpga"
        assert rec.end_s > 0
        assert rec.energy_j > 0

    def test_dsp_kernel_is_accelerated_on_fpga(self):
        sim = Simulator()
        dev = fpga(sim)
        plain = Task("p", megaops=100)
        dsp = Task("d", megaops=100, kernel=KernelClass.DSP)
        assert dev.estimate_duration(dsp) < dev.estimate_duration(plain)
        p = sim.process(dev.execute(dsp))
        rec = sim.run(until=p)
        assert rec.accelerated

    def test_oversized_task_rejected(self):
        sim = Simulator()
        dev = fpga(sim)
        huge = Task("huge", megaops=1,
                    memory_bytes=dev.spec.memory_bytes + 1)
        with pytest.raises(CapacityError):
            # The capacity check happens before the first yield.
            next(dev.execute(huge))

    def test_core_contention_serializes(self):
        sim = Simulator()
        dev = fpga(sim)  # 2 cores
        tasks = [Task(f"t{i}", megaops=400) for i in range(3)]
        procs = [sim.process(dev.execute(t)) for t in tasks]
        sim.run()
        ends = sorted(p.value.end_s for p in procs)
        # Two run in parallel, the third starts after one finishes.
        assert ends[0] == ends[1]
        assert ends[2] > ends[1]

    def test_memory_pressure_delays_start(self):
        sim = Simulator()
        dev = fpga(sim)
        half = dev.spec.memory_bytes // 2
        big1 = Task("b1", megaops=400, memory_bytes=half + 1)
        big2 = Task("b2", megaops=400, memory_bytes=half + 1)
        p1 = sim.process(dev.execute(big1))
        p2 = sim.process(dev.execute(big2))
        sim.run()
        # Second task could not overlap despite a free core.
        assert p2.value.start_s >= p1.value.end_s

    def test_pmcs_accumulate(self):
        sim = Simulator()
        dev = fpga(sim)
        for i in range(3):
            sim.process(dev.execute(
                Task(f"t{i}", megaops=10, kernel=KernelClass.DSP,
                     input_bytes=100)))
        sim.run()
        snap = dev.pmc.snapshot()
        assert snap["tasks_executed"] == 3
        assert snap["accelerated_tasks"] == 3
        assert snap["bytes_moved"] == 300
        assert snap["busy_time_s"] > 0


class TestOperatingPoints:
    def test_default_points_present(self):
        dev = fpga()
        assert set(dev.operating_points) == {
            op.name for op in DEFAULT_OPERATING_POINTS
        }
        assert dev.operating_point.name == "balanced"

    def test_switching_changes_estimates(self):
        dev = fpga()
        task = Task("t", megaops=1000)
        balanced = dev.estimate_duration(task)
        dev.set_operating_point("performance")
        assert dev.estimate_duration(task) < balanced
        dev.set_operating_point("low-power")
        assert dev.estimate_duration(task) > balanced

    def test_low_power_uses_less_energy(self):
        dev = fpga()
        task = Task("t", megaops=1000)
        assert (dev.estimate_energy(task, "low-power")
                < dev.estimate_energy(task, "performance"))

    def test_unknown_point_raises(self):
        with pytest.raises(NotFoundError):
            fpga().set_operating_point("turbo")

    def test_record_captures_active_point(self):
        sim = Simulator()
        dev = fpga(sim)
        dev.set_operating_point("low-power")
        p = sim.process(dev.execute(Task("t", megaops=10)))
        rec = sim.run(until=p)
        assert rec.operating_point == "low-power"


class TestReconfiguration:
    def test_reconfigure_loads_bitstream(self):
        sim = Simulator()
        dev = fpga(sim)
        p = sim.process(dev.reconfigure("fir-filter.bit"))
        sim.run(until=p)
        assert "fir-filter.bit" in dev.loaded_bitstreams
        assert dev.pmc.reconfigurations == 1
        assert sim.now == dev.spec.reconfig_time_s

    def test_region_eviction_fifo(self):
        sim = Simulator()
        dev = fpga(sim)  # 2 regions
        for name in ("a.bit", "b.bit", "c.bit"):
            sim.run(until=sim.process(dev.reconfigure(name)))
        assert dev.loaded_bitstreams == ("b.bit", "c.bit")

    def test_non_reconfigurable_device_rejects(self):
        sim = Simulator()
        dev = make_device("mc", DeviceKind.EDGE_MULTICORE, ctx=sim)
        with pytest.raises(ConfigurationError):
            next(dev.reconfigure("x.bit"))


class TestTelemetry:
    def test_idle_device_zero_utilization(self):
        sim = Simulator()
        dev = fpga(sim)
        sim.run(until=sim.timeout(10))
        assert dev.utilization() == 0.0
        # But idle energy accrues.
        assert dev.total_energy() == pytest.approx(
            dev.spec.idle_power_w * 10)

    def test_utilization_bounded(self):
        sim = Simulator()
        dev = fpga(sim)
        for i in range(10):
            sim.process(dev.execute(Task(f"t{i}", megaops=100)))
        sim.run()
        assert 0 < dev.utilization() <= 1.0

    def test_telemetry_shape(self):
        sim = Simulator()
        dev = fpga(sim)
        sample = dev.telemetry()
        for key in ("utilization", "memory_free_bytes", "queue_length",
                    "energy_j", "tasks_executed"):
            assert key in sample


class TestCrossDeviceComparisons:
    """Sanity: the catalogue's relative magnitudes match the paper story."""

    def test_cloud_faster_than_edge(self):
        sim = Simulator()
        cloud = make_device("c", DeviceKind.CLOUD_SERVER, ctx=sim)
        edge = make_device("e", DeviceKind.EDGE_MULTICORE, ctx=sim)
        task = Task("t", megaops=10000)
        assert cloud.estimate_duration(task) < edge.estimate_duration(task)

    def test_riscv_lowest_idle_power(self):
        specs = SPEC_CATALOGUE
        riscv = specs[DeviceKind.RISCV_CGRA]
        assert all(riscv.idle_power_w <= s.idle_power_w
                   for s in specs.values())

    def test_fpga_beats_multicore_on_dsp_energy(self):
        sim = Simulator()
        fpga_dev = make_device("f", DeviceKind.HMPSOC_FPGA, ctx=sim)
        mc = make_device("m", DeviceKind.EDGE_MULTICORE, ctx=sim)
        dsp = Task("t", megaops=5000, kernel=KernelClass.DSP)
        assert fpga_dev.estimate_energy(dsp) < mc.estimate_energy(dsp)
