"""Tests for the C backend: emission and compile-and-run equivalence."""

import numpy as np
import pytest

from repro.core.errors import CompilationError
from repro.dpe import import_onnx, reference_mlp
from repro.dpe.codegen import compile_and_run, compiler_available, emit_c
from repro.dpe.mlir import (
    Base2Type,
    Builder,
    F32,
    I1,
    Interpreter,
    Module,
    TensorType,
    quantize_to_base2,
)

needs_cc = pytest.mark.skipif(not compiler_available(),
                              reason="no C compiler on PATH")


def scalar_module():
    module = Module("m")
    builder = Builder(module, "mix", [F32, F32])
    product = builder.op("arith.mulf", [builder.args[0],
                                        builder.args[1]], [F32])
    bigger = builder.op("arith.maxf", [product.result(),
                                       builder.args[0]], [F32])
    builder.ret([bigger.result()])
    return module


class TestEmission:
    def test_emits_compilable_looking_c(self):
        module = scalar_module()
        source = emit_c(module, "mix")
        assert "void mix(" in source
        assert "#include <stdint.h>" in source

    def test_unsupported_op_rejected(self):
        module = Module("m")
        builder = Builder(module, "odd", [F32])
        builder.op("dfg.push", [builder.args[0]], [])
        builder.ret([builder.args[0]])
        with pytest.raises(CompilationError, match="unsupported op"):
            emit_c(module, "odd")

    def test_tensor_constants_embedded(self):
        module = Module("m")
        t = TensorType((2, 2), F32)
        builder = Builder(module, "c", [t])
        w = builder.op("tensor.constant", [], [t],
                       {"value": np.eye(2)})
        out = builder.op("tensor.add", [builder.args[0], w.result()],
                         [t])
        builder.ret([out.result()])
        source = emit_c(module, "c")
        assert "static const double" in source


@needs_cc
class TestCompileAndRun:
    def test_scalar_matches_interpreter(self):
        module = scalar_module()
        (result,) = compile_and_run(module, "mix",
                                    [np.array([2.0]), np.array([-3.0])])
        expected = Interpreter(module).run("mix", 2.0, -3.0)
        assert result[0] == pytest.approx(expected[0])

    def test_mlp_float_matches_interpreter(self):
        rng = np.random.default_rng(5)
        module = Module("nn")
        func = import_onnx(reference_mlp(rng, 6, 10, 3), module)
        x = rng.normal(0, 1, (1, 6))
        c_out = compile_and_run(module, func, [x])
        ref = Interpreter(module).run(func, x)
        np.testing.assert_allclose(c_out[0], ref[0], rtol=1e-12)

    def test_base2_matches_interpreter_exactly(self):
        """Fixed-point semantics are integer arithmetic: the C code
        must be bit-identical to the interpreter, not just close."""
        rng = np.random.default_rng(6)
        module = Module("nn")
        func = import_onnx(reference_mlp(rng, 4, 8, 2), module)
        fixed = quantize_to_base2(module, func, Base2Type(16, 8))
        x = rng.normal(0, 1, (1, 4))
        c_out = compile_and_run(module, fixed.name, [x])
        ref = Interpreter(module).run(fixed.name, x)
        np.testing.assert_array_equal(c_out[0], np.asarray(ref[0]))

    def test_select_and_cmp(self):
        module = Module("m")
        builder = Builder(module, "clamp", [F32])
        zero = builder.op("arith.constant", [], [F32], {"value": 0.0})
        neg = builder.op("arith.cmp", [builder.args[0], zero.result()],
                         [I1], {"predicate": "lt"})
        out = builder.op("arith.select",
                         [neg.result(), zero.result(), builder.args[0]],
                         [F32])
        builder.ret([out.result()])
        assert compile_and_run(module, "clamp",
                               [np.array([-4.0])])[0][0] == 0.0
        assert compile_and_run(module, "clamp",
                               [np.array([4.0])])[0][0] == 4.0

    def test_multiple_returns(self):
        module = Module("m")
        builder = Builder(module, "two", [F32, F32])
        s = builder.op("arith.addf", [builder.args[0], builder.args[1]],
                       [F32])
        d = builder.op("arith.subf", [builder.args[0], builder.args[1]],
                       [F32])
        builder.ret([s.result(), d.result()])
        outs = compile_and_run(module, "two",
                               [np.array([5.0]), np.array([2.0])])
        assert outs[0][0] == 7.0
        assert outs[1][0] == 3.0

    def test_reshape_preserves_data(self):
        module = Module("m")
        builder = Builder(module, "rs", [TensorType((2, 3), F32)])
        out = builder.op("tensor.reshape", [builder.args[0]],
                         [TensorType((3, 2), F32)])
        builder.ret([out.result()])
        x = np.arange(6.0).reshape(2, 3)
        (result,) = compile_and_run(module, "rs", [x])
        np.testing.assert_array_equal(result.ravel(), x.ravel())
