"""Tests for metric series and the three EU-CEI monitor kinds."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.events import EventBus
from repro.continuum import DeviceKind, Simulator, Task, make_device
from repro.monitoring import (
    ApplicationMonitor,
    InfrastructureMonitor,
    MetricSeries,
    TelemetryMonitor,
)
from repro.net.topology import Network


class TestMetricSeries:
    def test_record_and_latest(self):
        s = MetricSeries("m")
        assert s.latest() is None
        s.record(0.0, 1.5)
        s.record(1.0, 2.5)
        assert s.latest() == 2.5
        assert len(s) == 2

    def test_retention_bound(self):
        s = MetricSeries("m", retention=3)
        for i in range(10):
            s.record(i, i)
        assert len(s) == 3
        assert s.latest() == 9

    def test_invalid_retention(self):
        with pytest.raises(ConfigurationError):
            MetricSeries("m", retention=0)

    def test_stats(self):
        s = MetricSeries("m")
        for i, v in enumerate([1, 2, 3, 4, 5]):
            s.record(i, v)
        st = s.stats()
        assert st.count == 5
        assert st.mean == 3
        assert st.minimum == 1
        assert st.maximum == 5
        assert st.p50 == 3

    def test_stats_window(self):
        s = MetricSeries("m")
        for i in range(10):
            s.record(i, i)
        st = s.stats(since_s=7)
        assert st.count == 3
        assert st.minimum == 7

    def test_stats_empty_window(self):
        s = MetricSeries("m")
        assert s.stats() is None

    def test_alert_above(self):
        s = MetricSeries("util", alert_above=0.9)
        assert s.record(0, 0.5) is None
        alert = s.record(1, 0.95)
        assert alert is not None
        assert alert.direction == "above"
        assert len(s.alerts) == 1

    def test_alert_below(self):
        s = MetricSeries("battery", alert_below=0.2)
        alert = s.record(0, 0.1)
        assert alert.direction == "below"

    def test_alert_retention_bound(self):
        s = MetricSeries("util", alert_above=0.5, alert_retention=3)
        for i in range(10):
            s.record(i, 0.9)
        assert len(s.alerts) == 3
        assert s.total_alerts == 10
        assert s.dropped_alerts == 7
        # Oldest alerts fell off the front; the newest survive.
        assert [a.time_s for a in s.alerts] == [7, 8, 9]

    def test_no_drops_below_retention(self):
        s = MetricSeries("util", alert_above=0.5)
        s.record(0, 0.9)
        assert s.dropped_alerts == 0
        assert s.total_alerts == 1

    def test_invalid_alert_retention(self):
        with pytest.raises(ConfigurationError):
            MetricSeries("m", alert_retention=0)

    def test_rate(self):
        s = MetricSeries("m")
        for t in [0.0, 0.5, 1.0, 1.5, 2.0]:
            s.record(t, 1)
        assert s.rate(window_s=1.0, now_s=2.0) == pytest.approx(3.0)

    def test_rate_invalid_window(self):
        with pytest.raises(ConfigurationError):
            MetricSeries("m").rate(0, 1)


class TestApplicationMonitor:
    def test_latency_recorded(self):
        mon = ApplicationMonitor("app")
        mon.record_completion(1.0, latency_s=0.05)
        assert mon.series["latency_s"].latest() == 0.05

    def test_miss_rate(self):
        mon = ApplicationMonitor("app")
        mon.record_completion(0, 0.05, deadline_s=0.1)  # hit
        mon.record_completion(1, 0.15, deadline_s=0.1)  # miss
        mon.record_completion(2, 0.09, deadline_s=0.1)  # hit
        assert mon.miss_rate() == pytest.approx(1 / 3)

    def test_miss_rate_empty(self):
        assert ApplicationMonitor("app").miss_rate() == 0.0

    def test_bus_publication(self):
        bus = EventBus()
        seen = []
        bus.subscribe("monitor.metrics.application.**",
                      lambda t, p: seen.append(t))
        mon = ApplicationMonitor("app", bus=bus)
        mon.record_completion(0, 0.05)
        assert seen


class TestTelemetryMonitor:
    def test_loss_rate(self):
        mon = TelemetryMonitor("net")
        mon.record_message(0, delivered=True, latency_s=0.01)
        mon.record_message(1, delivered=False)
        mon.record_message(2, delivered=True, latency_s=0.02)
        assert mon.loss_rate() == pytest.approx(1 / 3)

    def test_loss_rate_empty(self):
        assert TelemetryMonitor("net").loss_rate() == 0.0

    def test_network_sampling(self):
        sim = Simulator()
        net = Network(ctx=sim)
        net.add_link("a", "b", 0.01, 1e6)
        sim.run(until=sim.process(net.transfer("a", "b", 500)))
        mon = TelemetryMonitor("net")
        mon.sample_network(sim.now, net)
        assert mon.series["link_a-b_bytes"].latest() == 500.0


class TestInfrastructureMonitor:
    def test_device_sampling(self):
        sim = Simulator()
        dev = make_device("fpga", DeviceKind.HMPSOC_FPGA, ctx=sim)
        sim.run(until=sim.process(dev.execute(Task("t", megaops=100))))
        mon = InfrastructureMonitor("infra")
        sample = mon.sample_device(sim.now, dev)
        assert sample["tasks_executed"] == 1
        assert mon.device_utilization("fpga") is not None

    def test_pmc_series_for_reconfigurable(self):
        sim = Simulator()
        dev = make_device("fpga", DeviceKind.HMPSOC_FPGA, ctx=sim)
        sim.run(until=sim.process(dev.reconfigure("x.bit")))
        mon = InfrastructureMonitor("infra")
        mon.sample_device(sim.now, dev)
        assert mon.series["fpga.reconfigurations"].latest() == 1.0

    def test_no_pmc_series_for_plain_multicore(self):
        sim = Simulator()
        dev = make_device("mc", DeviceKind.EDGE_MULTICORE, ctx=sim)
        mon = InfrastructureMonitor("infra")
        mon.sample_device(sim.now, dev)
        assert "mc.reconfigurations" not in mon.series

    def test_overloaded_devices(self):
        mon = InfrastructureMonitor("infra")
        mon.metric("busy.utilization").record(0, 0.95)
        mon.metric("idle.utilization").record(0, 0.10)
        assert mon.overloaded_devices(threshold=0.9) == ["busy"]

    def test_alert_flows_to_bus(self):
        bus = EventBus()
        alerts = []
        bus.subscribe("monitor.alerts.**", lambda t, p: alerts.append(p))
        mon = InfrastructureMonitor("infra", bus=bus)
        mon.metric("n.utilization", alert_above=0.8)
        mon._record("n.utilization", 0, 0.9)
        assert len(alerts) == 1
        assert alerts[0].direction == "above"

    def test_record_threshold_plumbing(self):
        # Regression: thresholds passed through _record used to be
        # dropped when the series already existed — arming alerts after
        # the first sample silently did nothing.
        bus = EventBus()
        alerts = []
        bus.subscribe("monitor.alerts.**", lambda t, p: alerts.append(p))
        mon = InfrastructureMonitor("infra", bus=bus)
        mon._record("n.utilization", 0, 0.95)  # creates the series
        assert alerts == []
        mon._record("n.utilization", 1, 0.95, alert_above=0.8)
        assert len(alerts) == 1
        assert alerts[0].threshold == 0.8

    def test_metric_rearms_existing_series(self):
        mon = InfrastructureMonitor("infra")
        series = mon.metric("x")
        assert series.alert_above is None
        rearmed = mon.metric("x", alert_above=0.5, alert_below=0.1)
        assert rearmed is series
        assert series.alert_above == 0.5
        assert series.alert_below == 0.1

    def test_ctx_clock_default(self):
        from repro.runtime import RuntimeContext
        ctx = RuntimeContext()
        ctx.run(until=7.0)
        mon = InfrastructureMonitor("infra", ctx=ctx)
        mon._record("n.utilization", None, 0.5)
        assert mon.series["n.utilization"].samples[-1] == (7.0, 0.5)

    def test_no_ctx_no_time_raises(self):
        mon = InfrastructureMonitor("infra")
        with pytest.raises(ConfigurationError):
            mon._record("n.utilization", None, 0.5)
