"""Tests for execution-time orchestration (continuous re-placement)."""

import pytest

from repro.continuum import Simulator, build_reference_infrastructure
from repro.continuum.workload import Application, KernelClass, Task
from repro.mirto.continuous import (
    ContinuousDeployment,
    MigrationPolicy,
    run_with_interference,
)
from repro.mirto.placement import PlacementConstraints


def streaming_app():
    app = Application("stream")
    app.add_task(Task("grab", 100, input_bytes=100_000))
    app.add_task(Task("infer", 2500, kernel=KernelClass.DSP))
    app.add_task(Task("emit", 150))
    app.connect("grab", "infer", 100_000)
    app.connect("infer", "emit", 5_000)
    return app


def make_deployment(**policy_kwargs):
    infrastructure = build_reference_infrastructure(Simulator())
    deployment = ContinuousDeployment(
        streaming_app(), infrastructure,
        constraints=PlacementConstraints(source_device="mc-00-0"),
        policy=MigrationPolicy(**policy_kwargs))
    return deployment, infrastructure


class TestBacklogSignal:
    def test_backlog_reflects_admitted_work(self):
        sim = Simulator()
        infrastructure = build_reference_infrastructure(sim)
        device = infrastructure.device("fpga-00-0")
        assert device.backlog_seconds() == 0.0
        sim.process(device.execute(Task("t", megaops=4000)))
        sim.run(until=sim.now + 0.001)
        assert device.backlog_seconds() > 0
        sim.run()
        assert device.backlog_seconds() == 0.0

    def test_estimates_avoid_loaded_devices(self):
        sim = Simulator()
        infrastructure = build_reference_infrastructure(sim)
        flooded = infrastructure.device("fpga-00-0")
        for i in range(10):
            sim.process(flooded.execute(Task(f"bg{i}", megaops=5000)))
        sim.run(until=sim.now + 0.001)
        from repro.mirto.placement import make_strategy
        placement = make_strategy("greedy").place(
            streaming_app(), infrastructure, PlacementConstraints())
        assert "fpga-00-0" not in placement.assignment.values()


class TestContinuousDeployment:
    def test_stable_load_does_not_flap(self):
        deployment, _ = make_deployment()
        records = [deployment.run_period() for _ in range(5)]
        assert deployment.migrations == 0
        assert all(not r.migrated for r in records)
        # Steady-state makespans are consistent.
        makespans = [r.makespan_s for r in records]
        assert max(makespans) < min(makespans) * 1.5

    def test_interference_triggers_migration(self):
        deployment, infrastructure = make_deployment(
            improvement_threshold=0.15)
        victim = deployment.placement.device_of("infer")
        records = run_with_interference(
            deployment, periods=6, interfere_at=2,
            interference_device=victim,
            interference_megaops=8000, interference_tasks=16)
        assert deployment.migrations >= 1
        migrated_record = next(r for r in records if r.migrated)
        # After migration, the heavy task left the flooded device.
        final = records[-1].placement
        assert final["infer"] != victim or \
            records[migrated_record.period].placement["infer"] != victim

    def test_migration_improves_post_interference_kpis(self):
        adaptive, _ = make_deployment(improvement_threshold=0.15)
        static, _ = make_deployment(improvement_threshold=10.0)  # never
        victim_a = adaptive.placement.device_of("infer")
        victim_s = static.placement.device_of("infer")
        run_with_interference(adaptive, periods=6, interfere_at=1,
                              interference_device=victim_a,
                              interference_megaops=8000,
                              interference_tasks=16)
        run_with_interference(static, periods=6, interfere_at=1,
                              interference_device=victim_s,
                              interference_megaops=8000,
                              interference_tasks=16)
        assert adaptive.migrations >= 1
        assert static.migrations == 0
        assert adaptive.mean_makespan(last=3) \
            < static.mean_makespan(last=3)

    def test_hysteresis_prevents_marginal_moves(self):
        deployment, infrastructure = make_deployment(
            improvement_threshold=0.95)
        victim = deployment.placement.device_of("infer")
        run_with_interference(deployment, periods=4, interfere_at=1,
                              interference_device=victim,
                              interference_megaops=500,
                              interference_tasks=2)
        # Tiny interference with a huge threshold: no migration.
        assert deployment.migrations == 0

    def test_history_records_periods(self):
        deployment, _ = make_deployment()
        deployment.run_period()
        deployment.run_period()
        assert [r.period for r in deployment.history] == [0, 1]
        assert all(r.makespan_s > 0 for r in deployment.history)

    def test_migration_cost_charged(self):
        deployment, infrastructure = make_deployment(
            improvement_threshold=0.05, migration_cost_s=0.5)
        victim = deployment.placement.device_of("infer")
        sim = infrastructure.sim
        before = sim.now
        run_with_interference(deployment, periods=3, interfere_at=0,
                              interference_device=victim,
                              interference_megaops=8000,
                              interference_tasks=16)
        if deployment.migrations:
            # Simulated time includes the migration penalty.
            elapsed = sim.now - before
            compute_time = sum(r.makespan_s for r in deployment.history)
            assert elapsed >= compute_time + 0.5 * deployment.migrations
