"""Tests for the horizontal autoscaler."""

import pytest

from repro.core.errors import ConfigurationError, NotFoundError
from repro.kube import Deployment, KubeCluster, Node, PodSpec, ResourceRequest
from repro.kube.autoscaler import HorizontalAutoscaler

GIB = 1024**3


def make(replicas=2, **kwargs):
    cluster = KubeCluster("c")
    cluster.add_node(Node("big", ResourceRequest(64000, 64 * GIB)))
    cluster.create_deployment(Deployment(
        "svc", PodSpec("svc", ResourceRequest(500, GIB // 4)),
        replicas=replicas))
    cluster.reconcile()
    metric = {"value": 0.6}
    scaler = HorizontalAutoscaler(cluster, "svc",
                                  metric_fn=lambda: metric["value"],
                                  target=0.6, min_replicas=1,
                                  max_replicas=8, **kwargs)
    return cluster, scaler, metric


class TestControlLaw:
    def test_within_tolerance_no_change(self):
        _, scaler, _ = make()
        assert scaler.desired_replicas(0.62, 4) == 4

    def test_scale_up_proportional(self):
        _, scaler, _ = make()
        # 4 replicas at 1.2 utilization, target 0.6 -> 8 replicas.
        assert scaler.desired_replicas(1.2, 4) == 8

    def test_scale_down_proportional(self):
        _, scaler, _ = make()
        assert scaler.desired_replicas(0.15, 4) == 1

    def test_bounds_respected(self):
        _, scaler, _ = make()
        assert scaler.desired_replicas(10.0, 4) == 8  # max
        assert scaler.desired_replicas(0.0001, 4) == 1  # min

    def test_invalid_config_rejected(self):
        cluster, _, _ = make()
        with pytest.raises(NotFoundError):
            HorizontalAutoscaler(cluster, "ghost", lambda: 0.5)
        with pytest.raises(ConfigurationError):
            HorizontalAutoscaler(cluster, "svc", lambda: 0.5, target=0)
        with pytest.raises(ConfigurationError):
            HorizontalAutoscaler(cluster, "svc", lambda: 0.5,
                                 min_replicas=5, max_replicas=2)


class TestClosedLoop:
    def test_load_spike_scales_up_and_pods_exist(self):
        cluster, scaler, metric = make(replicas=2)
        metric["value"] = 1.5  # 2.5x the target
        event = scaler.tick()
        assert event is not None
        assert event.to_replicas == 5
        assert len(cluster._deployment_pods("svc")) == 5

    def test_scale_down_waits_for_stabilization(self):
        cluster, scaler, metric = make(replicas=4,
                                       stabilization_ticks=3)
        metric["value"] = 1.2
        scaler.tick()  # scale up immediately (tick 1)
        metric["value"] = 0.1
        assert scaler.tick() is None  # tick 2: too soon to scale down
        assert scaler.tick() is None  # tick 3
        event = scaler.tick()  # tick 4: window elapsed
        assert event is not None
        assert event.to_replicas < event.from_replicas

    def test_steady_metric_no_events(self):
        cluster, scaler, metric = make(replicas=3)
        for _ in range(5):
            assert scaler.tick() is None
        assert scaler.events == []

    def test_events_recorded_in_order(self):
        cluster, scaler, metric = make(replicas=2,
                                       stabilization_ticks=0)
        metric["value"] = 1.3
        scaler.tick()
        metric["value"] = 0.6
        scaler.tick()
        metric["value"] = 0.05
        scaler.tick()
        ticks = [e.tick for e in scaler.events]
        assert ticks == sorted(ticks)
        assert scaler.events[0].to_replicas > 2
        assert scaler.events[-1].to_replicas == 1
