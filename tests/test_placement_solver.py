"""Tests for the anytime placement-solver API.

Covers the request/result contract (budgets, warm starts, stats,
deterministic serialization), the exact branch-and-bound backend
(optimality proofs against brute force, anytime behavior under node
budgets), the deadline-raced portfolio (never worse than any single
lane at equal budget, provenance, early optimality stop), the
latency-SLO feasibility fix in the one-shot heuristics, and the
deprecated ``place()`` shim.
"""

import itertools
import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError, OrchestrationError
from repro.continuum import (
    Simulator,
    Task,
    TaskRequirements,
    build_reference_infrastructure,
)
from repro.continuum.workload import Application
from repro.mirto.exact import ExactPlacement
from repro.mirto.placement import (
    AcoPlacement,
    FireflyPlacement,
    GreedyPlacement,
    Placement,
    PlacementConstraints,
    PlacementRequest,
    PsoPlacement,
    RandomPlacement,
    RoundRobinPlacement,
    SolveBudget,
    eligible_devices,
    make_strategy,
    placement_cost,
)
from repro.mirto.portfolio import PortfolioPlacement


def infra():
    return build_reference_infrastructure(Simulator())


def pipeline_app(n_tasks=4, latency_budget_s=10.0):
    app = Application("solver-pipe")
    reqs = TaskRequirements(latency_budget_s=latency_budget_s)
    for i in range(n_tasks):
        app.add_task(Task(f"t{i}", 200.0 + 130.0 * i,
                          input_bytes=50_000, output_bytes=20_000,
                          requirements=reqs))
    for i in range(n_tasks - 1):
        app.connect(f"t{i}", f"t{i + 1}", 30_000)
    return app


def request_for(app, infrastructure, **kwargs):
    return PlacementRequest(
        application=app, infrastructure=infrastructure,
        constraints=PlacementConstraints(source_device="mc-00-0"),
        **kwargs)


class TestSolveBudget:
    def test_defaults_are_unlimited(self):
        budget = SolveBudget()
        assert budget.unlimited
        assert budget.node_limit() is None

    def test_deadline_converts_to_nodes(self):
        budget = SolveBudget(deadline_s=0.050, node_cost_s=25e-6)
        assert budget.node_limit() == 2000

    def test_node_cap_and_deadline_take_min(self):
        budget = SolveBudget(max_nodes=100, deadline_s=1.0)
        assert budget.node_limit() == 100

    def test_invalid_budgets_rejected(self):
        with pytest.raises(ConfigurationError):
            SolveBudget(max_nodes=0)
        with pytest.raises(ConfigurationError):
            SolveBudget(deadline_s=-1.0)
        with pytest.raises(ConfigurationError):
            SolveBudget(node_cost_s=0.0)


class TestExactBackend:
    def test_matches_brute_force_minimum(self):
        infrastructure = infra()
        app = pipeline_app(3)
        constraints = PlacementConstraints(source_device="mc-00-0")
        result = ExactPlacement().solve(
            request_for(app, infrastructure))
        assert result.optimal
        options = [eligible_devices(t, infrastructure, constraints)
                   for t in app.tasks]
        brute = min(
            placement_cost(app, infrastructure,
                           {t.name: d.name for t, d in
                            zip(app.tasks, combo)},
                           source_device="mc-00-0")
            for combo in itertools.product(*options))
        assert result.cost == pytest.approx(brute, abs=1e-12)
        assert result.lower_bound <= result.cost + 1e-12

    def test_not_worse_than_any_metaheuristic(self):
        infrastructure = infra()
        app = pipeline_app(5)
        exact = ExactPlacement().solve(request_for(app, infrastructure))
        assert exact.optimal
        for cls in (PsoPlacement, AcoPlacement, FireflyPlacement):
            meta = cls(random.Random(5), iterations=10).solve(
                request_for(app, infrastructure))
            assert exact.cost <= meta.cost + 1e-12

    def test_budget_exhaustion_still_yields_incumbent(self):
        infrastructure = infra()
        app = pipeline_app(6)
        result = ExactPlacement().solve(request_for(
            app, infrastructure, budget=SolveBudget(max_nodes=1)))
        # The first depth-first dive always completes, so even a
        # one-node budget produces a feasible placement.
        assert set(result.placement.assignment) == \
            {t.name for t in app.tasks}
        assert result.stats[0].incumbents >= 1
        unbounded = ExactPlacement().solve(
            request_for(app, infrastructure))
        assert unbounded.cost <= result.cost + 1e-12

    def test_warm_start_never_hurts(self):
        infrastructure = infra()
        app = pipeline_app(4)
        cold = ExactPlacement().solve(request_for(app, infrastructure))
        warm = ExactPlacement().solve(request_for(
            app, infrastructure, warm_start=cold.placement))
        assert warm.cost <= cold.cost + 1e-12
        assert warm.optimal

    def test_incumbent_callback_costs_decrease(self):
        infrastructure = infra()
        app = pipeline_app(5)
        seen = []
        ExactPlacement().solve(request_for(
            app, infrastructure,
            on_incumbent=lambda p, c, b: seen.append((c, b))))
        assert seen
        costs = [c for c, _ in seen]
        assert costs == sorted(costs, reverse=True)
        assert all(b == "exact" for _, b in seen)

    def test_stats_recorded(self):
        infrastructure = infra()
        app = pipeline_app(4)
        result = ExactPlacement().solve(request_for(app, infrastructure))
        stats = result.stats[0]
        assert stats.backend == "exact"
        assert stats.nodes > 0
        assert stats.evaluations >= 1
        assert stats.proven_optimal
        payload = stats.to_payload()
        assert payload["backend"] == "exact"


class TestPortfolio:
    def test_beats_or_ties_every_single_lane(self):
        infrastructure = infra()
        app = pipeline_app(5)
        budget = SolveBudget(deadline_s=0.050)
        portfolio = PortfolioPlacement(seed=11, iterations=10)
        raced = portfolio.solve(request_for(app, infrastructure,
                                            budget=budget))
        assert raced.provenance in portfolio.backends
        for name in portfolio.backends:
            lane = portfolio.backend(name).solve(
                request_for(app, infrastructure, budget=budget))
            assert raced.cost <= lane.cost + 1e-12

    def test_proves_optimality_on_small_instances(self):
        infrastructure = infra()
        app = pipeline_app(4)
        raced = PortfolioPlacement(seed=3, iterations=8).solve(
            request_for(app, infrastructure,
                        budget=SolveBudget(deadline_s=0.050)))
        exact = ExactPlacement().solve(request_for(app, infrastructure))
        assert raced.optimal
        assert raced.cost == pytest.approx(exact.cost, abs=1e-12)

    def test_same_seed_same_budget_byte_identical(self):
        infrastructure = infra()
        app = pipeline_app(5)
        budget = SolveBudget(deadline_s=0.050)
        first = PortfolioPlacement(seed=7, iterations=10).solve(
            request_for(app, infrastructure, budget=budget))
        second = PortfolioPlacement(seed=7, iterations=10).solve(
            request_for(app, infrastructure, budget=budget))
        assert first.to_json() == second.to_json()

    def test_result_labels_and_stats_cover_all_lanes(self):
        infrastructure = infra()
        app = pipeline_app(4)
        portfolio = PortfolioPlacement(seed=1, iterations=6)
        result = portfolio.solve(request_for(
            app, infrastructure, budget=SolveBudget(deadline_s=0.050)))
        assert result.placement.strategy == "portfolio"
        assert {s.backend for s in result.stats} == \
            set(portfolio.backends)
        payload = result.to_payload()
        assert payload["provenance"] == result.provenance
        assert json.loads(result.to_json()) == payload

    def test_incumbent_events_published(self):
        infrastructure = infra()
        app = pipeline_app(4)
        events = []
        infrastructure.ctx.subscribe(
            "mirto.placement.incumbent",
            lambda topic, payload: events.append(payload))
        PortfolioPlacement(seed=2, iterations=6).solve(
            request_for(app, infrastructure,
                        budget=SolveBudget(deadline_s=0.050)))
        assert events
        assert all({"backend", "cost"} <= set(e) for e in events)
        costs = [e["cost"] for e in events]
        assert costs == sorted(costs, reverse=True)

    def test_unknown_backend_rejected(self):
        with pytest.raises(OrchestrationError):
            PortfolioPlacement(backends=("exact", "annealing"),
                               ).backend("annealing")
        with pytest.raises(OrchestrationError):
            PortfolioPlacement(backends=())


class TestLatencySloFeasibility:
    def _slo_app(self, budget_s):
        app = Application("slo")
        app.add_task(Task("tight", 5000.0, requirements=TaskRequirements(
            latency_budget_s=budget_s)))
        return app

    def test_eligible_devices_drop_too_slow_devices(self):
        infrastructure = infra()
        # 5000 Mops in 300 ms: only the cloud servers are fast enough
        # (per-core throughput; fmdc needs ~635 ms, edge even more).
        app = self._slo_app(0.30)
        devices = eligible_devices(app.task("tight"), infrastructure,
                                   PlacementConstraints())
        assert devices
        assert {d.name for d in devices} == {"cloud-00", "cloud-01"}
        for device in devices:
            fastest = max(device.operating_points.values(),
                          key=lambda op: op.perf_scale)
            assert device.estimate_duration(
                app.task("tight"), fastest.name) <= 0.30

    def test_oneshot_strategies_honor_slo(self):
        infrastructure = infra()
        app = self._slo_app(0.30)
        fast = {d.name for d in eligible_devices(
            app.task("tight"), infrastructure, PlacementConstraints())}
        for strategy in (GreedyPlacement(), RoundRobinPlacement(),
                         RandomPlacement(random.Random(4))):
            placement = strategy.solve(PlacementRequest(
                application=app, infrastructure=infrastructure,
                constraints=PlacementConstraints())).placement
            assert placement.assignment["tight"] in fast

    def test_impossible_slo_raises(self):
        infrastructure = infra()
        app = self._slo_app(1e-9)
        with pytest.raises(OrchestrationError):
            GreedyPlacement().solve(PlacementRequest(
                application=app, infrastructure=infrastructure,
                constraints=PlacementConstraints()))

    def test_unbudgeted_tasks_keep_all_devices(self):
        infrastructure = infra()
        app = Application("loose")
        app.add_task(Task("anything", 5000.0))
        devices = eligible_devices(app.task("anything"), infrastructure,
                                   PlacementConstraints())
        assert len(devices) == len(infrastructure.devices)


class TestDeprecatedShim:
    def test_place_warns_and_matches_solve(self):
        infrastructure = infra()
        app = pipeline_app(3)
        constraints = PlacementConstraints(source_device="mc-00-0")
        with pytest.warns(DeprecationWarning):
            shimmed = GreedyPlacement().place(app, infrastructure,
                                              constraints)
        solved = GreedyPlacement().solve(PlacementRequest(
            application=app, infrastructure=infrastructure,
            constraints=constraints)).placement
        assert shimmed.assignment == solved.assignment

    def test_swarm_shim_preserves_rng_stream(self):
        infrastructure = infra()
        app = pipeline_app(4)
        constraints = PlacementConstraints(source_device="mc-00-0")
        with pytest.warns(DeprecationWarning):
            shimmed = PsoPlacement(random.Random(9), iterations=8).place(
                app, infrastructure, constraints)
        solved = PsoPlacement(random.Random(9), iterations=8).solve(
            PlacementRequest(application=app,
                             infrastructure=infrastructure,
                             constraints=constraints)).placement
        assert shimmed.assignment == solved.assignment


def _random_instance(seed, n_tasks):
    rng = random.Random(seed)
    app = Application(f"prop-{seed}")
    reqs = TaskRequirements(latency_budget_s=30.0)
    for i in range(n_tasks):
        app.add_task(Task(f"t{i}", rng.uniform(100.0, 3000.0),
                          input_bytes=rng.randrange(10_000, 200_000),
                          output_bytes=rng.randrange(5_000, 100_000),
                          requirements=reqs))
    for i in range(1, n_tasks):
        pred = rng.randrange(0, i)
        app.connect(f"t{pred}", f"t{i}",
                    rng.randrange(1_000, 120_000))
    return app


class TestSolverProperties:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 10_000), n_tasks=st.integers(2, 5))
    def test_exact_lower_bounds_every_metaheuristic(self, seed,
                                                    n_tasks):
        infrastructure = infra()
        app = _random_instance(seed, n_tasks)
        exact = ExactPlacement().solve(request_for(app, infrastructure))
        assert exact.optimal
        for cls in (PsoPlacement, AcoPlacement):
            meta = cls(random.Random(seed), iterations=6).solve(
                request_for(app, infrastructure))
            assert exact.cost <= meta.cost + 1e-9

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_portfolio_never_worse_than_lanes(self, seed):
        infrastructure = infra()
        app = _random_instance(seed, 4)
        budget = SolveBudget(deadline_s=0.050)
        portfolio = PortfolioPlacement(seed=seed, iterations=6)
        raced = portfolio.solve(request_for(app, infrastructure,
                                            budget=budget))
        for name in portfolio.backends:
            lane = portfolio.backend(name).solve(
                request_for(app, infrastructure, budget=budget))
            assert raced.cost <= lane.cost + 1e-9

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10_000), n_tasks=st.integers(2, 5))
    def test_same_seed_byte_identical_results(self, seed, n_tasks):
        app = _random_instance(seed, n_tasks)
        budget = SolveBudget(max_nodes=500)
        runs = []
        for _ in range(2):
            infrastructure = infra()
            result = PortfolioPlacement(seed=seed, iterations=5).solve(
                request_for(app, infrastructure, budget=budget))
            runs.append(result.to_json())
        assert runs[0] == runs[1]


class TestMapeReplanning:
    def test_fault_triggers_placement_advice(self):
        from repro.mirto.engine import CognitiveEngine, EngineConfig
        from repro.dpe import ComponentModel, ScenarioModel
        engine = CognitiveEngine(EngineConfig(seed=5))
        scenario = ScenarioModel("replanned", latency_budget_s=5.0,
                                 min_security_level="low")
        scenario.add_component(ComponentModel("stage-a", 300,
                                              input_bytes=50_000))
        scenario.add_component(ComponentModel("stage-b", 900))
        scenario.connect("stage-a", "stage-b", 40_000)
        response = engine.deploy(scenario.to_service_template())
        assert response.ok, response.body
        solves = []
        engine.ctx.subscribe("mirto.placement.solve",
                             lambda topic, payload:
                             solves.append(payload))
        engine.ctx.publish("continuum.fault.fail", {
            "device": "cloud-01", "time_s": engine.ctx.now,
            "interrupted": 0})
        record = engine.mape_iterate(1)[0]
        suggested = [a for a in record.actions
                     if a.kind == "suggest-placement"]
        assert [a.component for a in suggested] == ["replanned"]
        assert solves and solves[0]["service"] == "replanned"
        assert solves[0]["provenance"] in \
            PortfolioPlacement.DEFAULT_BACKENDS
        key = "status/placement-advice/replanned"
        advice = engine.registry.kb.range(key)[key]
        assert set(advice["assignment"]) == {"stage-a", "stage-b"}
        # The advice warm-starts the next deploy of the same service.
        redeploy = engine.deploy(scenario.to_service_template())
        assert redeploy.ok, redeploy.body
