"""Tests for firefly optimization, gossip consensus, distributed LB."""

import math
import random

import networkx as nx
import pytest

from repro.core.errors import ConfigurationError
from repro.mirto.distributed import (
    DistributedLoadBalancer,
    GossipConsensus,
)
from repro.mirto.swarm import FireflyOptimizer


def ring(n=6):
    return nx.cycle_graph([f"site-{i}" for i in range(n)])


class TestFirefly:
    def test_minimizes_sphere(self):
        optimizer = FireflyOptimizer(3, random.Random(0), fireflies=15)
        best, value = optimizer.minimize(
            lambda x: sum(v * v for v in x), iterations=50)
        assert value < 0.05

    def test_minimizes_shifted(self):
        optimizer = FireflyOptimizer(2, random.Random(1), fireflies=15,
                                     bounds=(-2, 2))
        best, value = optimizer.minimize(
            lambda x: (x[0] - 0.5) ** 2 + (x[1] + 1.0) ** 2,
            iterations=60)
        assert best[0] == pytest.approx(0.5, abs=0.15)
        assert best[1] == pytest.approx(-1.0, abs=0.15)

    def test_respects_bounds(self):
        optimizer = FireflyOptimizer(3, random.Random(2), bounds=(0, 1))
        best, _ = optimizer.minimize(lambda x: -sum(x), iterations=30)
        assert all(0 <= v <= 1 for v in best)

    def test_trace_recorded(self):
        optimizer = FireflyOptimizer(2, random.Random(3))
        optimizer.minimize(lambda x: sum(v * v for v in x),
                           iterations=10)
        assert len(optimizer.trace.best_per_iteration) == 10

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            FireflyOptimizer(0, random.Random(0))
        with pytest.raises(ConfigurationError):
            FireflyOptimizer(2, random.Random(0), fireflies=1)
        with pytest.raises(ConfigurationError):
            FireflyOptimizer(2, random.Random(0), bounds=(1, -1))


class TestGossipConsensus:
    def test_converges_to_global_mean(self):
        gossip = GossipConsensus(ring(), random.Random(0))
        gossip.set_values({f"site-{i}": float(i * 10) for i in range(6)})
        mean = gossip.true_mean
        rounds = gossip.run_until(tolerance=0.01)
        assert rounds < 200
        for value in gossip.values.values():
            assert value == pytest.approx(mean, abs=0.01)

    def test_mean_is_conserved(self):
        gossip = GossipConsensus(ring(), random.Random(1))
        gossip.set_values({f"site-{i}": float(i) for i in range(6)})
        before = gossip.true_mean
        for _ in range(20):
            gossip.round()
        assert gossip.true_mean == pytest.approx(before)

    def test_denser_graph_converges_faster(self):
        sparse = GossipConsensus(ring(8), random.Random(2))
        dense = GossipConsensus(
            nx.complete_graph([f"site-{i}" for i in range(8)]),
            random.Random(2))
        values = {f"site-{i}": float(i * 5) for i in range(8)}
        sparse.set_values(dict(values))
        dense.set_values(dict(values))
        assert dense.run_until(0.05) <= sparse.run_until(0.05)

    def test_disconnected_graph_rejected(self):
        graph = nx.Graph()
        graph.add_edge("a", "b")
        graph.add_node("island")
        with pytest.raises(ConfigurationError):
            GossipConsensus(graph, random.Random(0))

    def test_missing_values_rejected(self):
        gossip = GossipConsensus(ring(), random.Random(0))
        with pytest.raises(ConfigurationError):
            gossip.set_values({"site-0": 1.0})


class TestDistributedLoadBalancer:
    def make(self, loads=None, capacities=None, n=4, seed=0):
        graph = nx.cycle_graph([f"site-{i}" for i in range(n)])
        balancer = DistributedLoadBalancer(graph, random.Random(seed))
        balancer.set_sites(
            capacities or {f"site-{i}": 10.0 for i in range(n)},
            loads or {f"site-{i}": (40.0 if i == 0 else 0.0)
                      for i in range(n)})
        return balancer

    def test_hotspot_spreads_out(self):
        balancer = self.make()
        initial = balancer.imbalance()
        rounds = balancer.balance(tolerance=0.05)
        assert balancer.imbalance() < initial / 10
        assert rounds < 300
        # Everyone ends near the mean utilization of 1.0.
        for utilization in balancer.utilizations().values():
            assert utilization == pytest.approx(1.0, abs=0.1)

    def test_total_load_conserved(self):
        balancer = self.make()
        before = sum(s.load for s in balancer.sites.values())
        for _ in range(50):
            balancer.round()
        after = sum(s.load for s in balancer.sites.values())
        assert after == pytest.approx(before)

    def test_heterogeneous_capacities_share_proportionally(self):
        balancer = self.make(
            capacities={"site-0": 40.0, "site-1": 10.0,
                        "site-2": 10.0, "site-3": 10.0},
            loads={"site-0": 0.0, "site-1": 35.0, "site-2": 0.0,
                   "site-3": 0.0})
        balancer.balance(tolerance=0.05)
        utils = balancer.utilizations()
        # Equal utilization means the big site carries ~4x the load.
        assert balancer.sites["site-0"].load \
            > balancer.sites["site-1"].load * 2

    def test_already_balanced_is_a_fixed_point(self):
        balancer = self.make(
            loads={f"site-{i}": 5.0 for i in range(4)})
        assert balancer.balance(tolerance=0.01) == 0

    def test_loads_never_negative(self):
        balancer = self.make()
        for _ in range(100):
            balancer.round()
            assert all(s.load >= -1e-9
                       for s in balancer.sites.values())

    def test_bad_configuration_rejected(self):
        graph = nx.path_graph(["a"])
        with pytest.raises(ConfigurationError):
            DistributedLoadBalancer(graph, random.Random(0))
        balancer = self.make()
        with pytest.raises(ConfigurationError):
            balancer.set_sites({"site-0": 0.0}, {"site-0": 1.0})
