"""Unit tests for the opt-in DES profiler."""

from repro.continuum.simulator import Simulator
from repro.obs import DesProfiler


def make_profiled_sim():
    sim = Simulator()
    profiler = DesProfiler()
    # Deterministic fake wall clock: 10 ns per read.
    ticks = [0]

    def fake_clock():
        ticks[0] += 10
        return ticks[0]

    profiler.clock = fake_clock
    profiler.install(sim)
    return sim, profiler


class TestInstall:
    def test_install_and_uninstall(self):
        sim = Simulator()
        profiler = DesProfiler().install(sim)
        assert sim._profiler is profiler
        profiler.uninstall(sim)
        assert sim._profiler is None

    def test_uninstall_foreign_profiler_is_noop(self):
        sim = Simulator()
        mine = DesProfiler().install(sim)
        DesProfiler().uninstall(sim)
        assert sim._profiler is mine

    def test_dark_by_default(self):
        sim = Simulator()
        sim.timeout(1.0)
        sim.run()
        assert sim._profiler is None


class TestAttribution:
    def test_bare_timeouts_attributed_to_kernel(self):
        sim, profiler = make_profiled_sim()
        for _ in range(3):
            sim.timeout(1.0)
        sim.run()
        assert profiler.rows["kernel:timeout"][0] == 3
        assert profiler.events_profiled == 3

    def test_process_events_attributed_by_name(self):
        sim, profiler = make_profiled_sim()

        def worker(s):
            yield s.timeout(1.0)
            yield s.timeout(2.0)

        sim.process(worker(sim), name="worker")
        sim.run()
        owners = set(profiler.rows)
        assert "process:worker" in owners
        assert profiler.events_profiled == sim.processed_events

    def test_sim_time_attributed_to_gap_closer(self):
        sim, profiler = make_profiled_sim()
        sim.timeout(5.0)
        sim.run()
        total_sim = sum(row[2] for row in profiler.rows.values())
        assert total_sim == 5.0

    def test_wall_time_accumulates(self):
        sim, profiler = make_profiled_sim()
        sim.timeout(1.0)
        sim.timeout(2.0)
        sim.run()
        # Fake clock advances 10 ns per read, two reads per event.
        assert profiler.rows["kernel:timeout"][1] == 2 * 10


class TestRunModes:
    def test_run_until_deadline_with_profiler(self):
        sim, profiler = make_profiled_sim()
        for delay in (1.0, 2.0, 50.0):
            sim.timeout(delay)
        sim.run(until=10.0)
        assert sim.now == 10.0
        assert profiler.rows["kernel:timeout"][0] == 2

    def test_step_with_profiler(self):
        sim, profiler = make_profiled_sim()
        sim.timeout(1.0)
        sim.step()
        assert profiler.events_profiled == 1

    def test_profiled_run_matches_unprofiled_schedule(self):
        def build(profiled):
            sim = Simulator()
            if profiled:
                DesProfiler().install(sim)
            order = []

            def worker(s, tag, delay):
                yield s.timeout(delay)
                order.append((tag, s.now))

            sim.process(worker(sim, "a", 2.0), name="a")
            sim.process(worker(sim, "b", 1.0), name="b")
            sim.run()
            return order, sim.now, sim.processed_events

        assert build(True) == build(False)


class TestPayload:
    def test_payload_sorted_and_shaped(self):
        sim, profiler = make_profiled_sim()

        def worker(s):
            yield s.timeout(1.0)

        sim.process(worker(sim), name="w")
        sim.timeout(0.5)
        sim.run()
        payload = profiler.to_payload()
        assert payload["events_profiled"] == profiler.events_profiled
        assert list(payload["rows"]) == sorted(payload["rows"])
        for row in payload["rows"].values():
            assert set(row) == {"events", "wall_ns", "sim_s"}

    def test_deterministic_fields_replay_identically(self):
        def run():
            sim, profiler = make_profiled_sim()

            def worker(s):
                yield s.timeout(1.0)
                yield s.timeout(3.0)

            sim.process(worker(sim), name="w")
            sim.timeout(2.0)
            sim.run()
            payload = profiler.to_payload()
            # Wall times are nondeterministic on a real clock; the
            # event counts and sim-time attribution are not.
            return {owner: (row["events"], row["sim_s"])
                    for owner, row in payload["rows"].items()}

        assert run() == run()
