"""Cross-layer acceptance test for the shared runtime spine.

One RuntimeContext wires the continuum infrastructure, the MIRTO
cognitive engine (MAPE loop), a kube control plane and an infrastructure
monitor. A fault injected mid-run on a deployed device must be observed
by all three consumers at the same simulated instant, land on one
causally ordered trace, and the whole scenario must replay
byte-identically from the same seed.
"""

from repro.continuum import build_reference_infrastructure
from repro.continuum.faults import FaultInjector
from repro.continuum.workload import KernelClass
from repro.dpe import ComponentModel, ScenarioModel
from repro.kube import KubeCluster, Node, PodSpec, ResourceRequest
from repro.mirto import CognitiveEngine, EngineConfig
from repro.monitoring import InfrastructureMonitor
from repro.runtime import RuntimeContext

FAULT_AT_S = 5.0


def _scenario():
    scenario = ScenarioModel("pipeline", latency_budget_s=0.5)
    scenario.add_component(ComponentModel(
        "decode", megaops=100, input_bytes=100_000))
    scenario.add_component(ComponentModel(
        "detect", megaops=1200, kernel=KernelClass.DSP, accelerable=True))
    scenario.connect("decode", "detect", 100_000)
    return scenario


def _run_scenario(seed: int):
    ctx = RuntimeContext(seed=seed)
    infrastructure = build_reference_infrastructure(ctx)
    engine = CognitiveEngine(EngineConfig(seed=seed),
                             infrastructure=infrastructure)
    # A kube cluster whose nodes mirror continuum devices, watching the
    # shared bus for device faults.
    target = "mc-00-0"
    cluster = KubeCluster("edge", ctx=ctx)
    cluster.add_node(Node(name=target,
                          capacity=ResourceRequest(4000, 8 * 2**30)))
    cluster.watch_device_faults()
    cluster.create_pod(PodSpec(name="svc",
                               request=ResourceRequest(500, 2**20)))
    assert cluster.reconcile() == 1
    # An independent monitor on the same context.
    monitor = InfrastructureMonitor("site", ctx=ctx)
    monitor.watch_device_faults()

    # Deploy through the full MIRTO path (publishes mirto.deploy.placed).
    response = engine.deploy(_scenario().to_service_template(),
                             strategy="greedy")
    assert response.ok, response.body

    # Fail the device mid-run, at an exact simulated instant.
    injector = FaultInjector(engine.infrastructure)
    start = ctx.now

    def fault_process():
        yield ctx.sim.timeout(FAULT_AT_S)
        injector.inject_now(target)

    ctx.sim.process(fault_process())
    ctx.run()
    fault_time = start + FAULT_AT_S

    # The next MAPE cycle reacts to the externally observed fault.
    record = engine.mape_iterate(1)[0]
    return {
        "ctx": ctx,
        "engine": engine,
        "cluster": cluster,
        "monitor": monitor,
        "injector": injector,
        "target": target,
        "fault_time": fault_time,
        "mape_record": record,
    }


def _remediate(run):
    """Repair and redeploy inside the MAPE cycle's causal scope.

    resume() makes the repair, the placement re-solve and the kube
    reschedule/bind all attach under the fault's trace id.
    """
    ctx = run["ctx"]
    with ctx.tracer.resume(run["mape_record"].span_context):
        run["injector"].repair_now(run["target"])
        retry = run["engine"].deploy(_scenario().to_service_template(),
                                     strategy="greedy")
        assert retry.ok, retry.body
        run["cluster"].create_pod(
            PodSpec(name="svc-retry",
                    request=ResourceRequest(500, 2**20)))
        # Both the evicted original pod and the retry pod land.
        assert run["cluster"].reconcile() == 2
    return run


class TestCrossLayerFaultVisibility:
    def setup_method(self):
        self.run = _run_scenario(seed=42)

    def test_kube_evicts_at_fault_time(self):
        cluster = self.run["cluster"]
        assert not cluster.node(self.run["target"]).ready
        evictions = [e for e in cluster.events if e.kind == "PodEvicted"]
        assert len(evictions) == 1
        assert evictions[0].time_s == self.run["fault_time"]

    def test_monitor_records_at_fault_time(self):
        series = self.run["monitor"].series[
            f"{self.run['target']}.failed"]
        assert series.samples[-1] == (self.run["fault_time"], 1.0)

    def test_mape_observes_and_reacts(self):
        engine = self.run["engine"]
        assert (self.run["fault_time"], self.run["target"], "fail") in \
            engine.mape.fault_observations
        record = self.run["mape_record"]
        fault_triggers = [t for t in record.triggers if t.kind == "fault"]
        assert [t.component for t in fault_triggers] == \
            [self.run["target"]]
        assert any(a.kind == "flag-reallocation"
                   and a.component == self.run["target"]
                   for a in record.actions)

    def test_single_causally_ordered_trace(self):
        trace = self.run["ctx"].trace
        at_fault = {r.topic for r in trace.at_time(self.run["fault_time"])}
        assert "continuum.fault.fail" in at_fault
        assert "kube.edge.PodEvicted" in at_fault
        # The full scenario is on one trace: infrastructure build,
        # placement decision, fault, and MAPE phases.
        topics = {r.topic for r in trace}
        assert "continuum.infra.device-added" in topics
        assert "mirto.deploy.placed" in topics
        assert {"mirto.mape.sense", "mirto.mape.analyze",
                "mirto.mape.plan", "mirto.mape.execute"} <= topics
        # seq strictly increasing, time non-decreasing.
        records = list(trace)
        assert [r.seq for r in records] == \
            sorted(r.seq for r in records)
        assert all(a.time_s <= b.time_s
                   for a, b in zip(records, records[1:]))


class TestCausalSpanTree:
    """One injected fault must yield one span tree across all layers."""

    def setup_method(self):
        self.run = _remediate(_run_scenario(seed=42))
        spans = [r.payload for r in self.run["ctx"].trace
                 if r.topic == "obs.span"]
        roots = [s for s in spans
                 if s["name"] == "continuum.fault.inject"]
        assert len(roots) == 1
        self.root = roots[0]
        self.spans = [s for s in spans
                      if s["trace_id"] == self.root["trace_id"]]

    def test_fault_trace_spans_all_layers(self):
        names = {s["name"] for s in self.spans}
        # continuum fault -> kube evict -> MAPE phases -> repair ->
        # placement -> kube bind, all under one trace id.
        assert {"continuum.fault.inject", "kube.evict",
                "mirto.mape.cycle", "mirto.mape.sense",
                "mirto.mape.analyze", "mirto.mape.plan",
                "mirto.mape.execute", "continuum.fault.repair",
                "mirto.placement.solve", "mirto.placement.execute",
                "kube.schedule", "kube.bind"} <= names
        assert {"continuum", "mirto", "kube"} <= \
            {s["layer"] for s in self.spans}

    def test_every_span_descends_from_the_fault(self):
        by_id = {s["span_id"]: s for s in self.spans}

        def ancestor_root(span):
            while span["parent_id"] is not None:
                span = by_id[span["parent_id"]]
            return span

        assert self.root["parent_id"] is None
        for span in self.spans:
            assert ancestor_root(span) is self.root

    def test_mape_cycle_is_child_of_the_inject(self):
        cycle = [s for s in self.spans
                 if s["name"] == "mirto.mape.cycle"][0]
        assert cycle["parent_id"] == self.root["span_id"]
        phases = [s for s in self.spans
                  if s["name"].startswith("mirto.mape.")
                  and s["name"] != "mirto.mape.cycle"]
        assert {p["parent_id"] for p in phases} == {cycle["span_id"]}

    def test_eviction_is_inside_the_inject(self):
        evict = [s for s in self.spans if s["name"] == "kube.evict"][0]
        assert evict["parent_id"] == self.root["span_id"]

    def test_deploy_spans_are_outside_the_fault_trace(self):
        # The initial deploy (before the fault) must NOT share the
        # fault's trace id — only remediation work attaches to it.
        trace = self.run["ctx"].trace
        deploys = [r.payload for r in trace
                   if r.topic == "obs.span"
                   and r.payload["name"] == "mirto.deploy"]
        assert len(deploys) == 2  # initial + remediation redeploy
        trace_ids = {d["trace_id"] for d in deploys}
        assert self.root["trace_id"] in trace_ids
        assert len(trace_ids) == 2

    def test_publishes_carry_the_fault_envelope(self):
        trace = self.run["ctx"].trace
        fault_records = [r for r in trace
                         if r.topic == "continuum.fault.fail"]
        assert fault_records[0].span is not None
        assert fault_records[0].span["trace_id"] == \
            self.root["trace_id"]


class TestDeterministicReplay:
    def test_same_seed_byte_identical_trace(self):
        first = _run_scenario(seed=42)["ctx"].trace.to_jsonl()
        second = _run_scenario(seed=42)["ctx"].trace.to_jsonl()
        assert first == second

    def test_same_seed_byte_identical_spans_and_metrics(self):
        def observed_run():
            run = _remediate(_run_scenario(seed=42))
            ctx = run["ctx"]
            ctx.snapshot_observability()
            spans = "\n".join(
                r.to_json() for r in ctx.trace if r.topic == "obs.span")
            return spans, ctx.metrics.render(), ctx.trace.to_jsonl()

        first = observed_run()
        second = observed_run()
        assert first[0] == second[0]  # span dump, ids included
        assert first[1] == second[1]  # metrics exposition
        assert first[2] == second[2]  # whole trace
