"""Tests for the design-space exploration engine (mocasin analogue)."""

import random

import pytest

from repro.core.errors import ConfigurationError, ValidationError
from repro.continuum.workload import Application, KernelClass, Task
from repro.dpe.dse import (
    AnnealingExplorer,
    EvaluationResult,
    ExhaustiveExplorer,
    GeneticExplorer,
    Mapping,
    MappingEvaluator,
    PlatformModel,
    ProcessorModel,
    export_operating_points,
    pareto_front,
)


def small_platform():
    return PlatformModel(
        name="p",
        processors=(
            ProcessorModel("big", "cpu", gops=100.0, busy_power_w=50.0,
                           idle_power_w=10.0),
            ProcessorModel("little", "cpu", gops=10.0, busy_power_w=5.0,
                           idle_power_w=1.0),
            ProcessorModel("fpga", "fpga", gops=5.0, busy_power_w=8.0,
                           idle_power_w=2.0,
                           accel_kernels={KernelClass.DSP: 10.0}),
        ),
        interconnect_latency_s=1e-4,
        interconnect_bw_bps=1e9,
    )


def chain_app(n=3, megaops=1000):
    app = Application("chain")
    prev = None
    for i in range(n):
        app.add_task(Task(f"t{i}", megaops=megaops,
                          kernel=KernelClass.DSP if i == 1
                          else KernelClass.GENERAL))
        if prev is not None:
            app.connect(prev, f"t{i}", bytes_transferred=10_000)
        prev = f"t{i}"
    return app


class TestPlatformModel:
    def test_duplicate_processor_names_rejected(self):
        with pytest.raises(ConfigurationError):
            PlatformModel("p", (
                ProcessorModel("a", "cpu", 1, 2, 1),
                ProcessorModel("a", "cpu", 1, 2, 1)))

    def test_empty_platform_rejected(self):
        with pytest.raises(ConfigurationError):
            PlatformModel("p", ())

    def test_accelerated_kernel_faster(self):
        fpga = small_platform().processor("fpga")
        assert fpga.time_for(1000, KernelClass.DSP) \
            < fpga.time_for(1000, KernelClass.GENERAL)

    def test_comm_time_model(self):
        platform = small_platform()
        assert platform.comm_time(0) == pytest.approx(1e-4)
        assert platform.comm_time(1_000_000) \
            == pytest.approx(1e-4 + 8e6 / 1e9)


class TestEvaluator:
    def test_all_on_big_is_fast(self):
        app = chain_app()
        evaluator = MappingEvaluator(app, small_platform())
        all_big = Mapping.of({t.name: "big" for t in app.tasks})
        all_little = Mapping.of({t.name: "little" for t in app.tasks})
        assert evaluator.evaluate(all_big).latency_s \
            < evaluator.evaluate(all_little).latency_s

    def test_cross_processor_edges_pay_comm(self):
        app = chain_app(2)
        evaluator = MappingEvaluator(app, small_platform())
        same = evaluator.evaluate(Mapping.of({"t0": "big", "t1": "big"}))
        split = evaluator.evaluate(Mapping.of({"t0": "big",
                                               "t1": "little"}))
        # t1 is slower on little AND pays communication.
        assert split.latency_s > same.latency_s

    def test_dsp_task_benefits_from_fpga(self):
        app = chain_app()
        evaluator = MappingEvaluator(app, small_platform())
        on_little = evaluator.evaluate(Mapping.of(
            {"t0": "little", "t1": "little", "t2": "little"}))
        dsp_on_fpga = evaluator.evaluate(Mapping.of(
            {"t0": "little", "t1": "fpga", "t2": "little"}))
        assert dsp_on_fpga.latency_s < on_little.latency_s

    def test_incomplete_mapping_rejected(self):
        app = chain_app()
        evaluator = MappingEvaluator(app, small_platform())
        with pytest.raises(ValidationError):
            evaluator.evaluate(Mapping.of({"t0": "big"}))

    def test_parallel_tasks_overlap(self):
        app = Application("fork")
        app.add_task(Task("src", megaops=10))
        app.add_task(Task("a", megaops=1000))
        app.add_task(Task("b", megaops=1000))
        app.connect("src", "a")
        app.connect("src", "b")
        evaluator = MappingEvaluator(app, small_platform())
        parallel = evaluator.evaluate(Mapping.of(
            {"src": "big", "a": "big", "b": "little"}))
        serial = evaluator.evaluate(Mapping.of(
            {"src": "big", "a": "little", "b": "little"}))
        assert parallel.latency_s < serial.latency_s

    def test_evaluation_counter(self):
        app = chain_app()
        evaluator = MappingEvaluator(app, small_platform())
        evaluator.evaluate(Mapping.of({t.name: "big" for t in app.tasks}))
        assert evaluator.evaluations == 1


class TestExplorers:
    def test_exhaustive_finds_optimum(self):
        app = chain_app(3)
        evaluator = MappingEvaluator(app, small_platform())
        results = ExhaustiveExplorer(evaluator).explore()
        assert len(results) == 27
        best = min(results, key=lambda r: r.latency_s)
        # GA should find something at least as good as random; the
        # exhaustive optimum is the reference for the next tests.
        assert best.latency_s > 0

    def test_exhaustive_space_limit(self):
        app = chain_app(12)
        evaluator = MappingEvaluator(app, small_platform())
        with pytest.raises(ConfigurationError):
            ExhaustiveExplorer(evaluator, limit=100).explore()

    def test_ga_reaches_near_optimum(self):
        app = chain_app(3)
        evaluator = MappingEvaluator(app, small_platform())
        optimum = min(ExhaustiveExplorer(evaluator).explore(),
                      key=lambda r: r.latency_s).latency_s
        ga_results = GeneticExplorer(
            evaluator, random.Random(0), population=20,
            generations=20).explore()
        ga_best = min(r.latency_s for r in ga_results)
        assert ga_best <= optimum * 1.05

    def test_annealing_improves_over_start(self):
        app = chain_app(4)
        evaluator = MappingEvaluator(app, small_platform())
        explorer = AnnealingExplorer(evaluator, random.Random(1),
                                     iterations=300)
        results = explorer.explore()
        assert min(r.latency_s for r in results) \
            <= results[0].latency_s

    def test_objective_selection(self):
        app = chain_app(3)
        evaluator = MappingEvaluator(app, small_platform())
        energy_ga = GeneticExplorer(evaluator, random.Random(2),
                                    population=16, generations=15,
                                    objective="energy").explore()
        latency_ga = GeneticExplorer(evaluator, random.Random(2),
                                     population=16, generations=15,
                                     objective="latency").explore()
        assert min(r.energy_j for r in energy_ga) \
            <= min(r.energy_j for r in latency_ga) * 1.2

    def test_unknown_objective_rejected(self):
        app = chain_app(2)
        evaluator = MappingEvaluator(app, small_platform())
        with pytest.raises(ConfigurationError):
            GeneticExplorer(evaluator, random.Random(0),
                            objective="vibes")


class TestPareto:
    def test_front_is_non_dominated(self):
        app = chain_app(3)
        evaluator = MappingEvaluator(app, small_platform())
        results = ExhaustiveExplorer(evaluator).explore()
        front = pareto_front(results)
        assert front
        for a in front:
            assert not any(b.dominates(a) for b in results)

    def test_front_sorted_by_latency(self):
        app = chain_app(3)
        evaluator = MappingEvaluator(app, small_platform())
        front = pareto_front(ExhaustiveExplorer(evaluator).explore())
        latencies = [r.latency_s for r in front]
        assert latencies == sorted(latencies)
        # Along the front, lower latency costs more energy.
        energies = [r.energy_j for r in front]
        assert energies == sorted(energies, reverse=True)

    def test_dominates_semantics(self):
        m = Mapping.of({"t": "p"})
        a = EvaluationResult(m, 1.0, 1.0)
        b = EvaluationResult(m, 2.0, 2.0)
        c = EvaluationResult(m, 0.5, 3.0)
        assert a.dominates(b)
        assert not b.dominates(a)
        assert not a.dominates(c) and not c.dominates(a)


class TestOperatingPointExport:
    def test_export_shape(self):
        app = chain_app(3)
        evaluator = MappingEvaluator(app, small_platform())
        points = export_operating_points(
            ExhaustiveExplorer(evaluator).explore(), max_points=3)
        assert 1 <= len(points) <= 3
        for point in points:
            assert set(point) == {"name", "latency_s", "energy_j",
                                  "mapping"}
            assert set(point["mapping"]) == {"t0", "t1", "t2"}

    def test_points_span_tradeoff(self):
        app = chain_app(3)
        evaluator = MappingEvaluator(app, small_platform())
        points = export_operating_points(
            ExhaustiveExplorer(evaluator).explore(), max_points=5)
        if len(points) >= 2:
            assert points[0]["latency_s"] < points[-1]["latency_s"]
            assert points[0]["energy_j"] > points[-1]["energy_j"]
