"""Tests for ADT synthesis, FREVO evolution, HLS/MDC, ONNX flow and the
full three-step DPE pipeline."""

import random

import numpy as np
import pytest

from repro.core.errors import CompilationError, ValidationError
from repro.continuum.workload import KernelClass, PrivacyClass
from repro.dpe import (
    AttackDefenceTree,
    AttackNode,
    ComponentModel,
    Defence,
    DesignFlow,
    OnnxModel,
    OnnxNode,
    Refinement,
    RuleEvolver,
    ScenarioModel,
    SwarmRule,
    compose,
    countermeasure_snippets,
    estimate_kpis,
    import_onnx,
    lower_to_hardware,
    reference_mlp,
    synthesize,
    synthesize_countermeasures,
)
from repro.dpe.mlir import (
    Actor,
    Builder,
    DataflowGraph,
    F32,
    Interpreter,
    Module,
)
from repro.tosca import CsarArchive, ToscaValidator


def sample_adt():
    root = AttackNode("compromise-patient-data", Refinement.OR)
    eavesdrop = root.add_child(
        AttackNode("eavesdrop-channel", probability=0.6, attack_cost=5))
    tamper_chain = root.add_child(AttackNode("tamper", Refinement.AND))
    access = tamper_chain.add_child(
        AttackNode("gain-access", probability=0.4, attack_cost=20))
    modify = tamper_chain.add_child(
        AttackNode("modify-records", probability=0.7, attack_cost=10))
    eavesdrop.add_defence(Defence("encrypt", 0.05, 3.0, "encrypt-channel"))
    access.add_defence(Defence("rbac", 0.3, 2.0, "access-control"))
    modify.add_defence(Defence("integrity", 0.1, 2.5, "integrity-check"))
    return AttackDefenceTree(root)


class TestAdt:
    def test_or_probability(self):
        tree = sample_adt()
        # P(or) = 1 - (1-0.6)(1-0.28); AND child = 0.4*0.7 = 0.28
        assert tree.success_probability() == pytest.approx(
            1 - 0.4 * 0.72)

    def test_defences_reduce_probability(self):
        tree = sample_adt()
        baseline = tree.success_probability()
        defended = tree.success_probability({"encrypt"})
        assert defended < baseline

    def test_attack_cost_cheapest_path(self):
        tree = sample_adt()
        # OR picks cheapest: eavesdrop at 5 vs AND(20+10)=30.
        assert tree.attack_cost() == 5

    def test_synthesis_respects_budget(self):
        tree = sample_adt()
        result = synthesize_countermeasures(tree, budget=3.0)
        assert result.total_cost <= 3.0
        assert result.residual_probability < result.baseline_probability

    def test_bigger_budget_never_worse(self):
        tree = sample_adt()
        small = synthesize_countermeasures(tree, budget=3.0)
        large = synthesize_countermeasures(tree, budget=10.0)
        assert large.residual_probability <= small.residual_probability

    def test_risk_reduction_metric(self):
        tree = sample_adt()
        result = synthesize_countermeasures(tree, budget=10.0)
        assert 0 < result.risk_reduction <= 1

    def test_snippets_follow_security_level(self):
        tree = sample_adt()
        result = synthesize_countermeasures(tree, budget=10.0)
        low = countermeasure_snippets(result, "low")
        high = countermeasure_snippets(result, "high")
        assert len(low) == len(high) == len(result.selected)
        assert any("ASCON" in s for s in low)
        assert any("AES-256" in s or "SHA-512" in s for s in high)

    def test_leaf_probability_validated(self):
        with pytest.raises(ValidationError):
            AttackNode("bad", probability=1.5)

    def test_leaf_cannot_have_children(self):
        leaf = AttackNode("leaf", probability=0.5)
        with pytest.raises(ValidationError):
            leaf.add_child(AttackNode("child", probability=0.1))

    def test_mitigation_range_validated(self):
        with pytest.raises(ValidationError):
            Defence("d", mitigation=2.0, cost=1.0,
                    primitive="encrypt-channel")


class TestFrevo:
    def test_evolution_improves_fitness(self):
        target = SwarmRule(0.5, 0.8, 0.2, 0.9, 0.05)

        def fitness(rule):
            return -sum(abs(a - b) for a, b in
                        zip(rule.as_vector(), target.as_vector()))

        evolver = RuleEvolver(fitness, random.Random(0), generations=15)
        best, best_fitness = evolver.evolve()
        assert best_fitness > evolver.history[0].best_fitness - 1e-9
        assert best_fitness > -1.0  # reasonably close to target

    def test_history_recorded(self):
        evolver = RuleEvolver(lambda r: 0.0, random.Random(0),
                              generations=5)
        evolver.evolve()
        assert len(evolver.history) == 5

    def test_best_fitness_monotonic(self):
        evolver = RuleEvolver(
            lambda r: -abs(r.utilization_weight),
            random.Random(1), generations=10)
        evolver.evolve()
        fitnesses = [rec.best_fitness for rec in evolver.history]
        assert all(b >= a - 1e-12 for a, b in zip(fitnesses,
                                                  fitnesses[1:]))

    def test_rule_vector_roundtrip(self):
        rule = SwarmRule(0.1, 0.2, 0.3, 0.4, 0.05)
        assert SwarmRule.from_vector(rule.as_vector()) == rule

    def test_exploration_clamped(self):
        rule = SwarmRule.from_vector([0, 0, 0, 0, 5.0])
        assert rule.exploration == 1.0

    def test_invalid_population(self):
        from repro.core.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            RuleEvolver(lambda r: 0.0, random.Random(0), mu=4, lam=2)


class TestHlsAndMdc:
    def scalar_module(self):
        module = Module("m")
        for name, op in (("fir", "arith.mulf"), ("iir", "arith.addf")):
            builder = Builder(module, name, [F32, F32])
            out = builder.op(op, [builder.args[0], builder.args[1]], [F32])
            builder.ret([out.result()])
        return module

    def test_synthesize_produces_verilog(self):
        module = self.scalar_module()
        result = synthesize(module, "fir")
        assert "module fir" in result.verilog
        assert result.resources.luts > 0
        assert result.latency_s() > 0
        assert result.throughput_per_s() > 0

    def test_no_cost_model_rejected(self):
        module = Module("m")
        builder = Builder(module, "odd", [F32])
        builder.op("dfg.push", [builder.args[0]], [])
        builder.op("cgra.config", [], [], {"placements": []})
        builder.ret([])
        # dfg/cgra ops are skipped, so this synthesizes fine.
        assert synthesize(module, "odd").latency_cycles >= 1

    def test_mdc_shares_common_actors(self):
        module = self.scalar_module()
        g1 = DataflowGraph("cfg-a", module)
        g1.add_actor(Actor("x", "fir", (1, 1), (1,)))
        g1.add_actor(Actor("y", "iir", (1, 1), (1,)))
        g2 = DataflowGraph("cfg-b", module)
        g2.add_actor(Actor("x", "fir", (1, 1), (1,)))
        accelerator = compose(module, [g1, g2])
        # 'fir' appears in both graphs but is instantiated once.
        assert len(accelerator.shared_actors) == 2
        assert accelerator.sharing_gain > 0
        assert accelerator.resources.luts \
            < accelerator.resources_unshared.luts

    def test_mdc_bitstreams_differ_per_configuration(self):
        module = self.scalar_module()
        g1 = DataflowGraph("a", module)
        g1.add_actor(Actor("x", "fir", (1, 1), (1,)))
        g2 = DataflowGraph("b", module)
        g2.add_actor(Actor("x", "iir", (1, 1), (1,)))
        accelerator = compose(module, [g1, g2])
        bit_a = accelerator.bitstream("a")
        bit_b = accelerator.bitstream("b")
        assert bit_a != bit_b
        assert bit_a.startswith(b"MDCB")
        assert accelerator.bitstream("a") == bit_a  # deterministic

    def test_mdc_unknown_configuration(self):
        module = self.scalar_module()
        g1 = DataflowGraph("a", module)
        g1.add_actor(Actor("x", "fir", (1, 1), (1,)))
        accelerator = compose(module, [g1])
        with pytest.raises(CompilationError):
            accelerator.bitstream("ghost")

    def test_mdc_empty_rejected(self):
        with pytest.raises(CompilationError):
            compose(Module("m"), [])


class TestOnnxFlow:
    def test_import_matches_numpy(self):
        rng = np.random.default_rng(1)
        model = reference_mlp(rng)
        module = Module("nn")
        func = import_onnx(model, module)
        x = rng.normal(0, 1, (1, 8))
        (result,) = Interpreter(module).run(func, x)
        h = np.maximum(x @ model.initializers["w1"]
                       + model.initializers["b1"], 0)
        expected = h @ model.initializers["w2"] + model.initializers["b2"]
        np.testing.assert_allclose(result, expected)

    def test_shape_inference_catches_mismatch(self):
        model = OnnxModel(
            name="bad", input_name="x", input_shape=(1, 4),
            output_name="y",
            nodes=[OnnxNode("Gemm", ["x", "w"], ["y"])],
            initializers={"w": np.zeros((5, 2))})
        with pytest.raises(CompilationError, match="shape mismatch"):
            model.infer_shapes()

    def test_unsupported_op_rejected(self):
        with pytest.raises(CompilationError):
            OnnxNode("Conv", ["x"], ["y"])

    def test_lower_to_fpga(self):
        rng = np.random.default_rng(2)
        model = reference_mlp(rng)
        module = Module("nn")
        func = import_onnx(model, module)
        deployment = lower_to_hardware(module, func,
                                       rng.normal(0, 1, (1, 8)),
                                       target="fpga")
        assert deployment.artifact["kind"] == "hls"
        assert deployment.artifact["luts"] > 0
        assert deployment.meets_tolerance(0.2)

    def test_unknown_target_rejected(self):
        rng = np.random.default_rng(3)
        model = reference_mlp(rng)
        module = Module("nn")
        func = import_onnx(model, module)
        with pytest.raises(CompilationError):
            lower_to_hardware(module, func, rng.normal(0, 1, (1, 8)),
                              target="asic")


def telerehab_scenario():
    scenario = ScenarioModel("telerehab", latency_budget_s=0.5,
                             min_security_level="high")
    scenario.add_component(ComponentModel(
        "pose", 500, input_bytes=200_000, kernel=KernelClass.NEURAL,
        accelerable=True, privacy=PrivacyClass.RAW_PERSONAL))
    scenario.add_component(ComponentModel(
        "assess", 2000, kernel=KernelClass.ANALYTICS,
        privacy=PrivacyClass.AGGREGATED))
    scenario.add_component(ComponentModel("feedback", 100))
    scenario.connect("pose", "assess", 50_000)
    scenario.connect("assess", "feedback", 1_000)
    return scenario


class TestScenarioModel:
    def test_duplicate_component_rejected(self):
        scenario = telerehab_scenario()
        with pytest.raises(ValidationError):
            scenario.add_component(ComponentModel("pose", 1))

    def test_unknown_edge_endpoint_rejected(self):
        scenario = telerehab_scenario()
        with pytest.raises(ValidationError):
            scenario.connect("pose", "ghost")

    def test_to_application(self):
        app = telerehab_scenario().to_application()
        assert len(app) == 3
        assert app.task("pose").kernel == KernelClass.NEURAL
        assert app.task("pose").requirements.privacy \
            == PrivacyClass.RAW_PERSONAL

    def test_service_template_valid(self):
        service = telerehab_scenario().to_service_template()
        assert ToscaValidator().check(service) == []

    def test_privacy_policy_generated(self):
        service = telerehab_scenario().to_service_template()
        privacy = service.policies_of_type("myrtus.policies.Privacy")
        by_target = {p.targets[0]: p for p in privacy}
        assert by_target["pose"].properties["max_layer"] == "edge"
        assert by_target["assess"].properties["max_layer"] == "fog"

    def test_accelerable_becomes_accelerated_kernel(self):
        service = telerehab_scenario().to_service_template()
        assert service.node_templates["pose"].type \
            == "myrtus.nodes.AcceleratedKernel"
        assert service.node_templates["assess"].type \
            == "myrtus.nodes.Container"


class TestDesignFlow:
    def test_kpi_estimation(self):
        estimate = estimate_kpis(telerehab_scenario(), seed=0)
        assert estimate.latency_s > 0
        assert estimate.energy_j > 0
        assert estimate.bottleneck_component == "assess"

    def test_full_pipeline(self):
        spec = DesignFlow(seed=0).run(telerehab_scenario(), sample_adt(),
                                      defence_budget=8.0)
        # Step 1 artifacts.
        assert ToscaValidator().check(spec.service) == []
        assert spec.kpi_estimate.latency_s > 0
        assert spec.countermeasures
        # Step 3 artifacts.
        assert spec.operating_points
        inventory = spec.artifact_inventory
        assert "bitstreams/pose.bit" in inventory
        assert "verilog/pose.v" in inventory
        assert "meta/operating-points.json" in inventory
        assert "security/countermeasures.txt" in inventory

    def test_csar_roundtrips(self):
        spec = DesignFlow(seed=0).run(telerehab_scenario())
        archive = CsarArchive.from_bytes(spec.csar_bytes)
        assert archive.service.name == "telerehab"
        assert "meta/operating-points.json" in archive.artifacts

    def test_operating_points_cover_tradeoff(self):
        spec = DesignFlow(seed=1).run(telerehab_scenario())
        points = spec.operating_points
        assert all(p["latency_s"] > 0 for p in points)
        if len(points) >= 2:
            assert points[0]["latency_s"] <= points[-1]["latency_s"]

    def test_flow_without_adt(self):
        spec = DesignFlow(seed=0).run(telerehab_scenario())
        assert spec.countermeasures == []
        assert spec.adt_result is None
