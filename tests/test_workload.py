"""Unit tests for the task/application workload model."""

import random

import pytest

from repro.core.errors import ValidationError
from repro.continuum.workload import (
    Application,
    KernelClass,
    PoissonArrivals,
    PrivacyClass,
    Task,
    TaskRequirements,
)


def diamond_app() -> Application:
    app = Application("diamond")
    app.add_task(Task("src", megaops=10))
    app.add_task(Task("left", megaops=20))
    app.add_task(Task("right", megaops=30))
    app.add_task(Task("sink", megaops=5))
    app.connect("src", "left", bytes_transferred=1000)
    app.connect("src", "right", bytes_transferred=2000)
    app.connect("left", "sink")
    app.connect("right", "sink")
    return app


class TestTask:
    def test_rejects_negative_megaops(self):
        with pytest.raises(ValidationError):
            Task("t", megaops=-1)

    def test_rejects_negative_data(self):
        with pytest.raises(ValidationError):
            Task("t", megaops=1, input_bytes=-1)

    def test_rejects_nonpositive_latency_budget(self):
        with pytest.raises(ValidationError):
            TaskRequirements(latency_budget_s=0)

    def test_scaled_copy(self):
        t = Task("t", megaops=10, input_bytes=100, output_bytes=50)
        s = t.scaled(2.0)
        assert s.megaops == 20
        assert s.input_bytes == 200
        assert s.output_bytes == 100
        assert t.megaops == 10  # original untouched

    def test_defaults(self):
        t = Task("t", megaops=1)
        assert t.kernel == KernelClass.GENERAL
        assert t.requirements.privacy == PrivacyClass.PUBLIC


class TestApplication:
    def test_duplicate_task_rejected(self):
        app = Application("a")
        app.add_task(Task("t", megaops=1))
        with pytest.raises(ValidationError):
            app.add_task(Task("t", megaops=2))

    def test_connect_unknown_task_rejected(self):
        app = Application("a")
        app.add_task(Task("t", megaops=1))
        with pytest.raises(ValidationError):
            app.connect("t", "ghost")

    def test_cycle_rejected_and_rolled_back(self):
        app = Application("a")
        app.add_task(Task("x", megaops=1))
        app.add_task(Task("y", megaops=1))
        app.connect("x", "y")
        with pytest.raises(ValidationError):
            app.connect("y", "x")
        # The offending edge must not remain.
        assert not app.graph.has_edge("y", "x")

    def test_topological_task_order(self):
        app = diamond_app()
        names = [t.name for t in app.tasks]
        assert names.index("src") < names.index("left")
        assert names.index("left") < names.index("sink")
        assert names.index("right") < names.index("sink")

    def test_predecessors_successors(self):
        app = diamond_app()
        assert set(app.predecessors("sink")) == {"left", "right"}
        assert set(app.successors("src")) == {"left", "right"}

    def test_edge_bytes(self):
        app = diamond_app()
        assert app.edge_bytes("src", "right") == 2000

    def test_total_and_critical_path_megaops(self):
        app = diamond_app()
        assert app.total_megaops() == 65
        # Critical path: src -> right -> sink = 10 + 30 + 5.
        assert app.critical_path_megaops() == 45

    def test_len(self):
        assert len(diamond_app()) == 4

    def test_task_lookup_unknown_raises(self):
        with pytest.raises(ValidationError):
            diamond_app().task("nope")


class TestPoissonArrivals:
    def test_rate_must_be_positive(self):
        with pytest.raises(ValidationError):
            PoissonArrivals(diamond_app(), 0, random.Random(1))

    def test_arrivals_before_horizon(self):
        gen = PoissonArrivals(diamond_app(), rate_per_s=10, rng=random.Random(1))
        events = list(gen.until(5.0))
        assert events, "expected at least one arrival in 5s at 10/s"
        assert all(0 < e.time_s < 5.0 for e in events)

    def test_arrival_times_increase(self):
        gen = PoissonArrivals(diamond_app(), rate_per_s=5, rng=random.Random(2))
        times = [e.time_s for e in gen.until(10.0)]
        assert times == sorted(times)

    def test_instances_get_unique_names(self):
        gen = PoissonArrivals(diamond_app(), rate_per_s=10, rng=random.Random(3))
        names = [e.application.name for e in gen.until(2.0)]
        assert len(names) == len(set(names))
        assert all(n.startswith("diamond#") for n in names)

    def test_deterministic_given_seed(self):
        a = [e.time_s for e in PoissonArrivals(
            diamond_app(), 8, random.Random(7)).until(3.0)]
        b = [e.time_s for e in PoissonArrivals(
            diamond_app(), 8, random.Random(7)).until(3.0)]
        assert a == b
