"""Unit tests for repro.obs.spans: causal span creation and propagation."""

import random

import pytest

from repro.obs import SPAN_TOPIC, SpanContext, Tracer
from repro.obs.spans import NULL_SPAN
from repro.runtime import RuntimeContext
from repro.runtime.trace import TraceRecorder


def make_tracer(seed=7):
    clock = [0.0]
    trace = TraceRecorder()
    tracer = Tracer(random.Random(seed), lambda: clock[0], trace)
    return tracer, trace, clock


class TestSpanLifecycle:
    def test_root_span_gets_fresh_trace_id(self):
        tracer, _, _ = make_tracer()
        with tracer.start_span("work") as span:
            pass
        assert span.context.parent_id is None
        assert len(span.context.trace_id) == 16
        assert len(span.context.span_id) == 16
        assert span.context.trace_id != span.context.span_id

    def test_nested_spans_share_trace_and_link_parent(self):
        tracer, _, _ = make_tracer()
        with tracer.start_span("outer") as outer:
            with tracer.start_span("inner") as inner:
                pass
        assert inner.context.trace_id == outer.context.trace_id
        assert inner.context.parent_id == outer.context.span_id

    def test_siblings_share_parent(self):
        tracer, _, _ = make_tracer()
        with tracer.start_span("outer") as outer:
            with tracer.start_span("a") as a:
                pass
            with tracer.start_span("b") as b:
                pass
        assert a.context.parent_id == outer.context.span_id
        assert b.context.parent_id == outer.context.span_id
        assert a.context.span_id != b.context.span_id

    def test_explicit_parent_overrides_ambient(self):
        tracer, _, _ = make_tracer()
        elsewhere = SpanContext("t" * 16, "s" * 16)
        with tracer.start_span("ambient"):
            with tracer.start_span("child", parent=elsewhere) as child:
                pass
        assert child.context.trace_id == elsewhere.trace_id
        assert child.context.parent_id == elsewhere.span_id

    def test_timestamps_from_injected_clock(self):
        tracer, _, clock = make_tracer()
        clock[0] = 3.5
        with tracer.start_span("work") as span:
            clock[0] = 4.25
        assert span.start_s == 3.5
        assert span.end_s == 4.25

    def test_exception_marks_error_and_pops_stack(self):
        tracer, trace, _ = make_tracer()
        with pytest.raises(RuntimeError):
            with tracer.start_span("boom") as span:
                raise RuntimeError("kaput")
        assert span.status == "error"
        assert tracer.capture() is None
        record = list(trace)[-1]
        assert record.payload["status"] == "error"

    def test_finished_span_lands_on_trace(self):
        tracer, trace, clock = make_tracer()
        clock[0] = 1.0
        with tracer.start_span("work", layer="mirto", device="mc-00-0"):
            clock[0] = 2.0
        record = list(trace)[-1]
        assert record.topic == SPAN_TOPIC
        assert record.time_s == 2.0  # recorded at the end instant
        assert record.payload["name"] == "work"
        assert record.payload["layer"] == "mirto"
        assert record.payload["attrs"] == {"device": "mc-00-0"}
        assert tracer.spans_recorded == 1


class TestRootSemantics:
    def test_root_ignores_incidental_ambient_span(self):
        tracer, _, _ = make_tracer()
        with tracer.start_span("bystander") as bystander:
            with tracer.start_span("fault", root=True) as fault:
                pass
        assert fault.context.trace_id != bystander.context.trace_id
        assert fault.context.parent_id is None

    def test_root_honors_resumed_scope(self):
        tracer, _, _ = make_tracer()
        cause = SpanContext("c" * 16, "d" * 16)
        with tracer.resume(cause):
            with tracer.start_span("repair", root=True) as repair:
                pass
        assert repair.context.trace_id == cause.trace_id
        assert repair.context.parent_id == cause.span_id


class TestCaptureAndResume:
    def test_capture_returns_current_context(self):
        tracer, _, _ = make_tracer()
        assert tracer.capture() is None
        with tracer.start_span("work") as span:
            assert tracer.capture() == span.context
        assert tracer.capture() is None

    def test_resume_attaches_new_spans(self):
        tracer, _, _ = make_tracer()
        with tracer.start_span("cause") as cause:
            pass
        with tracer.resume(cause.context):
            with tracer.start_span("remediation") as fix:
                pass
        assert fix.context.trace_id == cause.context.trace_id
        assert fix.context.parent_id == cause.context.span_id
        assert tracer.capture() is None

    def test_resume_none_is_noop(self):
        tracer, _, _ = make_tracer()
        assert tracer.resume(None) is NULL_SPAN
        with tracer.resume(None):
            with tracer.start_span("orphan") as span:
                pass
        assert span.context.parent_id is None


class TestDisable:
    def test_disabled_tracer_returns_null_span(self):
        tracer, trace, _ = make_tracer()
        tracer.disable()
        span = tracer.start_span("work")
        assert span is NULL_SPAN
        with span:
            pass
        assert len(trace) == 0
        assert tracer.spans_recorded == 0

    def test_reenable_restores_tracing(self):
        tracer, trace, _ = make_tracer()
        tracer.disable()
        tracer.enable()
        with tracer.start_span("work"):
            pass
        assert len(trace) == 1


class TestRecordSpan:
    def test_explicit_timestamps(self):
        tracer, trace, clock = make_tracer()
        clock[0] = 10.0
        context = tracer.record_span("task", "continuum", 2.0, 8.0,
                                     device="fpga-01-0")
        payload = list(trace)[-1].payload
        assert payload["start_s"] == 2.0
        assert payload["end_s"] == 8.0
        assert payload["span_id"] == context.span_id
        # Recorded at its end instant, not the current clock.
        assert list(trace)[-1].time_s == 8.0

    def test_picks_up_ambient_parent(self):
        tracer, _, _ = make_tracer()
        with tracer.start_span("outer") as outer:
            context = tracer.record_span("task", "continuum", 0.0, 1.0)
        assert context.trace_id == outer.context.trace_id
        assert context.parent_id == outer.context.span_id

    def test_disabled_returns_none(self):
        tracer, trace, _ = make_tracer()
        tracer.disable()
        assert tracer.record_span("task", "continuum", 0.0, 1.0) is None
        assert len(trace) == 0


class TestDeterminism:
    def test_same_seed_same_ids(self):
        first_tracer, _, _ = make_tracer(seed=99)
        second_tracer, _, _ = make_tracer(seed=99)

        def run(tracer):
            contexts = []
            with tracer.start_span("outer") as outer:
                contexts.append(outer.context)
                with tracer.start_span("inner") as inner:
                    contexts.append(inner.context)
            return contexts

        assert run(first_tracer) == run(second_tracer)

    def test_different_seed_different_ids(self):
        first_tracer, _, _ = make_tracer(seed=1)
        second_tracer, _, _ = make_tracer(seed=2)
        with first_tracer.start_span("x") as a:
            pass
        with second_tracer.start_span("x") as b:
            pass
        assert a.context.trace_id != b.context.trace_id


class TestBusEnvelope:
    def test_publish_inside_span_carries_envelope(self):
        ctx = RuntimeContext(seed=5)
        with ctx.tracer.start_span("work", layer="test") as span:
            ctx.bus.publish("test.obs.ping", {"n": 1})
        record = [r for r in ctx.trace if r.topic == "test.obs.ping"][0]
        assert record.span == {
            "trace_id": span.context.trace_id,
            "span_id": span.context.span_id,
            "parent_id": None,
        }

    def test_publish_outside_span_has_no_envelope(self):
        ctx = RuntimeContext(seed=5)
        ctx.bus.publish("test.obs.ping", {"n": 1})
        record = [r for r in ctx.trace if r.topic == "test.obs.ping"][0]
        assert record.span is None

    def test_envelope_round_trips_through_jsonl(self):
        ctx = RuntimeContext(seed=5)
        with ctx.tracer.start_span("work", layer="test"):
            ctx.bus.publish("test.obs.ping", None)
        import json
        lines = ctx.trace.to_jsonl().splitlines()
        decoded = [json.loads(line) for line in lines]
        ping = [d for d in decoded if d["topic"] == "test.obs.ping"][0]
        assert set(ping["span"]) == {"trace_id", "span_id", "parent_id"}
