"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.continuum.simulator import (
    Interrupt,
    Resource,
    Simulator,
    SimulationError,
    Store,
)


class TestBasicScheduling:
    def test_timeout_advances_time(self):
        sim = Simulator()
        done = []

        def proc():
            yield sim.timeout(2.5)
            done.append(sim.now)

        sim.process(proc())
        sim.run()
        assert done == [2.5]

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []

        def proc(delay, tag):
            yield sim.timeout(delay)
            order.append(tag)

        sim.process(proc(3, "c"))
        sim.process(proc(1, "a"))
        sim.process(proc(2, "b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_fifo_tiebreak_at_same_time(self):
        sim = Simulator()
        order = []

        def proc(tag):
            yield sim.timeout(1)
            order.append(tag)

        for tag in "abc":
            sim.process(proc(tag))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_run_until_time_stops_clock_there(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(100)

        sim.process(proc())
        sim.run(until=10)
        assert sim.now == 10

    def test_run_until_event_returns_value(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(1)
            return "result"

        p = sim.process(proc())
        assert sim.run(until=p) == "result"

    def test_run_until_past_raises(self):
        sim = Simulator(start_time=5)
        with pytest.raises(SimulationError):
            sim.run(until=1)

    def test_negative_timeout_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.timeout(-1)

    def test_nested_processes(self):
        sim = Simulator()

        def child():
            yield sim.timeout(2)
            return 42

        def parent():
            value = yield sim.process(child())
            return value + 1

        p = sim.process(parent())
        assert sim.run(until=p) == 43
        assert sim.now == 2


class TestEventSemantics:
    def test_manual_event_succeed(self):
        sim = Simulator()
        gate = sim.event()
        seen = []

        def waiter():
            value = yield gate
            seen.append(value)

        def opener():
            yield sim.timeout(1)
            gate.succeed("open")

        sim.process(waiter())
        sim.process(opener())
        sim.run()
        assert seen == ["open"]

    def test_double_trigger_raises(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_failed_event_propagates_into_process(self):
        sim = Simulator()
        caught = []

        def waiter(gate):
            try:
                yield gate
            except RuntimeError as exc:
                caught.append(str(exc))

        gate = sim.event()
        sim.process(waiter(gate))
        gate.fail(RuntimeError("boom"))
        sim.run()
        assert caught == ["boom"]

    def test_unhandled_failure_raises_from_run(self):
        sim = Simulator()
        ev = sim.event()
        ev.fail(RuntimeError("unhandled"))
        with pytest.raises(RuntimeError, match="unhandled"):
            sim.run()

    def test_yielding_non_event_is_an_error(self):
        sim = Simulator()

        def bad():
            yield 42

        p = sim.process(bad())
        with pytest.raises(SimulationError):
            sim.run(until=p)

    def test_process_exception_becomes_failed_event(self):
        sim = Simulator()

        def bad():
            yield sim.timeout(1)
            raise ValueError("inside")

        p = sim.process(bad())
        with pytest.raises(ValueError, match="inside"):
            sim.run(until=p)


class TestCombinators:
    def test_all_of_waits_for_every_event(self):
        sim = Simulator()

        def proc():
            yield sim.all_of([sim.timeout(1), sim.timeout(3), sim.timeout(2)])
            return sim.now

        p = sim.process(proc())
        assert sim.run(until=p) == 3

    def test_any_of_fires_on_first(self):
        sim = Simulator()

        def proc():
            yield sim.any_of([sim.timeout(5), sim.timeout(1)])
            return sim.now

        p = sim.process(proc())
        assert sim.run(until=p) == 1

    def test_all_of_empty_fires_immediately(self):
        sim = Simulator()

        def proc():
            yield sim.all_of([])
            return sim.now

        p = sim.process(proc())
        assert sim.run(until=p) == 0


class TestInterrupts:
    def test_interrupt_delivers_cause(self):
        sim = Simulator()
        seen = []

        def victim():
            try:
                yield sim.timeout(100)
            except Interrupt as intr:
                seen.append((sim.now, intr.cause))

        def attacker(victim_proc):
            yield sim.timeout(2)
            victim_proc.interrupt("preempted")

        v = sim.process(victim())
        sim.process(attacker(v))
        sim.run()
        assert seen == [(2, "preempted")]

    def test_interrupt_dead_process_is_noop(self):
        sim = Simulator()

        def quick():
            yield sim.timeout(1)

        p = sim.process(quick())
        sim.run()
        p.interrupt("late")  # must not raise
        sim.run()


class TestFailureDelivery:
    """Interrupts and plain event failures share one throw() path in
    Process._resume; the waiter tells them apart by exception type."""

    def test_plain_failure_delivered_as_original_exception(self):
        sim = Simulator()
        seen = []

        def waiter(event):
            try:
                yield event
            except ValueError as exc:
                seen.append(("value-error", str(exc), sim.now))
            except Interrupt:  # pragma: no cover - wrong branch
                seen.append(("interrupt", None, sim.now))

        def failer(event):
            yield sim.timeout(3)
            event.fail(ValueError("boom"))

        event = sim.event()
        sim.process(waiter(event))
        sim.process(failer(event))
        sim.run()
        assert seen == [("value-error", "boom", 3)]

    def test_interrupt_vs_failure_distinguished(self):
        sim = Simulator()
        seen = []

        def waiter(tag, event):
            try:
                yield event
            except Interrupt as intr:
                seen.append((tag, "interrupt", intr.cause))
            except RuntimeError as exc:
                seen.append((tag, "failure", str(exc)))

        interrupted = sim.event()
        failed = sim.event()
        p1 = sim.process(waiter("a", interrupted))
        sim.process(waiter("b", failed))

        def driver():
            yield sim.timeout(1)
            p1.interrupt("preempt")
            failed.fail(RuntimeError("died"))

        sim.process(driver())
        sim.run()
        assert sorted(seen) == [("a", "interrupt", "preempt"),
                                ("b", "failure", "died")]

    def test_delivered_failure_is_defused(self):
        # A failure consumed by a waiting process must not re-raise
        # out of step() as an un-waited-for error.
        sim = Simulator()
        recovered = []

        def waiter(event):
            try:
                yield event
            except KeyError:
                recovered.append(sim.now)
                yield sim.timeout(1)
                recovered.append(sim.now)

        event = sim.event()
        sim.process(waiter(event))

        def failer():
            yield sim.timeout(2)
            event.fail(KeyError("gone"))

        sim.process(failer())
        sim.run()  # would raise KeyError if the failure were not defused
        assert recovered == [2, 3]

    def test_run_until_failed_event_raises(self):
        sim = Simulator()

        def failer(event):
            yield sim.timeout(5)
            event.fail(OSError("device lost"))

        event = sim.event()
        sim.process(failer(event))
        with pytest.raises(OSError, match="device lost"):
            sim.run(until=event)
        assert sim.now == 5


class TestResource:
    def test_capacity_enforced(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        timeline = []

        def user(tag):
            req = res.request()
            yield req
            timeline.append((tag, "start", sim.now))
            yield sim.timeout(5)
            res.release(req)
            timeline.append((tag, "end", sim.now))

        sim.process(user("a"))
        sim.process(user("b"))
        sim.run()
        assert timeline == [
            ("a", "start", 0),
            ("a", "end", 5),
            ("b", "start", 5),
            ("b", "end", 10),
        ]

    def test_parallel_when_capacity_allows(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        ends = []

        def user():
            req = res.request()
            yield req
            yield sim.timeout(5)
            res.release(req)
            ends.append(sim.now)

        sim.process(user())
        sim.process(user())
        sim.run()
        assert ends == [5, 5]

    def test_release_unheld_request_raises(self):
        sim = Simulator()
        res = Resource(sim)
        fake = sim.event()
        with pytest.raises(SimulationError):
            res.release(fake)

    def test_queue_length_visible(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        res.request()
        res.request()
        assert res.count == 1
        assert len(res.queue) == 1

    def test_invalid_capacity(self):
        with pytest.raises(SimulationError):
            Resource(Simulator(), capacity=0)


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def producer():
            yield store.put("item")

        def consumer():
            item = yield store.get()
            got.append(item)

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert got == ["item"]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer():
            item = yield store.get()
            got.append((item, sim.now))

        def producer():
            yield sim.timeout(3)
            yield store.put("late")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [("late", 3)]

    def test_bounded_capacity_blocks_put(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        events = []

        def producer():
            yield store.put(1)
            events.append(("put1", sim.now))
            yield store.put(2)
            events.append(("put2", sim.now))

        def consumer():
            yield sim.timeout(5)
            yield store.get()

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert events == [("put1", 0), ("put2", 5)]

    def test_fifo_order(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def producer():
            for i in range(3):
                yield store.put(i)

        def consumer():
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert got == [0, 1, 2]
