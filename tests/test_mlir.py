"""Tests for the mini-MLIR: IR core, dialects, interpreter, passes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import CompilationError
from repro.dpe.mlir import (
    Actor,
    Base2Type,
    Builder,
    CgraMachine,
    CgraModel,
    DataflowGraph,
    F32,
    I32,
    Interpreter,
    Module,
    TensorType,
    canonicalize,
    map_function,
    quantization_error,
    quantize_to_base2,
    verify_module,
)
from repro.dpe.mlir.ir import verify_function


def scalar_func(module, name="f"):
    """f(a, b) = a * b + a"""
    builder = Builder(module, name, [F32, F32])
    product = builder.op("arith.mulf", [builder.args[0], builder.args[1]],
                         [F32])
    total = builder.op("arith.addf", [product.result(), builder.args[0]],
                       [F32])
    builder.ret([total.result()])
    return builder.function


def dense_func(module, name="dense"):
    """relu(x @ W + b) with fixed W, b."""
    w = np.array([[1.0, -2.0], [0.5, 1.5]])
    b = np.array([[0.1, -0.1]])
    t12 = TensorType((1, 2), F32)
    t22 = TensorType((2, 2), F32)
    builder = Builder(module, name, [t12])
    wv = builder.op("tensor.constant", [], [t22], {"value": w})
    bv = builder.op("tensor.constant", [], [t12], {"value": b})
    mm = builder.op("tensor.matmul", [builder.args[0], wv.result()], [t12])
    ad = builder.op("tensor.add", [mm.result(), bv.result()], [t12])
    rl = builder.op("tensor.relu", [ad.result()], [t12])
    builder.ret([rl.result()])
    return builder.function


class TestTypes:
    def test_base2_range(self):
        fx = Base2Type(8, 4)
        assert fx.scale == pytest.approx(1 / 16)
        assert fx.max_value == pytest.approx(127 / 16)
        assert fx.min_value == pytest.approx(-8.0)

    def test_base2_quantize_clamps(self):
        fx = Base2Type(8, 4)
        assert fx.dequantize(fx.quantize(100.0)) == fx.max_value
        assert fx.dequantize(fx.quantize(-100.0)) == fx.min_value

    @given(st.floats(-7, 7))
    @settings(max_examples=50)
    def test_base2_roundtrip_error_bounded(self, value):
        fx = Base2Type(16, 8)
        assert abs(fx.dequantize(fx.quantize(value)) - value) \
            <= fx.scale / 2 + 1e-12

    def test_invalid_base2(self):
        with pytest.raises(CompilationError):
            Base2Type(4, 8)

    def test_tensor_type(self):
        t = TensorType((2, 3), F32)
        assert t.num_elements == 6
        assert "2x3" in str(t)

    def test_bad_tensor_shape(self):
        with pytest.raises(CompilationError):
            TensorType((0, 2), F32)


class TestVerifier:
    def test_valid_function_passes(self):
        module = Module("m")
        func = scalar_func(module)
        assert verify_function(func) == []

    def test_type_mismatch_detected(self):
        module = Module("m")
        builder = Builder(module, "bad", [F32, I32])
        builder.op("arith.addf", [builder.args[0], builder.args[1]], [F32])
        builder.ret([])
        problems = verify_function(builder.function)
        assert any("operand types differ" in p for p in problems)

    def test_undefined_value_detected(self):
        from repro.dpe.mlir.ir import Operation, Value
        module = Module("m")
        builder = Builder(module, "bad", [F32])
        ghost = Value(F32, "ghost")
        op = Operation("arith.addf", [builder.args[0], ghost], {},
                       [Value(F32, "r")])
        builder.function.ops.append(op)
        builder.ret([])
        problems = verify_function(builder.function)
        assert any("undefined value" in p for p in problems)

    def test_matmul_shape_check(self):
        module = Module("m")
        builder = Builder(module, "bad", [TensorType((2, 3), F32),
                                          TensorType((2, 3), F32)])
        builder.op("tensor.matmul", [builder.args[0], builder.args[1]],
                   [TensorType((2, 3), F32)])
        builder.ret([])
        problems = verify_function(builder.function)
        assert any("inner dims differ" in p for p in problems)

    def test_module_verify_raises(self):
        module = Module("m")
        builder = Builder(module, "bad", [F32, I32])
        builder.op("arith.addf", [builder.args[0], builder.args[1]], [F32])
        builder.ret([])
        with pytest.raises(CompilationError):
            verify_module(module)

    def test_duplicate_function_rejected(self):
        module = Module("m")
        scalar_func(module, "f")
        with pytest.raises(CompilationError):
            scalar_func(module, "f")


class TestInterpreter:
    def test_scalar_arithmetic(self):
        module = Module("m")
        scalar_func(module)
        assert Interpreter(module).run("f", 3.0, 4.0) == [15.0]

    def test_tensor_network(self):
        module = Module("m")
        dense_func(module)
        x = np.array([[1.0, 2.0]])
        (result,) = Interpreter(module).run("dense", x)
        expected = np.maximum(
            x @ np.array([[1.0, -2.0], [0.5, 1.5]])
            + np.array([[0.1, -0.1]]), 0)
        np.testing.assert_allclose(result, expected)

    def test_cmp_and_select(self):
        module = Module("m")
        builder = Builder(module, "clamp", [F32])
        zero = builder.op("arith.constant", [], [F32], {"value": 0.0})
        from repro.dpe.mlir.ir import I1
        is_neg = builder.op("arith.cmp",
                            [builder.args[0], zero.result()], [I1],
                            {"predicate": "lt"})
        out = builder.op("arith.select",
                         [is_neg.result(), zero.result(), builder.args[0]],
                         [F32])
        builder.ret([out.result()])
        interp = Interpreter(module)
        assert interp.run("clamp", -5.0) == [0.0]
        assert interp.run("clamp", 5.0) == [5.0]

    def test_wrong_arity_rejected(self):
        module = Module("m")
        scalar_func(module)
        with pytest.raises(CompilationError):
            Interpreter(module).run("f", 1.0)

    def test_reshape(self):
        module = Module("m")
        builder = Builder(module, "rs", [TensorType((2, 3), F32)])
        out = builder.op("tensor.reshape", [builder.args[0]],
                         [TensorType((3, 2), F32)])
        builder.ret([out.result()])
        (result,) = Interpreter(module).run(
            "rs", np.arange(6.0).reshape(2, 3))
        assert result.shape == (3, 2)


class TestPasses:
    def build_foldable(self, module):
        builder = Builder(module, "fold", [F32])
        c2 = builder.op("arith.constant", [], [F32], {"value": 2.0})
        c3 = builder.op("arith.constant", [], [F32], {"value": 3.0})
        prod = builder.op("arith.mulf", [c2.result(), c3.result()], [F32])
        dead = builder.op("arith.addf", [builder.args[0], builder.args[0]],
                          [F32])
        assert dead  # intentionally unused
        out = builder.op("arith.addf", [builder.args[0], prod.result()],
                         [F32])
        builder.ret([out.result()])
        return builder.function

    def test_canonicalize_folds_and_removes_dead(self):
        module = Module("m")
        func = self.build_foldable(module)
        before = Interpreter(module).run("fold", 1.0)
        counts = canonicalize(func)
        assert counts["folded"] >= 1
        assert counts["dce"] >= 1
        assert Interpreter(module).run("fold", 1.0) == before
        assert len(func.ops) == 2  # folded const + final add

    def test_cse_merges_duplicates(self):
        module = Module("m")
        builder = Builder(module, "dup", [F32])
        a1 = builder.op("arith.addf", [builder.args[0], builder.args[0]],
                        [F32])
        a2 = builder.op("arith.addf", [builder.args[0], builder.args[0]],
                        [F32])
        out = builder.op("arith.mulf", [a1.result(), a2.result()], [F32])
        builder.ret([out.result()])
        before = Interpreter(module).run("dup", 3.0)
        counts = canonicalize(builder.function)
        assert counts["cse"] >= 1
        assert Interpreter(module).run("dup", 3.0) == before

    def test_quantize_to_base2_preserves_semantics(self):
        module = Module("m")
        dense_func(module)
        quantize_to_base2(module, "dense", Base2Type(16, 8))
        verify_module(module)
        x = np.array([[1.0, 2.0]])
        err = quantization_error(module, "dense", "dense_base2", [x])
        assert err < 0.05

    def test_wider_fixed_point_is_more_accurate(self):
        x = np.array([[0.7, -1.3]])
        errors = {}
        for width, frac in ((8, 4), (16, 8), (24, 12)):
            module = Module("m")
            dense_func(module)
            quantize_to_base2(module, "dense", Base2Type(width, frac),
                              new_name="q")
            errors[(width, frac)] = quantization_error(
                module, "dense", "q", [x])
        assert errors[(24, 12)] <= errors[(16, 8)] <= errors[(8, 4)]


class TestCgra:
    def test_mapping_matches_interpreter(self):
        module = Module("m")
        scalar_func(module)
        config = map_function(module, "f", CgraModel(2, 2))
        results, cycles = CgraMachine(module, config).run(3.0, 4.0)
        assert results == Interpreter(module).run("f", 3.0, 4.0)
        assert cycles >= 1

    def test_dependencies_respected_in_schedule(self):
        module = Module("m")
        scalar_func(module)
        config = map_function(module, "f", CgraModel(2, 2))
        mul = next(p for p in config.placements
                   if p.op_name == "arith.mulf")
        add = next(p for p in config.placements
                   if p.op_name == "arith.addf")
        assert add.start_cycle >= mul.start_cycle + mul.latency

    def test_bigger_grid_not_slower(self):
        module = Module("m")
        builder = Builder(module, "wide", [F32] * 4)
        sums = [builder.op("arith.addf", [builder.args[i],
                                          builder.args[i + 1]], [F32])
                for i in range(3)]
        builder.ret([s.result() for s in sums])
        small = map_function(module, "wide", CgraModel(1, 1))
        large = map_function(module, "wide", CgraModel(2, 2))
        assert large.total_cycles <= small.total_cycles

    def test_unsupported_op_class_rejected(self):
        module = Module("m")
        builder = Builder(module, "divides", [F32, F32])
        out = builder.op("arith.divf", [builder.args[0], builder.args[1]],
                         [F32])
        builder.ret([out.result()])
        with pytest.raises(CompilationError, match="lacks support"):
            map_function(module, "divides",
                         CgraModel(2, 2, ("alu", "mul", "const")))

    def test_config_metrics(self):
        module = Module("m")
        scalar_func(module)
        config = map_function(module, "f", CgraModel(2, 2))
        assert 1 <= config.utilized_pes <= 4
        assert config.latency_s() > 0
        assert config.energy_j() > 0


class TestDataflow:
    def build(self, module):
        builder = Builder(module, "double", [F32])
        out = builder.op("arith.addf",
                         [builder.args[0], builder.args[0]], [F32])
        builder.ret([out.result()])
        builder2 = Builder(module, "inc", [F32])
        one = builder2.op("arith.constant", [], [F32], {"value": 1.0})
        out2 = builder2.op("arith.addf", [builder2.args[0], one.result()],
                           [F32])
        builder2.ret([out2.result()])
        graph = DataflowGraph("pipe", module)
        graph.add_actor(Actor("dbl", "double", (1,), (1,),
                              cycles_per_firing=2))
        graph.add_actor(Actor("inc", "inc", (1,), (1,),
                              cycles_per_firing=1))
        graph.connect("dbl", 0, "inc", 0)
        graph.mark_input("dbl", 0)
        graph.mark_output("inc", 0)
        return graph

    def test_repetition_vector_uniform(self):
        module = Module("m")
        graph = self.build(module)
        assert graph.repetition_vector() == {"dbl": 1, "inc": 1}

    def test_multirate_repetition_vector(self):
        module = Module("m")
        graph = self.build(module)
        # dbl produces 2 tokens per firing now: inc must fire twice.
        graph.actors["dbl"].output_rates = (2,)
        reps = graph.repetition_vector()
        assert reps == {"dbl": 1, "inc": 2}

    def test_inconsistent_rates_rejected(self):
        module = Module("m")
        graph = self.build(module)
        graph.connect("dbl", 0, "inc", 0)  # duplicate channel, same rates
        graph.actors["dbl"].output_rates = (2,)
        # One channel wants 1:1, the other 2:1 -> but both channels share
        # the same ports/rates, so this IS consistent; force inconsistency
        # with a back edge instead.
        graph.actors["dbl"].input_rates = (3,)
        graph.connect("inc", 0, "dbl", 0, initial_tokens=3)
        with pytest.raises(CompilationError, match="inconsistent"):
            graph.repetition_vector()

    def test_buffer_sizes(self):
        module = Module("m")
        graph = self.build(module)
        assert graph.buffer_sizes() == {("dbl", "inc"): 1}

    def test_functional_execution(self):
        module = Module("m")
        graph = self.build(module)
        outputs = graph.execute({("dbl", 0): [3.0]})
        assert outputs[("inc", 0)] == [7.0]  # 3*2 + 1

    def test_starvation_detected(self):
        module = Module("m")
        graph = self.build(module)
        with pytest.raises(CompilationError, match="deadlock|starvation"):
            graph.execute({})  # no input tokens

    def test_zero_token_cycle_deadlock(self):
        module = Module("m")
        graph = self.build(module)
        graph.actors["dbl"].input_rates = (1,)
        graph.connect("inc", 0, "dbl", 0)  # cycle without initial tokens
        with pytest.raises(CompilationError, match="deadlock"):
            graph.throughput_estimate()

    def test_throughput_improves_with_parallelism(self):
        module = Module("m")
        graph = self.build(module)
        graph.actors["dbl"].output_rates = (4,)
        graph.actors["inc"].input_rates = (1,)
        solo = graph.throughput_estimate(parallel_units=1)
        quad = graph.throughput_estimate(parallel_units=4)
        assert quad >= solo

    def test_unknown_actor_function_rejected(self):
        module = Module("m")
        graph = DataflowGraph("g", module)
        with pytest.raises(CompilationError):
            graph.add_actor(Actor("a", "missing", (1,), (1,)))


class TestAlgebraicSimplification:
    def build(self, op_name, const_value, const_first=False):
        from repro.dpe.mlir.passes import simplify_algebraic
        module = Module("m")
        builder = Builder(module, "s", [F32])
        const = builder.op("arith.constant", [], [F32],
                           {"value": const_value})
        operands = ([const.result(), builder.args[0]] if const_first
                    else [builder.args[0], const.result()])
        out = builder.op(op_name, operands, [F32])
        builder.ret([out.result()])
        return module, builder.function, simplify_algebraic

    def test_mul_by_one_removed(self):
        module, func, simplify = self.build("arith.mulf", 1.0)
        assert simplify(func) == 1
        assert func.returns[0] is func.arguments[0]
        assert Interpreter(module).run("s", 7.0) == [7.0]

    def test_one_times_x_removed(self):
        module, func, simplify = self.build("arith.mulf", 1.0,
                                            const_first=True)
        assert simplify(func) == 1

    def test_add_zero_removed(self):
        module, func, simplify = self.build("arith.addf", 0.0)
        assert simplify(func) == 1
        assert Interpreter(module).run("s", 3.5) == [3.5]

    def test_sub_zero_removed(self):
        module, func, simplify = self.build("arith.subf", 0.0)
        assert simplify(func) == 1

    def test_div_by_one_removed(self):
        module, func, simplify = self.build("arith.divf", 1.0)
        assert simplify(func) == 1

    def test_mul_by_two_kept(self):
        module, func, simplify = self.build("arith.mulf", 2.0)
        assert simplify(func) == 0

    def test_max_of_same_value(self):
        from repro.dpe.mlir.passes import simplify_algebraic
        module = Module("m")
        builder = Builder(module, "s", [F32])
        out = builder.op("arith.maxf",
                         [builder.args[0], builder.args[0]], [F32])
        builder.ret([out.result()])
        assert simplify_algebraic(builder.function) == 1

    def test_double_relu_collapsed(self):
        from repro.dpe.mlir.passes import simplify_algebraic
        import numpy as np
        module = Module("m")
        t = TensorType((2, 2), F32)
        builder = Builder(module, "s", [t])
        first = builder.op("tensor.relu", [builder.args[0]], [t])
        second = builder.op("tensor.relu", [first.result()], [t])
        builder.ret([second.result()])
        before = Interpreter(module).run(
            "s", np.array([[-1.0, 2.0], [0.5, -3.0]]))
        assert simplify_algebraic(builder.function) == 1
        canonicalize(builder.function)
        assert len(builder.function.ops) == 1
        after = Interpreter(module).run(
            "s", np.array([[-1.0, 2.0], [0.5, -3.0]]))
        np.testing.assert_array_equal(before[0], after[0])

    def test_canonicalize_chains_simplifications(self):
        """x*1 + 0 collapses fully to x through repeated passes."""
        module = Module("m")
        builder = Builder(module, "chain", [F32])
        one = builder.op("arith.constant", [], [F32], {"value": 1.0})
        zero = builder.op("arith.constant", [], [F32], {"value": 0.0})
        scaled = builder.op("arith.mulf",
                            [builder.args[0], one.result()], [F32])
        shifted = builder.op("arith.addf",
                             [scaled.result(), zero.result()], [F32])
        builder.ret([shifted.result()])
        counts = canonicalize(builder.function)
        assert counts["simplified"] >= 2
        assert len(builder.function.ops) == 0
        assert builder.function.returns[0] is builder.function.arguments[0]
        assert Interpreter(module).run("chain", 9.0) == [9.0]
