"""Tests for the repro.runtime layer: context, traced bus, recorder."""

import enum
from dataclasses import dataclass

import pytest

from repro.continuum.simulator import Simulator
from repro.core.errors import ConfigurationError
from repro.runtime import (
    RuntimeContext,
    TraceRecorder,
    as_simulator,
    ensure_context,
    jsonify,
)


class TestRuntimeContext:
    def test_now_mirrors_simulator_clock(self):
        ctx = RuntimeContext()
        assert ctx.now == 0.0
        ctx.run(until=3.5)
        assert ctx.now == 3.5 == ctx.sim.now

    def test_start_time(self):
        ctx = RuntimeContext(start_time=10.0)
        assert ctx.now == 10.0

    def test_publish_delivers_and_traces(self):
        ctx = RuntimeContext()
        seen = []
        ctx.subscribe("a.*", lambda t, p: seen.append((t, p)))
        delivered = ctx.publish("a.b", {"x": 1})
        assert delivered == 1
        assert seen == [("a.b", {"x": 1})]
        assert [r.topic for r in ctx.trace] == ["a.b"]

    def test_zero_subscriber_publish_still_traced(self):
        ctx = RuntimeContext()
        assert ctx.publish("nobody.listens") == 0
        assert ctx.bus.total_delivered == 0
        assert len(ctx.trace) == 1

    def test_trace_stamped_with_sim_time(self):
        ctx = RuntimeContext()

        def proc(ctx):
            yield ctx.sim.timeout(2.0)
            ctx.publish("late.event")

        ctx.sim.process(proc(ctx))
        ctx.run()
        (rec,) = ctx.trace.records("late.event")
        assert rec.time_s == 2.0

    def test_named_rng_streams_deterministic(self):
        a = RuntimeContext(seed=7).python_rng("stream")
        b = RuntimeContext(seed=7).python_rng("stream")
        c = RuntimeContext(seed=8).python_rng("stream")
        draws = [a.random() for _ in range(5)]
        assert draws == [b.random() for _ in range(5)]
        assert draws != [c.random() for _ in range(5)]

    def test_fork_shares_timeline_but_not_streams(self):
        ctx = RuntimeContext(seed=1)
        child = ctx.fork("subsystem")
        assert child.sim is ctx.sim
        assert child.bus is ctx.bus
        assert child.trace is ctx.trace
        assert child.seed != ctx.seed
        parent_draw = ctx.python_rng("s").random()
        child_draw = child.python_rng("s").random()
        assert parent_draw != child_draw
        # The child's publishes land on the shared trace.
        child.publish("from.child")
        assert ctx.trace.records("from.child")


class TestAdopt:
    """RuntimeContext.adopt is THE context-injection surface."""

    def test_context_passthrough(self):
        ctx = RuntimeContext()
        assert RuntimeContext.adopt(ctx) is ctx

    def test_none_creates_fresh(self):
        ctx = RuntimeContext.adopt(None, seed=3)
        assert isinstance(ctx, RuntimeContext)
        assert ctx.seed == 3

    def test_default_argument(self):
        assert isinstance(RuntimeContext.adopt(), RuntimeContext)

    def test_simulator_wrapped(self):
        sim = Simulator(start_time=4.0)
        ctx = RuntimeContext.adopt(sim)
        assert ctx.sim is sim
        assert ctx.now == 4.0

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            RuntimeContext.adopt("not a simulator")

    def test_no_deprecation_warning(self):
        import warnings
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            RuntimeContext.adopt(None)


class TestDeprecatedShims:
    """ensure_context/as_simulator still work, but warn (once per
    call site) and route through RuntimeContext.adopt."""

    def test_ensure_context_warns_and_delegates(self):
        ctx = RuntimeContext()
        with pytest.warns(DeprecationWarning,
                          match="RuntimeContext.adopt"):
            assert ensure_context(ctx) is ctx

    def test_ensure_context_wraps_simulator(self):
        sim = Simulator(start_time=4.0)
        with pytest.warns(DeprecationWarning):
            wrapped = ensure_context(sim)
        assert wrapped.sim is sim

    def test_ensure_context_rejects_other_types(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError):
                ensure_context("not a simulator")

    def test_as_simulator_warns_and_delegates(self):
        ctx = RuntimeContext()
        with pytest.warns(DeprecationWarning,
                          match="RuntimeContext.adopt"):
            assert as_simulator(ctx) is ctx.sim
        sim = Simulator()
        with pytest.warns(DeprecationWarning):
            assert as_simulator(sim) is sim

    def test_warning_fires_once_per_call_site(self):
        import warnings

        def call_site():
            return ensure_context(None)

        with warnings.catch_warnings(record=True) as caught:
            warnings.resetwarnings()
            warnings.simplefilter("default", DeprecationWarning)
            # __warningregistry__ dedupes on (message, category,
            # lineno): the same call site repeated warns once ...
            for _ in range(5):
                call_site()
            deprecations = [w for w in caught
                            if w.category is DeprecationWarning]
            assert len(deprecations) == 1
            # ... and a different call site warns again.
            ensure_context(None)
            deprecations = [w for w in caught
                            if w.category is DeprecationWarning]
            assert len(deprecations) == 2

    def test_warning_attributes_to_caller(self):
        """stacklevel=2: the warning points at the call site, not at
        repro/runtime/context.py."""
        with pytest.warns(DeprecationWarning) as record:
            ensure_context(None)
        assert record[0].filename == __file__


class _Color(enum.Enum):
    RED = "red"


@dataclass
class _Point:
    x: int
    tags: frozenset


class TestJsonify:
    def test_primitives_pass_through(self):
        assert jsonify(None) is None
        assert jsonify(3) == 3
        assert jsonify("s") == "s"

    def test_dataclass_and_enum_and_set(self):
        out = jsonify(_Point(x=1, tags=frozenset({"b", "a"})))
        assert out == {"x": 1, "tags": ["a", "b"]}
        assert jsonify(_Color.RED) == "red"

    def test_bytes_hex(self):
        assert jsonify(b"\x01\xff") == "01ff"

    def test_opaque_object_collapses_to_type_marker(self):
        class Weird:
            pass

        assert jsonify(Weird()) == "<Weird>"
        # No memory address leaks into the trace.
        assert jsonify(Weird()) == jsonify(Weird())


class TestTraceRecorder:
    def test_ring_buffer_drops_oldest(self):
        trace = TraceRecorder(capacity=3)
        for i in range(5):
            trace.record(float(i), f"t.{i}")
        assert len(trace) == 3
        assert trace.total_recorded == 5
        assert trace.dropped == 2
        assert [r.topic for r in trace] == ["t.2", "t.3", "t.4"]

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            TraceRecorder(capacity=0)

    def test_topic_and_time_filters(self):
        trace = TraceRecorder()
        trace.record(0.0, "a.x")
        trace.record(1.0, "a.y")
        trace.record(2.0, "b.x")
        assert [r.topic for r in trace.records("a.*")] == ["a.x", "a.y"]
        assert [r.topic for r in trace.records(since_s=1.0)] == \
            ["a.y", "b.x"]
        assert [r.topic for r in trace.records("**.x", since_s=1.0)] == \
            ["b.x"]

    def test_at_time(self):
        trace = TraceRecorder()
        trace.record(1.0, "a")
        trace.record(1.0, "b")
        trace.record(2.0, "c")
        assert [r.topic for r in trace.at_time(1.0)] == ["a", "b"]

    def test_export_jsonl(self, tmp_path):
        trace = TraceRecorder()
        trace.record(0.5, "t", {"k": [1, 2]})
        path = tmp_path / "trace.jsonl"
        assert trace.export_jsonl(path) == 1
        line = path.read_text().strip()
        assert line == ('{"payload":{"k":[1,2]},"seq":0,'
                        '"time_s":0.5,"topic":"t"}')

    def test_clear_keeps_sequence(self):
        trace = TraceRecorder()
        trace.record(0.0, "a")
        trace.clear()
        assert len(trace) == 0
        assert trace.record(1.0, "b").seq == 1


class TestDeterministicReplay:
    @staticmethod
    def _run_once(seed):
        ctx = RuntimeContext(seed=seed)
        rng = ctx.python_rng("workload")

        def proc(ctx, rng):
            for i in range(5):
                yield ctx.sim.timeout(rng.random())
                ctx.publish("tick", {"i": i, "draw": rng.random()})

        ctx.sim.process(proc(ctx, rng))
        ctx.run()
        return ctx.trace.to_jsonl()

    def test_same_seed_byte_identical(self):
        assert self._run_once(42) == self._run_once(42)

    def test_different_seed_diverges(self):
        assert self._run_once(42) != self._run_once(43)
