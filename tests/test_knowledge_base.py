"""Tests for the replicated Knowledge Base and Resource Registry."""

import pytest

from repro.core.errors import NotFoundError
from repro.kb import ComponentRecord, KnowledgeBase, ResourceRegistry


@pytest.fixture
def kb():
    return KnowledgeBase(replicas=3, seed=1)


class TestKvOperations:
    def test_put_get(self, kb):
        kb.put("config/mode", "eco")
        assert kb.get("config/mode") == "eco"

    def test_get_missing_raises(self, kb):
        with pytest.raises(NotFoundError):
            kb.get("ghost")

    def test_overwrite(self, kb):
        kb.put("k", 1)
        kb.put("k", 2)
        assert kb.get("k") == 2

    def test_delete(self, kb):
        kb.put("k", 1)
        kb.delete("k")
        with pytest.raises(NotFoundError):
            kb.get("k")

    def test_delete_missing_is_noop(self, kb):
        kb.delete("never-existed")  # must not raise

    def test_range_by_prefix(self, kb):
        kb.put("status/a", 1)
        kb.put("status/b", 2)
        kb.put("registry/a", 3)
        assert kb.range("status/") == {"status/a": 1, "status/b": 2}

    def test_revisions_monotonic(self, kb):
        kb.put("a", 1)
        r1 = kb.revision
        kb.put("b", 2)
        r2 = kb.revision
        assert r2 > r1

    def test_mod_revision_tracks_updates(self, kb):
        kb.put("k", 1)
        meta1 = kb.get_with_meta("k")
        kb.put("k", 2)
        meta2 = kb.get_with_meta("k")
        assert meta2.mod_revision > meta1.mod_revision
        assert meta2.create_revision == meta1.create_revision

    def test_replicas_converge(self, kb):
        kb.put("x", 1)
        kb.put("y", 2)
        kb.delete("x")
        kb.tick(50)  # allow followers to learn the final commit index
        states = kb.replica_states()
        assert all(s == {"y": 2} for s in states.values()), states


class TestWatches:
    def test_watch_sees_puts_and_deletes(self, kb):
        events = []
        kb.watch("status/", events.append)
        kb.put("status/fpga", {"util": 0.4})
        kb.delete("status/fpga")
        kinds = [(e.event_type, e.key) for e in events]
        assert kinds == [("put", "status/fpga"), ("delete", "status/fpga")]

    def test_watch_prefix_filtering(self, kb):
        events = []
        kb.watch("status/", events.append)
        kb.put("registry/node", 1)
        assert events == []

    def test_cancel_watch(self, kb):
        events = []
        watch = kb.watch("s/", events.append)
        kb.put("s/1", 1)
        kb.cancel_watch(watch)
        kb.put("s/2", 2)
        assert len(events) == 1

    def test_watch_event_carries_revision(self, kb):
        events = []
        kb.watch("", events.append)
        kb.put("a", 1)
        kb.put("b", 2)
        assert events[1].revision > events[0].revision


class TestLeases:
    def test_leased_key_survives_with_keepalive(self, kb):
        lease = kb.grant_lease(ttl_ticks=30)
        kb.put("node/hb", "alive", lease_id=lease)
        for _ in range(4):
            kb.tick(15)
            kb.keepalive(lease)
            kb.expire_due_leases()
        assert kb.get("node/hb") == "alive"

    def test_leased_key_dies_without_keepalive(self, kb):
        lease = kb.grant_lease(ttl_ticks=20)
        kb.put("node/hb", "alive", lease_id=lease)
        kb.tick(30)
        expired = kb.expire_due_leases()
        assert lease in expired
        with pytest.raises(NotFoundError):
            kb.get("node/hb")

    def test_unleased_keys_unaffected_by_expiry(self, kb):
        lease = kb.grant_lease(ttl_ticks=10)
        kb.put("ephemeral", 1, lease_id=lease)
        kb.put("durable", 2)
        kb.tick(20)
        kb.expire_due_leases()
        assert kb.get("durable") == 2

    def test_put_with_unknown_lease_rejected(self, kb):
        with pytest.raises(NotFoundError):
            kb.put("k", 1, lease_id=999)

    def test_keepalive_unknown_lease_rejected(self, kb):
        with pytest.raises(NotFoundError):
            kb.keepalive(12345)


class TestFaultTolerance:
    def test_store_survives_leader_crash(self):
        kb = KnowledgeBase(replicas=5, seed=2)
        kb.put("persistent", "value")
        kb.cluster.stop(kb.cluster.run_until_leader())
        # A new leader must serve the committed value.
        assert kb.get("persistent") == "value"
        kb.put("after-failover", 1)
        assert kb.get("after-failover") == 1

    def test_store_works_under_message_loss(self):
        kb = KnowledgeBase(replicas=3, seed=3, drop_probability=0.15)
        for i in range(5):
            kb.put(f"k{i}", i)
        for i in range(5):
            assert kb.get(f"k{i}") == i


class TestResourceRegistry:
    @pytest.fixture
    def registry(self, kb):
        return ResourceRegistry(kb, lease_ttl_ticks=40)

    def record(self, name="fpga-0", layer="edge"):
        return ComponentRecord(
            name=name, kind="hmpsoc_fpga", layer=layer,
            max_security_level="high",
            capabilities={"kernels": ["dsp", "neural"]})

    def test_register_and_lookup(self, registry):
        registry.register(self.record())
        rec = registry.component("fpga-0")
        assert rec.kind == "hmpsoc_fpga"
        assert rec.capabilities["kernels"] == ["dsp", "neural"]

    def test_snapshot_and_layer_query(self, registry):
        registry.register(self.record("fpga-0", "edge"))
        registry.register(self.record("fmdc-0", "fog"))
        snap = registry.snapshot()
        assert set(snap) == {"fpga-0", "fmdc-0"}
        assert [r.name for r in registry.components_in_layer("fog")] \
            == ["fmdc-0"]

    def test_liveness_follows_lease(self, registry, kb):
        registry.register(self.record())
        assert registry.is_alive("fpga-0")
        kb.tick(50)
        kb.expire_due_leases()
        assert not registry.is_alive("fpga-0")

    def test_heartbeat_keeps_alive(self, registry, kb):
        registry.register(self.record())
        for _ in range(3):
            kb.tick(25)
            registry.heartbeat("fpga-0")
            kb.expire_due_leases()
        assert registry.is_alive("fpga-0")

    def test_heartbeat_unregistered_raises(self, registry):
        with pytest.raises(NotFoundError):
            registry.heartbeat("ghost")

    def test_status_updates_and_history(self, registry):
        registry.register(self.record())
        registry.update_status("fpga-0", {"util": 0.3})
        registry.update_status("fpga-0", {"util": 0.6})
        assert registry.status("fpga-0")["util"] == 0.6
        history = registry.history("fpga-0")
        assert [h["util"] for h in history] == [0.3, 0.6]

    def test_history_bounded(self, kb):
        registry = ResourceRegistry(kb, history_limit=5)
        registry.register(self.record())
        for i in range(10):
            registry.update_status("fpga-0", {"i": i})
        assert len(registry.history("fpga-0")) == 5
        assert registry.history("fpga-0")[0]["i"] == 5

    def test_deregister(self, registry):
        registry.register(self.record())
        registry.update_status("fpga-0", {"util": 0.3})
        registry.deregister("fpga-0")
        assert not registry.is_alive("fpga-0")
        with pytest.raises(NotFoundError):
            registry.status("fpga-0")

    def test_status_missing_raises(self, registry):
        with pytest.raises(NotFoundError):
            registry.status("ghost")


class TestTransactions:
    def test_success_branch_applies_atomically(self, kb):
        kb.put("config", "v1")
        ok = kb.txn([("config", "==", "v1")],
                    on_success=[{"op": "put", "key": "config",
                                 "value": "v2"},
                                {"op": "put", "key": "config-history",
                                 "value": ["v1"]}])
        assert ok
        assert kb.get("config") == "v2"
        assert kb.get("config-history") == ["v1"]

    def test_failure_branch_on_mismatch(self, kb):
        kb.put("config", "v1")
        ok = kb.txn([("config", "==", "other")],
                    on_success=[{"op": "put", "key": "config",
                                 "value": "v2"}],
                    on_failure=[{"op": "put", "key": "conflicts",
                                 "value": 1}])
        assert not ok
        assert kb.get("config") == "v1"
        assert kb.get("conflicts") == 1

    def test_absent_guard_implements_locking(self, kb):
        first = kb.txn([("lock/resource", "absent", None)],
                       on_success=[{"op": "put", "key": "lock/resource",
                                    "value": "agent-a"}])
        second = kb.txn([("lock/resource", "absent", None)],
                        on_success=[{"op": "put", "key": "lock/resource",
                                     "value": "agent-b"}])
        assert first and not second
        assert kb.get("lock/resource") == "agent-a"

    def test_mod_revision_guard_detects_concurrent_write(self, kb):
        kb.put("doc", "draft")
        revision = kb.get_with_meta("doc").mod_revision
        kb.put("doc", "edited-by-someone-else")
        ok = kb.txn([("doc", "mod_rev==", revision)],
                    on_success=[{"op": "put", "key": "doc",
                                 "value": "my-edit"}])
        assert not ok
        assert kb.get("doc") == "edited-by-someone-else"

    def test_exists_and_ne_guards(self, kb):
        kb.put("mode", "eco")
        assert kb.txn([("mode", "exists", None),
                       ("mode", "!=", "turbo")],
                      on_success=[{"op": "delete", "key": "mode"}])
        import pytest as _pytest
        from repro.core.errors import NotFoundError as _NF
        with _pytest.raises(_NF):
            kb.get("mode")

    def test_txn_replicates_consistently(self, kb):
        kb.txn([("x", "absent", None)],
               on_success=[{"op": "put", "key": "x", "value": 1}])
        kb.txn([("x", "==", 1)],
               on_success=[{"op": "put", "key": "x", "value": 2}])
        kb.tick(60)
        states = kb.replica_states()
        assert all(s == {"x": 2} for s in states.values())

    def test_unknown_operator_rejected(self, kb):
        import pytest as _pytest
        from repro.core.errors import ConsensusError as _CE
        with _pytest.raises(_CE):
            kb.txn([("x", "~=", 1)],
                   on_success=[{"op": "put", "key": "x", "value": 1}])
