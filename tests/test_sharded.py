"""Tests for zone-sharded simulation (:mod:`repro.runtime.shard`).

The headline property: the merged trace and every scorecard of a
sharded run are byte-identical to its single-shard twin, for random
zone counts, shard counts, fleet sizes and seeds — the zone (not the
shard) is the unit of determinism. Alongside it: the conservative
lookahead bound (epoch lookahead is never smaller than the minimum
cross-zone link latency), the relay's timing/no-echo semantics, the
:meth:`Infrastructure.partition` decomposition and the merged-trace
serialization contract.
"""

import hashlib
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.continuum import (
    DeviceFleet,
    ScaleConfig,
    build_reference_infrastructure,
    run_scale_scenario,
)
from repro.core.errors import ConfigurationError, NotFoundError
from repro.runtime import RuntimeContext, ShardedContext


def _fleet_run(seed: int, n_zones: int, n_shards: int,
               devices: int = 6, horizon: float = 30.0):
    """A small cross-zone scenario: per-zone fleets, zone-0 aggregation,
    one forced outage. Returns (digest, scorecards, aggregator stream)."""
    zones = [f"z{i}" for i in range(n_zones)]
    sharded = ShardedContext(seed=seed, zones=zones, n_shards=n_shards,
                             link_latency_s=0.5)
    stream = []
    agg_ctx = sharded.zone(zones[0])
    agg_ctx.subscribe(
        "shard.fleet.telemetry.*",
        lambda t, p: stream.append((agg_ctx.now, p["zone"], p["up"])))
    fleets = []
    for name in zones:
        fleet = DeviceFleet(name, devices, ctx=sharded.zone(name),
                            fail_rate_per_s=5e-3, repair_rate_per_s=5e-2)
        fleet.start(2.5)
        fleets.append(fleet)
    fleets[-1].schedule_outage(10.0, 5.0)
    sharded.run(until=horizon)
    return sharded.digest(), [f.scorecard() for f in fleets], stream


class TestShardCountInvariance:
    @settings(max_examples=15)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1),
           n_zones=st.integers(min_value=2, max_value=5),
           n_shards=st.integers(min_value=2, max_value=8),
           devices=st.integers(min_value=1, max_value=12))
    def test_sharded_equals_single_shard_twin(self, seed, n_zones,
                                              n_shards, devices):
        """Random partitions/seeds: identical digests, scorecards and
        aggregator-observed delivery streams at any shard count."""
        sharded = _fleet_run(seed, n_zones, n_shards, devices)
        single = _fleet_run(seed, n_zones, 1, devices)
        assert sharded[0] == single[0]
        assert sharded[1] == single[1]
        assert sharded[2] == single[2]

    @settings(max_examples=5)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1),
           shards=st.integers(min_value=2, max_value=4))
    def test_scale_scenario_digest_and_scorecard(self, seed, shards):
        """The packaged scale scenario obeys the same twin contract."""
        config = ScaleConfig(devices=60, zones=4, shards=shards,
                             horizon_s=80.0, seed=seed, outage_at_s=30.0,
                             outage_duration_s=20.0,
                             barrier_record_every=20)
        sharded = run_scale_scenario(config)
        single = run_scale_scenario(config, n_shards=1)
        assert sharded.digest() == single.digest()
        assert sharded.scorecard() == single.scorecard()

    def test_zone_seed_depends_on_name_not_shard(self):
        """The RNG subtree hangs off the zone name: regrouping zones
        onto different shard counts leaves every zone's seed alone."""
        zones = ("za", "zb", "zc")
        many = ShardedContext(seed=11, zones=zones, n_shards=3,
                              link_latency_s=1.0)
        one = ShardedContext(seed=11, zones=zones, n_shards=1,
                             link_latency_s=1.0)
        for name in zones:
            assert many.zone(name).seed == one.zone(name).seed


class TestLookaheadBound:
    """Regression: epoch lookahead >= minimum cross-zone link latency."""

    @staticmethod
    def _partition():
        infra = build_reference_infrastructure(ctx=RuntimeContext(seed=7))
        return infra.partition()

    def test_for_partition_lookahead_covers_min_cross_latency(self):
        part = self._partition()
        assert part.min_cross_latency_s < float("inf")
        sharded = ShardedContext.for_partition(part, seed=7, n_shards=2)
        assert sharded.lookahead_s >= part.min_cross_latency_s
        assert sharded.epoch_s <= sharded.lookahead_s

    def test_epoch_override_never_stretches_past_lookahead(self):
        part = self._partition()
        sharded = ShardedContext.for_partition(
            part, seed=7, epoch_s=part.min_cross_latency_s * 100.0)
        assert sharded.lookahead_s >= part.min_cross_latency_s
        assert sharded.epoch_s <= sharded.lookahead_s

    def test_explicit_epoch_may_shorten_below_lookahead(self):
        sharded = ShardedContext(zones=("a", "b"), link_latency_s=2.0,
                                 epoch_s=0.5)
        assert sharded.epoch_s == 0.5
        assert sharded.lookahead_s == 2.0


class TestZonePartition:
    @staticmethod
    def _infra():
        return build_reference_infrastructure(ctx=RuntimeContext(seed=3))

    def test_default_partition_is_by_layer(self):
        infra = self._infra()
        part = infra.partition()
        assert set(part.assignment) == set(infra.devices)
        assert part.zones == tuple(sorted(set(part.assignment.values())))
        for name, device in infra.devices.items():
            assert part.assignment[name] == device.spec.layer.value

    def test_devices_in_inverts_assignment(self):
        part = self._infra().partition()
        for zone in part.zones:
            members = part.devices_in(zone)
            assert members
            assert all(part.assignment[d] == zone for d in members)

    def test_min_cross_latency_bounds_every_cross_link(self):
        infra = self._infra()
        part = infra.partition()
        assert part.cross_links
        by_key = {link.key(): link for link in infra.network.links}
        latencies = [by_key[key].effective_latency()
                     for key in part.cross_links]
        assert part.min_cross_latency_s == min(latencies)

    def test_callable_and_mapping_partitions_agree(self):
        infra = self._infra()
        by_call = infra.partition(
            by=lambda d: f"ring-{len(d.name) % 2}")
        mapping = {name: f"ring-{len(name) % 2}"
                   for name in infra.devices}
        by_map = infra.partition(by=mapping)
        assert by_call == by_map

    def test_single_zone_partition_cuts_no_links(self):
        infra = self._infra()
        part = infra.partition(by=lambda d: "everything")
        assert part.zones == ("everything",)
        assert part.cross_links == ()
        assert part.min_cross_latency_s == float("inf")


class TestEpochRelay:
    def test_cross_zone_delivery_at_send_plus_latency(self):
        sharded = ShardedContext(seed=0, zones=("a", "b"), n_shards=2,
                                 link_latency_s=0.5)
        ctx_a, ctx_b = sharded.zone("a"), sharded.zone("b")
        got = []
        ctx_b.subscribe("app.ping",
                        lambda t, p: got.append((ctx_b.now, p["n"])))

        def sender():
            yield ctx_a.sim.timeout(1.25)
            ctx_a.publish("app.ping", {"n": 1})
            yield ctx_a.sim.timeout(2.0)
            ctx_a.publish("app.ping", {"n": 2})

        ctx_a.sim.process(sender())
        sharded.run(until=10.0)
        assert got == [(1.75, 1), (3.75, 2)]

    def test_local_delivery_stays_synchronous(self):
        sharded = ShardedContext(seed=0, zones=("a", "b"), n_shards=2,
                                 link_latency_s=0.5)
        ctx_a = sharded.zone("a")
        got = []
        ctx_a.subscribe("app.ping",
                        lambda t, p: got.append(ctx_a.now))

        def sender():
            yield ctx_a.sim.timeout(1.25)
            ctx_a.publish("app.ping", {"n": 1})

        ctx_a.sim.process(sender())
        sharded.run(until=5.0)
        assert got == [1.25]

    def test_relay_is_single_hop_no_echo(self):
        """Three zones all subscribed to the same topic: one publish
        reaches each remote zone exactly once and is never re-forwarded
        by a destination (no echo storm)."""
        sharded = ShardedContext(seed=0, zones=("a", "b", "c"),
                                 n_shards=3, link_latency_s=0.5)
        got = {name: [] for name in ("a", "b", "c")}
        for name in ("a", "b", "c"):
            ctx = sharded.zone(name)
            ctx.subscribe("app.broadcast",
                          lambda t, p, _n=name: got[_n].append(p["n"]))

        ctx_a = sharded.zone("a")

        def sender():
            yield ctx_a.sim.timeout(1.0)
            ctx_a.publish("app.broadcast", {"n": 7})

        ctx_a.sim.process(sender())
        sharded.run(until=20.0)
        assert got == {"a": [7], "b": [7], "c": [7]}

    def test_multiple_matching_patterns_deliver_once_per_subscription(self):
        """A publish matching several tapped patterns crosses the relay
        once; the destination bus then fans it out normally."""
        sharded = ShardedContext(seed=0, zones=("a", "b"), n_shards=2,
                                 link_latency_s=0.5)
        ctx_a, ctx_b = sharded.zone("a"), sharded.zone("b")
        got = []
        ctx_b.subscribe("app.*", lambda t, p: got.append(("star", t)))
        ctx_b.subscribe("app.ping", lambda t, p: got.append(("exact", t)))

        def sender():
            yield ctx_a.sim.timeout(1.0)
            ctx_a.publish("app.ping", {"n": 1})

        ctx_a.sim.process(sender())
        sharded.run(until=5.0)
        assert sorted(got) == [("exact", "app.ping"), ("star", "app.ping")]
        relay_records = [rec for rec in ctx_b.trace
                         if rec.topic == "shard.relay.deliver"]
        assert len(relay_records) == 1
        assert relay_records[0].payload["count"] == 1

    def test_cross_zone_subs_without_latency_raise(self):
        sharded = ShardedContext(seed=0, zones=("a", "b"), n_shards=2)
        sharded.zone("b").subscribe("app.ping", lambda t, p: None)
        with pytest.raises(ConfigurationError):
            sharded.run(until=1.0)

    def test_subscription_added_mid_run_takes_effect_at_barrier(self):
        sharded = ShardedContext(seed=0, zones=("a", "b"), n_shards=2,
                                 link_latency_s=1.0)
        ctx_a, ctx_b = sharded.zone("a"), sharded.zone("b")
        got = []

        def sender():
            while True:
                yield ctx_a.sim.timeout(1.0)
                ctx_a.publish("app.tick", {"t": ctx_a.now})

        ctx_a.sim.process(sender())
        sharded.run(until=3.0)
        assert got == []
        ctx_b.subscribe("app.tick", lambda t, p: got.append(p["t"]))
        sharded.run(until=6.0)
        assert got  # ticks published after the subscription barrier


class TestShardedContextShape:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ShardedContext(zones=())
        with pytest.raises(ConfigurationError):
            ShardedContext(zones=("a", "a"))
        with pytest.raises(ConfigurationError):
            ShardedContext(zones=("a",), link_latency_s=0.0)
        with pytest.raises(ConfigurationError):
            ShardedContext(zones=("a",), epoch_s=-1.0)
        with pytest.raises(ConfigurationError):
            ShardedContext(zones=("a",), barrier_record_every=0)

    def test_run_horizon_validation(self):
        sharded = ShardedContext(zones=("a",))
        with pytest.raises(ConfigurationError):
            sharded.run(until=float("inf"))
        sharded.run(until=5.0)
        with pytest.raises(ConfigurationError):
            sharded.run(until=1.0)

    def test_shard_assignment_is_contiguous_and_clamped(self):
        sharded = ShardedContext(zones=("a", "b", "c"), n_shards=99,
                                 link_latency_s=1.0)
        assert sharded.n_shards == 3
        ranks = [sharded.shard_of(name) for name in ("a", "b", "c")]
        assert ranks == sorted(ranks)
        assert sharded.zones == ["a", "b", "c"]

    def test_unknown_zone_raises(self):
        sharded = ShardedContext(zones=("a",))
        with pytest.raises(NotFoundError):
            sharded.zone("nope")

    def test_epoch_grid_is_anchored_at_start(self):
        sharded = ShardedContext(zones=("a", "b"), n_shards=2,
                                 link_latency_s=0.5)
        sharded.run(until=2.0)
        assert sharded.epoch == 4
        assert sharded.now == 2.0


class TestMergedTrace:
    @staticmethod
    def _run():
        sharded = ShardedContext(seed=5, zones=("a", "b"), n_shards=2,
                                 link_latency_s=0.5)
        for name in ("a", "b"):
            fleet = DeviceFleet(name, 3, ctx=sharded.zone(name),
                                fail_rate_per_s=5e-3)
            fleet.start(1.0)
        sharded.run(until=10.0)
        return sharded

    def test_jsonl_global_seq_and_time_order(self):
        sharded = self._run()
        lines = sharded.to_jsonl().split("\n")
        objs = [json.loads(line) for line in lines]
        assert [o["seq"] for o in objs] == list(range(len(objs)))
        times = [o["time_s"] for o in objs]
        assert times == sorted(times)
        assert {o["zone"] for o in objs} == {"a", "b"}

    def test_digest_is_sha256_of_jsonl(self):
        sharded = self._run()
        expected = hashlib.sha256(sharded.to_jsonl().encode()).hexdigest()
        assert sharded.digest() == expected

    def test_export_jsonl_roundtrip(self, tmp_path):
        sharded = self._run()
        path = tmp_path / "trace.jsonl"
        written = sharded.export_jsonl(path)
        text = path.read_text()
        assert text.endswith("\n")
        assert written == len(text.splitlines())
        assert text.rstrip("\n") == sharded.to_jsonl()

    def test_partition_assign_records_present(self):
        sharded = ShardedContext(seed=1, zones=("a", "b"), n_shards=2,
                                 link_latency_s=0.25)
        records = [rec for name in ("a", "b")
                   for rec in sharded.zone(name).trace
                   if rec.topic == "shard.partition.assign"]
        assert len(records) == 2
        assert {rec.payload["zone"] for rec in records} == {"a", "b"}
        for rec in records:
            assert rec.payload["lookahead_s"] == 0.25
