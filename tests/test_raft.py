"""Tests for the from-scratch Raft implementation."""

import random

import pytest

from repro.core.errors import ConsensusError
from repro.kb.raft import RaftCluster, Role


def make_cluster(n=3, seed=0, **kwargs):
    applied = {f"n{i}": [] for i in range(n)}
    cluster = RaftCluster(
        [f"n{i}" for i in range(n)],
        random.Random(seed),
        apply_fns={name: applied[name].append for name in applied},
        **kwargs,
    )
    return cluster, applied


class TestElection:
    def test_single_leader_elected(self):
        cluster, _ = make_cluster()
        leader = cluster.run_until_leader()
        assert leader in cluster.nodes
        roles = [n.role for n in cluster.nodes.values()]
        assert roles.count(Role.LEADER) == 1

    def test_leader_stable_without_failures(self):
        cluster, _ = make_cluster()
        leader = cluster.run_until_leader()
        term = cluster.nodes[leader].current_term
        cluster.tick(200)
        assert cluster.leader() == leader
        assert cluster.nodes[leader].current_term == term

    def test_new_leader_after_leader_crash(self):
        cluster, _ = make_cluster(n=5)
        first = cluster.run_until_leader()
        cluster.stop(first)
        second = cluster.run_until_leader()
        assert second != first

    def test_no_leader_without_majority(self):
        cluster, _ = make_cluster(n=3)
        leader = cluster.run_until_leader()
        others = [n for n in cluster.nodes if n != leader]
        cluster.stop(others[0])
        cluster.stop(others[1])
        cluster.stop(leader)
        cluster.restart(leader)  # alone: can never win an election
        cluster.tick(200)
        # The sole survivor keeps campaigning but never wins.
        assert cluster.leader() is None
        assert cluster.nodes[leader].role is not Role.LEADER

    def test_isolated_leader_superseded(self):
        cluster, _ = make_cluster(n=3, seed=3)
        old = cluster.run_until_leader()
        cluster.isolate(old)
        cluster.tick(100)
        live_leaders = [name for name, n in cluster.nodes.items()
                        if n.role is Role.LEADER and name != old]
        assert len(live_leaders) == 1
        # The new leader's term exceeds the isolated one's original term.
        assert cluster.nodes[live_leaders[0]].current_term > 1

    def test_five_node_cluster_tolerates_two_failures(self):
        cluster, _ = make_cluster(n=5, seed=7)
        leader = cluster.run_until_leader()
        others = [n for n in cluster.nodes if n != leader]
        cluster.stop(others[0])
        cluster.stop(others[1])
        cluster.propose({"k": 1})  # still has a 3/5 majority
        cluster.tick(30)
        live = [n for n in cluster.nodes
                if n not in (others[0], others[1])]
        assert all({"k": 1} in
                   [e.command for e in cluster.nodes[n].log
                    if e.command is not None]
                   for n in live)


class TestReplication:
    def test_commands_apply_on_all_replicas(self):
        cluster, applied = make_cluster()
        for i in range(5):
            cluster.propose(i)
        cluster.tick(30)  # let followers learn the commit index
        for log in applied.values():
            assert log == [0, 1, 2, 3, 4]

    def test_commit_requires_majority(self):
        cluster, applied = make_cluster(n=3, seed=1)
        leader = cluster.run_until_leader()
        others = [n for n in cluster.nodes if n != leader]
        cluster.partition(leader, others[0])
        cluster.partition(leader, others[1])
        node = cluster.nodes[leader]
        node.propose("lost")
        cluster.tick(50)
        assert node.commit_index == 0
        assert all(log == [] for log in applied.values())

    def test_minority_leader_entry_overwritten(self):
        """The core Raft safety property: an uncommitted entry on an
        isolated leader is replaced by the new majority's entries."""
        cluster, applied = make_cluster(n=3, seed=5)
        old = cluster.run_until_leader()
        cluster.isolate(old)
        cluster.nodes[old].propose("doomed")
        cluster.tick(80)  # majority elects a new leader
        cluster.propose("survives")
        cluster.heal()
        cluster.tick(100)
        for name, log in applied.items():
            assert "doomed" not in log, name
            assert "survives" in log, name

    def test_crashed_follower_catches_up(self):
        cluster, applied = make_cluster(n=3, seed=2)
        leader = cluster.run_until_leader()
        follower = next(n for n in cluster.nodes if n != leader)
        cluster.stop(follower)
        for i in range(4):
            cluster.propose(i)
        cluster.restart(follower)
        cluster.tick(100)
        assert applied[follower] == [0, 1, 2, 3]

    def test_replication_with_message_loss(self):
        cluster, applied = make_cluster(n=3, seed=4, drop_probability=0.2)
        for i in range(5):
            cluster.propose(i, settle_ticks=200)
        cluster.tick(200)
        for log in applied.values():
            assert log == [0, 1, 2, 3, 4]

    def test_logs_never_diverge_after_commit(self):
        """Applied prefixes across replicas are always consistent."""
        cluster, applied = make_cluster(n=5, seed=6, drop_probability=0.1)
        for i in range(8):
            cluster.propose(i, settle_ticks=300)
        cluster.tick(300)
        logs = list(applied.values())
        reference = max(logs, key=len)
        for log in logs:
            assert log == reference[:len(log)]


class TestClientInterface:
    def test_propose_on_follower_raises(self):
        cluster, _ = make_cluster()
        leader = cluster.run_until_leader()
        follower = next(n for n in cluster.nodes if n != leader)
        with pytest.raises(ConsensusError):
            cluster.nodes[follower].propose("x")

    def test_leader_hint_points_to_leader(self):
        cluster, _ = make_cluster()
        leader = cluster.run_until_leader()
        cluster.tick(30)
        for name, node in cluster.nodes.items():
            if name != leader:
                assert node.leader_hint == leader

    def test_empty_cluster_rejected(self):
        with pytest.raises(ConsensusError):
            RaftCluster([], random.Random(0))

    def test_single_node_cluster_self_elects(self):
        cluster, applied = make_cluster(n=1)
        cluster.propose("solo")
        assert applied["n0"] == ["solo"]

    def test_message_accounting(self):
        cluster, _ = make_cluster()
        cluster.run_until_leader()
        cluster.tick(50)
        assert cluster.messages_sent > 0
        cluster.isolate("n0")
        cluster.tick(20)
        assert cluster.messages_dropped > 0
