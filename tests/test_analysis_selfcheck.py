"""End-to-end checks of the `python -m repro.analysis` CLI.

This is the acceptance gate: the repo must lint clean against its
committed baseline, and a planted violation must fail `--check`.
"""

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def run_cli(*args, cwd=REPO_ROOT):
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        cwd=cwd, capture_output=True, text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"})


class TestSelfLint:
    def test_repo_passes_check_against_baseline(self):
        result = run_cli("--check")
        assert result.returncode == 0, result.stdout + result.stderr

    def test_planted_violation_fails_check(self, tmp_path):
        bad = tmp_path / "planted.py"
        bad.write_text("import random\nx = random.random()\n")
        result = run_cli("--check", "--root", str(REPO_ROOT), str(bad))
        assert result.returncode == 1
        assert "global-random" in result.stdout

    def test_planted_violation_visible_in_json(self, tmp_path):
        bad = tmp_path / "planted.py"
        bad.write_text("import random\nx = random.random()\n")
        result = run_cli("--json", "--root", str(REPO_ROOT), str(bad))
        payload = json.loads(result.stdout)
        assert payload["summary"]["new"] == 1
        assert payload["new"][0]["rule"] == "global-random"

    def test_write_baseline_then_check_passes(self, tmp_path):
        bad = tmp_path / "planted.py"
        bad.write_text("import random\nx = random.random()\n")
        baseline = tmp_path / "baseline.json"
        result = run_cli("--write-baseline", "--baseline", str(baseline),
                         "--root", str(REPO_ROOT), str(bad))
        assert result.returncode == 0
        result = run_cli("--check", "--baseline", str(baseline),
                         "--root", str(REPO_ROOT), str(bad))
        assert result.returncode == 0

    def test_unknown_rule_is_usage_error(self):
        result = run_cli("--rules", "no-such-rule")
        assert result.returncode == 2

    def test_nonexistent_path_is_usage_error(self):
        result = run_cli("--check", "/no/such/dir")
        assert result.returncode == 2
        assert "no such path" in result.stderr

    def test_rule_filter_runs_subset(self, tmp_path):
        bad = tmp_path / "planted.py"
        bad.write_text("import random\nx = random.random()\n"
                       "def f(items=[]):\n    return items\n")
        result = run_cli("--json", "--rules", "mutable-default",
                         "--root", str(REPO_ROOT), str(bad))
        payload = json.loads(result.stdout)
        rules = {f["rule"] for f in payload["new"]}
        assert rules == {"mutable-default"}


class TestToscaMode:
    def test_valid_template_exits_zero(self, tmp_path):
        template = tmp_path / "svc.yaml"
        template.write_text("""
tosca_definitions_version: myrtus_tosca_1_0
metadata: {template_name: demo}
topology_template:
  node_templates:
    edge1:
      type: myrtus.nodes.EdgeDevice
      properties: {device_kind: gateway}
    app:
      type: myrtus.nodes.Container
      properties:
        image: registry/app:1
        cpu_millicores: 250
        memory_bytes: 1048576
      requirements:
        - host: edge1
""")
        result = run_cli("tosca", str(template))
        assert result.returncode == 0, result.stdout + result.stderr

    def test_dangling_target_exits_nonzero(self, tmp_path):
        template = tmp_path / "svc.yaml"
        template.write_text("""
tosca_definitions_version: myrtus_tosca_1_0
metadata: {template_name: demo}
topology_template:
  node_templates:
    app:
      type: myrtus.nodes.Container
      properties:
        image: registry/app:1
        cpu_millicores: 250
        memory_bytes: 1048576
      requirements:
        - host: missing-host
""")
        result = run_cli("tosca", str(template))
        assert result.returncode == 1
        assert "unknown template" in result.stdout

    def test_missing_file_is_usage_error(self):
        result = run_cli("tosca", "/no/such/file.yaml")
        assert result.returncode == 2


class TestBaselineFile:
    def test_committed_baseline_is_empty(self):
        # all pre-existing findings were fixed in this PR, so the
        # committed baseline must carry zero accepted findings
        data = json.loads((REPO_ROOT / "analysis-baseline.json")
                          .read_text())
        assert data["version"] == 1
        assert data["entries"] == []
