"""Tests pinning the hot-path optimizations' semantics.

The perf pass (benchmarks/perf) rewired event-bus dispatch, the DES
kernel, trace serialization and placement-KPI estimation for speed.
These tests pin the contract that made those rewrites safe: compiled
topic matching is extensionally equal to the reference segment matcher,
dispatch caches invalidate on every (un)subscribe, cost caches
invalidate on every infrastructure generation bump, and the memoized
objective scores exactly like the direct one.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.continuum import Simulator, Task, TaskRequirements, \
    build_reference_infrastructure
from repro.continuum.faults import FaultInjector
from repro.continuum.workload import Application, KernelClass
from repro.core.events import EventBus, _segments_match, topic_matches
from repro.mirto.placement import (
    Placement,
    PlacementConstraints,
    PlacementCostCache,
    PsoPlacement,
    estimate_placement_kpis,
)
from repro.runtime.trace import TraceRecorder

# -- compiled topic matching == reference matcher ---------------------------

_PATTERN_SEGMENTS = st.sampled_from(["a", "b", "c", "ab", "*", "**"])
_TOPIC_SEGMENTS = st.sampled_from(["a", "b", "c", "ab", "d"])
_patterns = st.lists(_PATTERN_SEGMENTS, min_size=1, max_size=6) \
    .map(".".join)
_topics = st.lists(_TOPIC_SEGMENTS, min_size=1, max_size=6).map(".".join)


class TestCompiledMatching:
    @settings(max_examples=500, deadline=None)
    @given(pattern=_patterns, topic=_topics)
    def test_compiled_equals_reference(self, pattern, topic):
        """topic_matches (compiled) ≡ _segments_match (reference)."""
        expected = _segments_match(pattern.split("."), topic.split("."))
        assert topic_matches(pattern, topic) == expected

    def test_mid_doublestar_specializations(self):
        # One case per compiled tier: exact, trailing **, *-only, NFA.
        assert topic_matches("a.b.c", "a.b.c")
        assert not topic_matches("a.b.c", "a.b")
        assert topic_matches("a.**", "a.x.y.z")
        assert topic_matches("a.**", "a")
        assert not topic_matches("a.**", "b.x")
        assert topic_matches("a.*.c", "a.b.c")
        assert not topic_matches("a.*.c", "a.b.x.c")
        assert topic_matches("a.**.c", "a.c")
        assert topic_matches("a.**.c", "a.x.y.c")
        assert not topic_matches("a.**.c", "a.x.y")
        assert topic_matches("**.b.**", "a.b.c")

    @settings(max_examples=200, deadline=None)
    @given(pattern=_patterns, topic=_topics)
    def test_bus_delivery_equals_reference(self, pattern, topic):
        """End-to-end: a subscription delivers iff the reference matches."""
        bus = EventBus()
        hits = []
        bus.subscribe(pattern, lambda t, p: hits.append(t))
        bus.publish(topic)
        expected = _segments_match(pattern.split("."), topic.split("."))
        assert bool(hits) == expected


class TestDispatchCacheInvalidation:
    def test_unsubscribe_invalidates_cached_dispatch(self):
        """Regression: a cached dispatch list must drop unsubscribed subs."""
        bus = EventBus()
        calls = []
        bus.subscribe("a.b", lambda t, p: calls.append("exact"))
        wild = bus.subscribe("a.*", lambda t, p: calls.append("wild"))
        bus.publish("a.b")  # populates the topic's dispatch cache
        assert sorted(calls) == ["exact", "wild"]
        bus.unsubscribe(wild)
        calls.clear()
        bus.publish("a.b")
        assert calls == ["exact"]

    def test_subscribe_invalidates_cached_dispatch(self):
        bus = EventBus()
        calls = []
        bus.subscribe("a.b", lambda t, p: calls.append("first"))
        bus.publish("a.b")
        bus.subscribe("a.**", lambda t, p: calls.append("late"))
        calls.clear()
        bus.publish("a.b")
        assert calls == ["first", "late"]

    def test_compaction_preserves_delivery_order(self):
        bus = EventBus()
        calls = []
        subs = [bus.subscribe("t", lambda t, p, i=i: calls.append(i))
                for i in range(8)]
        for sub in subs[:5]:  # force tombstone compaction
            bus.unsubscribe(sub)
        bus.publish("t")
        assert calls == [5, 6, 7]


# -- placement cost cache ---------------------------------------------------

def _app():
    app = Application("hot")
    reqs = TaskRequirements(latency_budget_s=10.0)
    app.add_task(Task("ingest", 200, input_bytes=100_000,
                      requirements=reqs))
    app.add_task(Task("process", 5000, kernel=KernelClass.DSP,
                      requirements=reqs))
    app.add_task(Task("report", 100, requirements=reqs))
    app.connect("ingest", "process", 100_000)
    app.connect("process", "report", 5_000)
    return app


class TestPlacementCostCache:
    def test_cached_kpis_equal_uncached(self):
        infra = build_reference_infrastructure(Simulator())
        app = _app()
        cache = PlacementCostCache(infra)
        rng = random.Random(3)
        names = list(infra.devices)
        for _ in range(20):
            assignment = {t.name: rng.choice(names) for t in app.tasks}
            placement = Placement(assignment, "test")
            plain = estimate_placement_kpis(app, placement, infra,
                                            source_device="mc-00-0")
            cached = estimate_placement_kpis(app, placement, infra,
                                             source_device="mc-00-0",
                                             cache=cache)
            assert cached == plain

    def test_generation_bumps_on_topology_and_faults(self):
        infra = build_reference_infrastructure(Simulator())
        g0 = infra.generation
        infra.network.add_link("mc-00-0", "cloud-00",
                               latency_s=0.5, bandwidth_bps=1e6)
        assert infra.generation > g0
        g1 = infra.generation
        injector = FaultInjector(infra)
        injector.inject_now("mc-00-0")
        assert infra.generation > g1
        g2 = infra.generation
        injector.repair_now("mc-00-0")
        assert infra.generation > g2

    def test_cache_refreshes_after_topology_change(self):
        infra = build_reference_infrastructure(Simulator())
        cache = PlacementCostCache(infra)
        stale = cache.transfer("mc-00-0", "cloud-01", 10_000)
        # A direct fat link changes the best route; the cache must see it.
        infra.network.add_link("mc-00-0", "cloud-01",
                               latency_s=1e-6, bandwidth_bps=1e12)
        cache.refresh()
        fresh = cache.transfer("mc-00-0", "cloud-01", 10_000)
        assert fresh == infra.network.estimate_transfer_time(
            "mc-00-0", "cloud-01", 10_000)
        assert fresh < stale

    def test_compiled_objective_equals_direct(self):
        infra = build_reference_infrastructure(Simulator())
        app = _app()
        constraints = PlacementConstraints(source_device="mc-00-0")
        strategy = PsoPlacement(random.Random(5))
        tasks = app.tasks
        options = [strategy._eligible_or_raise(t, infra, constraints)
                   for t in tasks]
        compiled = strategy._compiled_objective(
            app, infra, tasks, options, constraints.source_device)
        rng = random.Random(11)
        for _ in range(25):
            choices = [rng.randrange(len(opts)) for opts in options]
            direct = strategy._objective(app, infra, tasks, options,
                                         choices, constraints.source_device)
            assert compiled(choices) == direct
            assert compiled(choices) == direct  # memo hit, same value

    def test_same_seed_same_placement(self):
        results = []
        for _ in range(2):
            infra = build_reference_infrastructure(Simulator())
            placement = PsoPlacement(random.Random(7), iterations=5).place(
                _app(), infra, PlacementConstraints(source_device="mc-00-0"))
            results.append(placement.assignment)
        assert results[0] == results[1]


class TestTraceRecorderDropCount:
    def test_dropped_count_tracks_evictions(self):
        recorder = TraceRecorder(capacity=4)
        for i in range(10):
            recorder.record(float(i), "t", {"i": i})
        assert len(recorder) == 4
        assert recorder.total_recorded == 10
        assert recorder.dropped_count == 6
        assert recorder.dropped_count == recorder.dropped
        # seq keeps climbing monotonically across evictions
        assert [r.seq for r in recorder] == [6, 7, 8, 9]


class TestMidGlobGuards:
    """The mid-``**`` NFA matcher gained literal prefix/suffix guards
    (the midglob.1000 optimization). These pin the guards' semantics
    and the speedup they exist for."""

    def test_suffix_guard_edge_cases(self):
        # topic == suffix (the ** matches zero segments)
        assert topic_matches("**.g7", "g7")
        assert topic_matches("**.g7", "x.g7")
        # a longer final segment must not satisfy the suffix via endswith
        assert not topic_matches("**.g7", "x.g77")
        assert not topic_matches("**.g7", "xg7")
        # multi-segment suffix
        assert topic_matches("a.**.metric.g1", "a.metric.g1")
        assert topic_matches("a.**.metric.g1", "a.b.c.metric.g1")
        assert not topic_matches("a.**.metric.g1", "a.b.metric.g2")

    def test_prefix_guard_edge_cases(self):
        assert topic_matches("a.b.**.c", "a.b.c")
        assert not topic_matches("a.b.**.c", "a.bb.x.c")
        assert not topic_matches("a.b.**.c", "ab.x.c")
        assert topic_matches("a.b.**.c", "a.b.x.y.c")

    def test_guarded_midglob_dispatch_speedup(self):
        """The guards must reject non-matching mid-glob patterns at
        least 3x faster than the raw NFA walk — the midglob.1000
        improvement asserted relatively, machine-independently, on the
        benchmark's own workload shape."""
        from time import perf_counter

        from repro.core.events import _nfa_match, compile_pattern

        patterns = [f"bench.glob.**.g{i % 16}" for i in range(1000)]
        compiled = [compile_pattern(p) for p in patterns]
        segs = [p.split(".") for p in patterns]
        topics = [f"bench.glob.a.b.g{j % 16}" for j in range(32)]
        parts = [t.split(".") for t in topics]

        def run_guarded():
            for topic in topics:
                for matcher in compiled:
                    matcher(topic)

        def run_reference():
            for tops in parts:
                for pat in segs:
                    _nfa_match(pat, tops)

        def best_of(fn, repeats=5):
            best = float("inf")
            for _ in range(repeats):
                start = perf_counter()
                fn()
                best = min(best, perf_counter() - start)
            return best

        # semantics unchanged: guarded == reference on this workload
        for topic, tops in zip(topics, parts):
            for matcher, pat in zip(compiled, segs):
                assert matcher(topic) == _nfa_match(pat, tops)

        speedup = best_of(run_reference) / best_of(run_guarded)
        assert speedup >= 3.0, f"midglob guard speedup only {speedup:.2f}x"
