"""Traceability: the paper's named challenges and objectives as tests.

Each test maps one labelled claim from the paper (CH1-CH3, OBJ1-OBJ3)
to an executable demonstration, so the reproduction's coverage of the
paper's own framing is checkable with `pytest -k paper_claims`.
"""

import pytest

from repro.continuum.devices import Layer
from repro.continuum.workload import KernelClass, PrivacyClass
from repro.dpe import ComponentModel, DesignFlow, ScenarioModel
from repro.mirto import ApiRequest, CognitiveEngine, EngineConfig
from repro.tosca import CsarArchive
from repro.usecases import mobility, telerehab


@pytest.fixture(scope="module")
def engine():
    return CognitiveEngine(EngineConfig(seed=99))


class TestCH1HorizontalAndVerticalOrchestration:
    """CH1: integrating cloud and edge 'requires the definition of a HW
    and SW architecture that allows for horizontal (intra-layer) and
    vertical (inter-layer) orchestration on heterogeneous components'."""

    def test_both_orchestration_directions_occur(self, engine):
        scenario = mobility.build_scenario(vehicles=2)
        for _ in range(3):
            engine.manager.deploy(scenario.to_service_template(),
                                  strategy="round-robin")
        offloads = engine.infrastructure.offloads
        assert offloads.horizontal > 0, "intra-layer movement missing"
        assert offloads.vertical_up + offloads.vertical_down > 0, \
            "inter-layer movement missing"

    def test_components_are_heterogeneous(self, engine):
        kinds = {d.spec.kind for d in
                 engine.infrastructure.devices.values()}
        assert len(kinds) == 6  # all Fig. 2 families


class TestCH2NoSilos:
    """CH2: silos prevent applications from 'being seamlessly deployed
    and dynamically updated for continuous optimization'."""

    def test_one_request_spans_all_layers(self, engine):
        scenario = mobility.build_scenario(vehicles=2)
        outcome = engine.manager.deploy(scenario.to_service_template(),
                                        strategy="greedy")
        layers = {
            engine.infrastructure.device(d).spec.layer
            for d in outcome.placement.assignment.values()
        }
        assert len(layers) >= 2, "deployment stuck in one silo"

    def test_dynamic_update_loop_exists(self, engine):
        record = engine.mape_iterate(1)[0]
        assert record.sensed_components == len(engine.infrastructure)


class TestCH3Interoperability:
    """CH3: 'partially integrated toolchains' — MYRTUS answers with one
    interoperable environment from model to artifact."""

    def test_single_source_reaches_multiple_backends(self):
        """One scenario model produces TOSCA, threat countermeasures,
        FPGA artifacts, C sources, and runtime metadata — no manual
        glue between tools."""
        spec = DesignFlow(seed=0).run(telerehab.build_scenario(),
                                      telerehab.build_adt())
        inventory = spec.artifact_inventory
        assert any(p.startswith("verilog/") for p in inventory)
        assert any(p.startswith("src/") and p.endswith(".c")
                   for p in inventory)
        assert any(p.startswith("bitstreams/") for p in inventory)
        assert "meta/operating-points.json" in inventory
        assert spec.countermeasures

    def test_csar_is_the_interchange_format(self, engine):
        spec = DesignFlow(seed=1).run(
            mobility.build_scenario(vehicles=1))
        response = engine.agent().handle(ApiRequest(
            "POST", "/deployments", token=engine.operator_token(),
            body={"csar": spec.csar_bytes}))
        assert response.status == 201


class TestOBJ1ReferenceInfrastructure:
    """OBJ1: 'a reference infrastructure where a diversity of fog and
    edge devices converge with the cloud to form a computing
    continuum'."""

    def test_reference_infrastructure_has_every_layer(self, engine):
        report = engine.infrastructure.layer_report()
        assert set(report) == {"edge", "fog", "cloud"}

    def test_all_components_registered_in_kb(self, engine):
        snapshot = engine.registry.snapshot()
        assert set(snapshot) == set(engine.infrastructure.devices)


class TestOBJ2CognitiveOrchestration:
    """OBJ2: MIRTO guarantees 'high performance and energy efficiency,
    preserving security and trust'."""

    def test_performance_and_energy_vs_naive(self, engine):
        scenario = mobility.build_scenario(vehicles=2)
        naive = engine.manager.deploy(scenario.to_service_template(),
                                      strategy="random")
        cognitive = engine.manager.deploy(scenario.to_service_template(),
                                          strategy="aco")
        assert cognitive.report.makespan_s < naive.report.makespan_s
        assert cognitive.report.energy_j < naive.report.energy_j

    def test_security_preserved_during_orchestration(self, engine):
        scenario = telerehab.build_scenario()
        outcome = engine.manager.deploy(scenario.to_service_template(),
                                        strategy="aco")
        assert outcome.security_level == "high"
        for device_name in outcome.placement.assignment.values():
            device = engine.infrastructure.device(device_name)
            assert device.spec.max_security_level == "high"

    def test_privacy_preserved_during_orchestration(self, engine):
        scenario = telerehab.build_scenario()
        outcome = engine.manager.deploy(scenario.to_service_template(),
                                        strategy="greedy")
        device = engine.infrastructure.device(
            outcome.placement.device_of("pose-estimation"))
        assert device.spec.layer == Layer.EDGE


class TestOBJ3DesignEnvironment:
    """OBJ3: a DPE with 'cross-layer modelling, threat analysis, DSE,
    application modelling, components synthesis, and code generation'."""

    def test_every_named_capability_produces_output(self):
        scenario = mobility.build_scenario(vehicles=1)
        adt = mobility.build_adt()
        spec = DesignFlow(seed=2).run(scenario, adt)
        # cross-layer modelling -> TOSCA topology with policies
        assert spec.service.policies
        # threat analysis -> synthesized countermeasures
        assert spec.adt_result is not None
        assert spec.adt_result.risk_reduction > 0
        # DSE -> operating points
        assert spec.operating_points
        # components synthesis -> bitstream + verilog artifacts
        assert any(p.startswith("bitstreams/")
                   for p in spec.artifact_inventory)
        # code generation -> C sources
        assert any(p.endswith(".c") for p in spec.artifact_inventory)
        # KPI estimation -> model-based numbers
        assert spec.kpi_estimate.latency_s > 0
