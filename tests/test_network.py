"""Unit tests for the network substrate: topology, protocols, slicing."""

import pytest

from repro.core.errors import CapacityError, ConfigurationError, NotFoundError
from repro.continuum.simulator import Simulator
from repro.net import (
    CoapAdapter,
    HttpAdapter,
    Message,
    MqttAdapter,
    Network,
    SliceManager,
)
from repro.net.protocols import negotiate


def linear_network(sim):
    """a -- b -- c with distinct latencies/bandwidths."""
    net = Network(ctx=sim)
    net.add_link("a", "b", latency_s=0.010, bandwidth_bps=1e6)
    net.add_link("b", "c", latency_s=0.020, bandwidth_bps=2e6)
    return net


class TestTopology:
    def test_self_link_rejected(self):
        with pytest.raises(ConfigurationError):
            Network(ctx=Simulator()).add_link("a", "a", 0.01, 1e6)

    def test_path_and_latency(self):
        net = linear_network(Simulator())
        assert net.path("a", "c") == ["a", "b", "c"]
        assert net.path_latency("a", "c") == pytest.approx(0.030)

    def test_shortest_path_prefers_low_latency(self):
        net = linear_network(Simulator())
        net.add_link("a", "c", latency_s=0.005, bandwidth_bps=1e6)
        assert net.path("a", "c") == ["a", "c"]

    def test_unknown_host_raises(self):
        net = linear_network(Simulator())
        with pytest.raises(NotFoundError):
            net.path("a", "ghost")

    def test_disconnected_raises(self):
        net = linear_network(Simulator())
        net.add_host("island")
        with pytest.raises(NotFoundError):
            net.path("a", "island")

    def test_estimate_uses_bottleneck(self):
        net = linear_network(Simulator())
        # 1 MB over bottleneck 1e6 bps = 8 s + 30 ms latency.
        est = net.estimate_transfer_time("a", "c", 1_000_000)
        assert est == pytest.approx(8.030)

    def test_estimate_same_host_zero(self):
        net = linear_network(Simulator())
        assert net.estimate_transfer_time("a", "a", 12345) == 0.0


class TestTransfer:
    def test_transfer_takes_modelled_time(self):
        sim = Simulator()
        net = linear_network(sim)
        p = sim.process(net.transfer("a", "c", 100_000))
        result = sim.run(until=p)
        assert result.duration_s == pytest.approx(0.030 + 800_000 / 1e6)
        assert result.hops == 2

    def test_same_host_transfer_instant(self):
        sim = Simulator()
        net = linear_network(sim)
        p = sim.process(net.transfer("a", "a", 100_000))
        result = sim.run(until=p)
        assert result.duration_s == 0.0
        assert result.hops == 0

    def test_contention_slows_concurrent_flows(self):
        sim = Simulator()
        net = linear_network(sim)
        p1 = sim.process(net.transfer("a", "b", 100_000))
        p2 = sim.process(net.transfer("a", "b", 100_000))
        sim.run()
        solo_time = 0.010 + 800_000 / 1e6
        # First flow sees an empty link; second samples 1 active flow and
        # gets half the bandwidth.
        assert p1.value.duration_s == pytest.approx(solo_time)
        assert p2.value.duration_s > solo_time * 1.5

    def test_flow_counters_return_to_zero(self):
        sim = Simulator()
        net = linear_network(sim)
        sim.run(until=sim.process(net.transfer("a", "c", 1000)))
        assert all(link.active_flows == 0 for link in net.links)

    def test_bytes_accounted_per_link(self):
        sim = Simulator()
        net = linear_network(sim)
        sim.run(until=sim.process(net.transfer("a", "c", 1000,
                                               wire_overhead=100)))
        report = net.utilization_report()
        assert report[("a", "b")] == 1100
        assert report[("b", "c")] == 1100

    def test_hotspots_ranked(self):
        sim = Simulator()
        net = linear_network(sim)
        sim.run(until=sim.process(net.transfer("b", "c", 5000)))
        sim.run(until=sim.process(net.transfer("a", "b", 100)))
        hot = net.congestion_hotspots(top=1)
        assert hot[0].key() == ("b", "c")


class TestProtocols:
    def message(self):
        return Message(src="fpga-0", dst="gw-0", topic="telemetry",
                       payload={"util": 0.5, "temp": 41})

    def test_http_roundtrip(self):
        adapter = HttpAdapter()
        wire = adapter.frame(self.message())
        assert adapter.unframe(wire) == {"util": 0.5, "temp": 41}
        assert b"POST /telemetry" in wire

    def test_mqtt_roundtrip(self):
        adapter = MqttAdapter()
        assert adapter.unframe(adapter.frame(self.message())) == \
            self.message().payload

    def test_coap_roundtrip(self):
        adapter = CoapAdapter()
        assert adapter.unframe(adapter.frame(self.message())) == \
            self.message().payload

    def test_wire_bytes_exceed_payload(self):
        msg = self.message()
        for adapter in (HttpAdapter(), MqttAdapter(), CoapAdapter()):
            assert adapter.wire_bytes(msg) > len(msg.encode())

    def test_http_heaviest_overhead(self):
        msg = self.message()
        assert (HttpAdapter().wire_bytes(msg)
                > MqttAdapter().wire_bytes(msg))

    def test_handshake_latency_ordering(self):
        rtt = 0.05
        assert HttpAdapter().handshake_latency(rtt) > \
            MqttAdapter().handshake_latency(rtt) > \
            CoapAdapter().handshake_latency(rtt) == 0

    def test_negotiate_prefers_offered_order(self):
        adapter = negotiate(["mqtt", "http"], ["http", "mqtt", "coap"])
        assert adapter.name == "mqtt"

    def test_negotiate_no_common_raises(self):
        from repro.core.errors import ValidationError
        with pytest.raises(ValidationError):
            negotiate(["mqtt"], ["http"])

    def test_malformed_frame_rejected(self):
        from repro.core.errors import ValidationError
        with pytest.raises(ValidationError):
            HttpAdapter().unframe(b"garbage-without-separator")


class TestSlicing:
    def make(self):
        sim = Simulator()
        net = linear_network(sim)
        return net, SliceManager(net)

    def test_create_slice_reserves_fraction(self):
        net, mgr = self.make()
        mgr.create_slice("s1", "tenant", "a", "c", fraction=0.4)
        assert mgr.reserved_fraction("a", "b") == pytest.approx(0.4)
        assert mgr.reserved_fraction("b", "c") == pytest.approx(0.4)

    def test_slice_bandwidth_is_bottleneck_share(self):
        net, mgr = self.make()
        mgr.create_slice("s1", "t", "a", "c", fraction=0.5)
        assert mgr.slice_bandwidth("s1") == pytest.approx(0.5e6)

    def test_overcommit_rejected_atomically(self):
        net, mgr = self.make()
        mgr.create_slice("s1", "t", "a", "c", fraction=0.7)
        with pytest.raises(CapacityError):
            mgr.create_slice("s2", "t", "a", "b", fraction=0.5)
        # Nothing from the failed request may linger.
        assert mgr.reserved_fraction("a", "b") == pytest.approx(0.7)

    def test_release_restores_capacity(self):
        net, mgr = self.make()
        mgr.create_slice("s1", "t", "a", "c", fraction=0.7)
        mgr.release_slice("s1")
        assert mgr.reserved_fraction("a", "b") == pytest.approx(0.0)
        mgr.create_slice("s2", "t", "a", "b", fraction=0.9)

    def test_best_effort_bandwidth_shrinks(self):
        net, mgr = self.make()
        assert mgr.best_effort_bandwidth("a", "b") == pytest.approx(1e6)
        mgr.create_slice("s1", "t", "a", "b", fraction=0.25)
        assert mgr.best_effort_bandwidth("a", "b") == pytest.approx(0.75e6)

    def test_duplicate_name_rejected(self):
        net, mgr = self.make()
        mgr.create_slice("s1", "t", "a", "b", fraction=0.1)
        with pytest.raises(CapacityError):
            mgr.create_slice("s1", "t", "b", "c", fraction=0.1)

    def test_invalid_fraction_rejected(self):
        net, mgr = self.make()
        with pytest.raises(CapacityError):
            mgr.create_slice("s1", "t", "a", "b", fraction=1.5)

    def test_release_unknown_raises(self):
        net, mgr = self.make()
        with pytest.raises(NotFoundError):
            mgr.release_slice("ghost")
