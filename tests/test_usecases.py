"""Tests for the Smart Mobility and Telerehabilitation use cases."""

import pytest

from repro.continuum.devices import Layer
from repro.continuum.workload import PrivacyClass
from repro.dpe import DesignFlow, synthesize_countermeasures
from repro.mirto import CognitiveEngine, EngineConfig
from repro.tosca import ToscaValidator
from repro.usecases import mobility, run_sessions, telerehab


@pytest.fixture(scope="module")
def engine():
    return CognitiveEngine(EngineConfig(seed=3))


class TestMobilityScenario:
    def test_scenario_validates(self):
        service = mobility.build_scenario().to_service_template()
        assert ToscaValidator().check(service) == []

    def test_scales_with_fleet(self):
        small = mobility.build_scenario(vehicles=1)
        large = mobility.build_scenario(vehicles=8)
        assert large.to_application().total_megaops() \
            > small.to_application().total_megaops()

    def test_perception_is_accelerable_dsp(self):
        scenario = mobility.build_scenario()
        perception = next(c for c in scenario.components
                          if c.name == "perception")
        assert perception.accelerable
        assert perception.kernel.value == "dsp"

    def test_adt_synthesis_reduces_risk(self):
        adt = mobility.build_adt()
        result = synthesize_countermeasures(adt, budget=8.0)
        assert result.risk_reduction > 0.3

    def test_deploys_within_budget(self, engine):
        scenario = mobility.build_scenario(vehicles=2)
        outcome = engine.manager.deploy(scenario.to_service_template(),
                                        strategy="greedy")
        assert outcome.deadline_met

    def test_aggregated_stages_never_in_cloud(self, engine):
        scenario = mobility.build_scenario()
        outcome = engine.manager.deploy(scenario.to_service_template(),
                                        strategy="greedy")
        for component in ("v2x-aggregate", "fusion"):
            device = engine.infrastructure.device(
                outcome.placement.device_of(component))
            assert device.spec.layer != Layer.CLOUD


class TestTelerehabScenario:
    def test_scenario_validates(self):
        service = telerehab.build_scenario().to_service_template()
        assert ToscaValidator().check(service) == []

    def test_raw_video_components_marked_personal(self):
        scenario = telerehab.build_scenario()
        personal = {c.name for c in scenario.components
                    if c.privacy is PrivacyClass.RAW_PERSONAL}
        assert personal == {"capture", "pose-estimation"}

    def test_high_security_floor(self):
        assert telerehab.build_scenario().min_security_level == "high"

    def test_personal_data_stays_at_edge(self, engine):
        scenario = telerehab.build_scenario()
        outcome = engine.manager.deploy(scenario.to_service_template(),
                                        strategy="greedy")
        for component in ("capture", "pose-estimation"):
            device = engine.infrastructure.device(
                outcome.placement.device_of(component))
            assert device.spec.layer == Layer.EDGE

    def test_pose_runs_on_high_security_device(self, engine):
        scenario = telerehab.build_scenario()
        outcome = engine.manager.deploy(scenario.to_service_template(),
                                        strategy="greedy")
        device = engine.infrastructure.device(
            outcome.placement.device_of("pose-estimation"))
        assert device.spec.max_security_level == "high"

    def test_session_length_scales_assessment(self):
        short = telerehab.build_scenario(session_minutes=5)
        long = telerehab.build_scenario(session_minutes=40)
        short_assess = next(c for c in short.components
                            if c.name == "exercise-assessment")
        long_assess = next(c for c in long.components
                           if c.name == "exercise-assessment")
        assert long_assess.megaops > short_assess.megaops

    def test_adt_synthesis(self):
        result = synthesize_countermeasures(telerehab.build_adt(),
                                            budget=10.0)
        assert result.selected
        assert result.residual_probability \
            < result.baseline_probability


class TestDpeOnUseCases:
    @pytest.mark.parametrize("case", [mobility, telerehab])
    def test_full_design_flow(self, case):
        spec = DesignFlow(seed=0).run(case.build_scenario(),
                                      case.build_adt(),
                                      defence_budget=8.0)
        assert spec.operating_points
        assert spec.countermeasures
        assert any(path.startswith("bitstreams/")
                   for path in spec.artifact_inventory)


class TestSessionRunner:
    def test_stats_shape(self, engine):
        stats = run_sessions(engine, mobility.build_scenario(vehicles=1),
                             "greedy", sessions=3)
        assert stats.sessions == 3
        assert stats.mean_makespan_s > 0
        assert stats.p95_makespan_s >= stats.mean_makespan_s * 0.5
        assert 0 <= stats.deadline_hit_rate <= 1

    def test_cognitive_not_worse_than_random(self, engine):
        scenario = mobility.build_scenario(vehicles=2)
        random_stats = run_sessions(engine, scenario, "random",
                                    sessions=4)
        cognitive = run_sessions(engine, scenario, "pso", sessions=4)
        assert cognitive.mean_makespan_s \
            <= random_stats.mean_makespan_s * 1.1
