"""Unit tests for repro.core: RNG registry and event bus."""

from repro.core import RngRegistry, derive_seed, EventBus
from repro.core.events import topic_matches


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "net") == derive_seed(42, "net")

    def test_varies_with_name(self):
        assert derive_seed(42, "net") != derive_seed(42, "devices")

    def test_varies_with_root(self):
        assert derive_seed(1, "net") != derive_seed(2, "net")

    def test_fits_in_63_bits(self):
        assert 0 <= derive_seed(7, "x") < 2**63


class TestRngRegistry:
    def test_same_name_same_stream(self):
        reg = RngRegistry(1)
        assert reg.python("a") is reg.python("a")
        assert reg.numpy("a") is reg.numpy("a")

    def test_streams_are_independent(self):
        reg = RngRegistry(1)
        a = [reg.python("a").random() for _ in range(5)]
        b = [reg.python("b").random() for _ in range(5)]
        assert a != b

    def test_reproducible_across_registries(self):
        xs = [RngRegistry(9).python("s").random() for _ in range(3)]
        ys = [RngRegistry(9).python("s").random() for _ in range(3)]
        # Fresh registry each time restarts the stream at the same seed.
        assert xs[0] == ys[0]

    def test_fork_changes_streams(self):
        root = RngRegistry(3)
        child = root.fork("child")
        assert root.python("s").random() != child.python("s").random()

    def test_numpy_stream_deterministic(self):
        a = RngRegistry(5).numpy("n").integers(0, 1000, 10)
        b = RngRegistry(5).numpy("n").integers(0, 1000, 10)
        assert list(a) == list(b)


class TestTopicMatching:
    def test_exact(self):
        assert topic_matches("a.b", "a.b")
        assert not topic_matches("a.b", "a.c")

    def test_single_wildcard(self):
        assert topic_matches("a.*.c", "a.b.c")
        assert not topic_matches("a.*", "a.b.c")

    def test_double_wildcard(self):
        assert topic_matches("a.**", "a.b.c")
        assert topic_matches("a.**", "a.b")
        assert not topic_matches("b.**", "a.b")

    def test_length_mismatch(self):
        assert not topic_matches("a.b.c", "a.b")

    def test_mid_pattern_double_wildcard(self):
        assert topic_matches("a.**.z", "a.z")
        assert topic_matches("a.**.z", "a.b.z")
        assert topic_matches("a.**.z", "a.b.c.z")
        assert not topic_matches("a.**.z", "a.b.c")
        assert not topic_matches("a.**.z", "b.z")

    def test_double_wildcard_matches_zero_segments_at_tail(self):
        assert topic_matches("a.**", "a")

    def test_leading_double_wildcard(self):
        assert topic_matches("**.z", "z")
        assert topic_matches("**.z", "a.b.z")
        assert not topic_matches("**.z", "a.b")

    def test_single_wildcard_arity(self):
        # `*` matches exactly one segment, never zero or two.
        assert not topic_matches("a.*", "a")
        assert not topic_matches("a.*.c", "a.c")
        assert not topic_matches("a.*.c", "a.b.b.c")
        assert topic_matches("*.*", "a.b")
        assert not topic_matches("*.*", "a")


class TestEventBus:
    def test_delivers_to_matching_subscribers(self):
        bus = EventBus()
        seen = []
        bus.subscribe("metrics.*", lambda t, p: seen.append((t, p)))
        count = bus.publish("metrics.edge", 1)
        assert count == 1
        assert seen == [("metrics.edge", 1)]

    def test_non_matching_not_delivered(self):
        bus = EventBus()
        seen = []
        bus.subscribe("metrics.*", lambda t, p: seen.append(t))
        assert bus.publish("alerts.edge", None) == 0
        assert seen == []

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        sub = bus.subscribe("x", lambda t, p: seen.append(p))
        bus.publish("x", 1)
        bus.unsubscribe(sub)
        bus.publish("x", 2)
        assert seen == [1]

    def test_multiple_subscribers(self):
        bus = EventBus()
        seen = []
        bus.subscribe("x", lambda t, p: seen.append("a"))
        bus.subscribe("x", lambda t, p: seen.append("b"))
        assert bus.publish("x") == 2
        assert seen == ["a", "b"]

    def test_total_delivered(self):
        bus = EventBus()
        bus.subscribe("x", lambda t, p: None)
        bus.publish("x")
        bus.publish("x")
        assert bus.total_delivered == 2

    def test_unsubscribe_other_during_publish(self):
        # A handler that unsubscribes a later subscription mid-publish
        # prevents its delivery for the same event.
        bus = EventBus()
        seen = []
        subs = {}
        subs["a"] = bus.subscribe(
            "x", lambda t, p: (seen.append("a"),
                               bus.unsubscribe(subs["b"])))
        subs["b"] = bus.subscribe("x", lambda t, p: seen.append("b"))
        assert bus.publish("x") == 1
        assert seen == ["a"]
        bus.publish("x")
        assert seen == ["a", "a"]

    def test_self_unsubscribe_during_publish(self):
        bus = EventBus()
        seen = []
        subs = {}
        subs["once"] = bus.subscribe(
            "x", lambda t, p: (seen.append(p),
                               bus.unsubscribe(subs["once"])))
        assert bus.publish("x", 1) == 1
        assert bus.publish("x", 2) == 0
        assert seen == [1]

    def test_subscribe_during_publish_sees_only_later_events(self):
        bus = EventBus()
        seen = []

        def late_handler(t, p):
            seen.append(("late", p))

        def adder(t, p):
            seen.append(("adder", p))
            bus.subscribe("x", late_handler)

        sub = bus.subscribe("x", adder)
        assert bus.publish("x", 1) == 1
        bus.unsubscribe(sub)
        assert bus.publish("x", 2) == 1
        assert seen == [("adder", 1), ("late", 2)]
