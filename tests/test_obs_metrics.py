"""Unit tests for repro.obs.metrics: registry, instruments, exposition."""

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_exposition,
)


class TestNaming:
    def test_three_segments_required(self):
        with pytest.raises(ValueError):
            Counter("bus.publishes")
        with pytest.raises(ValueError):
            Gauge("publishes")
        Counter("runtime.bus.publishes")  # ok

    def test_segments_must_be_lowercase_identifiers(self):
        with pytest.raises(ValueError):
            Counter("Runtime.bus.publishes")
        with pytest.raises(ValueError):
            Counter("runtime..publishes")
        Counter("runtime.bus_v2.total_publishes")  # ok


class TestCounter:
    def test_inc(self):
        c = Counter("a.b.c")
        c.inc()
        c.inc(2)
        assert c.value == 3

    def test_negative_increment_rejected(self):
        c = Counter("a.b.c")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labels(self):
        c = Counter("a.b.c", label_key="topic")
        c.inc(label="x")
        c.inc(2, label="y")
        c.inc(label="x")
        assert c.value == 4
        assert c.labels == {"x": 2, "y": 2}

    def test_hot_path_direct_bump_idiom(self):
        c = Counter("a.b.c", label_key="topic")
        c.value += 1
        c.labels["t"] = c.labels.get("t", 0) + 1
        assert c.to_payload() == {"kind": "counter", "value": 1,
                                  "label_key": "topic", "labels": {"t": 1}}


class TestGauge:
    def test_set_and_read(self):
        g = Gauge("a.b.c")
        g.set(4.5)
        assert g.value == 4.5

    def test_callback_backed(self):
        state = [0]
        registry = MetricsRegistry()
        g = registry.gauge_callback("a.b.c", lambda: state[0])
        state[0] = 7
        assert g.value == 7
        with pytest.raises(RuntimeError):
            g.set(1)

    def test_callback_rebinds_on_reregistration(self):
        registry = MetricsRegistry()
        registry.gauge_callback("a.b.c", lambda: 1)
        g = registry.gauge_callback("a.b.c", lambda: 2)
        assert g.value == 2
        assert len(registry) == 1


class TestHistogram:
    def test_observations_bucketed(self):
        h = Histogram("a.b.c", buckets=(1.0, 10.0))
        for v in (0.5, 0.7, 5.0, 50.0):
            h.observe(v)
        assert h.counts == [2, 1, 1]  # <=1, <=10, +Inf
        assert h.count == 4
        assert h.sum == pytest.approx(56.2)

    def test_buckets_sorted_and_nonempty(self):
        h = Histogram("a.b.c", buckets=(10.0, 1.0))
        assert h.buckets == (1.0, 10.0)
        with pytest.raises(ValueError):
            Histogram("a.b.c", buckets=())

    def test_default_buckets(self):
        h = Histogram("a.b.c")
        assert h.buckets == DEFAULT_BUCKETS


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b.c") is registry.counter("a.b.c")
        assert len(registry) == 1

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a.b.c")
        with pytest.raises(TypeError):
            registry.gauge("a.b.c")
        with pytest.raises(TypeError):
            registry.gauge_callback("a.b.c", lambda: 0)

    def test_payload_sorted_and_deterministic(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("z.y.x").inc(3)
            registry.gauge("a.b.c").set(1.5)
            h = registry.histogram("m.n.o", buckets=(1.0,))
            h.observe(0.5)
            return registry.to_payload()

        payload = build()
        assert list(payload) == ["a.b.c", "m.n.o", "z.y.x"]
        assert payload == build()

    def test_get_missing_returns_none(self):
        assert MetricsRegistry().get("no.such.metric") is None


class TestExposition:
    def test_counter_with_labels(self):
        registry = MetricsRegistry()
        c = registry.counter("runtime.bus.publishes", label_key="topic")
        c.inc(2, label="a.b")
        text = registry.render()
        assert "# TYPE repro_runtime_bus_publishes counter" in text
        assert "repro_runtime_bus_publishes 2" in text
        assert 'repro_runtime_bus_publishes{topic="a.b"} 2' in text

    def test_histogram_buckets_cumulative(self):
        registry = MetricsRegistry()
        h = registry.histogram("a.b.c", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        text = registry.render()
        assert 'repro_a_b_c_bucket{le="1.0"} 1' in text
        assert 'repro_a_b_c_bucket{le="10.0"} 2' in text
        assert 'repro_a_b_c_bucket{le="+Inf"} 3' in text
        assert "repro_a_b_c_count 3" in text

    def test_render_from_payload_matches_live_render(self):
        registry = MetricsRegistry()
        registry.counter("a.b.c").inc()
        registry.gauge("d.e.f").set(2)
        assert render_exposition(registry.to_payload()) == registry.render()

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render() == ""
