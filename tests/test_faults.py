"""Tests for device fault injection and reliability accounting."""

import random

import pytest

from repro.core.errors import CapacityError, ConfigurationError
from repro.continuum import Simulator, Task, build_reference_infrastructure
from repro.continuum.faults import FaultEvent, FaultInjector
from repro.mirto.placement import (
    PlacementConstraints,
    eligible_devices,
    make_strategy,
)


def infra():
    return build_reference_infrastructure(Simulator())


class TestFailedFlag:
    def test_failed_device_rejects_work(self):
        infrastructure = infra()
        device = infrastructure.device("fpga-00-0")
        device.failed = True
        with pytest.raises(CapacityError, match="failed"):
            next(device.execute(Task("t", megaops=10)))

    def test_failed_device_excluded_from_placement(self):
        infrastructure = infra()
        infrastructure.device("fpga-00-0").failed = True
        task = Task("t", megaops=10)
        devices = eligible_devices(task, infrastructure,
                                   PlacementConstraints())
        assert "fpga-00-0" not in {d.name for d in devices}

    def test_placement_routes_around_failures(self):
        infrastructure = infra()
        from repro.continuum.workload import Application
        app = Application("a")
        app.add_task(Task("only", megaops=100))
        infrastructure.device("cloud-00").failed = True
        infrastructure.device("cloud-01").failed = True
        placement = make_strategy("greedy").place(
            app, infrastructure, PlacementConstraints())
        assert not placement.device_of("only").startswith("cloud")


class TestFaultInjector:
    def test_failures_and_repairs_alternate(self):
        infrastructure = infra()
        injector = FaultInjector(infrastructure, random.Random(0),
                                 mtbf_s=5.0, mttr_s=1.0,
                                 devices=["fpga-00-0"])
        injector.start()
        infrastructure.sim.run(until=100.0)
        events = [e.kind for e in injector.tracker.events]
        assert events, "expected failures over 20 MTBFs"
        for a, b in zip(events, events[1:]):
            assert a != b  # strict alternation fail/repair

    def test_availability_matches_mtbf_mttr_ratio(self):
        infrastructure = infra()
        injector = FaultInjector(infrastructure, random.Random(1),
                                 mtbf_s=10.0, mttr_s=2.0,
                                 devices=["mc-00-0"])
        injector.start()
        horizon = 2000.0
        infrastructure.sim.run(until=horizon)
        availability = injector.tracker.availability("mc-00-0", horizon)
        # Expected steady-state availability = 10 / 12 = 0.833.
        assert availability == pytest.approx(10 / 12, abs=0.08)

    def test_stop_halts_injection(self):
        infrastructure = infra()
        injector = FaultInjector(infrastructure, random.Random(2),
                                 mtbf_s=1.0, mttr_s=0.5,
                                 devices=["mc-00-0"])
        injector.start()
        infrastructure.sim.run(until=10.0)
        count = len(injector.tracker.events)
        injector.stop()
        infrastructure.sim.run(until=100.0)
        # At most one in-flight repair completes after stop.
        assert len(injector.tracker.events) <= count + 1

    def test_invalid_parameters(self):
        infrastructure = infra()
        with pytest.raises(ConfigurationError):
            FaultInjector(infrastructure, random.Random(0), 0, 1)
        with pytest.raises(ConfigurationError):
            FaultInjector(infrastructure, random.Random(0), 1, -1)

    def test_availability_of_healthy_device_is_one(self):
        tracker_infra = infra()
        injector = FaultInjector(tracker_infra, random.Random(3),
                                 mtbf_s=1e9, mttr_s=1.0)
        injector.start()
        tracker_infra.sim.run(until=10.0)
        assert injector.tracker.availability("cloud-00", 10.0) == 1.0

    def test_failures_counted_per_device(self):
        infrastructure = infra()
        injector = FaultInjector(infrastructure, random.Random(4),
                                 mtbf_s=2.0, mttr_s=0.5,
                                 devices=["riscv-00-0"])
        injector.start()
        infrastructure.sim.run(until=50.0)
        assert injector.tracker.failures_of("riscv-00-0") >= 5
        assert injector.tracker.failures_of("cloud-00") == 0


class TestReliabilityUnderOrchestration:
    def test_sessions_succeed_despite_failures(self):
        """With placement filtering failed devices, deployments keep
        succeeding through a lossy period (reliability claim)."""
        from repro.mirto import CognitiveEngine, EngineConfig
        from repro.usecases import mobility
        engine = CognitiveEngine(EngineConfig(seed=71))
        injector = FaultInjector(
            engine.infrastructure, random.Random(5),
            mtbf_s=3.0, mttr_s=1.0,
            devices=["fpga-00-0", "mc-00-0", "fmdc-00"])
        injector.start()
        scenario = mobility.build_scenario(vehicles=1)
        completed = 0
        for _ in range(6):
            outcome = engine.manager.deploy(
                scenario.to_service_template(), strategy="greedy")
            assert outcome.report.makespan_s > 0
            completed += 1
        assert completed == 6
