"""Tests for the static TOSCA/CSAR checker."""

from repro.analysis.findings import Severity
from repro.analysis.tosca_check import (
    check_csar,
    check_csar_bytes,
    check_service,
)
from repro.tosca.csar import CsarArchive
from repro.tosca.model import (
    NodeTemplate,
    Policy,
    Requirement,
    ServiceTemplate,
)


def container(name, **overrides):
    properties = {"image": f"registry/{name}:1", "cpu_millicores": 250,
                  "memory_bytes": 64 << 20}
    properties.update(overrides)
    return NodeTemplate(name=name, type="myrtus.nodes.Container",
                        properties=properties)


def valid_service():
    service = ServiceTemplate(name="svc")
    host = NodeTemplate(name="edge1", type="myrtus.nodes.EdgeDevice",
                        properties={"device_kind": "gateway"})
    app = container("app")
    app.requirements.append(Requirement(
        "host", "edge1", "tosca.relationships.HostedOn"))
    service.add_node(host)
    service.add_node(app)
    return service


def rules_of(findings):
    return sorted(f.rule for f in findings)


class TestServiceChecks:
    def test_valid_service_is_clean(self):
        assert check_service(valid_service()) == []

    def test_dangling_requirement_target(self):
        service = valid_service()
        service.node_templates["app"].requirements.append(
            Requirement("connection", "missing-db",
                        "tosca.relationships.ConnectsTo"))
        findings = check_service(service)
        assert any(f.rule == "schema"
                   and "unknown template missing-db" in f.message
                   for f in findings)

    def test_connects_to_cycle_detected(self):
        service = ServiceTemplate(name="cyclic")
        a, b = container("a"), container("b")
        a.requirements.append(Requirement(
            "connection", "b", "tosca.relationships.ConnectsTo"))
        b.requirements.append(Requirement(
            "connection", "a", "tosca.relationships.ConnectsTo"))
        service.add_node(a)
        service.add_node(b)
        findings = check_service(service)
        # the runtime validator only rejects HostedOn cycles; the
        # static checker must catch this one
        assert any(f.rule == "dependency-cycle" for f in findings)

    def test_acyclic_connections_ok(self):
        service = ServiceTemplate(name="chain")
        a, b = container("a"), container("b")
        a.requirements.append(Requirement(
            "connection", "b", "tosca.relationships.ConnectsTo"))
        service.add_node(a)
        service.add_node(b)
        assert check_service(service) == []


class TestOperatingPoints:
    def test_well_formed_points_ok(self):
        service = ServiceTemplate(name="svc")
        service.add_node(container("app", operating_points=[
            {"name": "op-0", "latency_s": 0.1, "energy_j": 2.0},
            {"name": "op-1", "latency_s": 0.4, "energy_j": 0.5},
        ]))
        assert check_service(service) == []

    def test_missing_required_keys(self):
        service = ServiceTemplate(name="svc")
        service.add_node(container("app", operating_points=[
            {"name": "op-0", "latency_s": 0.1},  # no energy_j
        ]))
        findings = check_service(service)
        assert any(f.rule == "operating-points"
                   and "energy_j" in f.message for f in findings)

    def test_negative_latency(self):
        service = ServiceTemplate(name="svc")
        service.add_node(container("app", operating_points=[
            {"name": "op-0", "latency_s": -1.0, "energy_j": 1.0},
        ]))
        findings = check_service(service)
        assert any("non-negative" in f.message for f in findings)

    def test_duplicate_point_names(self):
        service = ServiceTemplate(name="svc")
        service.add_node(container("app", operating_points=[
            {"name": "op-0", "latency_s": 0.1, "energy_j": 1.0},
            {"name": "op-0", "latency_s": 0.2, "energy_j": 2.0},
        ]))
        findings = check_service(service)
        assert any("duplicate point name" in f.message for f in findings)

    def test_non_mapping_point(self):
        service = ServiceTemplate(name="svc")
        service.add_node(container("app",
                                   operating_points=["fast", "slow"]))
        findings = check_service(service)
        assert any("not a mapping" in f.message for f in findings)


class TestSecurityLevels:
    def test_unknown_node_level(self):
        service = valid_service()
        service.node_templates["edge1"].properties[
            "max_security_level"] = "ultra"
        findings = check_service(service)
        assert any(f.rule == "security-level" for f in findings)

    def test_unknown_policy_level(self):
        service = valid_service()
        service.add_policy(Policy(
            name="sec", type="myrtus.policies.Security",
            targets=["app"], properties={"min_level": "paranoid"}))
        findings = check_service(service)
        assert any(f.rule == "security-level" for f in findings)

    def test_unknown_metadata_level(self):
        service = valid_service()
        service.metadata["security_level"] = "max"
        findings = check_service(service)
        assert any(f.rule == "security-level" for f in findings)

    def test_valid_levels_ok(self):
        service = valid_service()
        service.node_templates["edge1"].properties[
            "max_security_level"] = "high"
        service.add_policy(Policy(
            name="sec", type="myrtus.policies.Security",
            targets=["app"], properties={"min_level": "medium"}))
        service.metadata["security_level"] = "low"
        assert check_service(service) == []


class TestCsarChecks:
    def test_missing_bitstream_artifact(self):
        service = ServiceTemplate(name="svc")
        kernel = NodeTemplate(
            name="kern", type="myrtus.nodes.AcceleratedKernel",
            properties={"image": "registry/kern:1",
                        "cpu_millicores": 500,
                        "memory_bytes": 128 << 20,
                        "bitstream": "kern.bit"})
        service.add_node(kernel)
        archive = CsarArchive(service=service)
        findings = check_csar(archive)
        assert any(f.rule == "artifact-ref"
                   and "not packaged" in f.message for f in findings)

    def test_packaged_bitstream_ok(self):
        service = ServiceTemplate(name="svc")
        kernel = NodeTemplate(
            name="kern", type="myrtus.nodes.AcceleratedKernel",
            properties={"image": "registry/kern:1",
                        "cpu_millicores": 500,
                        "memory_bytes": 128 << 20,
                        "bitstream": "kern.bit"})
        service.add_node(kernel)
        archive = CsarArchive(service=service)
        archive.add_artifact("kern.bit", b"\x00" * 16)
        assert [f for f in check_csar(archive)
                if f.severity == Severity.ERROR] == []

    def test_orphan_artifact_warns(self):
        archive = CsarArchive(service=valid_service())
        archive.add_artifact("leftover.bin", b"junk")
        findings = check_csar(archive)
        orphans = [f for f in findings if "referenced by no" in f.message]
        assert orphans and all(f.severity == Severity.WARNING
                               for f in orphans)

    def test_malformed_operating_points_artifact(self):
        archive = CsarArchive(service=valid_service())
        archive.add_artifact("app/operating_points.json", b"not-json")
        findings = check_csar(archive)
        assert any("not valid JSON" in f.message for f in findings)

    def test_well_formed_operating_points_artifact(self):
        import json
        archive = CsarArchive(service=valid_service())
        archive.add_artifact("app/operating_points.json", json.dumps([
            {"name": "op-0", "latency_s": 0.1, "energy_j": 1.0},
        ]).encode())
        assert [f for f in check_csar(archive)
                if f.severity == Severity.ERROR] == []

    def test_bad_zip_reported_not_raised(self):
        findings = check_csar_bytes(b"definitely not a zip")
        assert rules_of(findings) == ["archive"]

    def test_roundtripped_archive_checks_clean(self):
        archive = CsarArchive(service=valid_service())
        rebuilt = CsarArchive.from_bytes(archive.to_bytes())
        assert [f for f in check_csar(rebuilt)
                if f.severity == Severity.ERROR] == []
