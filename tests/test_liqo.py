"""Tests for LIQO-style peering and the continuum federation."""

import pytest

from repro.core.errors import OrchestrationError, ValidationError
from repro.kube import (
    ContinuumFederation,
    KubeCluster,
    Node,
    Peering,
    PodPhase,
    PodSpec,
    ResourceRequest,
)

GIB = 1024**3


def cluster_with_node(cluster_name, node_name, cpu=4000, mem=8 * GIB,
                      security="high"):
    cluster = KubeCluster(cluster_name)
    cluster.add_node(Node(node_name, ResourceRequest(cpu, mem),
                          labels={"security-level": security}))
    return cluster


class TestPeering:
    def test_virtual_node_mirrors_remote_capacity(self):
        edge = cluster_with_node("edge", "fpga", cpu=1000)
        cloud = cluster_with_node("cloud", "srv", cpu=64000, mem=256 * GIB)
        peering = Peering(edge, cloud)
        virtual = edge.node(peering.virtual_node_name)
        assert virtual.virtual
        assert virtual.capacity.cpu_millicores == 64000

    def test_self_peering_rejected(self):
        edge = cluster_with_node("edge", "n")
        with pytest.raises(ValidationError):
            Peering(edge, edge)

    def test_double_install_rejected(self):
        edge = cluster_with_node("edge", "n")
        cloud = cluster_with_node("cloud", "m")
        Peering(edge, cloud)
        with pytest.raises(ValidationError):
            Peering(edge, cloud)

    def test_local_preferred_when_fits(self):
        edge = cluster_with_node("edge", "fpga", cpu=4000)
        cloud = cluster_with_node("cloud", "srv", cpu=64000, mem=256 * GIB)
        Peering(edge, cloud)
        pod = edge.create_pod(PodSpec("small", ResourceRequest(500, GIB)))
        edge.reconcile()
        assert pod.node_name == "fpga"

    def test_oversized_pod_offloads(self):
        edge = cluster_with_node("edge", "fpga", cpu=1000, mem=2 * GIB)
        cloud = cluster_with_node("cloud", "srv", cpu=64000, mem=256 * GIB)
        peering = Peering(edge, cloud)
        pod = edge.create_pod(PodSpec("big", ResourceRequest(8000, 32 * GIB)))
        edge.reconcile()
        assert pod.node_name == peering.virtual_node_name
        cloud.reconcile()
        remote = cloud.pod_by_name("edge-big")
        assert remote.node_name == "srv"
        assert remote.spec.labels["liqo.io/origin"] == "edge"

    def test_status_reflection(self):
        edge = cluster_with_node("edge", "fpga", cpu=100)
        cloud = cluster_with_node("cloud", "srv", cpu=64000, mem=256 * GIB)
        peering = Peering(edge, cloud)
        pod = edge.create_pod(PodSpec("job", ResourceRequest(8000, GIB)))
        edge.reconcile()
        cloud.reconcile()
        remote = cloud.pod_by_name("edge-job")
        cloud.mark_running(remote.uid)
        peering.reflect_status()
        assert pod.phase is PodPhase.RUNNING
        cloud.mark_finished(remote.uid)
        peering.reflect_status()
        assert pod.phase is PodPhase.SUCCEEDED

    def test_security_floor_advertised(self):
        edge = cluster_with_node("edge", "fpga")
        mixed = KubeCluster("mixed")
        mixed.add_node(Node("strong", ResourceRequest(1000, GIB),
                            labels={"security-level": "high"}))
        mixed.add_node(Node("weak", ResourceRequest(1000, GIB),
                            labels={"security-level": "low"}))
        peering = Peering(edge, mixed)
        virtual = edge.node(peering.virtual_node_name)
        assert virtual.labels["security-level"] == "low"

    def test_high_security_pod_never_offloaded_to_weak_cluster(self):
        edge = cluster_with_node("edge", "fpga", cpu=100, security="high")
        weak_cloud = cluster_with_node("cloud", "srv", cpu=64000,
                                       mem=256 * GIB, security="low")
        Peering(edge, weak_cloud)
        pod = edge.create_pod(PodSpec(
            "secret", ResourceRequest(8000, GIB),
            min_security_level="high"))
        edge.reconcile()
        assert pod.phase is PodPhase.PENDING  # nowhere safe to run

    def test_local_delete_cleans_remote(self):
        edge = cluster_with_node("edge", "fpga", cpu=100)
        cloud = cluster_with_node("cloud", "srv", cpu=64000, mem=256 * GIB)
        peering = Peering(edge, cloud)
        pod = edge.create_pod(PodSpec("job", ResourceRequest(8000, GIB)))
        edge.reconcile()
        cloud.reconcile()
        edge.delete_pod(pod.uid)
        peering.reflect_status()
        assert not any(p.spec.name == "edge-job"
                       for p in cloud.pods.values())

    def test_teardown_removes_virtual_node_and_remote_pods(self):
        edge = cluster_with_node("edge", "fpga", cpu=100)
        cloud = cluster_with_node("cloud", "srv", cpu=64000, mem=256 * GIB)
        peering = Peering(edge, cloud)
        local = edge.create_pod(PodSpec("job", ResourceRequest(8000, GIB)))
        edge.reconcile()
        cloud.reconcile()
        peering.teardown()
        assert peering.virtual_node_name not in edge.nodes
        assert not cloud.pods
        # The local pod went back to pending via eviction.
        assert local.phase is PodPhase.PENDING

    def test_refresh_tracks_remote_load(self):
        edge = cluster_with_node("edge", "fpga", cpu=100)
        cloud = cluster_with_node("cloud", "srv", cpu=10000, mem=64 * GIB)
        peering = Peering(edge, cloud)
        cloud.create_pod(PodSpec("native", ResourceRequest(6000, GIB)))
        cloud.reconcile()
        peering.refresh()
        virtual = edge.node(peering.virtual_node_name)
        assert virtual.capacity.cpu_millicores == 4000


class TestFederation:
    def build(self):
        fed = ContinuumFederation()
        fed.add_cluster(cluster_with_node("edge", "fpga", cpu=1000,
                                          mem=2 * GIB))
        fed.add_cluster(cluster_with_node("fog", "fmdc", cpu=32000,
                                          mem=128 * GIB))
        fed.add_cluster(cluster_with_node("cloud", "srv", cpu=64000,
                                          mem=512 * GIB))
        fed.peer("edge", "fog")
        fed.peer("fog", "cloud")
        return fed

    def test_duplicate_cluster_rejected(self):
        fed = ContinuumFederation()
        fed.add_cluster(KubeCluster("a"))
        with pytest.raises(ValidationError):
            fed.add_cluster(KubeCluster("a"))

    def test_peer_unknown_cluster_rejected(self):
        fed = ContinuumFederation()
        fed.add_cluster(KubeCluster("a"))
        with pytest.raises(OrchestrationError):
            fed.peer("a", "ghost")

    def test_vertical_offload_chain(self):
        fed = self.build()
        edge = fed.clusters["edge"]
        # Too big for edge, fits fog.
        edge.create_pod(PodSpec("medium", ResourceRequest(8000, 16 * GIB)))
        fed.reconcile_all()
        fog_pod = fed.clusters["fog"].pod_by_name("edge-medium")
        assert fog_pod.node_name == "fmdc"

    def test_mixed_workload_distribution(self):
        fed = self.build()
        edge = fed.clusters["edge"]
        edge.create_pod(PodSpec("tiny", ResourceRequest(200, GIB // 2)))
        edge.create_pod(PodSpec("medium", ResourceRequest(8000, 8 * GIB)))
        fed.reconcile_all()
        tiny = edge.pod_by_name("tiny")
        medium = edge.pod_by_name("medium")
        assert tiny.node_name == "fpga"
        assert medium.node_name == "liqo-fog"
