"""Tests for the MLIR dataflow analyses and their wiring into passes."""

import pytest

from repro.core.errors import CompilationError
from repro.dpe.mlir import (
    Builder,
    F32,
    I32,
    Module,
    canonicalize,
    quantize_to_base2,
)
from repro.dpe.mlir.ir import I1, Base2Type, Operation, TensorType, Value
from repro.analysis.findings import Severity
from repro.analysis.mlir import (
    Block,
    ControlFlowGraph,
    analyze_module,
    cfg_of_function,
    check_function,
    check_module,
    check_types,
    dead_values,
    def_use_chains,
    liveness,
    use_before_def,
)


def make_op(name, operands, result_types, attributes=None):
    op = Operation(name=name, operands=list(operands),
                   attributes=dict(attributes or {}),
                   results=[Value(t, f"t{i}")
                            for i, t in enumerate(result_types)])
    for res in op.results:
        res.producer = op
    return op


def simple_function():
    """f(a, b) = (a + b) * a  plus one dead add."""
    module = Module("m")
    builder = Builder(module, "f", [I32, I32])
    a, b = builder.args
    add = builder.op("arith.addi", [a, b], [I32])
    mul = builder.op("arith.muli", [add.result(), a], [I32])
    builder.op("arith.addi", [a, a], [I32])  # dead
    builder.ret([mul.result()])
    return module, module.function("f")


class TestDefUse:
    def test_chains_cover_arguments_and_results(self):
        _, func = simple_function()
        chains = def_use_chains(func)
        a, b = func.arguments
        assert chains[a].is_argument
        # a used by addi, muli, and the dead addi twice
        assert len(chains[a].uses) == 4
        assert len(chains[b].uses) == 1
        ret = func.returns[0]
        assert chains[ret].returned
        assert chains[ret].producer.name == "arith.muli"

    def test_dead_value_detected(self):
        _, func = simple_function()
        dead = dead_values(func)
        assert len(dead) == 1
        assert dead[0].producer.name == "arith.addi"

    def test_side_effect_ops_not_dead(self):
        module = Module("m")
        builder = Builder(module, "g", [I32])
        builder.op("dfg.push", [builder.args[0]], [I32])
        builder.ret([builder.args[0]])
        assert dead_values(module.function("g")) == []


class TestUseBeforeDef:
    def test_clean_function_passes(self):
        _, func = simple_function()
        assert use_before_def(func) == []

    def test_deliberately_broken_module_caught(self):
        module = Module("broken")
        builder = Builder(module, "f", [I32])
        phantom = Value(I32, "phantom")
        op = make_op("arith.addi", [builder.args[0], phantom], [I32])
        module.function("f").ops.append(op)
        module.function("f").returns = [op.results[0]]
        problems = use_before_def(module.function("f"))
        assert len(problems) == 1
        assert "never defined" in problems[0]
        with pytest.raises(CompilationError):
            check_module(module)

    def test_use_before_definition_order(self):
        module = Module("m")
        builder = Builder(module, "f", [I32])
        late = make_op("arith.addi",
                       [builder.args[0], builder.args[0]], [I32])
        early = make_op("arith.muli",
                        [late.results[0], builder.args[0]], [I32])
        func = module.function("f")
        func.ops = [early, late]
        func.returns = [early.results[0]]
        problems = use_before_def(func)
        assert any("before its definition" in p for p in problems)

    def test_undefined_return_caught(self):
        module = Module("m")
        Builder(module, "f", [I32])
        func = module.function("f")
        func.returns = [Value(I32, "ghost")]
        problems = use_before_def(func)
        assert any("never defined" in p for p in problems)


class TestLivenessDiamond:
    def _diamond(self):
        r"""entry -> {left, right} -> merge.

        entry defines %x and %y; both branches consume %x; merge
        consumes only %y, so %y must stay live *through* both branches
        while %x dies at the end of each branch.
        """
        const_x = make_op("arith.constant", [], [I32], {"value": 1})
        const_y = make_op("arith.constant", [], [I32], {"value": 2})
        x, y = const_x.results[0], const_y.results[0]
        left_op = make_op("arith.addi", [x, x], [I32])
        right_op = make_op("arith.muli", [x, x], [I32])
        merge_op = make_op("arith.addi", [y, y], [I32])
        cfg = ControlFlowGraph("diamond")
        cfg.add_block("entry", [const_x, const_y])
        cfg.add_block("left", [left_op])
        cfg.add_block("right", [right_op])
        cfg.add_block("merge", [merge_op])
        cfg.add_edge("entry", "left")
        cfg.add_edge("entry", "right")
        cfg.add_edge("left", "merge")
        cfg.add_edge("right", "merge")
        return cfg, x, y, merge_op

    def test_branch_input_live_into_both_branches(self):
        cfg, x, _, _ = self._diamond()
        result = liveness(cfg)
        assert x in result.live_out["entry"]
        assert x in result.live_in["left"]
        assert x in result.live_in["right"]
        # %x is not used past the branches
        assert x not in result.live_out["left"]
        assert x not in result.live_out["right"]
        assert x not in result.live_in["merge"]

    def test_join_value_live_through_both_branches(self):
        cfg, _, y, _ = self._diamond()
        result = liveness(cfg)
        # %y is only used at the join, so it must be carried through
        # BOTH branch blocks even though neither touches it.
        assert y in result.live_out["entry"]
        assert y in result.live_in["left"]
        assert y in result.live_out["left"]
        assert y in result.live_in["right"]
        assert y in result.live_out["right"]
        assert y in result.live_in["merge"]

    def test_exit_live_seeds_exit_blocks(self):
        cfg, _, _, merge_op = self._diamond()
        final = merge_op.results[0]
        result = liveness(cfg, exit_live={final})
        assert final in result.live_out["merge"]
        assert final not in result.live_in["merge"]  # defined there

    def test_nothing_live_before_entry(self):
        cfg, *_ = self._diamond()
        result = liveness(cfg)
        assert result.live_in["entry"] == frozenset()

    def test_single_block_cfg_of_function(self):
        _, func = simple_function()
        cfg = cfg_of_function(func)
        result = liveness(cfg, exit_live=set(func.returns))
        # everything the body needs from outside is a function argument
        assert result.live_in[cfg.entry] <= set(func.arguments)


class TestTypeChecker:
    def test_integer_arith_on_float_flagged(self):
        module = Module("m")
        builder = Builder(module, "f", [F32, F32])
        builder.op("arith.addi", list(builder.args), [F32])
        builder.ret([])
        problems = check_types(module.function("f"))
        assert any("non-integer" in p for p in problems)

    def test_float_arith_on_integer_flagged(self):
        module = Module("m")
        builder = Builder(module, "f", [I32, I32])
        builder.op("arith.mulf", list(builder.args), [I32])
        builder.ret([])
        problems = check_types(module.function("f"))
        assert any("non-float" in p for p in problems)

    def test_arity_mismatch_flagged(self):
        module = Module("m")
        builder = Builder(module, "f", [I32])
        func = module.function("f")
        bad = make_op("arith.addi", [builder.args[0]], [I32])
        func.ops.append(bad)
        problems = check_types(func)
        assert any("expects 2 operands" in p for p in problems)

    def test_cmp_operand_mismatch_flagged(self):
        module = Module("m")
        builder = Builder(module, "f", [I32, F32])
        builder.op("arith.cmp", list(builder.args), [I1],
                   {"predicate": "eq"})
        problems = check_types(module.function("f"))
        assert any("operand types differ" in p for p in problems)

    def test_matmul_shape_mismatch_flagged(self):
        module = Module("m")
        t_a = TensorType((2, 3), F32)
        t_bad = TensorType((4, 5), F32)
        builder = Builder(module, "f", [t_a, t_bad])
        builder.op("tensor.matmul", list(builder.args),
                   [TensorType((2, 5), F32)])
        problems = check_types(module.function("f"))
        assert any("inner dims differ" in p for p in problems)

    def test_base2_result_element_checked(self):
        module = Module("m")
        fixed = Base2Type(8, 4)
        builder = Builder(module, "f", [fixed, fixed])
        builder.op("base2.add", list(builder.args), [F32])  # wrong
        problems = check_types(module.function("f"))
        assert any("expected a base2" in p for p in problems)

    def test_clean_function_has_no_problems(self):
        _, func = simple_function()
        assert check_types(func) == []


class TestPassWiring:
    def test_canonicalize_checks_output(self):
        module, func = simple_function()
        # sabotage: drop the op producing the returned value
        func.ops = [op for op in func.ops if op.name != "arith.muli"]
        with pytest.raises(CompilationError,
                           match="failed static checks"):
            canonicalize(func)

    def test_canonicalize_passes_clean_function(self):
        _, func = simple_function()
        totals = canonicalize(func)
        assert totals["dce"] >= 1  # the planted dead add is removed

    def test_quantize_output_statically_checked(self):
        module = Module("m")
        t = TensorType((2, 2), F32)
        builder = Builder(module, "net", [t, t])
        mm = builder.op("tensor.matmul", list(builder.args), [t])
        builder.ret([mm.result()])
        fixed_fn = quantize_to_base2(module, "net", Base2Type(16, 8))
        assert check_function(fixed_fn) == []


class TestAnalyzeModule:
    def test_findings_for_broken_and_dead(self):
        module, func = simple_function()
        findings = analyze_module(module)
        assert [f.rule for f in findings] == ["dead-value"]
        assert findings[0].severity == Severity.WARNING

    def test_error_findings_for_undefined_use(self):
        module = Module("broken")
        builder = Builder(module, "f", [I32])
        phantom = Value(I32, "phantom")
        func = module.function("f")
        func.ops.append(make_op("arith.addi",
                                [builder.args[0], phantom], [I32]))
        func.returns = [func.ops[0].results[0]]
        findings = analyze_module(module)
        assert any(f.rule == "dataflow"
                   and f.severity == Severity.ERROR for f in findings)
