"""Full-stack integration: design time to runtime across all pillars.

One test class walks the complete MYRTUS story for each use case:
Pillar 3 designs (scenario -> ADT -> KPIs -> IR -> artifacts -> CSAR),
Pillar 2 orchestrates (agent API -> validation -> manager -> cognitive
placement), Pillar 1 executes (DES devices, network, monitors, KB), and
the MAPE loop closes the feedback. A second class stresses cross-cutting
concerns: security end-to-end, failures during operation, and the KB as
the single source of truth.
"""

import pytest

from repro.continuum.devices import Layer
from repro.dpe import DesignFlow
from repro.mirto import ApiRequest, CognitiveEngine, EngineConfig
from repro.tosca import CsarArchive
from repro.usecases import mobility, telerehab


@pytest.fixture(scope="module")
def engine():
    return CognitiveEngine(EngineConfig(edge_sites=2, seed=77))


@pytest.mark.parametrize("case", [mobility, telerehab],
                         ids=["mobility", "telerehab"])
class TestDesignToRuntime:
    def test_csar_flows_from_dpe_to_agent_to_execution(self, case,
                                                       engine):
        scenario = case.build_scenario()
        spec = DesignFlow(seed=7).run(scenario, case.build_adt(),
                                      defence_budget=8.0)
        response = engine.agent().handle(ApiRequest(
            "POST", "/deployments", token=engine.operator_token(),
            body={"csar": spec.csar_bytes, "strategy": "greedy"}))
        assert response.status == 201, response.body
        assert response.body["makespan_s"] > 0
        # The KB carries the deployment status (Pillar 1 <-> 2).
        status = engine.registry.status(f"deployment/{scenario.name}")
        assert status["strategy"] == "greedy"

    def test_privacy_policies_survive_the_whole_path(self, case, engine):
        """A policy written at design time constrains the runtime
        placement — through CSAR serialization and agent validation."""
        scenario = case.build_scenario()
        spec = DesignFlow(seed=8).run(scenario)
        archive = CsarArchive.from_bytes(spec.csar_bytes)
        outcome = engine.manager.deploy(archive.service,
                                        strategy="greedy")
        privacy_policies = archive.service.policies_of_type(
            "myrtus.policies.Privacy")
        for policy in privacy_policies:
            max_layer = policy.properties["max_layer"]
            for target in policy.targets:
                device = engine.infrastructure.device(
                    outcome.placement.device_of(target))
                order = ["edge", "fog", "cloud"]
                assert order.index(device.spec.layer.value) \
                    <= order.index(max_layer), (target, policy.name)

    def test_operating_points_from_csar_are_loadable(self, case, engine):
        import json
        scenario = case.build_scenario()
        spec = DesignFlow(seed=9).run(scenario)
        archive = CsarArchive.from_bytes(spec.csar_bytes)
        points = json.loads(
            archive.artifacts["meta/operating-points.json"])
        assert points == spec.operating_points
        task_names = {c.name for c in scenario.components}
        for point in points:
            assert set(point["mapping"]) == task_names


class TestCrossCutting:
    def test_trust_feedback_shapes_future_placements(self, engine):
        """Deployments feed trust; trust shapes eligibility. After many
        successful runs every used device is trusted above prior."""
        scenario = mobility.build_scenario(vehicles=1)
        for _ in range(3):
            engine.manager.deploy(scenario.to_service_template(),
                                  strategy="greedy")
        trust_engine = engine.manager.security.trust
        assert trust_engine.known_components()
        for name in trust_engine.known_components():
            assert trust_engine.trust(name) > 0.5

    def test_device_failure_between_sessions(self, engine):
        """Losing an edge FPGA mid-operation must not break subsequent
        deployments — the placement simply routes around it."""
        scenario = telerehab.build_scenario(session_minutes=5)
        first = engine.manager.deploy(scenario.to_service_template(),
                                      strategy="greedy")
        used = first.placement.device_of("pose-estimation")
        # Simulate the device disappearing from the pool.
        removed = engine.infrastructure.devices.pop(used)
        try:
            second = engine.manager.deploy(
                scenario.to_service_template(), strategy="greedy")
            assert second.placement.device_of("pose-estimation") != used
            device = engine.infrastructure.device(
                second.placement.device_of("pose-estimation"))
            assert device.spec.layer == Layer.EDGE  # privacy held
        finally:
            engine.infrastructure.devices[used] = removed

    def test_kb_survives_replica_crash_mid_operation(self, engine):
        leader = engine.kb.cluster.run_until_leader()
        engine.kb.cluster.stop(leader)
        try:
            scenario = mobility.build_scenario(vehicles=1)
            outcome = engine.manager.deploy(
                scenario.to_service_template(), strategy="greedy")
            status = engine.registry.status(
                f"deployment/{scenario.name}")
            assert status["makespan_s"] == outcome.report.makespan_s
        finally:
            engine.kb.cluster.restart(leader)
            engine.kb.tick(50)

    def test_monitoring_reflects_real_executions(self, engine):
        before = {
            name: device.pmc.tasks_executed
            for name, device in engine.infrastructure.devices.items()
        }
        scenario = mobility.build_scenario(vehicles=1)
        outcome = engine.manager.deploy(scenario.to_service_template(),
                                        strategy="greedy")
        engine.mape_iterate(1)
        for device_name in set(outcome.placement.assignment.values()):
            status = engine.registry.status(device_name)
            device = engine.infrastructure.device(device_name)
            assert device.pmc.tasks_executed > before.get(device_name, 0)
            assert "utilization" in status

    def test_full_api_surface_consistent(self, engine):
        token = engine.operator_token()
        status = engine.agent().handle(ApiRequest("GET", "/status",
                                                  token=token))
        deployments = engine.agent().handle(ApiRequest(
            "GET", "/deployments", token=token))
        assert status.body["deployments"] == len(deployments.body)


class TestAdditionalStrategiesViaApi:
    def test_firefly_and_swarm_rule_deploy_through_agent(self, engine):
        scenario = mobility.build_scenario(vehicles=1)
        for strategy in ("firefly", "swarm-rule"):
            response = engine.deploy(scenario.to_service_template(),
                                     strategy=strategy)
            assert response.status == 201, (strategy, response.body)
            assert response.body["strategy"] == strategy
            assert response.body["makespan_s"] > 0


class TestGatewayInsideReferenceInfrastructure:
    def test_sensor_traffic_coexists_with_deployments(self, engine):
        """The smart gateway of the reference infrastructure carries
        sensor telemetry while MIRTO deployments execute on the same
        network — both share link capacity."""
        from repro.continuum.gateway import GatewayHub
        from repro.continuum.endpoints import SensorProcess
        network = engine.infrastructure.network
        network.add_link("roadside-cam", "gw-00-0", 0.002, 10e6)
        hub = GatewayHub(network, "gw-00-0", ctx=engine.sim)
        hub.register("roadside-cam", ["coap"])
        hub.register("fmdc-00", ["mqtt"])
        sensor = SensorProcess(
            hub, "roadside-cam", "fmdc-00", "traffic",
            sample_fn=lambda seq: {"vehicles": seq % 7},
            period_s=0.02, max_samples=8, ctx=engine.sim)
        outcome = engine.manager.deploy(
            mobility.build_scenario(vehicles=1).to_service_template(),
            strategy="greedy")
        engine.sim.run(until=sensor.process)
        assert outcome.report.makespan_s > 0
        delivered = [r for r in hub.deliveries if r.wire_bytes > 0]
        assert len(delivered) == 8
        assert hub.bridge_matrix()[("coap", "mqtt")] == 8
