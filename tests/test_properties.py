"""Property-based tests (hypothesis) on core data structures/invariants.

Covers the invariants that matter across the whole reproduction:
Raft log safety under arbitrary fault schedules, KV-store convergence,
SDF balance-equation properties, base2 quantization bounds, scheduler
feasibility, slice conservation, and placement-estimate monotonicity.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dpe.mlir.ir import Base2Type
from repro.kb import KnowledgeBase
from repro.kb.raft import RaftCluster, Role


# -- Raft safety under random fault schedules ------------------------------------


@st.composite
def fault_schedules(draw):
    """A random interleaving of proposes, crashes, restarts, partitions."""
    events = draw(st.lists(
        st.one_of(
            st.tuples(st.just("propose"), st.integers(0, 99)),
            st.tuples(st.just("crash"), st.integers(0, 4)),
            st.tuples(st.just("restart"), st.integers(0, 4)),
            st.tuples(st.just("partition"), st.integers(0, 4),
                      st.integers(0, 4)),
            st.tuples(st.just("heal")),
            st.tuples(st.just("tick"), st.integers(1, 40)),
        ),
        min_size=5, max_size=25))
    return events


class TestRaftSafetyProperties:
    @given(schedule=fault_schedules(), seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_applied_logs_are_always_prefix_consistent(self, schedule,
                                                       seed):
        """State-machine safety: no two replicas ever apply different
        commands at the same index, regardless of the fault schedule."""
        names = [f"n{i}" for i in range(5)]
        applied = {name: [] for name in names}
        cluster = RaftCluster(
            names, random.Random(seed),
            apply_fns={name: applied[name].append for name in names})
        stopped: set[str] = set()
        for event in schedule:
            kind = event[0]
            if kind == "propose":
                leader = cluster.leader()
                if leader is not None and leader not in stopped:
                    try:
                        cluster.nodes[leader].propose(event[1])
                    except Exception:
                        pass
            elif kind == "crash":
                name = names[event[1]]
                cluster.stop(name)
                stopped.add(name)
            elif kind == "restart":
                name = names[event[1]]
                cluster.restart(name)
                stopped.discard(name)
            elif kind == "partition":
                a, b = names[event[1]], names[event[2]]
                if a != b:
                    cluster.partition(a, b)
            elif kind == "heal":
                cluster.heal()
            elif kind == "tick":
                cluster.tick(event[1])
        cluster.heal()
        for name in list(stopped):
            cluster.restart(name)
        cluster.tick(200)
        logs = list(applied.values())
        longest = max(logs, key=len)
        for log in logs:
            assert log == longest[:len(log)]

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_at_most_one_leader_per_term(self, seed):
        cluster = RaftCluster([f"n{i}" for i in range(5)],
                              random.Random(seed))
        leaders_by_term: dict[int, set[str]] = {}
        for _ in range(150):
            cluster.tick()
            for name, node in cluster.nodes.items():
                if node.role is Role.LEADER:
                    leaders_by_term.setdefault(
                        node.current_term, set()).add(name)
        for term, leaders in leaders_by_term.items():
            assert len(leaders) == 1, f"term {term}: {leaders}"


class TestKvStoreProperties:
    @given(ops=st.lists(
        st.one_of(
            st.tuples(st.just("put"),
                      st.text("abc", min_size=1, max_size=3),
                      st.integers(0, 100)),
            st.tuples(st.just("delete"),
                      st.text("abc", min_size=1, max_size=3)),
        ), min_size=1, max_size=15), seed=st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_store_matches_reference_dict(self, ops, seed):
        """The replicated store behaves exactly like a plain dict."""
        kb = KnowledgeBase(replicas=3, seed=seed)
        reference: dict[str, int] = {}
        for op in ops:
            if op[0] == "put":
                kb.put(op[1], op[2])
                reference[op[1]] = op[2]
            else:
                kb.delete(op[1])
                reference.pop(op[1], None)
        assert kb.range("") == reference
        kb.tick(60)
        for state in kb.replica_states().values():
            assert state == reference

    @given(keys=st.lists(st.text("xyz", min_size=1, max_size=2),
                         min_size=1, max_size=8))
    @settings(max_examples=10, deadline=None)
    def test_revision_strictly_increases_on_writes(self, keys):
        kb = KnowledgeBase(replicas=1, seed=0)
        last = kb.revision
        for i, key in enumerate(keys):
            kb.put(key, i)
            assert kb.revision > last
            last = kb.revision


class TestBase2Properties:
    @given(width=st.integers(4, 24), frac_ratio=st.floats(0.1, 0.9),
           value=st.floats(-1000, 1000))
    @settings(max_examples=100)
    def test_quantize_within_half_step_or_clamped(self, width,
                                                  frac_ratio, value):
        frac = max(0, min(width, int(width * frac_ratio)))
        fx = Base2Type(width, frac)
        raw = fx.quantize(value)
        recovered = fx.dequantize(raw)
        if fx.min_value <= value <= fx.max_value:
            assert abs(recovered - value) <= fx.scale / 2 + 1e-9
        else:
            assert recovered in (fx.min_value, fx.max_value)

    @given(width=st.integers(4, 20), a=st.floats(-5, 5),
           b=st.floats(-5, 5))
    @settings(max_examples=50)
    def test_quantization_is_monotone(self, width, a, b):
        fx = Base2Type(width, width // 2)
        if a <= b:
            assert fx.quantize(a) <= fx.quantize(b)


class TestSdfProperties:
    @given(rates=st.lists(st.integers(1, 6), min_size=2, max_size=5))
    @settings(max_examples=30)
    def test_chain_repetition_vector_balances_every_channel(self, rates):
        """For any rate chain, the repetition vector satisfies the
        balance equation reps[src]*prod == reps[dst]*cons on every
        channel, and is minimal (gcd 1)."""
        from math import gcd
        from repro.dpe.mlir.dataflow import Actor, DataflowGraph
        from repro.dpe.mlir.ir import Builder, F32, Module
        module = Module("m")
        builder = Builder(module, "ident", [F32])
        builder.ret([builder.args[0]])
        graph = DataflowGraph("chain", module)
        n = len(rates)
        for i in range(n):
            graph.add_actor(Actor(
                f"a{i}", "ident",
                input_rates=(rates[i - 1],) if i > 0 else (1,),
                output_rates=(rates[i],)))
        for i in range(n - 1):
            graph.connect(f"a{i}", 0, f"a{i + 1}", 0)
        reps = graph.repetition_vector()
        for i in range(n - 1):
            assert reps[f"a{i}"] * rates[i] \
                == reps[f"a{i + 1}"] * rates[i]
        overall = 0
        for value in reps.values():
            overall = gcd(overall, value)
        assert overall == 1


class TestSchedulerProperties:
    @given(cpus=st.lists(st.integers(100, 4000), min_size=1, max_size=4),
           requests=st.lists(st.integers(50, 2000), min_size=1,
                             max_size=8))
    @settings(max_examples=30)
    def test_scheduler_never_overcommits(self, cpus, requests):
        from repro.kube import (
            KubeCluster,
            Node,
            PodSpec,
            ResourceRequest,
        )
        cluster = KubeCluster("prop")
        for i, cpu in enumerate(cpus):
            cluster.add_node(Node(f"n{i}", ResourceRequest(cpu, 8 * 1024**3)))
        for i, cpu in enumerate(requests):
            cluster.create_pod(PodSpec(f"p{i}",
                                       ResourceRequest(cpu, 1024**2)))
        cluster.reconcile()
        for node in cluster.nodes.values():
            free = cluster.node_free(node)
            assert free.cpu_millicores >= 0
            assert free.memory_bytes >= 0


class TestSliceProperties:
    @given(fractions=st.lists(st.floats(0.05, 0.5), min_size=1,
                              max_size=6))
    @settings(max_examples=30)
    def test_reserved_fraction_never_exceeds_one(self, fractions):
        from repro.core.errors import CapacityError
        from repro.continuum.simulator import Simulator
        from repro.net import Network, SliceManager
        network = Network(ctx=Simulator())
        network.add_link("a", "b", 0.01, 1e9)
        manager = SliceManager(network)
        for i, fraction in enumerate(fractions):
            try:
                manager.create_slice(f"s{i}", "t", "a", "b", fraction)
            except CapacityError:
                pass
            assert manager.reserved_fraction("a", "b") <= 1.0 + 1e-9


class TestPlacementEstimateProperties:
    @given(scale=st.floats(1.1, 4.0), seed=st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_scaling_work_never_reduces_estimated_latency(self, scale,
                                                          seed):
        from repro.continuum import Simulator, build_reference_infrastructure
        from repro.continuum.workload import Application, Task
        from repro.mirto.placement import (
            Placement,
            estimate_placement_kpis,
        )
        infrastructure = build_reference_infrastructure(Simulator())
        rng = random.Random(seed)
        app = Application("p")
        app.add_task(Task("x", megaops=rng.uniform(100, 1000)))
        app.add_task(Task("y", megaops=rng.uniform(100, 1000)))
        app.connect("x", "y", 10_000)
        devices = list(infrastructure.devices)
        placement = Placement({"x": rng.choice(devices),
                               "y": rng.choice(devices)}, "prop")
        lat1, en1 = estimate_placement_kpis(app, placement,
                                            infrastructure)
        bigger = Application("p2")
        bigger.add_task(app.task("x").scaled(scale))
        bigger.add_task(app.task("y").scaled(scale))
        bigger.connect("x", "y", 10_000)
        lat2, en2 = estimate_placement_kpis(bigger, placement,
                                            infrastructure)
        assert lat2 >= lat1
        assert en2 >= en1


class TestRaftSnapshotSafetyProperties:
    @given(schedule=fault_schedules(), seed=st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_safety_holds_with_compaction_enabled(self, schedule, seed):
        """State-machine safety must survive arbitrary fault schedules
        even while nodes compact their logs and ship snapshots."""
        names = [f"n{i}" for i in range(5)]
        applied = {name: [] for name in names}
        state = {name: [] for name in names}

        def make_apply(name):
            def apply(cmd):
                applied[name].append(cmd)
                state[name].append(cmd)
            return apply

        cluster = RaftCluster(
            names, random.Random(seed),
            apply_fns={name: make_apply(name) for name in names},
            snapshot_fns={name: (lambda n=name: list(state[n]))
                          for name in names},
            restore_fns={name: (lambda snap, n=name:
                                (state[n].clear(),
                                 state[n].extend(snap)))
                         for name in names},
            snapshot_threshold=4)
        stopped: set[str] = set()
        for event in schedule:
            kind = event[0]
            if kind == "propose":
                leader = cluster.leader()
                if leader is not None and leader not in stopped:
                    try:
                        cluster.nodes[leader].propose(event[1])
                    except Exception:
                        pass
            elif kind == "crash":
                cluster.stop(names[event[1]])
                stopped.add(names[event[1]])
            elif kind == "restart":
                cluster.restart(names[event[1]])
                stopped.discard(names[event[1]])
            elif kind == "partition":
                a, b = names[event[1]], names[event[2]]
                if a != b:
                    cluster.partition(a, b)
            elif kind == "heal":
                cluster.heal()
            elif kind == "tick":
                cluster.tick(event[1])
        cluster.heal()
        for name in list(stopped):
            cluster.restart(name)
        cluster.tick(250)
        # The *state machines* (full history incl. snapshot restores)
        # must agree on a common prefix.
        logs = list(state.values())
        longest = max(logs, key=len)
        for log in logs:
            assert log == longest[:len(log)]
