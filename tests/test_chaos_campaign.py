"""Chaos campaign + controller semantics over the shared context."""

import pytest

from repro.chaos import (
    ChaosCampaign,
    ChaosController,
    DeviceFlap,
    DeviceOutage,
    GatewayBrownout,
    LatencyInflation,
    LinkDegradation,
    NetworkPartition,
    ZoneOutage,
)
from repro.continuum import build_reference_infrastructure
from repro.continuum.gateway import GatewayHub
from repro.core.errors import ConfigurationError, NotFoundError
from repro.runtime import RuntimeContext


def _setup(seed=1):
    ctx = RuntimeContext(seed=seed)
    infra = build_reference_infrastructure(ctx)
    return ctx, infra, ChaosController(infra)


class TestController:
    def test_fail_and_repair_device(self):
        ctx, infra, controller = _setup()
        controller.fail_device("mc-00-0")
        assert infra.device("mc-00-0").failed
        # Idempotent: a second fail records no extra event.
        controller.fail_device("mc-00-0")
        assert len(controller.tracker.events) == 1
        controller.repair_device("mc-00-0")
        assert not infra.device("mc-00-0").failed

    def test_zone_by_prefix_and_layer(self):
        ctx, infra, controller = _setup()
        assert controller.zone_devices("mc-00") == ["mc-00-0"]
        cloud = controller.zone_devices("cloud")
        assert sorted(cloud) == ["cloud-00", "cloud-01"]
        with pytest.raises(NotFoundError):
            controller.zone_devices("nope-99")

    def test_zone_outage_is_correlated(self):
        ctx, infra, controller = _setup()
        failed = controller.fail_zone("gw-00")
        assert failed == ["gw-00-0"]
        assert infra.device("gw-00-0").failed
        controller.repair_zone("gw-00")
        assert not infra.device("gw-00-0").failed

    def test_link_degradation_inflates_routes(self):
        ctx, infra, controller = _setup()
        net = infra.network
        before = net.path_latency("mc-00-0", "cloud-00")
        controller.degrade_link("gw-00-0", "fmdc-00",
                                latency_factor=10.0,
                                bandwidth_factor=0.1)
        assert net.path_latency("mc-00-0", "cloud-00") > before
        controller.restore_link("gw-00-0", "fmdc-00")
        assert net.path_latency("mc-00-0", "cloud-00") == before

    def test_partition_cuts_and_heals(self):
        ctx, infra, controller = _setup()
        net = infra.network
        cut = controller.partition(("fmdc-00",), ("cloud",))
        assert ("cloud-00", "fmdc-00") in [tuple(sorted(c)) for c in cut]
        with pytest.raises(NotFoundError):
            net.path("mc-00-0", "cloud-00")
        assert controller.heal_partition() == len(cut)
        assert net.path("mc-00-0", "cloud-00")  # reachable again

    def test_latency_inflation_all_links(self):
        ctx, infra, controller = _setup()
        net = infra.network
        before = net.path_latency("mc-00-0", "cloud-00")
        controller.inflate_latency(5.0)
        assert net.path_latency("mc-00-0", "cloud-00") == \
            pytest.approx(5.0 * before)
        controller.restore_latency()
        assert net.path_latency("mc-00-0", "cloud-00") == \
            pytest.approx(before)

    def test_gateway_must_be_registered(self):
        ctx, infra, controller = _setup()
        with pytest.raises(NotFoundError):
            controller.set_gateway_drop_rate("gw-00-0", 0.5)
        hub = GatewayHub(infra.network, "gw-00-0", ctx=ctx)
        controller.register_gateway(hub)
        controller.set_gateway_drop_rate("gw-00-0", 0.5)
        assert hub.drop_rate == 0.5


class TestCampaign:
    def test_actions_fire_at_declared_times(self):
        ctx, infra, controller = _setup()
        campaign = ChaosCampaign("t", [
            DeviceOutage(device="mc-00-0", at_s=2.0, duration_s=3.0),
        ])
        runner = controller.run_campaign(campaign)
        ctx.run(until=1.9)
        assert not infra.device("mc-00-0").failed
        ctx.run(until=2.1)
        assert infra.device("mc-00-0").failed
        ctx.run(until=5.1)
        assert not infra.device("mc-00-0").failed
        assert [(t, p) for t, _, p in runner.executed] == \
            [(2.0, "begin"), (5.0, "end")]

    def test_flap_cycles(self):
        ctx, infra, controller = _setup()
        campaign = ChaosCampaign("flap", [
            DeviceFlap(device="mc-00-0", at_s=0.0, duration_s=6.0,
                       cycles=3),
        ])
        controller.run_campaign(campaign)
        ctx.run(until=20.0)
        fails = controller.tracker.failures_of("mc-00-0")
        assert fails == 3
        assert not infra.device("mc-00-0").failed

    def test_brownout_ramps_up_and_down(self):
        ctx, infra, controller = _setup()
        hub = GatewayHub(infra.network, "gw-00-0", ctx=ctx)
        controller.register_gateway(hub)
        rates = []

        def probe():
            while ctx.now < 8.5:
                rates.append(round(hub.drop_rate, 3))
                yield ctx.sim.timeout(1.0)

        ctx.sim.process(probe())
        campaign = ChaosCampaign("b", [
            GatewayBrownout(gateway="gw-00-0", at_s=0.5, duration_s=7.0,
                            peak_drop_rate=0.8, ramp_steps=4),
        ])
        controller.run_campaign(campaign)
        ctx.run()
        assert max(rates) == pytest.approx(0.8)
        assert rates[0] == 0.0
        assert hub.drop_rate == 0.0  # fully restored
        # Monotone up then down.
        peak = rates.index(max(rates))
        assert rates[:peak + 1] == sorted(rates[:peak + 1])
        assert rates[peak:] == sorted(rates[peak:], reverse=True)

    def test_campaign_end_published(self):
        ctx, infra, controller = _setup()
        seen = []
        ctx.subscribe("chaos.campaign.*",
                      lambda t, p: seen.append((t, p.get("status"))))
        campaign = ChaosCampaign("pub", [
            ZoneOutage(zone="mc-00", at_s=1.0, duration_s=1.0),
        ])
        controller.run_campaign(campaign)
        ctx.run()
        assert ("chaos.campaign.begin", None) == seen[0][:2] or \
            seen[0][0] == "chaos.campaign.begin"
        assert seen[-1] == ("chaos.campaign.end", "ok")

    def test_jitter_is_seeded(self):
        def start_times(seed):
            ctx, infra, controller = _setup(seed)
            campaign = ChaosCampaign("j", [
                DeviceOutage(device="mc-00-0", at_s=1.0, duration_s=0.5),
                DeviceOutage(device="mc-01-0", at_s=1.0, duration_s=0.5),
            ], time_jitter_s=2.0)
            runner = controller.run_campaign(campaign)
            ctx.run()
            return [t for t, _, p in runner.executed if p == "begin"]

        first = start_times(5)
        assert all(1.0 <= t <= 3.0 for t in first)
        assert first == start_times(5)
        assert first != start_times(6)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ChaosCampaign("")
        with pytest.raises(ConfigurationError):
            ChaosCampaign("x", time_jitter_s=-1.0)

    def test_describe_is_declarative(self):
        campaign = ChaosCampaign("d", [
            NetworkPartition(group_a=("fmdc-00",),
                             group_b=("cloud",), at_s=3.0,
                             duration_s=2.0),
            LatencyInflation(factor=2.0, at_s=1.0, duration_s=1.0),
        ])
        desc = campaign.describe()
        assert desc["name"] == "d"
        assert [a["kind"] for a in desc["actions"]] == \
            ["network-partition", "latency-inflation"]
        assert desc["actions"][0]["group_b"] == ["cloud"]


class TestMapeDegradation:
    """Graceful degradation: MAPE steps devices down during a campaign
    and restores them afterwards."""

    def _engine(self, seed=3):
        from repro.mirto import CognitiveEngine, EngineConfig
        ctx = RuntimeContext(seed=seed)
        infra = build_reference_infrastructure(ctx)
        engine = CognitiveEngine(EngineConfig(seed=seed),
                                 infrastructure=infra)
        return ctx, infra, engine

    def test_degrades_during_campaign_and_restores(self):
        ctx, infra, engine = self._engine()
        controller = ChaosController(infra)
        campaign = ChaosCampaign("deg", [
            LinkDegradation(a="gw-00-0", b="fmdc-00", at_s=1.0,
                            duration_s=4.0),
        ])
        controller.run_campaign(campaign)
        ctx.run(until=2.0)  # campaign in progress
        assert engine.mape.chaos_campaigns_active == 1
        record = engine.mape.iterate()
        assert any(t.kind == "degrade" for t in record.triggers)
        degraded = [d for d in infra.devices.values()
                    if d.operating_point.name == "low-power"]
        assert degraded
        ctx.run(until=3.0)  # open degradation interval accrues
        assert engine.mape.degradation_time_s > 0.0

        ctx.run()  # drain: campaign ends
        assert engine.mape.chaos_campaigns_active == 0
        record = engine.mape.iterate()
        assert any(t.kind == "restore" for t in record.triggers)
        assert all(d.operating_point.name != "low-power"
                   for d in infra.devices.values()
                   if "balanced" in d.operating_points)
        # The degradation interval is closed now.
        total = engine.mape.degradation_time_s
        ctx.run(until=ctx.now + 1.0)
        assert engine.mape.degradation_time_s == total

    def test_no_utilization_triggers_while_degraded(self):
        ctx, infra, engine = self._engine()
        controller = ChaosController(infra)
        controller.run_campaign(ChaosCampaign("q", [
            LatencyInflation(factor=2.0, at_s=0.5, duration_s=5.0),
        ]))
        ctx.run(until=1.0)
        record = engine.mape.iterate()
        kinds = {t.kind for t in record.triggers}
        assert "overload" not in kinds
        assert "underload" not in kinds
