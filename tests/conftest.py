"""Shared pytest configuration.

Pins the hypothesis profile so property-based tests are deterministic
across CI runs, and registers the repository layout (src/ packages are
installed in development mode; no path hacks needed).
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
    deadline=None,
)
settings.load_profile("repro")
