"""Tests for swarm optimizers and learning strategies (FL, Q-learning)."""

import random

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.mirto.learning import (
    FederatedClient,
    FederatedTrainer,
    LinearModel,
    QLearningAgent,
    make_operating_point_dataset,
)
from repro.mirto.swarm import AntColonyOptimizer, ParticleSwarmOptimizer


class TestPso:
    def test_minimizes_sphere(self):
        pso = ParticleSwarmOptimizer(4, random.Random(0), particles=20)
        best, value = pso.minimize(lambda x: sum(v * v for v in x),
                                   iterations=60)
        assert value < 0.01
        assert all(abs(v) < 0.2 for v in best)

    def test_minimizes_shifted_function(self):
        pso = ParticleSwarmOptimizer(2, random.Random(1), particles=20,
                                     bounds=(-2, 2))
        best, value = pso.minimize(
            lambda x: (x[0] - 0.7) ** 2 + (x[1] + 0.3) ** 2,
            iterations=80)
        assert best[0] == pytest.approx(0.7, abs=0.05)
        assert best[1] == pytest.approx(-0.3, abs=0.05)

    def test_respects_bounds(self):
        pso = ParticleSwarmOptimizer(3, random.Random(2), bounds=(0, 1))
        best, _ = pso.minimize(lambda x: -sum(x), iterations=30)
        assert all(0 <= v <= 1 for v in best)

    def test_trace_improves(self):
        pso = ParticleSwarmOptimizer(3, random.Random(3))
        pso.minimize(lambda x: sum(v * v for v in x), iterations=30)
        assert pso.trace.improved or \
            pso.trace.best_per_iteration[0] < 0.01

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            ParticleSwarmOptimizer(0, random.Random(0))
        with pytest.raises(ConfigurationError):
            ParticleSwarmOptimizer(2, random.Random(0), bounds=(1, 0))

    def test_deterministic_given_seed(self):
        results = []
        for _ in range(2):
            pso = ParticleSwarmOptimizer(2, random.Random(9))
            results.append(pso.minimize(
                lambda x: sum(v * v for v in x), iterations=20)[1])
        assert results[0] == results[1]


class TestAco:
    def test_finds_known_optimum(self):
        # objective: choose option equal to decision index mod 3.
        def objective(choices):
            return sum(1.0 for i, c in enumerate(choices) if c != i % 3)

        aco = AntColonyOptimizer(6, 3, random.Random(0), ants=15)
        best, value = aco.minimize(objective, iterations=40)
        assert value == 0.0
        assert best == [i % 3 for i in range(6)]

    def test_pheromones_concentrate(self):
        def objective(choices):
            return float(sum(choices))  # all-zeros is optimal

        aco = AntColonyOptimizer(4, 2, random.Random(1), ants=10)
        aco.minimize(objective, iterations=30)
        for decision in range(4):
            assert aco.pheromone[decision][0] > aco.pheromone[decision][1]

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            AntColonyOptimizer(0, 2, random.Random(0))
        with pytest.raises(ConfigurationError):
            AntColonyOptimizer(2, 2, random.Random(0), evaporation=1.5)

    def test_trace_recorded(self):
        aco = AntColonyOptimizer(3, 2, random.Random(2))
        aco.minimize(lambda c: float(sum(c)), iterations=10)
        assert len(aco.trace.best_per_iteration) == 10


class TestLinearModel:
    def test_learns_linear_relation(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0, 1, (200, 2))
        y = 3.0 * x[:, 0] - 2.0 * x[:, 1] + 0.5
        model = LinearModel(2, l2=0.0)
        for _ in range(800):
            model.gradient_step(x, y, lr=0.1)
        assert model.weights[0] == pytest.approx(3.0, abs=0.05)
        assert model.weights[1] == pytest.approx(-2.0, abs=0.05)
        assert model.weights[2] == pytest.approx(0.5, abs=0.05)

    def test_loss_decreases(self):
        rng = np.random.default_rng(1)
        x = rng.normal(0, 1, (50, 3))
        y = x @ np.array([1.0, 2.0, 3.0])
        model = LinearModel(3)
        before = model.loss(x, y)
        for _ in range(50):
            model.gradient_step(x, y)
        assert model.loss(x, y) < before

    def test_weight_shape_check(self):
        model = LinearModel(2)
        with pytest.raises(ConfigurationError):
            model.set_weights(np.zeros(5))


def make_federation(n_clients=4, algorithm="fedavg", seed=0,
                    heterogeneous=False):
    """Clients with disjoint regions of the operating-point space."""
    rng = np.random.default_rng(seed)
    clients = []
    for i in range(n_clients):
        lo = 10.0 + i * 400.0 if heterogeneous else 10.0
        hi = lo + 400.0 if heterogeneous else 2000.0
        features, targets = make_operating_point_dataset(
            rng, 80, megaops_range=(lo, hi))
        clients.append(FederatedClient(
            name=f"edge-agent-{i}", model=LinearModel(3),
            features=features, targets=targets))
    return FederatedTrainer(clients, algorithm=algorithm)


class TestFederatedLearning:
    def test_loss_decreases_over_rounds(self):
        trainer = make_federation()
        losses = trainer.train(rounds=10, local_epochs=8, lr=0.1)
        assert losses[-1] < losses[0]

    def test_fedprox_also_converges(self):
        trainer = make_federation(algorithm="fedprox")
        losses = trainer.train(rounds=10, local_epochs=8, lr=0.1)
        assert losses[-1] < losses[0]

    def test_federation_generalizes_across_regions(self):
        """An isolated client fails on foreign workload regions where the
        federated global model succeeds — the paper's FL claim."""
        trainer = make_federation(heterogeneous=True, seed=2)
        trainer.train(rounds=25, local_epochs=10, lr=0.1)
        global_model = trainer.global_model(3)
        rng = np.random.default_rng(99)
        # Test on the full range, beyond any single client's region.
        x_test, y_test = make_operating_point_dataset(
            rng, 200, megaops_range=(10.0, 1610.0))
        isolated = LinearModel(3)
        lone_x, lone_y = make_operating_point_dataset(
            np.random.default_rng(3), 80, megaops_range=(10.0, 410.0))
        for _ in range(250):
            isolated.gradient_step(lone_x, lone_y, lr=0.1)
        assert global_model.loss(x_test, y_test) \
            < isolated.loss(x_test, y_test)

    def test_history_recorded(self):
        trainer = make_federation()
        trainer.train(rounds=3)
        assert len(trainer.history) == 3
        assert trainer.history[0].round_index == 0

    def test_all_clients_share_global_weights_after_round(self):
        trainer = make_federation()
        trainer.round()
        reference = trainer.clients[0].model.get_weights()
        for client in trainer.clients[1:]:
            np.testing.assert_array_equal(
                client.model.get_weights(), reference)

    def test_empty_federation_rejected(self):
        with pytest.raises(ConfigurationError):
            FederatedTrainer([])

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigurationError):
            make_federation(algorithm="fedsgd")


class TestQLearning:
    def test_learns_simple_mdp(self):
        """State s: correct action is s % 2; reward 1 for correct."""
        agent = QLearningAgent(4, 2, random.Random(0), epsilon=0.3)
        rng = random.Random(1)
        state = 0
        for _ in range(3000):
            action = agent.act(state)
            reward = 1.0 if action == state % 2 else -1.0
            next_state = rng.randrange(4)
            agent.learn(state, action, reward, next_state)
            state = next_state
        assert agent.policy() == [0, 1, 0, 1]

    def test_epsilon_decays(self):
        agent = QLearningAgent(2, 2, random.Random(0), epsilon=0.5)
        for _ in range(100):
            agent.learn(0, 0, 1.0, 1)
        assert agent.epsilon < 0.5

    def test_exploit_mode_deterministic(self):
        agent = QLearningAgent(2, 3, random.Random(0))
        agent.q[0] = [0.1, 0.9, 0.3]
        assert agent.act(0, explore=False) == 1

    def test_invalid_sizes(self):
        with pytest.raises(ConfigurationError):
            QLearningAgent(0, 2, random.Random(0))
