"""Resilience policy semantics on the DES clock.

Retry/backoff determinism, timeout abandonment, circuit breaker state
transitions (closed → open → half-open → closed) and hedged requests —
the policy layer chaos campaigns lean on.
"""

import pytest

from repro.chaos.policies import (
    CallTimeout,
    CircuitBreaker,
    CircuitOpenError,
    Hedge,
    RetriesExhausted,
    RetryPolicy,
    Timeout,
)
from repro.core.errors import ConfigurationError, DeliveryError, \
    ReproError
from repro.runtime import RuntimeContext


def _flaky(ctx, fail_times, delay_s=0.01, value="ok"):
    """Call factory failing the first *fail_times* invocations."""
    calls = {"n": 0}

    def factory():
        def gen():
            yield ctx.sim.timeout(delay_s)
            calls["n"] += 1
            if calls["n"] <= fail_times:
                raise DeliveryError(f"boom #{calls['n']}")
            return value
        return gen()
    return factory, calls


def _drive(ctx, policy, factory):
    """Run policy.call(factory) to completion; returns (value, error)."""
    out = {"value": None, "error": None}

    def driver():
        try:
            out["value"] = yield from policy.call(factory)
        except ReproError as exc:
            out["error"] = exc
    ctx.sim.process(driver())
    ctx.run()
    return out["value"], out["error"]


class TestRetryPolicy:
    def test_succeeds_after_transient_failures(self):
        ctx = RuntimeContext(seed=1)
        factory, calls = _flaky(ctx, fail_times=2)
        policy = RetryPolicy(ctx=ctx, max_attempts=3)
        value, error = _drive(ctx, policy, factory)
        assert error is None
        assert value == "ok"
        assert calls["n"] == 3
        assert policy.retries == 2

    def test_exhaustion_chains_last_cause(self):
        ctx = RuntimeContext(seed=1)
        factory, _ = _flaky(ctx, fail_times=10)
        policy = RetryPolicy(ctx=ctx, max_attempts=3)
        value, error = _drive(ctx, policy, factory)
        assert isinstance(error, RetriesExhausted)
        assert isinstance(error.__cause__, DeliveryError)
        assert policy.attempts == 3

    def test_backoff_grows_and_is_seeded(self):
        def trace_of(seed):
            ctx = RuntimeContext(seed=seed)
            factory, _ = _flaky(ctx, fail_times=10)
            policy = RetryPolicy(ctx=ctx, max_attempts=4,
                                 base_delay_s=0.1, multiplier=2.0)
            retries = []
            ctx.subscribe("chaos.policy.retry",
                          lambda t, p: retries.append(p["delay_s"]))
            _drive(ctx, policy, factory)
            return retries

        first = trace_of(7)
        assert len(first) == 3
        # Exponential envelope: delay k sits in [base*2^k, 1.5*base*2^k].
        for k, delay in enumerate(first):
            assert 0.1 * 2**k <= delay <= 0.1 * 2**k * 1.5
        assert trace_of(7) == first  # same seed, same jitter
        assert trace_of(8) != first

    def test_non_matching_exception_propagates(self):
        ctx = RuntimeContext(seed=1)

        def factory():
            def gen():
                yield ctx.sim.timeout(0.01)
                raise ValueError("not retryable")
            return gen()

        policy = RetryPolicy(ctx=ctx, max_attempts=3)

        def driver():
            with pytest.raises(ValueError):
                yield from policy.call(factory)
        ctx.sim.process(driver())
        ctx.run()

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(ctx=RuntimeContext(), max_attempts=0)


class TestTimeout:
    def test_fast_call_passes_through(self):
        ctx = RuntimeContext(seed=1)
        factory, _ = _flaky(ctx, fail_times=0, delay_s=0.05)
        value, error = _drive(ctx, Timeout(ctx=ctx, limit_s=1.0),
                              factory)
        assert error is None and value == "ok"

    def test_slow_call_abandoned(self):
        ctx = RuntimeContext(seed=1)
        factory, calls = _flaky(ctx, fail_times=0, delay_s=5.0)
        value, error = _drive(ctx, Timeout(ctx=ctx, limit_s=0.5),
                              factory)
        assert isinstance(error, CallTimeout)
        assert calls["n"] == 0  # interrupted before completing

    def test_failure_propagates_not_timeout(self):
        ctx = RuntimeContext(seed=1)
        factory, _ = _flaky(ctx, fail_times=5, delay_s=0.01)
        value, error = _drive(ctx, Timeout(ctx=ctx, limit_s=1.0),
                              factory)
        assert isinstance(error, DeliveryError)

    def test_composes_under_retry(self):
        """Retry(Timeout(...)): timeouts count as retryable failures."""
        ctx = RuntimeContext(seed=1)
        calls = {"n": 0}

        def factory():
            def gen():
                calls["n"] += 1
                # First call hangs; later calls are fast.
                yield ctx.sim.timeout(9.0 if calls["n"] == 1 else 0.01)
                return "ok"
            return gen()

        policy = RetryPolicy(ctx=ctx, max_attempts=3,
                             inner=Timeout(ctx=ctx, limit_s=0.5))
        value, error = _drive(ctx, policy, factory)
        assert error is None and value == "ok"
        assert calls["n"] == 2


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        ctx = RuntimeContext(seed=1)
        breaker = CircuitBreaker(ctx=ctx, failure_threshold=3,
                                 recovery_time_s=10.0)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_half_open_probe_then_close(self):
        ctx = RuntimeContext(seed=1)
        breaker = CircuitBreaker(ctx=ctx, failure_threshold=1,
                                 recovery_time_s=5.0)
        breaker.record_failure()
        assert breaker.state == "open"
        ctx.run(until=6.0)
        assert breaker.allow()  # the single half-open probe
        assert breaker.state == "half-open"
        assert not breaker.allow()  # concurrent probes rejected
        breaker.record_success()
        assert breaker.state == "closed"
        assert [s for _, s in breaker.transitions] == \
            ["closed", "open", "half-open", "closed"]

    def test_half_open_failure_reopens(self):
        ctx = RuntimeContext(seed=1)
        breaker = CircuitBreaker(ctx=ctx, failure_threshold=1,
                                 recovery_time_s=5.0)
        breaker.record_failure()
        ctx.run(until=6.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        # The open window re-arms from the half-open failure.
        assert not breaker.allow()
        ctx.run(until=12.0)
        assert breaker.allow()

    def test_transitions_published_on_bus(self):
        ctx = RuntimeContext(seed=1)
        states = []
        ctx.subscribe("chaos.breaker.state",
                      lambda t, p: states.append(p["state"]))
        breaker = CircuitBreaker(ctx=ctx, failure_threshold=1,
                                 recovery_time_s=5.0, name="b")
        breaker.record_failure()
        ctx.run(until=6.0)
        breaker.allow()
        breaker.record_success()
        assert states == ["open", "half-open", "closed"]

    def test_call_fails_fast_when_open(self):
        ctx = RuntimeContext(seed=1)
        breaker = CircuitBreaker(ctx=ctx, failure_threshold=1,
                                 recovery_time_s=60.0)
        factory, calls = _flaky(ctx, fail_times=10)
        _drive(ctx, breaker, factory)
        assert breaker.state == "open"
        value, error = _drive(ctx, breaker, factory)
        assert isinstance(error, CircuitOpenError)
        assert calls["n"] == 1  # the open call never ran the factory
        assert breaker.rejected == 1


class TestHedge:
    def test_fast_primary_wins_without_hedging(self):
        ctx = RuntimeContext(seed=1)
        factory, calls = _flaky(ctx, fail_times=0, delay_s=0.01)
        policy = Hedge(ctx=ctx, delay_s=0.5)
        value, error = _drive(ctx, policy, factory)
        assert error is None and value == "ok"
        assert policy.hedged == 0
        assert calls["n"] == 1

    def test_slow_primary_hedged_by_secondary(self):
        ctx = RuntimeContext(seed=1)
        invocations = {"n": 0}

        def factory():
            invocations["n"] += 1
            mine = invocations["n"]

            def gen():
                # Primary is slow, the hedge is fast.
                yield ctx.sim.timeout(10.0 if mine == 1 else 0.05)
                return f"attempt-{mine}"
            return gen()

        policy = Hedge(ctx=ctx, delay_s=0.2)
        value, error = _drive(ctx, policy, factory)
        assert error is None
        assert value == "attempt-2"
        assert policy.hedged == 1
        # The loser was interrupted: only the winner completed.
        assert invocations["n"] == 2


class TestDeterminism:
    def test_policy_stack_replays_byte_identically(self):
        def run(seed):
            ctx = RuntimeContext(seed=seed)
            factory, _ = _flaky(ctx, fail_times=2)
            policy = RetryPolicy(
                ctx=ctx, max_attempts=4,
                inner=Timeout(ctx=ctx, limit_s=0.5))
            _drive(ctx, policy, factory)
            return ctx.trace.to_jsonl()

        assert run(11) == run(11)
        assert run(11) != run(12)
