"""Tests for the MIRTO Manager, MAPE loop, agent API and proxies."""

import pytest

from repro.core.errors import NotFoundError, OrchestrationError
from repro.continuum import Simulator, build_reference_infrastructure
from repro.continuum.workload import KernelClass, PrivacyClass
from repro.dpe import ComponentModel, ScenarioModel
from repro.kube import (
    ContinuumFederation,
    KubeCluster,
    Node,
    PodPhase,
    ResourceRequest,
)
from repro.mirto import (
    ApiRequest,
    CognitiveEngine,
    DeploymentProxy,
    EngineConfig,
    KbProxy,
    MirtoManager,
    container_to_pod_spec,
    service_to_application,
)
from repro.kb.store import KnowledgeBase
from repro.security.levels import SecurityLevel

GIB = 1024**3


def mobility_scenario():
    scenario = ScenarioModel("mobility", latency_budget_s=0.5,
                             min_security_level="medium")
    scenario.add_component(ComponentModel(
        "perception", 800, input_bytes=500_000, kernel=KernelClass.DSP,
        accelerable=True))
    scenario.add_component(ComponentModel(
        "fusion", 3000, kernel=KernelClass.ANALYTICS,
        privacy=PrivacyClass.AGGREGATED))
    scenario.add_component(ComponentModel("planning", 1500))
    scenario.connect("perception", "fusion", 100_000)
    scenario.connect("fusion", "planning", 20_000)
    return scenario


@pytest.fixture
def engine():
    return CognitiveEngine(EngineConfig(seed=1))


class TestServiceTranslation:
    def test_containers_become_tasks(self):
        service = mobility_scenario().to_service_template()
        app = service_to_application(service)
        assert {t.name for t in app.tasks} \
            == {"perception", "fusion", "planning"}
        assert app.task("perception").kernel == KernelClass.DSP

    def test_policies_carry_into_requirements(self):
        service = mobility_scenario().to_service_template()
        app = service_to_application(service)
        assert app.task("fusion").requirements.privacy \
            == PrivacyClass.AGGREGATED
        assert app.task("planning").requirements.min_security_level \
            == "medium"
        assert app.task("planning").requirements.latency_budget_s == 0.5

    def test_connections_become_edges(self):
        service = mobility_scenario().to_service_template()
        app = service_to_application(service)
        assert app.predecessors("fusion") == ["perception"]


class TestMirtoManager:
    def test_deploy_produces_outcome(self, engine):
        service = mobility_scenario().to_service_template()
        outcome = engine.manager.deploy(service, strategy="greedy")
        assert outcome.report.makespan_s > 0
        assert outcome.security_level == "medium"
        assert set(outcome.placement.assignment) \
            == {"perception", "fusion", "planning"}

    def test_privacy_respected_in_placement(self, engine):
        service = mobility_scenario().to_service_template()
        outcome = engine.manager.deploy(service, strategy="greedy")
        fusion_device = engine.infrastructure.device(
            outcome.placement.device_of("fusion"))
        assert fusion_device.spec.layer.value in ("edge", "fog")

    def test_node_manager_configures_operating_points(self, engine):
        service = mobility_scenario().to_service_template()
        engine.manager.deploy(service, strategy="greedy")
        # At least the devices used should carry a concrete point.
        assert engine.manager.node_manager.switches >= 0

    def test_security_manager_tracks_trust(self, engine):
        service = mobility_scenario().to_service_template()
        outcome = engine.manager.deploy(service)
        for device in set(outcome.placement.assignment.values()):
            assert engine.manager.security.trust.trust(device) != 0.5 \
                or engine.manager.security.trust.known_components()

    def test_required_level_parsing(self, engine):
        service = mobility_scenario().to_service_template()
        level = engine.manager.security.required_level(service)
        assert level is SecurityLevel.MEDIUM

    def test_empty_service_rejected(self, engine):
        from repro.tosca.model import ServiceTemplate
        with pytest.raises(OrchestrationError):
            engine.manager.deploy(ServiceTemplate("empty"))


class TestNetworkManager:
    def test_transfer_cost_positive(self, engine):
        cost = engine.manager.network.transfer_cost(
            "fpga-00-0", "cloud-00", 1_000_000)
        assert cost > 0

    def test_slice_reservation(self, engine):
        net_slice = engine.manager.network.reserve_slice(
            "critical", "mobility", "fpga-00-0", "fmdc-00", 0.3)
        assert net_slice.fraction == 0.3
        assert engine.manager.network.slices.slice_bandwidth(
            "critical") > 0

    def test_congestion_state_bounded(self, engine):
        state = engine.manager.network.congestion_state()
        assert 0 <= state <= 4

    def test_advice_returns_layer(self, engine):
        from repro.continuum.devices import Layer
        layer = engine.manager.network.advise_layer()
        assert isinstance(layer, Layer)


class TestMapeLoop:
    def test_iteration_record(self, engine):
        record = engine.mape.iterate()
        assert record.sensed_components == len(engine.infrastructure)
        assert record.iteration == 0

    def test_underload_switches_to_low_power(self, engine):
        engine.mape.iterate()
        # Idle infrastructure: every reconfigurable device should end up
        # in low-power.
        fpga = engine.infrastructure.device("fpga-00-0")
        assert fpga.operating_point.name == "low-power"

    def test_sense_populates_registry(self, engine):
        engine.mape.iterate()
        status = engine.registry.status("fpga-00-0")
        assert "utilization" in status
        assert "operating_point" in status

    def test_trust_drop_triggers_flag(self, engine):
        from repro.security.trust import InteractionOutcome
        for _ in range(10):
            engine.manager.security.trust.observe(
                "cloud-00", InteractionOutcome(0, False, 0.0))
        record = engine.mape.iterate()
        kinds = {(t.kind, t.component) for t in record.triggers}
        assert ("trust-drop", "cloud-00") in kinds
        advice = engine.registry.status("reallocation/cloud-00")
        assert advice["advice"] == "avoid"

    def test_repeated_iterations_stable(self, engine):
        records = engine.mape_iterate(3)
        # Second pass should execute fewer actions (already configured).
        assert records[1].executed <= records[0].executed


class TestAgentApi:
    def make_request(self, engine, body, token=None):
        return ApiRequest(
            method="POST", path="/deployments",
            token=token if token is not None
            else engine.operator_token(), body=body)

    def test_deploy_via_api(self, engine):
        from repro.tosca.parser import dump_service_template
        service = mobility_scenario().to_service_template()
        response = engine.deploy(service, strategy="greedy")
        assert response.status == 201
        assert response.body["deadline_met"] in (True, False)
        assert response.body["security_level"] == "medium"

    def test_bad_token_rejected(self, engine):
        response = engine.agent().handle(self.make_request(
            engine, {"tosca": ""}, token=b"garbage"))
        assert response.status == 401

    def test_invalid_tosca_rejected(self, engine):
        bad = """
tosca_definitions_version: myrtus_tosca_1_0
topology_template:
  node_templates:
    thing:
      type: myrtus.nodes.Container
      properties: {image: x}
"""
        response = engine.agent().handle(
            self.make_request(engine, {"tosca": bad}))
        assert response.status == 422
        assert response.body["problems"]

    def test_unknown_route(self, engine):
        response = engine.agent().handle(ApiRequest(
            "POST", "/nonsense", token=engine.operator_token()))
        assert response.status == 404

    def test_status_route(self, engine):
        response = engine.agent().handle(ApiRequest(
            "GET", "/status", token=engine.operator_token()))
        assert response.status == 200
        assert response.body["layer"] == "edge"
        assert len(response.body["peers"]) == 2

    def test_deployments_listing(self, engine):
        engine.deploy(mobility_scenario().to_service_template())
        response = engine.agent().handle(ApiRequest(
            "GET", "/deployments", token=engine.operator_token()))
        assert response.status == 200
        assert len(response.body) == 1

    def test_auditor_cannot_deploy(self, engine):
        agent = engine.agent()
        agent.auth.register_user("aud", ["auditor"])
        token = agent.auth.issue_token("aud")
        response = agent.handle(self.make_request(
            engine, {"tosca": ""}, token=token))
        assert response.status == 403

    def test_csar_deployment(self, engine):
        from repro.tosca.csar import CsarArchive
        service = mobility_scenario().to_service_template()
        archive = CsarArchive(service)
        response = engine.agent().handle(self.make_request(
            engine, {"csar": archive.to_bytes()}))
        assert response.status == 201


class TestKbProxy:
    def test_namespacing(self):
        kb = KnowledgeBase(replicas=1, seed=0)
        a = KbProxy(kb, "agent-a")
        b = KbProxy(kb, "agent-b")
        a.put("state", 1)
        b.put("state", 2)
        assert a.get("state") == 1
        assert b.get("state") == 2
        assert a.range() == {"state": 1}

    def test_bad_namespace_rejected(self):
        kb = KnowledgeBase(replicas=1, seed=0)
        with pytest.raises(OrchestrationError):
            KbProxy(kb, "has/slash")

    def test_watch_scoped(self):
        kb = KnowledgeBase(replicas=1, seed=0)
        a = KbProxy(kb, "agent-a")
        b = KbProxy(kb, "agent-b")
        events = []
        a.watch("", events.append)
        b.put("noise", 1)
        a.put("signal", 2)
        assert len(events) == 1


class TestDeploymentProxy:
    def federation(self):
        fed = ContinuumFederation()
        edge = KubeCluster("edge")
        edge.add_node(Node("fpga", ResourceRequest(2000, 2 * GIB),
                           labels={"security-level": "high"}))
        cloud = KubeCluster("cloud")
        cloud.add_node(Node("srv", ResourceRequest(64000, 256 * GIB),
                            labels={"security-level": "high"}))
        fed.add_cluster(edge)
        fed.add_cluster(cloud)
        fed.peer("edge", "cloud")
        return fed

    def test_pod_spec_translation(self):
        service = mobility_scenario().to_service_template()
        spec = container_to_pod_spec(service, "perception")
        assert spec.name == "mobility-perception"
        assert spec.min_security_level == "medium"
        assert spec.request.cpu_millicores == 800

    def test_deploy_service_places_all_pods(self):
        fed = self.federation()
        proxy = DeploymentProxy(fed, "edge")
        service = mobility_scenario().to_service_template()
        record = proxy.deploy_service(service)
        phases = proxy.service_phases("mobility")
        assert len(phases) == 3
        assert all(phase in ("Scheduled", "Running")
                   for phase in phases.values())

    def test_rollback_on_unplaceable(self):
        fed = ContinuumFederation()
        tiny = KubeCluster("tiny")
        tiny.add_node(Node("n", ResourceRequest(100, GIB // 4),
                           labels={"security-level": "high"}))
        fed.add_cluster(tiny)
        proxy = DeploymentProxy(fed, "tiny")
        service = mobility_scenario().to_service_template()
        with pytest.raises(OrchestrationError, match="unplaceable"):
            proxy.deploy_service(service)
        assert not tiny.pods  # everything rolled back

    def test_undeploy_cleans_up(self):
        fed = self.federation()
        proxy = DeploymentProxy(fed, "edge")
        service = mobility_scenario().to_service_template()
        proxy.deploy_service(service)
        proxy.undeploy_service("mobility")
        assert not fed.clusters["edge"].pods
        with pytest.raises(NotFoundError):
            proxy.service_phases("mobility")

    def test_duplicate_deploy_rejected(self):
        fed = self.federation()
        proxy = DeploymentProxy(fed, "edge")
        service = mobility_scenario().to_service_template()
        proxy.deploy_service(service)
        with pytest.raises(OrchestrationError):
            proxy.deploy_service(service)


class TestNegotiation:
    def test_agent_negotiates_when_local_placement_fails(self):
        """An edge-only agent with impossible constraints asks a peer."""
        sim = Simulator()
        # Tiny infrastructure: only a RISC-V (low security) at the edge.
        from repro.continuum.infrastructure import Infrastructure
        from repro.continuum.devices import DeviceKind
        lone = Infrastructure(ctx=sim)
        lone.add_device(DeviceKind.RISCV_CGRA, name="riscv")
        lone_manager = MirtoManager(lone)
        full_engine = CognitiveEngine(EngineConfig(seed=2))
        from repro.mirto.agent import MirtoAgent
        weak_agent = MirtoAgent("weak-edge", "edge", lone_manager)
        weak_agent.peer_with(full_engine.agent("cloud"))
        service = mobility_scenario().to_service_template()  # medium sec
        outcome = weak_agent.deploy_or_negotiate(service)
        assert outcome.report.makespan_s > 0
        assert weak_agent.negotiations
        assert weak_agent.negotiations[-1].accepted
