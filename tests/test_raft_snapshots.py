"""Tests for Raft log compaction and InstallSnapshot."""

import random

import pytest

from repro.kb import KnowledgeBase
from repro.kb.raft import RaftCluster


def make_cluster(n=3, seed=0, threshold=8, **kwargs):
    applied = {f"n{i}": [] for i in range(n)}
    state = {f"n{i}": {"sum": 0} for i in range(n)}

    def make_apply(name):
        def apply(cmd):
            applied[name].append(cmd)
            state[name]["sum"] += cmd
        return apply

    def make_snapshot(name):
        return lambda: dict(state[name])

    def make_restore(name):
        def restore(snap):
            state[name].clear()
            state[name].update(snap)
        return restore

    cluster = RaftCluster(
        [f"n{i}" for i in range(n)], random.Random(seed),
        apply_fns={name: make_apply(name) for name in applied},
        snapshot_fns={name: make_snapshot(name) for name in applied},
        restore_fns={name: make_restore(name) for name in applied},
        snapshot_threshold=threshold, **kwargs)
    return cluster, applied, state


class TestCompaction:
    def test_log_is_bounded_by_threshold(self):
        cluster, _, _ = make_cluster(threshold=8)
        for i in range(50):
            cluster.propose(i)
        cluster.tick(50)
        for node in cluster.nodes.values():
            assert len(node.log) <= 8 + 2  # threshold + in-flight slack
            assert node.snapshots_taken >= 1

    def test_state_machine_correct_after_compaction(self):
        cluster, _, state = make_cluster(threshold=5)
        total = 0
        for i in range(30):
            cluster.propose(i)
            total += i
        cluster.tick(80)
        for name in cluster.nodes:
            assert state[name]["sum"] == total

    def test_no_compaction_without_threshold(self):
        cluster, _, _ = make_cluster(threshold=None)
        for i in range(30):
            cluster.propose(i)
        cluster.tick(30)
        leader = cluster.run_until_leader()
        assert cluster.nodes[leader].snapshots_taken == 0
        assert len(cluster.nodes[leader].log) >= 30


class TestInstallSnapshot:
    def test_lagging_follower_receives_snapshot(self):
        cluster, _, state = make_cluster(n=3, seed=1, threshold=6)
        leader = cluster.run_until_leader()
        follower = next(n for n in cluster.nodes if n != leader)
        cluster.stop(follower)
        total = 0
        for i in range(40):  # far beyond the compaction threshold
            cluster.propose(i)
            total += i
        cluster.restart(follower)
        cluster.tick(150)
        node = cluster.nodes[follower]
        assert node.snapshots_installed >= 1
        assert state[follower]["sum"] == total

    def test_follower_continues_after_snapshot(self):
        """After installing a snapshot, normal replication resumes."""
        cluster, _, state = make_cluster(n=3, seed=2, threshold=6)
        leader = cluster.run_until_leader()
        follower = next(n for n in cluster.nodes if n != leader)
        cluster.stop(follower)
        total = 0
        for i in range(30):
            cluster.propose(i)
            total += i
        cluster.restart(follower)
        cluster.tick(150)
        for i in range(5):  # post-snapshot appends
            cluster.propose(100 + i)
            total += 100 + i
        cluster.tick(80)
        assert state[follower]["sum"] == total

    def test_stale_snapshot_ignored(self):
        from repro.kb.raft import InstallSnapshot
        cluster, _, state = make_cluster(n=3, seed=3, threshold=5)
        for i in range(20):
            cluster.propose(i)
        cluster.tick(60)
        leader = cluster.run_until_leader()
        node = cluster.nodes[leader]
        follower_name = next(n for n in cluster.nodes if n != leader)
        follower = cluster.nodes[follower_name]
        before = follower.snapshot_index
        # Deliver an old snapshot directly.
        follower.handle(
            InstallSnapshot(term=node.current_term, leader=leader,
                            snapshot_index=1, snapshot_term=1,
                            state={"sum": 0}),
            cluster.now, lambda dst, m: None)
        assert follower.snapshot_index == before  # unchanged


class TestKnowledgeBaseWithSnapshots:
    def test_kb_operations_survive_compaction(self):
        kb = KnowledgeBase(replicas=3, seed=4, snapshot_threshold=10)
        for i in range(60):
            kb.put(f"key-{i % 7}", i)
        kb.tick(80)
        for i in range(7):
            latest = max(j for j in range(60) if j % 7 == i)
            assert kb.get(f"key-{i}") == latest
        leader = kb.cluster.run_until_leader()
        assert kb.cluster.nodes[leader].snapshots_taken >= 1

    def test_crashed_replica_catches_up_via_snapshot(self):
        kb = KnowledgeBase(replicas=3, seed=5, snapshot_threshold=8)
        kb.put("warmup", 0)
        leader = kb.cluster.run_until_leader()
        victim = next(n for n in kb.cluster.nodes if n != leader)
        kb.cluster.stop(victim)
        for i in range(40):
            kb.put(f"k{i % 5}", i)
        kb.cluster.restart(victim)
        kb.tick(200)
        states = kb.replica_states()
        reference = states[kb.cluster.run_until_leader()]
        assert states[victim] == reference
        assert kb.cluster.nodes[victim].snapshots_installed >= 1

    def test_revision_preserved_across_snapshot(self):
        kb = KnowledgeBase(replicas=1, seed=6, snapshot_threshold=5)
        for i in range(20):
            kb.put("k", i)
        revision_before = kb.revision
        kb.put("k", 99)
        assert kb.revision == revision_before + 1
