"""Tests for the mini-Kubernetes control plane and scheduler."""

import pytest

from repro.core.errors import (
    NotFoundError,
    OrchestrationError,
    ValidationError,
)
from repro.kube import (
    Deployment,
    KubeCluster,
    Node,
    PodPhase,
    PodSpec,
    ResourceRequest,
    Scheduler,
    Taint,
)

GIB = 1024**3


def small_node(name="n0", cpu=4000, mem=4 * GIB, **kwargs):
    return Node(name, ResourceRequest(cpu, mem), **kwargs)


def small_pod(name="p0", cpu=500, mem=256 * 1024**2, **kwargs):
    return PodSpec(name, ResourceRequest(cpu, mem), **kwargs)


class TestResourceRequest:
    def test_addition(self):
        total = ResourceRequest(100, 200) + ResourceRequest(50, 100)
        assert total == ResourceRequest(150, 300)

    def test_fits_within(self):
        assert ResourceRequest(100, 100).fits_within(ResourceRequest(100, 100))
        assert not ResourceRequest(101, 0).fits_within(ResourceRequest(100, 0))

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            ResourceRequest(-1, 0)


class TestScheduling:
    def test_pod_binds_to_fitting_node(self):
        cluster = KubeCluster("c")
        cluster.add_node(small_node())
        pod = cluster.create_pod(small_pod())
        assert cluster.reconcile() == 1
        assert pod.phase is PodPhase.SCHEDULED
        assert pod.node_name == "n0"

    def test_unschedulable_stays_pending_with_reason(self):
        cluster = KubeCluster("c")
        cluster.add_node(small_node(cpu=100))
        pod = cluster.create_pod(small_pod(cpu=4000))
        assert cluster.reconcile() == 0
        assert pod.phase is PodPhase.PENDING
        assert any("insufficient resources" in m for m in pod.messages)

    def test_resources_tracked_across_pods(self):
        cluster = KubeCluster("c")
        cluster.add_node(small_node(cpu=1000))
        cluster.create_pod(small_pod("a", cpu=600))
        cluster.create_pod(small_pod("b", cpu=600))
        cluster.reconcile()
        phases = {p.name: p.phase for p in cluster.pods.values()}
        assert phases["a"] is PodPhase.SCHEDULED
        assert phases["b"] is PodPhase.PENDING  # 600+600 > 1000

    def test_node_selector_respected(self):
        cluster = KubeCluster("c")
        cluster.add_node(small_node("plain"))
        cluster.add_node(small_node("fpga", labels={"accel": "fpga"}))
        pod = cluster.create_pod(small_pod(node_selector={"accel": "fpga"}))
        cluster.reconcile()
        assert pod.node_name == "fpga"

    def test_taint_repels_untolerating_pod(self):
        cluster = KubeCluster("c")
        cluster.add_node(small_node(
            "tainted", taints=[Taint("dedicated", "mirto")]))
        pod = cluster.create_pod(small_pod())
        cluster.reconcile()
        assert pod.phase is PodPhase.PENDING

    def test_toleration_admits_pod(self):
        cluster = KubeCluster("c")
        cluster.add_node(small_node(
            "tainted", taints=[Taint("dedicated", "mirto")]))
        pod = cluster.create_pod(small_pod(
            tolerations=[Taint("dedicated", "mirto")]))
        cluster.reconcile()
        assert pod.node_name == "tainted"

    def test_security_level_predicate(self):
        cluster = KubeCluster("c")
        cluster.add_node(small_node(
            "weak", labels={"security-level": "low"}))
        cluster.add_node(small_node(
            "strong", labels={"security-level": "high"}))
        pod = cluster.create_pod(small_pod(min_security_level="high"))
        cluster.reconcile()
        assert pod.node_name == "strong"

    def test_unready_node_filtered(self):
        cluster = KubeCluster("c")
        node = small_node()
        node.ready = False
        cluster.add_node(node)
        pod = cluster.create_pod(small_pod())
        cluster.reconcile()
        assert pod.phase is PodPhase.PENDING

    def test_least_allocated_spreads_load(self):
        cluster = KubeCluster("c")
        cluster.add_node(small_node("a", cpu=4000))
        cluster.add_node(small_node("b", cpu=4000))
        for i in range(4):
            cluster.create_pod(small_pod(f"p{i}", cpu=1000))
            cluster.reconcile()
        placements = [p.node_name for p in cluster.pods.values()]
        assert placements.count("a") == 2
        assert placements.count("b") == 2

    def test_label_affinity_bonus(self):
        scheduler = Scheduler()
        cluster = KubeCluster("c", scheduler=scheduler)
        cluster.add_node(small_node("match", labels={"zone": "z1"}))
        cluster.add_node(small_node("other", labels={"zone": "z2"}))
        pod = cluster.create_pod(small_pod(labels={"zone": "z1"}))
        cluster.reconcile()
        assert pod.node_name == "match"


class TestPodLifecycle:
    def test_duplicate_active_name_rejected(self):
        cluster = KubeCluster("c")
        cluster.add_node(small_node())
        cluster.create_pod(small_pod("x"))
        with pytest.raises(ValidationError):
            cluster.create_pod(small_pod("x"))

    def test_mark_running_requires_scheduled(self):
        cluster = KubeCluster("c")
        pod = cluster.create_pod(small_pod())
        with pytest.raises(OrchestrationError):
            cluster.mark_running(pod.uid)

    def test_full_lifecycle(self):
        cluster = KubeCluster("c")
        cluster.add_node(small_node())
        pod = cluster.create_pod(small_pod())
        cluster.reconcile()
        cluster.mark_running(pod.uid)
        assert pod.phase is PodPhase.RUNNING
        cluster.mark_finished(pod.uid)
        assert pod.phase is PodPhase.SUCCEEDED

    def test_delete_unknown_pod_raises(self):
        with pytest.raises(NotFoundError):
            KubeCluster("c").delete_pod("ghost")

    def test_node_failure_evicts_and_reschedules(self):
        cluster = KubeCluster("c")
        cluster.add_node(small_node("a"))
        cluster.add_node(small_node("b"))
        pod = cluster.create_pod(small_pod())
        cluster.reconcile()
        first = pod.node_name
        cluster.set_node_ready(first, False)
        assert pod.phase is PodPhase.PENDING
        assert pod.restarts == 1
        cluster.reconcile()
        assert pod.node_name != first
        assert pod.phase is PodPhase.SCHEDULED

    def test_remove_node_evicts(self):
        cluster = KubeCluster("c")
        cluster.add_node(small_node())
        pod = cluster.create_pod(small_pod())
        cluster.reconcile()
        cluster.remove_node("n0")
        assert pod.phase is PodPhase.PENDING
        with pytest.raises(NotFoundError):
            cluster.node("n0")


class TestDeployments:
    def test_replicas_created(self):
        cluster = KubeCluster("c")
        cluster.add_node(small_node())
        cluster.create_deployment(Deployment(
            "web", small_pod("web"), replicas=3))
        cluster.reconcile()
        assert len(cluster._deployment_pods("web")) == 3

    def test_scale_up_and_down(self):
        cluster = KubeCluster("c")
        cluster.add_node(small_node())
        cluster.create_deployment(Deployment(
            "web", small_pod("web"), replicas=2))
        cluster.reconcile()
        cluster.scale_deployment("web", 4)
        cluster.reconcile()
        assert len(cluster._deployment_pods("web")) == 4
        cluster.scale_deployment("web", 1)
        cluster.reconcile()
        assert len(cluster._deployment_pods("web")) == 1

    def test_replaces_failed_replicas(self):
        cluster = KubeCluster("c")
        cluster.add_node(small_node())
        cluster.create_deployment(Deployment(
            "svc", small_pod("svc"), replicas=2))
        cluster.reconcile()
        victim = cluster._deployment_pods("svc")[0]
        cluster.mark_running(victim.uid)
        cluster.mark_finished(victim.uid, succeeded=False)
        cluster.reconcile()
        assert len(cluster._deployment_pods("svc")) == 2

    def test_negative_replicas_rejected(self):
        with pytest.raises(ValidationError):
            Deployment("d", small_pod(), replicas=-1)

    def test_scale_unknown_deployment(self):
        with pytest.raises(NotFoundError):
            KubeCluster("c").scale_deployment("ghost", 1)


class TestIntrospection:
    def test_utilization_report(self):
        cluster = KubeCluster("c")
        cluster.add_node(small_node(cpu=1000))
        cluster.create_pod(small_pod(cpu=250))
        cluster.reconcile()
        assert cluster.utilization()["n0"] == pytest.approx(0.25)

    def test_events_recorded(self):
        cluster = KubeCluster("c")
        cluster.add_node(small_node())
        cluster.create_pod(small_pod())
        cluster.reconcile()
        kinds = [e.kind for e in cluster.events]
        assert "NodeAdded" in kinds
        assert "PodCreated" in kinds
        assert "Scheduled" in kinds
