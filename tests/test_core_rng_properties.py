"""Property-based coverage for `repro.core.rng`.

The whole determinism story rests on `derive_seed` being stable across
runs and collision-resistant across stream names, and on RngRegistry
replaying identical streams for identical root seeds — so those
properties get tested directly.
"""

from hypothesis import given, strategies as st

from repro.core.rng import RngRegistry, derive_seed

seeds = st.integers(min_value=0, max_value=2**63 - 1)
names = st.text(min_size=1, max_size=40)


class TestDeriveSeed:
    @given(seeds, names)
    def test_stable_across_calls(self, root, name):
        assert derive_seed(root, name) == derive_seed(root, name)

    @given(seeds, names)
    def test_in_63_bit_range(self, root, name):
        value = derive_seed(root, name)
        assert 0 <= value < 2**63

    @given(seeds, st.lists(names, min_size=2, max_size=20,
                           unique=True))
    def test_collision_resistant_across_names(self, root, name_list):
        derived = [derive_seed(root, n) for n in name_list]
        assert len(set(derived)) == len(derived)

    @given(names, st.lists(seeds, min_size=2, max_size=10, unique=True))
    def test_distinct_roots_give_distinct_seeds(self, name, roots):
        derived = [derive_seed(r, name) for r in roots]
        assert len(set(derived)) == len(derived)

    def test_known_values_pinned(self):
        # regression pin: a change in the derivation breaks every
        # recorded experiment, so the exact values are asserted
        assert derive_seed(0, "a") == derive_seed(0, "a")
        assert derive_seed(0, "a") != derive_seed(0, "b")
        assert derive_seed(1, "a") != derive_seed(0, "a")
        # stable across processes (unlike hash()):
        assert derive_seed(42, "election") == \
            int.from_bytes(
                __import__("hashlib").sha256(b"42:election").digest()[:8],
                "big") & 0x7FFF_FFFF_FFFF_FFFF


class TestRegistryReplay:
    @given(seeds, names)
    def test_python_streams_replay(self, root, name):
        first = RngRegistry(root).python(name)
        second = RngRegistry(root).python(name)
        assert [first.random() for _ in range(5)] == \
            [second.random() for _ in range(5)]

    @given(seeds, names)
    def test_numpy_streams_replay(self, root, name):
        first = RngRegistry(root).numpy(name)
        second = RngRegistry(root).numpy(name)
        assert first.random(5).tolist() == second.random(5).tolist()

    @given(seeds, st.lists(names, min_size=2, max_size=5, unique=True))
    def test_streams_are_independent(self, root, name_list):
        # drawing from one stream must not perturb another
        registry_a = RngRegistry(root)
        registry_b = RngRegistry(root)
        for name in name_list:
            registry_a.python(name).random()  # advance every stream
        target = name_list[-1]
        registry_b.python(target).random()
        assert registry_a.python(target).random() == \
            registry_b.python(target).random()

    @given(seeds, names)
    def test_same_name_returns_same_stream_object(self, root, name):
        registry = RngRegistry(root)
        assert registry.python(name) is registry.python(name)
        assert registry.numpy(name) is registry.numpy(name)

    @given(seeds, names)
    def test_fork_replays_identically(self, root, name):
        child_a = RngRegistry(root).fork(name)
        child_b = RngRegistry(root).fork(name)
        assert child_a.root_seed == child_b.root_seed
        assert child_a.python("s").random() == \
            child_b.python("s").random()
