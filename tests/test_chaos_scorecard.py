"""Scorecard harness: deterministic replay, causal recovery tracing,
partition-heal recovery, and the repro-chaos CLI contract."""

import json
import subprocess
import sys

import pytest

from repro.chaos.scorecard import (
    render_report,
    run_scenario,
    score_run,
    scorecard,
)
from repro.kube.cluster import PodPhase


@pytest.fixture(scope="module")
def smoke_run():
    return run_scenario(seed=7, campaign_name="smoke")


@pytest.fixture(scope="module")
def full_run():
    return run_scenario(seed=7, campaign_name="full")


class TestScorecardDeterminism:
    def test_same_seed_replay_byte_identical(self):
        """Trace AND scorecard JSON replay byte-for-byte."""
        def once():
            run = run_scenario(seed=11, campaign_name="smoke",
                               horizon_s=20.0)
            return run["ctx"].trace.to_jsonl(), \
                json.dumps(score_run(run), sort_keys=True)

        first_trace, first_score = once()
        second_trace, second_score = once()
        assert first_trace == second_trace
        assert first_score == second_score

    def test_different_seed_diverges(self):
        def score_of(seed):
            run = run_scenario(seed=seed, campaign_name="smoke",
                               horizon_s=20.0)
            return run["ctx"].trace.to_jsonl()

        assert score_of(11) != score_of(12)

    def test_report_aggregates_over_seeds(self):
        report = scorecard("smoke", seeds=(1, 2), horizon_s=20.0)
        assert report["campaign"]["name"] == "smoke"
        assert report["seeds"] == [1, 2]
        assert sorted(report["per_seed"]) == ["1", "2"]
        agg = report["aggregate"]
        per_seed = [card["availability"]
                    for card in report["per_seed"].values()]
        assert agg["availability"] == \
            pytest.approx(sum(per_seed) / 2, abs=1e-6)
        # render_report is canonical: sorted keys, stable text.
        assert render_report(report) == render_report(report)


class TestScorecardMetrics:
    def test_smoke_scorecard_shape(self, smoke_run):
        score = score_run(smoke_run)
        assert 0.0 < score["availability"] < 1.0
        assert score["mttr_s"] > 0.0
        assert score["mutations_executed"] >= 4
        assert score["fault_events"] >= 2
        assert score["mape_iterations"] >= 5
        assert score["deployments"] >= 1
        json.dumps(score)  # plain JSON types only

    def test_degradation_accrued(self, smoke_run):
        score = score_run(smoke_run)
        assert score["degradation_time_s"] > 0.0
        # Bounded by the horizon.
        assert score["degradation_time_s"] <= smoke_run["horizon_s"]

    def test_full_campaign_losses_and_breakers(self, full_run):
        score = score_run(full_run)
        assert score["tasks_lost"] > 0
        assert score["slo_violations"] >= 0
        states = score["breaker_states"]
        # The zone outage trips mc-00-0's bind breaker through a full
        # open -> half-open -> closed cycle.
        assert states["mc-00-0"][:4] == \
            ["closed", "open", "half-open", "closed"]


class TestCausalRecoveryTrace:
    """Acceptance: a zone outage yields ONE causal span tree
    chaos.action.begin -> continuum.fault.inject -> mirto.mape ->
    kube.bind."""

    @pytest.fixture(scope="class")
    def tree(self, smoke_run):
        ctx = smoke_run["ctx"]
        spans = [r.payload for r in ctx.trace if r.topic == "obs.span"]
        begins = [s for s in spans if s["name"] == "chaos.action.begin"
                  and s["attrs"].get("action") == "zone-outage"]
        assert len(begins) == 1
        root = begins[0]
        return root, [s for s in spans
                      if s["trace_id"] == root["trace_id"]]

    def test_single_root(self, tree):
        root, spans = tree
        assert root["parent_id"] is None
        roots = [s for s in spans if s["parent_id"] is None]
        assert roots == [root]

    def test_recovery_chain_spans_all_layers(self, tree):
        root, spans = tree
        names = {s["name"] for s in spans}
        assert {"chaos.action.begin", "continuum.fault.inject",
                "kube.evict", "mirto.mape.cycle", "kube.schedule",
                "kube.bind"} <= names
        assert {"chaos", "continuum", "kube", "mirto"} <= \
            {s["layer"] for s in spans}

    def test_every_span_descends_from_the_action(self, tree):
        root, spans = tree
        by_id = {s["span_id"]: s for s in spans}
        for span in spans:
            walk = span
            while walk["parent_id"] is not None:
                walk = by_id[walk["parent_id"]]
            assert walk is root

    def test_fault_inject_nested_under_action(self, tree):
        root, spans = tree
        inject = [s for s in spans
                  if s["name"] == "continuum.fault.inject"][0]
        assert inject["parent_id"] == root["span_id"]


class TestPartitionRecovery:
    """Partition heals -> MAPE replaces the pods evicted meanwhile."""

    def test_deployment_back_to_strength(self, full_run):
        cluster = full_run["cluster"]
        score = score_run(full_run)
        assert score["pods_evicted"] > 0
        running = [p for p in cluster.pods_in_phase(PodPhase.RUNNING)
                   if p.spec.name.startswith("svc")]
        assert len(running) == 2  # replicas restored
        assert score["tasks_recovered"] >= 1

    def test_partition_cut_and_healed_on_bus(self, full_run):
        trace = full_run["ctx"].trace
        cuts = list(trace.records("chaos.net.partition"))
        heals = list(trace.records("chaos.net.heal"))
        assert len(cuts) == 1 and len(heals) == 1
        assert heals[0].time_s > cuts[0].time_s


class TestCli:
    def _run(self, *argv):
        return subprocess.run(
            [sys.executable, "-m", "repro.chaos", *argv],
            capture_output=True, text=True, env={"PYTHONPATH": "src"},
            cwd="/root/repo")

    def test_run_is_byte_identical_across_invocations(self):
        args = ("run", "--campaign", "smoke", "--seed", "7",
                "--horizon", "20.0")
        first = self._run(*args)
        second = self._run(*args)
        assert first.returncode == 0, first.stderr
        assert first.stdout == second.stdout
        report = json.loads(first.stdout)
        assert report["campaign"]["name"] == "smoke"

    def test_check_accepts_matching_baseline(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        out = self._run("run", "--campaign", "smoke", "--seed", "3",
                        "--horizon", "20.0", "--out", str(baseline))
        assert out.returncode == 0, out.stderr
        check = self._run("run", "--campaign", "smoke", "--seed", "3",
                          "--horizon", "20.0", "--check",
                          str(baseline))
        assert check.returncode == 0, check.stdout + check.stderr

    def test_check_rejects_drift(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        self._run("run", "--campaign", "smoke", "--seed", "3",
                  "--horizon", "20.0", "--out", str(baseline))
        drifted = json.loads(baseline.read_text())
        drifted["aggregate"]["availability"] += 0.25
        baseline.write_text(json.dumps(drifted))
        check = self._run("run", "--campaign", "smoke", "--seed", "3",
                          "--horizon", "20.0", "--check",
                          str(baseline))
        assert check.returncode == 1
        assert "availability" in check.stdout + check.stderr

    def test_list_names_campaigns(self):
        out = self._run("list")
        assert out.returncode == 0
        assert "smoke" in out.stdout and "full" in out.stdout
