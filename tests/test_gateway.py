"""Tests for the smart-gateway data-exchange hub."""

import math

import pytest

from repro.core.errors import NotFoundError, ValidationError
from repro.continuum.gateway import GatewayHub
from repro.continuum.simulator import Simulator
from repro.net.topology import Network


@pytest.fixture
def setup():
    sim = Simulator()
    network = Network(ctx=sim)
    network.add_link("sensor", "gw", 0.002, 1e6)
    network.add_link("fpga", "gw", 0.002, 100e6)
    network.add_link("gw", "fmdc", 0.005, 1e9)
    hub = GatewayHub(network, "gw", buffer_limit=3, ctx=sim)
    hub.register("sensor", ["coap"])
    hub.register("fpga", ["http"])
    hub.register("fmdc", ["mqtt", "http"])
    return sim, network, hub


def run_exchange(sim, hub, src, dst, topic, payload):
    process = sim.process(hub.exchange(src, dst, topic, payload))
    return sim.run(until=process)


class TestRegistration:
    def test_unknown_protocol_rejected(self, setup):
        sim, network, hub = setup
        network.add_host("x")
        with pytest.raises(ValidationError):
            hub.register("x", ["carrier-pigeon"])

    def test_unknown_host_rejected(self, setup):
        sim, network, hub = setup
        with pytest.raises(NotFoundError):
            hub.register("ghost", ["http"])

    def test_empty_protocols_rejected(self, setup):
        sim, network, hub = setup
        network.add_host("x")
        with pytest.raises(ValidationError):
            hub.register("x", [])

    def test_gateway_must_be_in_network(self):
        sim = Simulator()
        with pytest.raises(NotFoundError):
            GatewayHub(Network(ctx=sim), "nowhere", ctx=sim)


class TestBridging:
    def test_coap_sensor_to_mqtt_fog(self, setup):
        sim, network, hub = setup
        record = run_exchange(sim, hub, "sensor", "fmdc", "telemetry",
                              {"temp_c": 21.5})
        assert record.ingress_protocol == "coap"
        assert record.egress_protocol == "mqtt"
        assert record.delivered_at_s > 0

    def test_http_accelerator_to_fog(self, setup):
        sim, network, hub = setup
        record = run_exchange(sim, hub, "fpga", "fmdc", "result",
                              {"detections": [1, 2]})
        assert record.ingress_protocol == "http"
        # Receiver prefers its first-listed protocol.
        assert record.egress_protocol == "mqtt"

    def test_bridge_matrix_counts(self, setup):
        sim, network, hub = setup
        run_exchange(sim, hub, "sensor", "fmdc", "t", {"v": 1})
        run_exchange(sim, hub, "sensor", "fmdc", "t", {"v": 2})
        run_exchange(sim, hub, "fpga", "fmdc", "t", {"v": 3})
        matrix = hub.bridge_matrix()
        assert matrix[("coap", "mqtt")] == 2
        assert matrix[("http", "mqtt")] == 1

    def test_transfer_consumes_simulated_time(self, setup):
        sim, network, hub = setup
        before = sim.now
        run_exchange(sim, hub, "sensor", "fmdc", "t", {"v": 1})
        assert sim.now > before + 0.006  # two legs of latency


class TestLocalProcessing:
    def test_payload_transformation(self, setup):
        sim, network, hub = setup
        hub.add_processor(
            "telemetry",
            lambda p: {"temp_k": p["temp_c"] + 273.15})
        record = run_exchange(sim, hub, "sensor", "fmdc", "telemetry",
                              {"temp_c": 20.0})
        assert record is not None

    def test_deadband_filter_drops_message(self, setup):
        sim, network, hub = setup
        hub.add_processor(
            "telemetry",
            lambda p: p if abs(p["temp_c"] - 20.0) > 1.0 else None)
        kept = run_exchange(sim, hub, "sensor", "fmdc", "telemetry",
                            {"temp_c": 25.0})
        dropped = run_exchange(sim, hub, "sensor", "fmdc", "telemetry",
                               {"temp_c": 20.3})
        assert kept is not None
        assert dropped is None

    def test_processor_chain(self, setup):
        sim, network, hub = setup
        hub.add_processor("t", lambda p: {**p, "stage1": True})
        hub.add_processor("t", lambda p: {**p, "stage2": True})
        record = run_exchange(sim, hub, "sensor", "fmdc", "t", {"v": 1})
        assert record is not None


class TestStoreAndForward:
    def test_buffered_while_unreachable(self, setup):
        sim, network, hub = setup
        hub.set_reachable("fmdc", False)
        result = run_exchange(sim, hub, "sensor", "fmdc", "t", {"v": 1})
        assert result is None
        assert hub.buffered_count("fmdc") == 1

    def test_flush_delivers_in_order(self, setup):
        sim, network, hub = setup
        hub.set_reachable("fmdc", False)
        for i in range(3):
            run_exchange(sim, hub, "sensor", "fmdc", "t", {"seq": i})
        hub.set_reachable("fmdc", True)
        flush = sim.process(hub.flush("fmdc"))
        delivered = sim.run(until=flush)
        assert delivered == 3
        assert hub.buffered_count("fmdc") == 0
        sequence = [r for r in hub.deliveries if r.wire_bytes > 0]
        assert len(sequence) == 3

    def test_buffer_limit_drops_excess(self, setup):
        sim, network, hub = setup
        hub.set_reachable("fmdc", False)
        for i in range(5):  # limit is 3
            run_exchange(sim, hub, "sensor", "fmdc", "t", {"seq": i})
        assert hub.buffered_count("fmdc") == 3
        assert hub.dropped == 2

    def test_flush_while_unreachable_rejected(self, setup):
        sim, network, hub = setup
        hub.set_reachable("fmdc", False)
        with pytest.raises(ValidationError):
            next(hub.flush("fmdc"))

    def test_uplink_outage_story(self, setup):
        """Sensor keeps publishing through an uplink outage; nothing is
        lost (within the buffer), everything arrives after recovery."""
        sim, network, hub = setup
        run_exchange(sim, hub, "sensor", "fmdc", "t", {"seq": 0})
        hub.set_reachable("fmdc", False)
        run_exchange(sim, hub, "sensor", "fmdc", "t", {"seq": 1})
        run_exchange(sim, hub, "sensor", "fmdc", "t", {"seq": 2})
        hub.set_reachable("fmdc", True)
        sim.run(until=sim.process(hub.flush("fmdc")))
        arrived = [r for r in hub.deliveries if r.wire_bytes > 0]
        assert len(arrived) == 3
        assert sum(1 for r in arrived if r.buffered) == 2
