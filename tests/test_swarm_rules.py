"""Tests for rule-based swarm placement and MAPE-driven reallocation."""

import random

import pytest

from repro.continuum import Simulator, build_reference_infrastructure
from repro.continuum.workload import KernelClass
from repro.dpe import ComponentModel, ScenarioModel
from repro.dpe.frevo import SwarmRule
from repro.mirto import CognitiveEngine, EngineConfig, make_strategy
from repro.mirto.placement import (
    PlacementConstraints,
    estimate_placement_kpis,
)
from repro.mirto.swarm_rules import (
    DEFAULT_RULE,
    RuleBasedPlacement,
    evolve_placement_rule,
)


def pipeline_scenario():
    scenario = ScenarioModel("rule-pipe", latency_budget_s=2.0,
                             min_security_level="low")
    scenario.add_component(ComponentModel("a", 200, input_bytes=50_000))
    scenario.add_component(ComponentModel(
        "b", 2000, kernel=KernelClass.DSP, accelerable=True))
    scenario.add_component(ComponentModel("c", 400))
    scenario.connect("a", "b", 50_000)
    scenario.connect("b", "c", 10_000)
    return scenario


class TestRuleBasedPlacement:
    def test_produces_complete_placement(self):
        infrastructure = build_reference_infrastructure(Simulator())
        app = pipeline_scenario().to_application()
        placement = RuleBasedPlacement().place(
            app, infrastructure, PlacementConstraints())
        assert set(placement.assignment) == {"a", "b", "c"}
        assert placement.strategy == "swarm-rule"

    def test_registered_in_strategy_factory(self):
        strategy = make_strategy("swarm-rule", random.Random(0))
        assert strategy.name == "swarm-rule"

    def test_latency_weighted_rule_prefers_fast_devices(self):
        infrastructure = build_reference_infrastructure(Simulator())
        app = pipeline_scenario().to_application()
        rule = SwarmRule(0.0, 1.0, 0.0, 0.0, 0.0)  # latency only
        placement = RuleBasedPlacement(rule).place(
            app, infrastructure, PlacementConstraints())
        # DSP task lands on an accelerator or the fastest machine.
        device = infrastructure.device(placement.device_of("b"))
        assert device.speedup_for(app.task("b")) > 1.0 \
            or device.spec.gops >= 180

    def test_energy_weighted_rule_prefers_frugal_devices(self):
        infrastructure = build_reference_infrastructure(Simulator())
        app = pipeline_scenario().to_application()
        energy_rule = SwarmRule(0.0, 0.0, 1.0, 0.0, 0.0)
        latency_rule = SwarmRule(0.0, 1.0, 0.0, 0.0, 0.0)
        constraints = PlacementConstraints()
        e_place = RuleBasedPlacement(energy_rule).place(
            app, infrastructure, constraints)
        l_place = RuleBasedPlacement(latency_rule).place(
            app, infrastructure, constraints)
        _, e_energy = estimate_placement_kpis(app, e_place,
                                              infrastructure)
        _, l_energy = estimate_placement_kpis(app, l_place,
                                              infrastructure)
        assert e_energy <= l_energy

    def test_trust_weight_steers_away_from_distrusted(self):
        infrastructure = build_reference_infrastructure(Simulator())
        app = pipeline_scenario().to_application()
        trusted = {name: 1.0 for name in infrastructure.devices}
        trusted["cloud-00"] = 0.0
        trusted["cloud-01"] = 0.0
        rule = SwarmRule(0.0, 0.1, 0.0, 5.0, 0.0)  # trust dominates
        placement = RuleBasedPlacement(rule).place(
            app, infrastructure,
            PlacementConstraints(trusted=trusted))
        assert not any(d.startswith("cloud")
                       for d in placement.assignment.values())

    def test_own_load_spreads_tasks(self):
        """The local-load signal must prevent piling every task on one
        device when utilization is weighted heavily."""
        infrastructure = build_reference_infrastructure(Simulator())
        app = pipeline_scenario().to_application()
        rule = SwarmRule(10.0, 0.01, 0.0, 0.0, 0.0)
        placement = RuleBasedPlacement(rule).place(
            app, infrastructure, PlacementConstraints())
        assert len(set(placement.assignment.values())) > 1

    def test_exploration_uses_rng(self):
        infrastructure = build_reference_infrastructure(Simulator())
        app = pipeline_scenario().to_application()
        rule = SwarmRule(0.3, 0.6, 0.1, 0.2, 1.0)  # always explore
        seen = set()
        for seed in range(5):
            placement = RuleBasedPlacement(
                rule, random.Random(seed)).place(
                app, infrastructure, PlacementConstraints())
            seen.add(tuple(sorted(placement.assignment.items())))
        assert len(seen) > 1


class TestRuleEvolution:
    def test_evolved_rule_not_worse_than_default(self):
        scenario = pipeline_scenario()

        def factory():
            return build_reference_infrastructure(Simulator())

        best_rule, best_fitness, evolver = evolve_placement_rule(
            scenario, factory, seed=1, generations=8)
        # Fitness of the hand-written default rule on the same setup.
        app = scenario.to_application()
        infrastructure = factory()
        constraints = PlacementConstraints(
            min_security_level=scenario.min_security_level)
        default_place = RuleBasedPlacement(DEFAULT_RULE).place(
            app, infrastructure, constraints)
        latency, energy = estimate_placement_kpis(
            app, default_place, infrastructure)
        default_fitness = -(latency + 0.05 * energy)
        assert best_fitness >= default_fitness - 1e-9
        assert len(evolver.history) == 8

    def test_evolution_history_improves(self):
        scenario = pipeline_scenario()

        def factory():
            return build_reference_infrastructure(Simulator())

        _, _, evolver = evolve_placement_rule(scenario, factory, seed=2,
                                              generations=10)
        fitnesses = [rec.best_fitness for rec in evolver.history]
        assert fitnesses[-1] >= fitnesses[0]


class TestMapeReallocation:
    def test_avoid_flag_excludes_device_from_new_placements(self):
        engine = CognitiveEngine(EngineConfig(seed=61))
        from repro.security.trust import InteractionOutcome
        # Destroy trust in both cloud servers -> trust-drop triggers.
        for name in ("cloud-00", "cloud-01"):
            for _ in range(10):
                engine.manager.security.trust.observe(
                    name, InteractionOutcome(0, False, 0.0))
        engine.mape_iterate(1)
        scenario = pipeline_scenario()
        outcome = engine.manager.deploy(scenario.to_service_template(),
                                        strategy="greedy")
        assert not any(d.startswith("cloud")
                       for d in outcome.placement.assignment.values())

    def test_flag_clears_when_condition_recovers(self):
        engine = CognitiveEngine(EngineConfig(seed=62))
        from repro.security.trust import InteractionOutcome
        for _ in range(10):
            engine.manager.security.trust.observe(
                "cloud-00", InteractionOutcome(0, False, 0.0))
        engine.mape_iterate(1)
        assert "status/reallocation/cloud-00" in \
            engine.kb.range("status/reallocation/")
        # Trust recovers.
        for _ in range(30):
            engine.manager.security.trust.observe(
                "cloud-00", InteractionOutcome(0, True, 1.0))
        engine.mape_iterate(1)
        assert "status/reallocation/cloud-00" not in \
            engine.kb.range("status/reallocation/")
