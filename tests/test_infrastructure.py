"""Unit tests for the layered continuum infrastructure."""

import pytest

from repro.core.errors import NotFoundError, ValidationError
from repro.continuum import (
    DeviceKind,
    Infrastructure,
    KernelClass,
    Layer,
    Simulator,
    Task,
    build_reference_infrastructure,
)


class TestInfrastructure:
    def test_add_device_registers_host(self):
        infra = Infrastructure(ctx=Simulator())
        dev = infra.add_device(DeviceKind.EDGE_MULTICORE)
        assert dev.name in infra.network.graph
        assert infra.device(dev.name) is dev

    def test_duplicate_name_rejected(self):
        infra = Infrastructure(ctx=Simulator())
        infra.add_device(DeviceKind.EDGE_MULTICORE, name="n")
        with pytest.raises(ValidationError):
            infra.add_device(DeviceKind.FMDC, name="n")

    def test_unknown_device_raises(self):
        with pytest.raises(NotFoundError):
            Infrastructure(ctx=Simulator()).device("ghost")

    def test_attach_creates_link_with_layer_defaults(self):
        infra = Infrastructure(ctx=Simulator())
        gw = infra.add_device(DeviceKind.SMART_GATEWAY, name="gw")
        fpga = infra.add_device(DeviceKind.HMPSOC_FPGA, name="fpga",
                                attach_to="gw")
        link = infra.network.link("fpga", "gw")
        assert link.latency_s == pytest.approx(0.005)  # edge-fog default

    def test_attach_with_explicit_link_params(self):
        infra = Infrastructure(ctx=Simulator())
        infra.add_device(DeviceKind.SMART_GATEWAY, name="gw")
        infra.add_device(DeviceKind.HMPSOC_FPGA, name="fpga",
                         attach_to="gw", link_latency_s=0.001,
                         link_bw_bps=5e9)
        link = infra.network.link("fpga", "gw")
        assert link.latency_s == 0.001
        assert link.bandwidth_bps == 5e9

    def test_layer_filtering(self):
        sim = Simulator()
        infra = build_reference_infrastructure(sim)
        edges = infra.layer_devices(Layer.EDGE)
        assert edges and all(d.spec.layer == Layer.EDGE for d in edges)

    def test_kind_filtering(self):
        infra = build_reference_infrastructure(Simulator())
        fpgas = infra.devices_of_kind(DeviceKind.HMPSOC_FPGA)
        assert len(fpgas) == 2  # one per edge site


class TestCapabilityFilter:
    def test_kernel_filter(self):
        infra = build_reference_infrastructure(Simulator())
        dsp = infra.capable_devices(kernel=KernelClass.DSP)
        assert dsp
        assert all(KernelClass.DSP in d.spec.accel_kernels for d in dsp)

    def test_security_filter(self):
        infra = build_reference_infrastructure(Simulator())
        high = infra.capable_devices(min_security_level="high")
        assert high
        assert all(d.spec.max_security_level == "high" for d in high)
        # RISC-V devices (low only) must be excluded.
        assert not any(d.spec.kind == DeviceKind.RISCV_CGRA for d in high)

    def test_memory_filter(self):
        infra = build_reference_infrastructure(Simulator())
        big = infra.capable_devices(min_memory_bytes=100 * 1024**3)
        assert big
        assert all(d.spec.memory_bytes >= 100 * 1024**3 for d in big)

    def test_layer_filter_combines(self):
        infra = build_reference_infrastructure(Simulator())
        fog_high = infra.capable_devices(layer=Layer.FOG,
                                         min_security_level="high")
        assert all(d.spec.layer == Layer.FOG for d in fog_high)


class TestOffloadStats:
    def test_classification(self):
        infra = build_reference_infrastructure(Simulator())
        infra.record_offload("mc-00-0", "fpga-00-0")  # edge->edge
        infra.record_offload("mc-00-0", "fmdc-00")  # edge->fog
        infra.record_offload("cloud-00", "fmdc-00")  # cloud->fog
        assert infra.offloads.horizontal == 1
        assert infra.offloads.vertical_up == 1
        assert infra.offloads.vertical_down == 1
        assert infra.offloads.total == 3


class TestReferenceInfrastructure:
    def test_component_counts(self):
        infra = build_reference_infrastructure(
            Simulator(), edge_sites=3, gateways_per_site=2, fmdcs=2,
            cloud_servers=1)
        assert len(infra.devices_of_kind(DeviceKind.SMART_GATEWAY)) == 6
        assert len(infra.devices_of_kind(DeviceKind.HMPSOC_FPGA)) == 6
        assert len(infra.devices_of_kind(DeviceKind.FMDC)) == 2
        assert len(infra.devices_of_kind(DeviceKind.CLOUD_SERVER)) == 1

    def test_every_device_reachable_from_cloud(self):
        infra = build_reference_infrastructure(Simulator())
        for name in infra.devices:
            assert infra.network.path("cloud-00", name)

    def test_edge_to_cloud_latency_exceeds_edge_to_fog(self):
        infra = build_reference_infrastructure(Simulator())
        to_fog = infra.network.path_latency("fpga-00-0", "fmdc-00")
        to_cloud = infra.network.path_latency("fpga-00-0", "cloud-00")
        assert to_cloud > to_fog

    def test_workload_execution_end_to_end(self):
        sim = Simulator()
        infra = build_reference_infrastructure(sim)
        fpga = infra.device("fpga-00-0")
        cloud = infra.device("cloud-00")

        def offload():
            # Move input to cloud, compute there, return result.
            yield sim.process(infra.network.transfer(
                fpga.name, cloud.name, 1_000_000))
            rec = yield sim.process(cloud.execute(
                Task("heavy", megaops=50_000, kernel=KernelClass.NEURAL)))
            yield sim.process(infra.network.transfer(
                cloud.name, fpga.name, 10_000))
            infra.record_offload(fpga.name, cloud.name)
            return rec

        p = sim.process(offload())
        rec = sim.run(until=p)
        assert rec.device_name == "cloud-00"
        assert infra.offloads.vertical_up == 1
        report = infra.layer_report()
        assert report["cloud"]["tasks_executed"] == 1
