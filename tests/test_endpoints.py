"""Tests for extreme-edge sensors and actuators."""

import pytest

from repro.core.errors import ConfigurationError
from repro.continuum.endpoints import ActuatorProcess, SensorProcess
from repro.continuum.gateway import GatewayHub
from repro.continuum.simulator import Simulator
from repro.net.topology import Network


@pytest.fixture
def setup():
    sim = Simulator()
    network = Network(ctx=sim)
    network.add_link("cam", "gw", 0.002, 10e6)
    network.add_link("gw", "fmdc", 0.005, 1e9)
    hub = GatewayHub(network, "gw", ctx=sim)
    hub.register("cam", ["coap"])
    hub.register("fmdc", ["mqtt"])
    return sim, network, hub


class TestSensorProcess:
    def test_publishes_at_period(self, setup):
        sim, network, hub = setup
        sensor = SensorProcess(
            hub, "cam", "fmdc", "frames",
            sample_fn=lambda seq: {"frame": seq},
            period_s=0.1, max_samples=5, ctx=sim)
        sim.run(until=sensor.process)
        assert len(sensor.readings) == 5
        # Samples spaced by at least the period.
        times = [r.time_s for r in sensor.readings]
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(gap >= 0.1 for gap in gaps)

    def test_messages_reach_destination(self, setup):
        sim, network, hub = setup
        sensor = SensorProcess(
            hub, "cam", "fmdc", "frames",
            sample_fn=lambda seq: {"frame": seq},
            period_s=0.05, max_samples=3, ctx=sim)
        sim.run(until=sensor.process)
        delivered = [r for r in hub.deliveries if r.wire_bytes > 0]
        assert len(delivered) == 3
        assert all(r.dst == "fmdc" for r in delivered)

    def test_stop_halts_publication(self, setup):
        sim, network, hub = setup
        sensor = SensorProcess(
            hub, "cam", "fmdc", "frames",
            sample_fn=lambda seq: {"frame": seq}, period_s=0.1,
            ctx=sim)
        sim.run(until=0.35)
        sensor.stop()
        sim.run(until=2.0)
        assert len(sensor.readings) <= 5

    def test_invalid_period_rejected(self, setup):
        sim, network, hub = setup
        with pytest.raises(ConfigurationError):
            SensorProcess(hub, "cam", "fmdc", "t",
                          lambda seq: {}, period_s=0, ctx=sim)

    def test_readings_buffered_during_outage(self, setup):
        sim, network, hub = setup
        hub.set_reachable("fmdc", False)
        sensor = SensorProcess(
            hub, "cam", "fmdc", "frames",
            sample_fn=lambda seq: {"frame": seq},
            period_s=0.05, max_samples=4, ctx=sim)
        sim.run(until=sensor.process)
        assert hub.buffered_count("fmdc") == 4


class TestActuatorProcess:
    def test_commands_executed_in_order(self):
        sim = Simulator()
        actuator = ActuatorProcess("valve", actuation_delay_s=0.01, ctx=sim)

        def issue():
            for sequence in range(3):
                yield actuator.command(sequence, sim.now)
                yield sim.timeout(0.05)
            actuator.stop()

        sim.process(issue())
        sim.run()
        assert [r.sequence for r in actuator.records] == [0, 1, 2]

    def test_latency_includes_actuation_delay(self):
        sim = Simulator()
        actuator = ActuatorProcess("valve", actuation_delay_s=0.02, ctx=sim)

        def issue():
            yield actuator.command(0, sim.now)
            yield sim.timeout(0.1)
            actuator.stop()

        sim.process(issue())
        sim.run()
        assert actuator.records[0].latency_s >= 0.02
        assert actuator.mean_latency() >= 0.02

    def test_mean_latency_empty(self):
        sim = Simulator()
        actuator = ActuatorProcess("valve", ctx=sim)
        assert actuator.mean_latency() == 0.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            ActuatorProcess("v", actuation_delay_s=-1, ctx=Simulator())


class TestSenseActuateLoop:
    def test_closed_loop_through_gateway(self, setup):
        """Sensor -> gateway -> controller decision -> actuator, with
        measured end-to-end latency."""
        sim, network, hub = setup
        actuator = ActuatorProcess("brake", actuation_delay_s=0.003, ctx=sim)
        sensor = SensorProcess(
            hub, "cam", "fmdc", "hazard",
            sample_fn=lambda seq: {"hazard": seq % 2 == 0, "seq": seq},
            period_s=0.05, max_samples=6, ctx=sim)

        def controller():
            """Reacts to delivered hazard readings."""
            seen = 0
            while seen < 6:
                delivered = [r for r in hub.deliveries
                             if r.wire_bytes > 0]
                while seen < len(delivered):
                    reading = sensor.readings[seen]
                    if reading.payload["hazard"]:
                        yield actuator.command(reading.sequence,
                                               reading.time_s)
                    seen += 1
                yield sim.timeout(0.01)
            actuator.stop()

        sim.process(controller())
        sim.run(until=sensor.process)
        sim.run()
        # Hazards at sequences 0, 2, 4 -> three actuations.
        assert [r.sequence for r in actuator.records] == [0, 2, 4]
        assert all(r.latency_s > 0 for r in actuator.records)
