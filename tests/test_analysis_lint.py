"""Unit tests for the continuum-lint rules, pragmas, and baseline."""

import textwrap

from repro.analysis import AnalysisConfig, Baseline, Finding, Severity
from repro.analysis.lint import LintEngine, all_rules

SIM_PATH = "src/repro/continuum/sim.py"
PLAIN_PATH = "src/repro/dpe/tool.py"


def lint(source: str, path: str = PLAIN_PATH, **config_kwargs):
    engine = LintEngine(AnalysisConfig(**config_kwargs))
    return engine.lint_source(textwrap.dedent(source), path)


def rules_of(findings):
    return sorted(f.rule for f in findings)


class TestGlobalRandomRule:
    def test_module_level_call_flagged(self):
        findings = lint("""
            import random
            x = random.random()
        """)
        assert rules_of(findings) == ["global-random"]
        assert findings[0].line == 3

    def test_aliased_import_flagged(self):
        findings = lint("""
            import random as rnd
            pick = rnd.choice([1, 2, 3])
        """)
        assert rules_of(findings) == ["global-random"]

    def test_from_import_flagged(self):
        findings = lint("""
            from random import randint
            n = randint(1, 6)
        """)
        assert rules_of(findings) == ["global-random"]

    def test_numpy_global_state_flagged(self):
        findings = lint("""
            import numpy as np
            np.random.seed(0)
            v = np.random.normal(0.0, 1.0)
        """)
        assert rules_of(findings) == ["global-random", "global-random"]

    def test_unseeded_generators_flagged(self):
        findings = lint("""
            import random
            import numpy as np
            a = random.Random()
            b = np.random.default_rng()
        """)
        assert rules_of(findings) == ["global-random", "global-random"]

    def test_seeded_generators_ok(self):
        findings = lint("""
            import random
            import numpy as np
            a = random.Random(42)
            b = np.random.default_rng(7)
        """)
        assert findings == []

    def test_instance_stream_ok(self):
        findings = lint("""
            def roll(rng):
                return rng.random()
        """)
        assert findings == []

    def test_allowlisted_file_ok(self):
        findings = lint("""
            import random
            x = random.random()
        """, path="src/repro/core/rng.py")
        assert findings == []


class TestWallClockRule:
    def test_time_in_simulation_code_flagged(self):
        findings = lint("""
            import time
            now = time.time()
        """, path=SIM_PATH)
        assert rules_of(findings) == ["wall-clock"]

    def test_datetime_now_flagged(self):
        findings = lint("""
            from datetime import datetime
            stamp = datetime.now()
        """, path=SIM_PATH)
        assert rules_of(findings) == ["wall-clock"]

    def test_outside_simulation_packages_ok(self):
        findings = lint("""
            import time
            now = time.time()
        """, path=PLAIN_PATH)
        assert findings == []

    def test_every_simulation_package_covered(self):
        for pkg in ("continuum", "kube", "kb", "mirto"):
            findings = lint("""
                import time
                now = time.monotonic()
            """, path=f"src/repro/{pkg}/mod.py")
            assert rules_of(findings) == ["wall-clock"], pkg


class TestMutableDefaultRule:
    def test_list_literal_flagged(self):
        findings = lint("""
            def collect(items=[]):
                return items
        """)
        assert rules_of(findings) == ["mutable-default"]
        assert findings[0].severity == Severity.WARNING

    def test_kwonly_dict_flagged(self):
        findings = lint("""
            def configure(*, options={}):
                return options
        """)
        assert rules_of(findings) == ["mutable-default"]

    def test_constructor_call_flagged(self):
        findings = lint("""
            def merge(extra=dict()):
                return extra
        """)
        assert rules_of(findings) == ["mutable-default"]

    def test_none_default_ok(self):
        findings = lint("""
            def collect(items=None):
                return items or []
        """)
        assert findings == []


class TestOverbroadExceptRule:
    def test_bare_except_flagged(self):
        findings = lint("""
            try:
                work()
            except:
                pass
        """)
        assert rules_of(findings) == ["overbroad-except"]

    def test_swallowing_broad_except_flagged(self):
        findings = lint("""
            try:
                work()
            except Exception:
                pass
        """)
        assert rules_of(findings) == ["overbroad-except"]

    def test_broad_except_with_handling_ok(self):
        findings = lint("""
            try:
                work()
            except Exception as exc:
                log(exc)
                raise
        """)
        assert findings == []

    def test_narrow_except_ok(self):
        findings = lint("""
            try:
                work()
            except ValueError:
                pass
        """)
        assert findings == []


class TestSeedEntropyRule:
    def test_float_seed_flagged(self):
        findings = lint("""
            import random
            def child(rng):
                return random.Random(rng.random())
        """)
        assert "seed-entropy" in rules_of(findings)

    def test_hash_seed_flagged(self):
        findings = lint("""
            import random
            def child(name):
                return random.Random(hash(name) & 0xFFFF)
        """)
        assert rules_of(findings) == ["seed-entropy"]

    def test_wall_clock_seed_flagged(self):
        findings = lint("""
            import random
            import time
            def fresh():
                return random.Random(time.time())
        """)
        assert "seed-entropy" in rules_of(findings)

    def test_reseed_method_flagged(self):
        findings = lint("""
            def reseed(rng, other):
                rng.seed(other.random())
        """)
        assert rules_of(findings) == ["seed-entropy"]

    def test_derive_seed_ok(self):
        findings = lint("""
            import random
            from repro.core.rng import derive_seed
            def child(root, name):
                return random.Random(derive_seed(root, name))
        """)
        assert findings == []


class TestRuntimeConstructionRule:
    def test_direct_simulator_flagged(self):
        findings = lint("""
            from repro.continuum.simulator import Simulator
            sim = Simulator()
        """)
        assert rules_of(findings) == ["runtime-construction"]
        assert "RuntimeContext" in findings[0].message

    def test_package_reexport_flagged(self):
        findings = lint("""
            from repro.continuum import Simulator
            sim = Simulator(start_time=5.0)
        """)
        assert rules_of(findings) == ["runtime-construction"]

    def test_direct_eventbus_flagged(self):
        findings = lint("""
            from repro.core.events import EventBus
            bus = EventBus()
        """)
        assert rules_of(findings) == ["runtime-construction"]

    def test_aliased_import_flagged(self):
        findings = lint("""
            from repro.core.events import EventBus as Bus
            bus = Bus()
        """)
        assert rules_of(findings) == ["runtime-construction"]

    def test_runtime_layer_allowed(self):
        findings = lint("""
            from repro.continuum.simulator import Simulator
            sim = Simulator()
        """, path="src/repro/runtime/context.py")
        assert findings == []

    def test_tests_allowed(self):
        findings = lint("""
            from repro.core.events import EventBus
            bus = EventBus()
        """, path="tests/test_events.py")
        assert findings == []

    def test_context_injection_ok(self):
        findings = lint("""
            from repro.runtime import RuntimeContext

            def build(ctx: RuntimeContext):
                return ctx.sim, ctx.bus
        """)
        assert findings == []


class TestDeprecatedContextShimRule:
    def test_ensure_context_call_flagged(self):
        findings = lint("""
            from repro.runtime import ensure_context
            ctx = ensure_context(None)
        """)
        assert rules_of(findings) == ["deprecated-context-shim"]
        assert "RuntimeContext.adopt" in findings[0].message

    def test_as_simulator_call_flagged(self):
        findings = lint("""
            from repro.runtime.context import as_simulator
            sim = as_simulator(thing)
        """)
        assert rules_of(findings) == ["deprecated-context-shim"]

    def test_adopt_not_flagged(self):
        findings = lint("""
            from repro.runtime import RuntimeContext
            ctx = RuntimeContext.adopt(obj)
        """)
        assert findings == []

    def test_runtime_layer_allowed(self):
        findings = lint("""
            from repro.runtime import ensure_context
            ctx = ensure_context(None)
        """, path="src/repro/runtime/context.py")
        assert findings == []

    def test_tests_allowed(self):
        findings = lint("""
            from repro.runtime import ensure_context
            ctx = ensure_context(None)
        """, path="tests/test_runtime_context.py")
        assert findings == []

    def test_config_allowlist(self):
        findings = lint("""
            from repro.runtime import ensure_context
            ctx = ensure_context(None)
        """, context_shim_allowlist=["dpe/tool.py"])
        assert findings == []


class TestDeprecatedPlaceApiRule:
    def test_place_call_flagged(self):
        findings = lint("""
            placement = strategy.place(app, infra, constraints)
        """)
        assert rules_of(findings) == ["deprecated-place-api"]
        assert "PlacementRequest" in findings[0].message

    def test_solve_not_flagged(self):
        findings = lint("""
            result = strategy.solve(request)
            placement = result.placement
        """)
        assert findings == []

    def test_unrelated_place_name_not_flagged(self):
        findings = lint("""
            place = lookup("somewhere")
            marker = place
        """)
        assert findings == []

    def test_tests_allowed(self):
        findings = lint("""
            placement = strategy.place(app, infra, constraints)
        """, path="tests/test_placement.py")
        assert findings == []

    def test_config_allowlist(self):
        findings = lint("""
            placement = strategy.place(app, infra, constraints)
        """, place_api_allowlist=["dpe/tool.py"])
        assert findings == []


class TestHotPathAllocationRule:
    def test_comprehension_in_hot_function_flagged(self):
        findings = lint("""
            def dispatch(self, subs):  # perf: hot
                return [s for s in subs if s.active]
        """)
        assert rules_of(findings) == ["hot-path-allocation"]

    def test_list_copy_in_hot_function_flagged(self):
        findings = lint("""
            def publish(self, subs):  # perf: hot
                for sub in list(subs):
                    sub()
        """)
        assert rules_of(findings) == ["hot-path-allocation"]

    def test_dict_comprehension_flagged(self):
        findings = lint("""
            def index(self, subs):  # perf: hot
                return {s.name: s for s in subs}
        """)
        assert rules_of(findings) == ["hot-path-allocation"]

    def test_unmarked_function_not_flagged(self):
        findings = lint("""
            def dispatch(self, subs):
                return [s for s in subs if s.active]
        """)
        assert findings == []

    def test_empty_list_call_ok(self):
        findings = lint("""
            def publish(self):  # perf: hot
                out = list()
                out.append(1)
                return out
        """)
        assert findings == []

    def test_nested_function_not_charged_to_hot_parent(self):
        findings = lint("""
            def compile(self, options):  # perf: hot
                def cold(xs):
                    return [x for x in xs]
                return cold
        """)
        assert findings == []

    def test_pragma_on_later_signature_line(self):
        findings = lint("""
            def estimate(self, application,
                         infrastructure):  # perf: hot
                return [t for t in application]
        """)
        assert rules_of(findings) == ["hot-path-allocation"]


class TestPragmas:
    SOURCE = """
        import random
        x = random.random()  # continuum-lint: disable=global-random
        y = random.random()
    """

    def test_line_pragma_suppresses_one_line(self):
        findings = lint(self.SOURCE)
        assert len(findings) == 1
        assert findings[0].line == 4

    def test_bare_disable_suppresses_all_rules_on_line(self):
        findings = lint("""
            import random
            x = random.random()  # continuum-lint: disable
        """)
        assert findings == []

    def test_file_pragma_suppresses_rule_everywhere(self):
        findings = lint("""
            # continuum-lint: disable-file=global-random
            import random
            x = random.random()
            y = random.random()
        """)
        assert findings == []

    def test_file_pragma_leaves_other_rules_active(self):
        findings = lint("""
            # continuum-lint: disable-file=global-random
            import random
            x = random.random()
            def f(items=[]):
                return items
        """)
        assert rules_of(findings) == ["mutable-default"]

    def test_disable_config_turns_rule_off(self):
        findings = lint("""
            import random
            x = random.random()
        """, disable=["global-random"])
        assert findings == []


class TestBaseline:
    def _findings(self, source):
        return lint(source)

    def test_identical_findings_get_distinct_fingerprints(self):
        findings = self._findings("""
            import random
            a = random.random()
            b = random.random()
        """)
        # same stripped context on both lines would collide without
        # occurrence numbering
        assert len({f.fingerprint for f in findings}) == 2

    def test_diff_partitions_new_and_baselined(self, tmp_path):
        first = self._findings("""
            import random
            a = random.random()
        """)
        baseline_file = tmp_path / "baseline.json"
        Baseline.write(baseline_file, first)
        both = self._findings("""
            import random
            a = random.random()
            b = np_missing = random.randint(0, 3)
        """)
        diff = Baseline.load(baseline_file).diff(both)
        assert len(diff.baselined) == 1
        assert len(diff.new) == 1
        assert diff.new[0].rule == "global-random"

    def test_fixed_entries_reported(self, tmp_path):
        first = self._findings("""
            import random
            a = random.random()
        """)
        baseline_file = tmp_path / "baseline.json"
        Baseline.write(baseline_file, first)
        diff = Baseline.load(baseline_file).diff([])
        assert len(diff.fixed) == 1
        assert diff.new == [] and diff.baselined == []

    def test_info_findings_never_block(self):
        finding = Finding(tool="lint", rule="x", path="p", line=1,
                          message="m", severity=Severity.INFO)
        diff = Baseline().diff([finding])
        assert diff.new == [finding]
        assert diff.blocking == []


class TestPrintTelemetryRule:
    def test_print_flagged_in_library_code(self):
        findings = lint("""
            def report(value):
                print("value is", value)
        """)
        assert rules_of(findings) == ["print-telemetry"]
        assert findings[0].line == 3

    def test_rendering_clis_allowlisted_by_default(self):
        findings = lint("""
            print("rendered output")
        """, path="src/repro/obs/cli.py")
        assert findings == []
        findings = lint("""
            print("findings table")
        """, path="src/repro/analysis/cli.py")
        assert findings == []

    def test_configured_allowlist_entry(self):
        source = """
            print("ok here")
        """
        assert rules_of(lint(source)) == ["print-telemetry"]
        assert lint(source, print_allowlist=["dpe/tool.py"]) == []

    def test_directory_allowlist_entry(self):
        findings = lint("""
            print("anywhere in the package")
        """, path="src/repro/dpe/deep/tool.py",
            print_allowlist=["dpe/"])
        assert findings == []

    def test_method_named_print_not_flagged(self):
        findings = lint("""
            def export(doc):
                doc.print("page 1")
        """)
        assert findings == []


class TestEngine:
    def test_all_expected_rules_registered(self):
        assert {"global-random", "wall-clock", "mutable-default",
                "overbroad-except", "seed-entropy",
                "runtime-construction", "print-telemetry",
                "hot-path-allocation"} <= set(all_rules())

    def test_syntax_error_reported_not_raised(self):
        findings = lint("def broken(:\n")
        assert rules_of(findings) == ["syntax-error"]

    def test_directory_run_respects_excludes(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "continuum"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text("import random\nx = random.random()\n")
        config = AnalysisConfig(root=tmp_path, paths=["src/repro"])
        assert len(LintEngine(config).run()) == 1
        config = AnalysisConfig(root=tmp_path, paths=["src/repro"],
                                exclude=["src/repro/continuum"])
        assert LintEngine(config).run() == []
