"""Tests for multiprocess shard execution (:mod:`repro.runtime.parallel`).

The headline property: a multiprocess run — zones built inside worker
processes, relay messages routed through the coordinator, trace records
streamed back per epoch — produces digests, scorecards and delivery
streams *byte-identical* to the sequential in-process reference, for
workers in {1, 2, 4} over random zone counts, fleet sizes and seeds.
Alongside it: failure surfacing (a dying or raising worker raises
``ShardWorkerError``, never hangs the barrier), lifecycle/validation
shape, and the packaged scale scenario's cross-backend contract.

Builders live at module level so the specs stay picklable under any
multiprocessing start method.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.continuum import DeviceFleet, ScaleConfig, run_scale_scenario
from repro.core.errors import ConfigurationError
from repro.runtime import (
    ParallelShardedContext,
    ShardedContext,
    ShardWorkerError,
)


def _zone_names(n_zones: int) -> list[str]:
    return [f"z{i}" for i in range(n_zones)]


def _build_fleet_zone(ctx, zone: str, args: dict) -> dict:
    """Same cross-zone scenario as test_sharded._fleet_run: per-zone
    fleets, zone-0 aggregation, one forced outage on the last zone."""
    names = args["names"]
    state: dict = {}
    if zone == names[0]:
        stream: list = []

        def on_telemetry(topic, payload):
            stream.append((ctx.now, payload["zone"], payload["up"]))

        ctx.subscribe("shard.fleet.telemetry.*", on_telemetry)
        state["stream"] = stream
    fleet = DeviceFleet(zone, args["devices"], ctx=ctx,
                        fail_rate_per_s=5e-3, repair_rate_per_s=5e-2)
    if zone == names[-1]:
        fleet.schedule_outage(10.0, 5.0)
    fleet.start(2.5)
    state["fleet"] = fleet
    return state


def _finalize_fleet_zone(state: dict, zone: str, args: dict) -> dict:
    result = {"scorecard": state["fleet"].scorecard()}
    if "stream" in state:
        result["stream"] = state["stream"]
    return result


def _sequential_reference(seed, names, devices, horizon):
    sharded = ShardedContext(seed=seed, zones=names, n_shards=len(names),
                             link_latency_s=0.5)
    args = {"names": names, "devices": devices}
    states = [_build_fleet_zone(sharded.zone(name), name, args)
              for name in names]
    sharded.run(until=horizon)
    results = {name: _finalize_fleet_zone(states[i], name, args)
               for i, name in enumerate(names)}
    return sharded, results


def _parallel_run(seed, names, workers, devices, horizon):
    args = {"names": names, "devices": devices}
    with ParallelShardedContext(
            seed=seed, zones=names, workers=workers, link_latency_s=0.5,
            zone_builder=_build_fleet_zone, zone_args=args,
            zone_finalizer=_finalize_fleet_zone) as parallel:
        parallel.run(until=horizon)
        results = parallel.finalize()
    return parallel, results


class TestParallelEqualsSequential:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1),
           n_zones=st.integers(min_value=2, max_value=4),
           workers=st.sampled_from([1, 2, 4]),
           devices=st.integers(min_value=1, max_value=8))
    def test_digests_scorecards_streams_match(self, seed, n_zones,
                                              workers, devices):
        """Random partitions/seeds, workers in {1, 2, 4}: identical
        merged digests, per-zone scorecards and zone-0 delivery
        streams vs the sequential reference."""
        names = _zone_names(n_zones)
        seq_ctx, seq = _sequential_reference(seed, names, devices, 30.0)
        par_ctx, par = _parallel_run(seed, names, workers, devices, 30.0)
        assert par_ctx.digest() == seq_ctx.digest()
        for name in names:
            assert par[name]["scorecard"] == seq[name]["scorecard"]
        assert par[names[0]]["stream"] == seq[names[0]]["stream"]

    def test_merged_records_and_jsonl_match_sequential(self):
        names = _zone_names(3)
        seq_ctx, _ = _sequential_reference(5, names, 4, 20.0)
        par_ctx, _ = _parallel_run(5, names, 2, 4, 20.0)
        assert par_ctx.to_jsonl() == seq_ctx.to_jsonl()
        seq_merged = seq_ctx.merged_records()
        par_merged = par_ctx.merged_records()
        assert [(n, r.seq, r.time_s, r.topic, r.payload, r.span)
                for n, r in par_merged] == \
               [(n, r.seq, r.time_s, r.topic, r.payload, r.span)
                for n, r in seq_merged]

    def test_scale_scenario_parallel_twin(self):
        """The packaged scale scenario: parallel == sequential ==
        single-shard, digest and scorecard."""
        config = ScaleConfig(devices=60, zones=4, shards=4,
                             horizon_s=80.0, seed=3, outage_at_s=30.0,
                             outage_duration_s=20.0,
                             barrier_record_every=20)
        seq = run_scale_scenario(config)
        single = run_scale_scenario(config, n_shards=1)
        par = run_scale_scenario(config, workers=2)
        assert par.digest() == seq.digest() == single.digest()
        assert par.scorecard() == seq.scorecard()

    def test_events_counted_and_digest_memoized(self):
        names = _zone_names(2)
        par_ctx, _ = _parallel_run(1, names, 2, 3, 20.0)
        assert par_ctx.events_executed > 0
        assert par_ctx.epoch == 40
        assert par_ctx.now == 20.0
        # Memoized merged trace: repeated digest()/merged_records()
        # calls return the cached objects (the context is closed — the
        # trace cannot change anymore).
        assert par_ctx.digest() is par_ctx.digest()
        assert par_ctx.merged_records() is par_ctx.merged_records()


def _build_crashing_zone(ctx, zone: str, args: dict) -> dict:
    """The first zone hosts a process that kills its whole worker
    mid-epoch — simulating a hard crash (OOM-kill, segfault)."""
    if zone == args["crash_zone"]:
        def boom():
            yield ctx.sim.timeout(2.0)
            os._exit(13)
        ctx.sim.process(boom(), name="boom")
    return {}


def _build_raising_zone(ctx, zone: str, args: dict) -> dict:
    raise ValueError("kaboom during zone build")


def _build_idle_zone(ctx, zone: str, args: dict) -> dict:
    return {}


def _finalize_marker(state, zone: str, args: dict) -> str:
    return f"done-{zone}"


class TestFailureSurfacing:
    def test_worker_crash_raises_instead_of_hanging(self):
        """A shard process dying mid-run raises ShardWorkerError at the
        barrier — promptly, never a deadlock."""
        with ParallelShardedContext(
                seed=0, zones=("za", "zb"), workers=2, link_latency_s=1.0,
                zone_builder=_build_crashing_zone,
                zone_args={"crash_zone": "za"}) as parallel:
            with pytest.raises(ShardWorkerError, match="died|broke"):
                parallel.run(until=10.0)

    def test_build_error_carries_worker_traceback(self):
        with pytest.raises(ShardWorkerError, match="kaboom"):
            ParallelShardedContext(
                seed=0, zones=("za",), workers=1,
                zone_builder=_build_raising_zone)

    def test_run_after_close_raises(self):
        parallel = ParallelShardedContext(
            seed=0, zones=("za",), workers=1,
            zone_builder=_build_idle_zone)
        parallel.close()
        with pytest.raises(ConfigurationError):
            parallel.run(until=1.0)

    def test_cross_zone_subs_without_latency_raise(self):
        """Same ConfigurationError as the sequential backend when zones
        subscribe cross-zone but no lookahead is configured."""
        with ParallelShardedContext(
                seed=0, zones=_zone_names(2), workers=2,
                zone_builder=_build_fleet_zone,
                zone_args={"names": _zone_names(2), "devices": 2},
                zone_finalizer=_finalize_fleet_zone) as parallel:
            with pytest.raises(ConfigurationError,
                               match="link_latency_s"):
                parallel.run(until=10.0)


class TestParallelContextShape:
    def test_validation_mirrors_sequential(self):
        with pytest.raises(ConfigurationError):
            ParallelShardedContext(zones=())
        with pytest.raises(ConfigurationError):
            ParallelShardedContext(zones=("a", "a"))
        with pytest.raises(ConfigurationError):
            ParallelShardedContext(zones=("a",), link_latency_s=0.0)
        with pytest.raises(ConfigurationError):
            ParallelShardedContext(zones=("a",), epoch_s=-1.0)
        with pytest.raises(ConfigurationError):
            ParallelShardedContext(zones=("a",), barrier_record_every=0)
        with pytest.raises(ConfigurationError):
            ParallelShardedContext(zones=("a",), workers=0)

    def test_worker_count_clamped_and_contiguous(self):
        with ParallelShardedContext(
                seed=0, zones=_zone_names(3), workers=8,
                link_latency_s=1.0,
                zone_builder=_build_idle_zone) as parallel:
            assert parallel.n_workers == 3
            owners = [parallel.worker_of(name)
                      for name in parallel.zones]
            assert owners == sorted(owners)
            with pytest.raises(ConfigurationError):
                parallel.worker_of("nope")

    def test_zone_access_is_rejected(self):
        with ParallelShardedContext(
                seed=0, zones=("za",), workers=1,
                zone_builder=_build_idle_zone) as parallel:
            with pytest.raises(ConfigurationError, match="zone_builder"):
                parallel.zone("za")

    def test_finalize_collects_every_zone(self):
        with ParallelShardedContext(
                seed=0, zones=_zone_names(3), workers=2,
                link_latency_s=1.0, zone_builder=_build_idle_zone,
                zone_finalizer=_finalize_marker) as parallel:
            parallel.run(until=5.0)
            results = parallel.finalize()
            assert results == {name: f"done-{name}"
                               for name in _zone_names(3)}
            # Idempotent, and still readable after close().
            parallel.close()
            assert parallel.finalize() == results

    def test_metrics_registered_under_runtime_shard(self):
        with ParallelShardedContext(
                seed=0, zones=_zone_names(2), workers=2,
                link_latency_s=1.0,
                zone_builder=_build_fleet_zone,
                zone_args={"names": _zone_names(2), "devices": 2},
                zone_finalizer=_finalize_fleet_zone) as parallel:
            parallel.run(until=10.0)
            snapshot = parallel.metrics.to_payload()
            assert snapshot["runtime.shard.epochs"]["value"] == 10.0
            assert snapshot["runtime.shard.relay.messages"]["value"] > 0
            assert snapshot["runtime.shard.trace.batches"]["value"] > 0


class TestSequentialMemoization:
    """Satellite: merged_records()/digest() memoized across repeated
    calls, invalidated when run() lands new records."""

    @staticmethod
    def _sharded():
        sharded = ShardedContext(seed=5, zones=("a", "b"), n_shards=2,
                                 link_latency_s=0.5)
        for name in ("a", "b"):
            DeviceFleet(name, 3, ctx=sharded.zone(name),
                        fail_rate_per_s=5e-3).start(1.0)
        return sharded

    def test_repeat_calls_hit_the_cache(self):
        sharded = self._sharded()
        sharded.run(until=10.0)
        assert sharded.merged_records() is sharded.merged_records()
        assert sharded.to_jsonl() is sharded.to_jsonl()
        assert sharded.digest() is sharded.digest()

    def test_new_records_invalidate(self):
        sharded = self._sharded()
        sharded.run(until=10.0)
        first_merged = sharded.merged_records()
        first_digest = sharded.digest()
        sharded.run(until=20.0)
        assert sharded.merged_records() is not first_merged
        assert len(sharded.merged_records()) > len(first_merged)
        assert sharded.digest() != first_digest

    def test_sequential_metrics_registered(self):
        sharded = self._sharded()
        sharded.run(until=10.0)
        snapshot = sharded.metrics.to_payload()
        assert snapshot["runtime.shard.epochs"]["value"] == 20.0
        assert snapshot["runtime.shard.relay.backlog"]["value"] == 0.0
        assert sharded.events_executed > 0
