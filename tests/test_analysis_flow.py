"""Tests for the whole-program topic-flow & DES-contract analyzer.

Covers the static pattern algebra (including the hypothesis property
pinning it to the runtime bus compiler), the symbol-table/call-graph
rules on synthetic projects, the parse cache, and — as the acceptance
gate — that the real repo analyzes clean and produces a deterministic
topic graph for the fault→evict→MAPE→bind flow.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cache import ParseCache, parse_source
from repro.analysis.config import AnalysisConfig, load_config
from repro.analysis.flow import (FLOW_RULES, TopicPattern,
                                 analyze_des_contracts, analyze_topic_flow,
                                 build_topic_graph, contracts_for,
                                 graph_to_dot, load_project,
                                 pattern_from_ast, patterns_intersect,
                                 run_flow, segment_violations)
from repro.analysis.flow.symbols import Project
from repro.core.events import EventBus, topic_matches

REPO_ROOT = Path(__file__).resolve().parent.parent


def run_cli(*args, cwd=REPO_ROOT):
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        cwd=cwd, capture_output=True, text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"),
             "PATH": "/usr/bin:/bin"})


def make_project(sources: dict[str, str]) -> Project:
    """Build a Project from {rel_path: source} without touching disk."""
    project = Project()
    for rel_path, source in sorted(sources.items()):
        parsed = parse_source(source)
        assert parsed.tree is not None, parsed.error
        project.add_module(rel_path, parsed.tree, parsed.lines)
    project.build_indexes()
    return project


def rules_of(findings):
    return sorted({f.rule for f in findings})


# ---------------------------------------------------------------------------
# pattern algebra
# ---------------------------------------------------------------------------


class TestPatternsIntersect:
    @pytest.mark.parametrize("a,b,expected", [
        ("a.b", "a.b", True),
        ("a.b", "a.c", False),
        ("a.*", "a.b", True),
        ("a.*", "b.b", False),
        ("a.*", "*.b", True),
        ("a.**", "a.b.c.d", True),
        ("a.**", "b", False),
        ("**", "anything.at.all", True),
        ("a.**.z", "a.z", True),
        ("a.**.z", "a.b.c.z", True),
        ("a.**.z", "a.b.c", False),
        ("a.**.z", "a.*.z", True),
        ("a.**.z", "a.**.y", False),
        ("a.**.z", "**.z", True),
        ("a.*.c", "a.b.*", True),
        ("a.*.c", "a.b", False),
    ])
    def test_pairs(self, a, b, expected):
        assert patterns_intersect(a, b) is expected
        assert patterns_intersect(b, a) is expected  # symmetric

    def test_topicpattern_helpers(self):
        p = TopicPattern("a.*.c")
        assert not p.exact
        assert p.matches_topic("a.x.c")
        assert not p.matches_topic("a.x.y")
        assert p.intersects("a.b.**")
        assert TopicPattern("a.b").exact


_SEG = st.sampled_from(["alpha", "beta", "gm", "d7"])
_PATSEG = st.sampled_from(["alpha", "beta", "gm", "d7", "*", "**"])


class TestStaticMatchesRuntimeProperty:
    """Satellite: static matcher ≡ the runtime compiled bus matcher."""

    @settings(max_examples=300, deadline=None)
    @given(pattern=st.lists(_PATSEG, min_size=1, max_size=5),
           topic=st.lists(_SEG, min_size=1, max_size=5))
    def test_intersection_equals_compiled_match(self, pattern, topic):
        pattern_text = ".".join(pattern)
        topic_text = ".".join(topic)
        runtime = topic_matches(pattern_text, topic_text)
        # A wildcard-free topic intersects a pattern iff it matches it.
        assert patterns_intersect(pattern_text, topic_text) is runtime
        assert TopicPattern(pattern_text).matches_topic(topic_text) \
            is runtime

    @settings(max_examples=100, deadline=None)
    @given(pattern=st.lists(_PATSEG, min_size=1, max_size=4),
           topic=st.lists(_SEG, min_size=1, max_size=4))
    def test_matches_actual_bus_delivery(self, pattern, topic):
        bus = EventBus()
        bus.subscribe(".".join(pattern), lambda t, p: None)
        delivered = bus.publish(".".join(topic)) > 0
        assert patterns_intersect(".".join(pattern),
                                  ".".join(topic)) is delivered


class TestPatternFromAst:
    def _first_arg(self, source):
        import ast
        call = parse_source(source).tree.body[0].value
        return call.args[0]

    def test_literal(self):
        p = pattern_from_ast(self._first_arg('f("a.b.c")'))
        assert p == TopicPattern("a.b.c", dynamic=False)

    def test_fstring_placeholder_is_one_star(self):
        p = pattern_from_ast(self._first_arg('f(f"a.{x}.c")'))
        assert p.text == "a.*.c"
        assert p.dynamic

    def test_embedded_placeholder_widens_whole_segment(self):
        p = pattern_from_ast(self._first_arg('f(f"a.t{i}.c")'))
        assert p.text == "a.*.c"

    def test_dynamic_expression_unresolvable(self):
        assert pattern_from_ast(self._first_arg("f(topic)")) is None

    def test_segment_violations(self):
        assert segment_violations(TopicPattern("a.B.c"),
                                  allow_wildcards=True)
        assert segment_violations(TopicPattern("a..c"),
                                  allow_wildcards=True)
        assert segment_violations(TopicPattern("a.*.c"),
                                  allow_wildcards=False)
        assert not segment_violations(TopicPattern("a.*.c", dynamic=True),
                                      allow_wildcards=False)
        assert not segment_violations(TopicPattern("a.b-2.c_x"),
                                      allow_wildcards=False)


# ---------------------------------------------------------------------------
# topic-flow rules on synthetic projects
# ---------------------------------------------------------------------------


class TestTopicFlowRules:
    def test_undeclared_topic(self):
        project = make_project({"src/repro/x.py": (
            "def f(ctx):\n"
            "    ctx.bus.publish('no.such.namespace', {'a': 1})\n")})
        findings = analyze_topic_flow(project)
        assert "flow-undeclared-topic" in rules_of(findings)

    def test_topic_name_violation(self):
        project = make_project({"src/repro/x.py": (
            "def f(bus):\n"
            "    bus.publish('Continuum.Fault.FAIL', {})\n")})
        findings = analyze_topic_flow(project)
        assert "flow-topic-name" in rules_of(findings)

    def test_wildcard_in_published_topic(self):
        project = make_project({"src/repro/x.py": (
            "def f(bus):\n"
            "    bus.publish('continuum.fault.*', {})\n")})
        [finding] = [f for f in analyze_topic_flow(project)
                     if f.rule == "flow-topic-name"]
        assert "wildcard" in finding.message

    def test_forwarding_wrapper_is_not_a_site(self):
        project = make_project({"src/repro/x.py": (
            "class Ctx:\n"
            "    def publish(self, topic, payload=None):\n"
            "        return self.bus.publish(topic, payload)\n")})
        assert analyze_topic_flow(project) == []

    def test_payload_missing_required_key(self):
        project = make_project({"src/repro/x.py": (
            "def f(ctx):\n"
            "    ctx.bus.publish('continuum.fault.fail',\n"
            "                    {'device': d, 'time_s': 0.0})\n"
            "    ctx.bus.subscribe('continuum.fault.**', h)\n")})
        [finding] = [f for f in analyze_topic_flow(project)
                     if f.rule == "flow-payload-schema"]
        assert "interrupted" in finding.message

    def test_payload_unknown_key(self):
        project = make_project({"src/repro/x.py": (
            "def f(ctx):\n"
            "    ctx.bus.publish('continuum.fault.repair',\n"
            "                    {'device': d, 'time_s': 0.0,\n"
            "                     'oops': 1})\n"
            "    ctx.bus.subscribe('continuum.fault.**', h)\n")})
        [finding] = [f for f in analyze_topic_flow(project)
                     if f.rule == "flow-payload-schema"]
        assert "'oops'" in finding.message

    def test_spread_payload_is_not_checked(self):
        project = make_project({"src/repro/x.py": (
            "def f(ctx, extra):\n"
            "    ctx.bus.publish('chaos.action.begin',\n"
            "                    {'campaign': 'c', **extra})\n")})
        assert not [f for f in analyze_topic_flow(project)
                    if f.rule == "flow-payload-schema"]

    def test_handler_reads_unknown_key(self):
        project = make_project({"src/repro/x.py": (
            "def handler(topic, payload):\n"
            "    return payload.get('nonexistent_key')\n"
            "def wire(ctx):\n"
            "    ctx.bus.subscribe('continuum.fault.fail', handler)\n"
            "    ctx.bus.publish('continuum.fault.fail',\n"
            "                    {'device': d, 'time_s': 0.0,\n"
            "                     'interrupted': []})\n")})
        [finding] = [f for f in analyze_topic_flow(project)
                     if f.rule == "flow-payload-schema"]
        assert "nonexistent_key" in finding.message

    def test_handler_reading_contract_keys_is_clean(self):
        project = make_project({"src/repro/x.py": (
            "def handler(topic, payload):\n"
            "    data = payload or {}\n"
            "    return data.get('device'), payload['time_s']\n"
            "def wire(ctx):\n"
            "    ctx.bus.subscribe('continuum.fault.fail', handler)\n"
            "    ctx.bus.publish('continuum.fault.fail',\n"
            "                    {'device': d, 'time_s': 0.0,\n"
            "                     'interrupted': []})\n")})
        assert not [f for f in analyze_topic_flow(project)
                    if f.rule == "flow-payload-schema"]

    def test_orphan_subscriber(self):
        project = make_project({"src/repro/x.py": (
            "def wire(ctx):\n"
            "    ctx.bus.subscribe('mirto.mape.sense', h)\n")})
        assert "flow-orphan-subscriber" in \
            rules_of(analyze_topic_flow(project))

    def test_dead_bus_topic_without_subscriber(self):
        project = make_project({"src/repro/x.py": (
            "def f(ctx):\n"
            "    ctx.bus.publish('continuum.fault.fail',\n"
            "                    {'device': d, 'time_s': 0.0,\n"
            "                     'interrupted': []})\n")})
        dead = [f for f in analyze_topic_flow(project)
                if f.rule == "flow-dead-topic"
                and f.path == "src/repro/x.py"]
        assert dead and "no in-process subscriber" in dead[0].message

    def test_trace_topic_needs_no_subscriber(self):
        project = make_project({"src/repro/x.py": (
            "def f(ctx):\n"
            "    ctx.bus.publish('mirto.mape.sense',\n"
            "                    {'iteration': 1, 'components': []})\n")})
        assert not [f for f in analyze_topic_flow(project)
                    if f.rule == "flow-dead-topic"
                    and f.path == "src/repro/x.py"]

    def test_pragma_suppresses_flow_finding(self, tmp_path):
        pkg = tmp_path / "src"
        pkg.mkdir()
        (pkg / "x.py").write_text(
            "def f(bus):\n"
            "    bus.publish('no.such.ns', {})"
            "  # continuum-lint: disable=flow-undeclared-topic\n")
        config = AnalysisConfig(root=tmp_path, flow_paths=["src"])
        findings = run_flow(config)
        assert "flow-undeclared-topic" not in rules_of(findings)


class TestDesRules:
    def test_generator_called_and_discarded(self):
        project = make_project({"src/repro/x.py": (
            "def work(sim):\n"
            "    yield sim.timeout(1.0)\n"
            "def broken(sim):\n"
            "    work(sim)\n")})
        [finding] = analyze_des_contracts(project)
        assert finding.rule == "des-generator-not-driven"
        assert "discards" in finding.message

    def test_yield_generator_instead_of_yield_from(self):
        project = make_project({"src/repro/x.py": (
            "def inner(sim):\n"
            "    yield sim.timeout(1.0)\n"
            "def outer(sim):\n"
            "    yield inner(sim)\n")})
        [finding] = analyze_des_contracts(project)
        assert finding.rule == "des-generator-not-driven"
        assert "yield from" in finding.message

    def test_yield_from_is_clean(self):
        project = make_project({"src/repro/x.py": (
            "def inner(sim):\n"
            "    yield sim.timeout(1.0)\n"
            "def outer(sim):\n"
            "    yield from inner(sim)\n"
            "def spawn(sim):\n"
            "    return sim.process(outer(sim))\n")})
        assert analyze_des_contracts(project) == []

    def test_cross_module_policy_call_misuse(self):
        # `policy.call(...)` resolved across a module boundary via the
        # project symbol table (the interprocedural case).
        project = make_project({
            "src/repro/pol.py": (
                "class RetryPolicy:\n"
                "    def call(self, factory):\n"
                "        yield from factory()\n"),
            "src/repro/use.py": (
                "from repro.pol import RetryPolicy\n"
                "def run(sim, factory):\n"
                "    policy = RetryPolicy()\n"
                "    def proc():\n"
                "        yield policy.call(factory)\n"
                "    return sim.process(proc())\n")})
        [finding] = analyze_des_contracts(project)
        assert finding.rule == "des-generator-not-driven"
        assert "RetryPolicy.call" in finding.message

    def test_sim_process_with_non_generator(self):
        project = make_project({"src/repro/x.py": (
            "def action(n):\n"
            "    return n + 1\n"
            "def spawn(sim):\n"
            "    return sim.process(action(3))\n")})
        [finding] = analyze_des_contracts(project)
        assert finding.rule == "des-process-not-generator"

    def test_sim_process_with_generator_returning_wrapper(self):
        # A plain function that *returns* a generator is a legal
        # process argument (the repo's policy-wrapping idiom).
        project = make_project({"src/repro/x.py": (
            "def inner(sim):\n"
            "    yield sim.timeout(1.0)\n"
            "def wrap(sim):\n"
            "    return inner(sim)\n"
            "def unknown(factory):\n"
            "    return factory()\n"
            "def spawn(sim, factory):\n"
            "    sim.process(wrap(sim))\n"
            "    sim.process(unknown(factory))\n")})
        assert analyze_des_contracts(project) == []

    def test_generator_bus_handler(self):
        project = make_project({"src/repro/x.py": (
            "def handler(topic, payload):\n"
            "    yield payload\n"
            "def wire(ctx):\n"
            "    ctx.bus.subscribe('continuum.fault.fail', handler)\n"
            "    ctx.bus.publish('continuum.fault.fail',\n"
            "                    {'device': d, 'time_s': 0.0,\n"
            "                     'interrupted': []})\n")})
        assert "des-handler-yields" in \
            rules_of(analyze_topic_flow(project))


# ---------------------------------------------------------------------------
# parse cache
# ---------------------------------------------------------------------------


class TestParseCache:
    def test_hit_on_unchanged_file(self, tmp_path):
        target = tmp_path / "m.py"
        target.write_text("x = 1\n")
        cache = ParseCache()
        first = cache.parse(target)
        second = cache.parse(target)
        assert second is first
        assert (cache.hits, cache.misses) == (1, 1)

    def test_miss_after_modification(self, tmp_path):
        import os
        target = tmp_path / "m.py"
        target.write_text("x = 1\n")
        cache = ParseCache()
        cache.parse(target)
        target.write_text("x = 2\n")
        os.utime(target, ns=(1, 1))  # force a distinct mtime
        parsed = cache.parse(target)
        assert parsed.source == "x = 2\n"
        assert cache.misses == 2

    def test_persistence_round_trip(self, tmp_path):
        target = tmp_path / "m.py"
        target.write_text("def f():\n    return 3\n")
        cache = ParseCache()
        cache.parse(target)
        cache_file = tmp_path / "cache.bin"
        assert cache.save(cache_file)
        restored = ParseCache.load(cache_file)
        assert len(restored) == 1
        restored.parse(target)
        assert (restored.hits, restored.misses) == (1, 0)

    def test_corrupt_cache_degrades_to_empty(self, tmp_path):
        cache_file = tmp_path / "cache.bin"
        cache_file.write_bytes(b"\x80garbage")
        assert len(ParseCache.load(cache_file)) == 0
        assert len(ParseCache.load(tmp_path / "missing.bin")) == 0

    def test_syntax_error_is_carried(self, tmp_path):
        target = tmp_path / "bad.py"
        target.write_text("def broken(:\n")
        parsed = ParseCache().parse(target)
        assert parsed.tree is None
        assert parsed.error is not None


# ---------------------------------------------------------------------------
# whole-repo acceptance + graph snapshot
# ---------------------------------------------------------------------------


class TestWholeRepo:
    def test_repo_flow_analyzes_clean(self):
        findings = run_flow(load_config(REPO_ROOT))
        assert findings == [], [f.as_dict() for f in findings]

    def test_findings_byte_reproducible(self):
        config = load_config(REPO_ROOT)
        first = [f.as_dict() for f in run_flow(config)]
        second = [f.as_dict() for f in run_flow(config)]
        assert first == second

    def test_fault_flow_graph_snapshot(self):
        # Pins the fault→evict→MAPE→bind chain: device failure fans
        # out to the kube eviction watcher, the MAPE loop and the
        # infrastructure monitor; the reactions surface as kube events,
        # MAPE phase topics and the deploy/bind record.
        graph = build_topic_graph(load_project(load_config(REPO_ROOT)))
        by_pattern = {t["pattern"]: t for t in graph["topics"]}
        assert by_pattern["continuum.fault.fail"] == {
            "pattern": "continuum.fault.fail",
            "contracts": ["continuum.fault.fail"],
            "publishers": ["repro.continuum.faults:FaultInjector._fail"],
            "subscribers": [
                {"pattern": "continuum.fault.*",
                 "handler": "repro.kube.cluster:KubeCluster"
                            ".watch_device_faults._on_fault"},
                {"pattern": "continuum.fault.*",
                 "handler": "repro.mirto.mape:MapeLoop._on_fault"},
                {"pattern": "continuum.fault.*",
                 "handler": "repro.monitoring.monitors:"
                            "InfrastructureMonitor"
                            ".watch_device_faults._on_fault"},
            ],
        }
        assert by_pattern["kube.*.*"]["publishers"] == \
            ["repro.kube.cluster:KubeCluster._emit"]
        assert by_pattern["mirto.mape.plan"]["publishers"] == \
            ["repro.mirto.mape:MapeLoop.iterate"]
        assert by_pattern["mirto.deploy.placed"]["publishers"] == \
            ["repro.mirto.manager:WorkloadManager._deploy"]
        assert "chaos.campaign.begin" in by_pattern

    def test_graph_json_deterministic(self):
        config = load_config(REPO_ROOT)
        first = json.dumps(build_topic_graph(load_project(config)))
        second = json.dumps(build_topic_graph(load_project(config)))
        assert first == second

    def test_every_contract_namespace_is_known(self):
        from repro.analysis.flow import NAMESPACES
        assert NAMESPACES == {"continuum", "kube", "mirto", "chaos",
                              "monitor", "net", "obs", "shard"}

    def test_contracts_for_monitor_topics(self):
        [contract] = contracts_for("monitor.metrics.application.app.x")
        assert contract.required == {"time_s", "value"}


class TestFlowCli:
    def test_graph_json_smoke(self):
        result = run_cli("graph", "--no-cache")
        assert result.returncode == 0, result.stderr
        graph = json.loads(result.stdout)
        assert graph["topics"]
        assert graph["publisher_count"] > 10

    def test_graph_dot_smoke(self):
        result = run_cli("graph", "--no-cache", "--format", "dot")
        assert result.returncode == 0, result.stderr
        assert result.stdout.startswith("digraph topic_flow {")
        assert '"continuum.fault.fail"' in result.stdout

    def test_graph_rejects_extra_paths(self):
        result = run_cli("graph", "src", "--no-cache")
        assert result.returncode == 2

    def test_flow_rules_known_to_rules_flag(self):
        result = run_cli("--rules", "flow-undeclared-topic,"
                         "des-generator-not-driven", "--no-cache",
                         "--check")
        assert result.returncode == 0, result.stdout + result.stderr

    def test_flow_rule_ids_are_registered(self):
        assert "flow-undeclared-topic" in FLOW_RULES
        assert "des-process-not-generator" in FLOW_RULES
