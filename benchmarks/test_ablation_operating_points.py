"""Ablation: design-time operating points at runtime (refs [29], [30]).

The paper envisions CSAR meta-information describing per-application
operating points, "leveraged at runtime to improve energy efficiency".
This ablation compares three node-configuration policies on the same
workload mix: (a) fixed performance point, (b) fixed low-power point,
(c) MIRTO Node Manager picking per-task points against apportioned
latency budgets. Expected shape: fixed-performance wastes energy,
fixed-low-power misses deadlines under load, adaptive gets (close to)
the best of both.
"""

import pytest

from repro.mirto import CognitiveEngine, EngineConfig
from repro.usecases import mobility, run_sessions

from _report import emit, table


def run_policy(policy: str, sessions: int = 5):
    """One engine per policy so device state does not leak across."""
    engine = CognitiveEngine(EngineConfig(seed=51))
    scenario = mobility.build_scenario(vehicles=2)
    if policy in ("performance", "low-power"):
        # Pin every device and disable the Node Manager's choices by
        # replacing its selector with the pinned point.
        for device in engine.infrastructure.devices.values():
            device.set_operating_point(policy)
        engine.manager.node_manager.select_operating_point = \
            lambda device, task, budget, _p=policy: _p
    stats = run_sessions(engine, scenario, "greedy", sessions=sessions)
    switches = engine.manager.node_manager.switches
    return stats, switches


def test_operating_point_policies(benchmark):
    def sweep():
        return {policy: run_policy(policy)
                for policy in ("performance", "low-power", "adaptive")}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for policy, (stats, switches) in results.items():
        rows.append([
            policy,
            f"{stats.mean_makespan_s * 1e3:.1f}",
            f"{stats.total_energy_j:.2f}",
            f"{stats.deadline_hit_rate:.0%}",
            str(switches),
        ])
    lines = ["ABLATION: node operating-point policy (mobility fleet=2,",
             "greedy placement, 5 sessions, budget "
             f"{mobility.LATENCY_BUDGET_S * 1e3:.0f} ms)", ""]
    lines += table(["policy", "mean ms", "energy J", "deadline hit",
                    "op switches"], rows)
    emit("ablation_operating_points", lines)
    perf, _ = results["performance"]
    eco, _ = results["low-power"]
    adaptive, switches = results["adaptive"]
    # Shape: low-power is slowest, performance is hungriest; adaptive
    # meets deadlines like performance but cheaper than performance.
    assert eco.mean_makespan_s > perf.mean_makespan_s
    assert adaptive.deadline_hit_rate >= eco.deadline_hit_rate
    assert adaptive.total_energy_j < perf.total_energy_j
    assert adaptive.deadline_hit_rate == perf.deadline_hit_rate == 1.0


def test_dse_exported_points_span_the_tradeoff(benchmark):
    """The meta-information itself: DSE operating points must form a
    real latency/energy trade-off curve, not a single point, for the
    runtime to have something to choose between."""

    def export():
        import random
        from repro.dpe import (
            GeneticExplorer,
            MappingEvaluator,
            export_operating_points,
        )
        from repro.dpe.modeling import DEFAULT_PLATFORM
        scenario = mobility.build_scenario(vehicles=4)
        evaluator = MappingEvaluator(scenario.to_application(),
                                     DEFAULT_PLATFORM)
        explorer = GeneticExplorer(evaluator, random.Random(0),
                                   population=40, generations=30,
                                   objective="edp")
        return export_operating_points(explorer.explore(), max_points=5)

    points = benchmark.pedantic(export, rounds=1, iterations=1)
    rows = [[p["name"], f"{p['latency_s'] * 1e3:.2f}",
             f"{p['energy_j'] * 1e3:.1f}"] for p in points]
    lines = ["ABLATION: DSE-exported operating points (mobility,",
             "fleet=4, GA over the MYRTUS site platform)", ""]
    lines += table(["point", "latency ms", "energy mJ"], rows)
    emit("ablation_operating_points_pareto", lines)
    assert len(points) >= 2, "need a trade-off, not a single point"
    # Pareto shape: latency up, energy down along the exported list.
    latencies = [p["latency_s"] for p in points]
    energies = [p["energy_j"] for p in points]
    assert latencies == sorted(latencies)
    assert energies == sorted(energies, reverse=True)


def test_mape_drives_points_with_load(benchmark):
    """The MAPE loop moves idle devices to low-power and loaded devices
    up — the runtime half of the operating-point story."""

    def probe():
        engine = CognitiveEngine(EngineConfig(seed=53))
        engine.mape_iterate(1)
        idle_points = {
            d.name: d.operating_point.name
            for d in engine.infrastructure.devices.values()
            if d.operating_points and "low-power" in d.operating_points
        }
        # Now heavily load one FPGA and re-run the loop.
        from repro.continuum.workload import Task
        device = engine.infrastructure.device("fpga-00-0")
        sim = engine.sim
        for i in range(60):
            sim.process(device.execute(Task(f"burn-{i}", megaops=400)))
        sim.run(until=sim.now + 2.0)  # mid-burst, with completions
        engine.mape_iterate(1)
        return idle_points, device.operating_point.name

    idle_points, loaded_point = benchmark.pedantic(probe, rounds=1,
                                                   iterations=1)
    lines = ["ABLATION: MAPE-driven operating points", "",
             f"idle fleet: {sum(1 for p in idle_points.values() if p == 'low-power')}"
             f"/{len(idle_points)} devices at low-power",
             f"fpga-00-0 under sustained load: {loaded_point}"]
    emit("ablation_operating_points_mape", lines)
    assert all(p == "low-power" for p in idle_points.values())
    assert loaded_point == "performance"
