"""Reproduces paper FIGURE 2: the layered continuum infrastructure.

Fig. 2 drafts the generic architecture: edge (multicores, HMPSoC FPGAs,
RISC-V+CGRA), fog (smart gateways, FMDCs), cloud — with MIRTO agents on
every layer and horizontal/vertical workload movement. This bench builds
that reference infrastructure, drives a mixed workload through it, and
regenerates the figure as a per-layer activity report plus the
offload-direction statistics that demonstrate the continuum behaviour
the figure depicts.
"""

import random

import pytest

from repro.continuum import (
    DeviceKind,
    Layer,
    Simulator,
    Task,
    build_reference_infrastructure,
)
from repro.continuum.workload import (
    Application,
    KernelClass,
    PrivacyClass,
    TaskRequirements,
)
from repro.mirto.placement import (
    PlacementConstraints,
    PlacementRequest,
    execute_placement,
    make_strategy,
)

from _report import emit, table


def mixed_application(index: int, rng: random.Random) -> Application:
    """A small app whose stages naturally want different layers."""
    app = Application(f"mixed-{index}")
    privacy = rng.choice([PrivacyClass.PUBLIC, PrivacyClass.AGGREGATED,
                          PrivacyClass.RAW_PERSONAL])
    reqs = TaskRequirements(latency_budget_s=5.0, privacy=privacy)
    app.add_task(Task("acquire", rng.uniform(20, 80),
                      input_bytes=rng.randrange(50_000, 400_000),
                      requirements=reqs))
    app.add_task(Task("transform", rng.uniform(300, 1500),
                      kernel=rng.choice([KernelClass.DSP,
                                         KernelClass.NEURAL,
                                         KernelClass.GENERAL]),
                      requirements=reqs))
    # The analytics stage may go anywhere privacy allows.
    app.add_task(Task("analyze", rng.uniform(500, 4000),
                      kernel=KernelClass.ANALYTICS,
                      requirements=TaskRequirements(
                          latency_budget_s=5.0,
                          privacy=PrivacyClass.PUBLIC
                          if privacy is PrivacyClass.PUBLIC
                          else PrivacyClass.AGGREGATED)))
    app.connect("acquire", "transform", 100_000)
    app.connect("transform", "analyze", 20_000)
    return app


def run_mixed_workload(apps: int = 20, seed: int = 2):
    sim = Simulator()
    infrastructure = build_reference_infrastructure(
        sim, edge_sites=2, fmdcs=1, cloud_servers=2)
    rng = random.Random(seed)
    strategy = make_strategy("greedy")
    source = infrastructure.devices_of_kind(
        DeviceKind.EDGE_MULTICORE)[0].name
    for i in range(apps):
        app = mixed_application(i, rng)
        placement = strategy.solve(PlacementRequest(
            application=app, infrastructure=infrastructure,
            constraints=PlacementConstraints(
                source_device=source))).placement
        execute_placement(app, placement, infrastructure,
                          source_device=source)
    return infrastructure


def test_fig2_layer_report(benchmark):
    infrastructure = benchmark.pedantic(run_mixed_workload, rounds=1,
                                        iterations=1)
    report = infrastructure.layer_report()
    rows = []
    for layer in ("edge", "fog", "cloud"):
        stats = report[layer]
        rows.append([
            layer,
            f"{stats['devices']:.0f}",
            f"{stats['tasks_executed']:.0f}",
            f"{stats['accelerated_tasks']:.0f}",
            f"{stats['mean_utilization']:.1%}",
            f"{stats['total_energy_j']:.1f}",
        ])
    offloads = infrastructure.offloads
    lines = ["FIGURE 2 (reproduced): layered continuum under a mixed",
             "20-application workload (greedy placement)", ""]
    lines += table(["layer", "devices", "tasks", "accel",
                    "mean util", "energy J"], rows)
    lines += ["",
              f"workload movement: {offloads.horizontal} horizontal, "
              f"{offloads.vertical_up} vertical-up, "
              f"{offloads.vertical_down} vertical-down"]
    emit("fig2_infrastructure", lines)
    # Shape: every layer participates, and both directions of vertical
    # movement occur (the continuum premise of the figure).
    assert all(report[layer]["tasks_executed"] > 0
               for layer in ("edge", "fog", "cloud"))
    assert offloads.vertical_up > 0
    assert offloads.vertical_down > 0
    assert report["edge"]["accelerated_tasks"] > 0


def test_fig2_component_families_present(benchmark):
    """All six device families of the figure exist in the reference
    infrastructure with the documented layer assignment."""

    def build():
        sim = Simulator()
        return build_reference_infrastructure(sim)

    infrastructure = benchmark.pedantic(build, rounds=1, iterations=1)
    expected = {
        DeviceKind.EDGE_MULTICORE: Layer.EDGE,
        DeviceKind.HMPSOC_FPGA: Layer.EDGE,
        DeviceKind.RISCV_CGRA: Layer.EDGE,
        DeviceKind.SMART_GATEWAY: Layer.FOG,
        DeviceKind.FMDC: Layer.FOG,
        DeviceKind.CLOUD_SERVER: Layer.CLOUD,
    }
    rows = []
    for kind, layer in expected.items():
        devices = infrastructure.devices_of_kind(kind)
        assert devices, f"missing device family {kind.value}"
        assert all(d.spec.layer == layer for d in devices)
        spec = devices[0].spec
        rows.append([kind.value, layer.value, str(len(devices)),
                     f"{spec.gops:.0f}", f"{spec.idle_power_w:.1f}",
                     spec.max_security_level])
    lines = ["FIGURE 2 (reproduced): component families and calibrated",
             "parameters", ""]
    lines += table(["family", "layer", "count", "GOPS", "idle W",
                    "max sec"], rows)
    emit("fig2_component_families", lines)


def test_fig2_edge_cloud_latency_gradient(benchmark):
    """The figure's premise: communication cost grows with distance
    from the edge."""

    def measure():
        sim = Simulator()
        infrastructure = build_reference_infrastructure(sim)
        network = infrastructure.network
        return {
            "edge-to-gateway": network.path_latency("fpga-00-0",
                                                    "gw-00-0"),
            "edge-to-fmdc": network.path_latency("fpga-00-0", "fmdc-00"),
            "edge-to-cloud": network.path_latency("fpga-00-0",
                                                  "cloud-00"),
        }

    latencies = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["FIGURE 2 (reproduced): vertical latency gradient", ""]
    lines += table(["path", "latency ms"],
                   [[name, f"{value * 1e3:.1f}"]
                    for name, value in latencies.items()])
    emit("fig2_latency_gradient", lines)
    assert latencies["edge-to-gateway"] < latencies["edge-to-fmdc"] \
        < latencies["edge-to-cloud"]
