"""Reproduces paper FIGURE 4: the Design and Programming Environment.

Fig. 4 shows the three-step DPE flow: (1) continuum modeling, simulation
and analysis; (2) model to implementation; (3) node-level optimization
and deployment. This bench runs the complete flow on both MYRTUS use
cases, regenerates the figure as a per-step artifact/timing inventory,
and verifies the flow's correctness spine: functional equivalence of the
IR across quantization and hardware lowering.
"""

import time

import numpy as np
import pytest

from repro.dpe import (
    DesignFlow,
    estimate_kpis,
    import_onnx,
    lower_to_hardware,
    reference_mlp,
    synthesize_countermeasures,
)
from repro.dpe.mlir import Base2Type, Interpreter, Module
from repro.tosca import CsarArchive, ToscaValidator
from repro.usecases import mobility, telerehab

from _report import emit, table


def run_flow(case, seed=3):
    """Run the three steps with per-step timing."""
    scenario = case.build_scenario()
    adt = case.build_adt()
    timings = {}

    start = time.perf_counter()
    service = scenario.to_service_template()
    ToscaValidator().validate(service)
    kpis = estimate_kpis(scenario, seed=seed)
    adt_result = synthesize_countermeasures(adt, budget=8.0)
    timings["step 1: modeling + analysis"] = time.perf_counter() - start

    start = time.perf_counter()
    spec = DesignFlow(seed=seed).run(scenario, adt, defence_budget=8.0)
    timings["steps 2+3: implementation + node-level"] = \
        time.perf_counter() - start
    return scenario, spec, kpis, adt_result, timings


@pytest.mark.parametrize("case", [mobility, telerehab],
                         ids=["mobility", "telerehab"])
def test_fig4_flow_per_use_case(case, benchmark):
    scenario, spec, kpis, adt_result, timings = benchmark.pedantic(
        run_flow, args=(case,), rounds=1, iterations=1)
    artifact_rows = [[path, str(size)]
                     for path, size in spec.artifact_inventory.items()]
    lines = [f"FIGURE 4 (reproduced): DPE flow on {scenario.name}", ""]
    lines += [f"{stage}: {seconds * 1e3:.0f} ms"
              for stage, seconds in timings.items()]
    lines += [
        "",
        f"step 1 outputs:",
        f"  KPI estimate: {kpis.latency_s * 1e3:.1f} ms / "
        f"{kpis.energy_j:.2f} J (budget met: {kpis.meets_budget}, "
        f"bottleneck: {kpis.bottleneck_component})",
        f"  ADT: risk {adt_result.baseline_probability:.2f} -> "
        f"{adt_result.residual_probability:.3f} "
        f"({adt_result.risk_reduction:.0%} reduction, "
        f"cost {adt_result.total_cost:.1f})",
        "",
        f"step 2 outputs: {len(spec.countermeasures)} countermeasure "
        f"snippets, kernels for "
        f"{sum(1 for c in scenario.components if c.accelerable)} "
        f"accelerable components",
        "",
        f"step 3 outputs ({len(spec.csar_bytes)}-byte CSAR):",
    ]
    lines += table(["artifact", "bytes"], artifact_rows)
    emit(f"fig4_dpe_flow_{scenario.name}", lines)
    # The deployment specification must be complete and loadable.
    archive = CsarArchive.from_bytes(spec.csar_bytes)
    assert "meta/operating-points.json" in archive.artifacts
    assert any(p.startswith("bitstreams/") for p in archive.artifacts)
    assert spec.operating_points
    assert spec.countermeasures


def test_fig4_lowering_equivalence_spine(benchmark):
    """The flow's correctness claim: every lowering stage preserves
    semantics. Float IR ~= base2 IR (bounded quantization error), and
    the error shrinks as the fixed-point format widens."""

    def measure():
        rng = np.random.default_rng(17)
        samples = rng.normal(0, 1, (8, 8))
        errors = {}
        for width, frac in ((8, 4), (16, 8), (24, 12)):
            module = Module(f"equiv-{width}")
            model = reference_mlp(rng, input_dim=8, hidden=12,
                                  output_dim=4)
            func = import_onnx(model, module)
            worst = 0.0
            deployment = lower_to_hardware(
                module, func, samples[:1], fixed=Base2Type(width, frac),
                target="fpga")
            interp = Interpreter(module)
            for row in samples:
                ref = interp.run(func, row[None, :])[0]
                approx = interp.run(deployment.fixed_function,
                                    row[None, :])[0]
                worst = max(worst, float(np.max(np.abs(ref - approx))))
            errors[f"base2 {width}.{frac}"] = worst
        return errors

    errors = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["FIGURE 4 (reproduced): lowering equivalence — worst-case",
             "|float - fixed| over 8 random MLP inputs", ""]
    lines += table(["format", "worst abs error"],
                   [[name, f"{err:.5f}"]
                    for name, err in errors.items()])
    emit("fig4_lowering_equivalence", lines)
    values = list(errors.values())
    assert values[0] > values[1] > values[2]
    assert values[2] < 0.01


def test_fig4_csar_is_kubernetes_deployable(benchmark):
    """Fig. 4's endpoint: the .csar enables 'workload deployment and
    management in all TOSCA-compatible environments, including
    Kubernetes-based' — prove it by deploying the CSAR onto the kube
    federation through the deployment proxy."""

    def deploy():
        from repro.kube import (
            ContinuumFederation,
            KubeCluster,
            Node,
            ResourceRequest,
        )
        from repro.mirto.proxies import DeploymentProxy
        spec = DesignFlow(seed=4).run(mobility.build_scenario(vehicles=1))
        archive = CsarArchive.from_bytes(spec.csar_bytes)
        fed = ContinuumFederation()
        edge = KubeCluster("edge")
        edge.add_node(Node("fpga", ResourceRequest(4000, 8 * 1024**3),
                           labels={"security-level": "high"}))
        cloud = KubeCluster("cloud")
        cloud.add_node(Node("srv", ResourceRequest(64000, 256 * 1024**3),
                            labels={"security-level": "high"}))
        fed.add_cluster(edge)
        fed.add_cluster(cloud)
        fed.peer("edge", "cloud")
        proxy = DeploymentProxy(fed, "edge")
        record = proxy.deploy_service(archive.service)
        return proxy.service_phases(archive.service.name)

    phases = benchmark.pedantic(deploy, rounds=1, iterations=1)
    lines = ["FIGURE 4 (reproduced): CSAR deployed onto the Kubernetes",
             "federation via the LIQO-backed deployment proxy", ""]
    lines += table(["pod", "phase"],
                   [[pod, phase] for pod, phase in sorted(phases.items())])
    emit("fig4_csar_kube_deploy", lines)
    assert len(phases) == 5  # the five mobility components
    assert all(phase in ("Scheduled", "Running")
               for phase in phases.values())
