"""Ablation: deployment-time-only vs execution-time orchestration.

Paper Sec. IV: MIRTO orchestrates "both at deployment time ... and at
execution time (while tasks are already running)". This ablation
quantifies the execution-time half: a streaming service runs for 8
periods; at period 2 a sustained co-tenant load saturates the device
hosting its heavy stage. A static deployment (deployment-time decision
only) keeps suffering; the adaptive one migrates and recovers. Expected
shape: identical KPIs before the interference, a large post-interference
gap, and migrations only when the predicted gain clears the hysteresis
threshold.
"""

import pytest

from repro.continuum import Simulator, build_reference_infrastructure
from repro.continuum.workload import Application, KernelClass, Task
from repro.mirto.continuous import (
    ContinuousDeployment,
    MigrationPolicy,
    run_with_interference,
)
from repro.mirto.placement import PlacementConstraints

from _report import emit, table


def streaming_app():
    app = Application("stream")
    app.add_task(Task("grab", 100, input_bytes=100_000))
    app.add_task(Task("infer", 2500, kernel=KernelClass.DSP))
    app.add_task(Task("emit", 150))
    app.connect("grab", "infer", 100_000)
    app.connect("infer", "emit", 5_000)
    return app


def run_mode(adaptive: bool):
    infrastructure = build_reference_infrastructure(Simulator())
    threshold = 0.15 if adaptive else 10.0  # 10.0 = never migrate
    deployment = ContinuousDeployment(
        streaming_app(), infrastructure,
        constraints=PlacementConstraints(source_device="mc-00-0"),
        policy=MigrationPolicy(improvement_threshold=threshold))
    victim = deployment.placement.device_of("infer")
    records = run_with_interference(
        deployment, periods=8, interfere_at=2,
        interference_device=victim,
        interference_megaops=8000, interference_tasks=16)
    return deployment, records


def test_execution_time_orchestration(benchmark):
    def measure():
        adaptive, adaptive_records = run_mode(adaptive=True)
        static, static_records = run_mode(adaptive=False)
        return adaptive, adaptive_records, static, static_records

    adaptive, a_recs, static, s_recs = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    rows = []
    for period in range(len(a_recs)):
        rows.append([
            str(period),
            f"{s_recs[period].makespan_s * 1e3:.0f}",
            f"{a_recs[period].makespan_s * 1e3:.0f}",
            "yes" if a_recs[period].migrated else "",
        ])
    lines = ["ABLATION: execution-time orchestration under sustained",
             "co-tenant interference (starts at period 2)", ""]
    lines += table(["period", "static ms", "adaptive ms", "migrated"],
                   rows)
    lines += ["",
              f"adaptive migrations: {adaptive.migrations}; "
              f"post-interference mean (last 4 periods): "
              f"static {static.mean_makespan(4) * 1e3:.0f} ms vs "
              f"adaptive {adaptive.mean_makespan(4) * 1e3:.0f} ms"]
    emit("ablation_continuous", lines)
    # Shape assertions.
    assert a_recs[0].makespan_s == pytest.approx(
        s_recs[0].makespan_s, rel=0.05)  # identical pre-interference
    assert adaptive.migrations >= 1
    assert static.migrations == 0
    assert adaptive.mean_makespan(4) < static.mean_makespan(4) / 2


def test_hysteresis_threshold_sweep(benchmark):
    """The migration threshold is a real knob: too high never adapts,
    too low risks flapping; here the workload has one clear shift, so
    any threshold below the actual gain migrates exactly once."""

    def sweep():
        results = {}
        for threshold in (0.05, 0.3, 5.0):
            infrastructure = build_reference_infrastructure(Simulator())
            deployment = ContinuousDeployment(
                streaming_app(), infrastructure,
                constraints=PlacementConstraints(
                    source_device="mc-00-0"),
                policy=MigrationPolicy(
                    improvement_threshold=threshold))
            victim = deployment.placement.device_of("infer")
            run_with_interference(deployment, periods=6, interfere_at=1,
                                  interference_device=victim,
                                  interference_megaops=8000,
                                  interference_tasks=16)
            results[threshold] = (deployment.migrations,
                                  deployment.mean_makespan(3))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["ABLATION: migration hysteresis threshold sweep", ""]
    lines += table(["threshold", "migrations", "late mean ms"],
                   [[str(t), str(m), f"{mk * 1e3:.0f}"]
                    for t, (m, mk) in results.items()])
    emit("ablation_continuous_hysteresis", lines)
    assert results[5.0][0] == 0  # too high: never adapts
    assert results[0.05][0] >= 1
    assert results[0.05][1] < results[5.0][1]  # adapting helped
