"""Ablation: the cost of the security-level tiering (Table II rationale).

Table II exists because one-size-fits-all security is wrong for a
heterogeneous continuum: PQC everywhere would crush constrained edge
devices, lightweight-everywhere would under-protect the cloud. This
ablation measures the end-to-end messaging overhead of each level for a
telemetry workload, the crossover against message size, and what the
tiering saves versus forcing HIGH on every link.
"""

import time

import pytest

from repro.security import Identity, SecureChannel, SecurityLevel

from _report import emit, table


@pytest.fixture(scope="module")
def channels():
    alice = Identity("edge-node", seed=41)
    bob = Identity("gateway", seed=41)
    return {
        level: SecureChannel.establish(alice, bob, level)
        for level in SecurityLevel
    }


def measure_messaging(channels, message_bytes: int, messages: int = 20):
    """Per-level seal+open wall time and wire overhead."""
    payload = b"\xab" * message_bytes
    results = {}
    for level, (tx, rx) in channels.items():
        start = time.perf_counter()
        wire_total = 0
        for _ in range(messages):
            wire = tx.seal(payload)
            wire_total += len(wire)
            assert rx.open(wire) == payload
        elapsed = time.perf_counter() - start
        results[level.value] = {
            "ms_per_msg": elapsed / messages * 1e3,
            "overhead_bytes": wire_total // messages - message_bytes,
        }
    return results


def test_record_protection_overhead_by_level(channels, benchmark):
    results = benchmark.pedantic(measure_messaging,
                                 args=(channels, 256), rounds=1,
                                 iterations=1)
    rows = [[level, f"{r['ms_per_msg']:.2f}",
             str(r["overhead_bytes"])]
            for level, r in results.items()]
    lines = ["ABLATION: AEAD record protection per level",
             "(256-byte telemetry messages, 20 messages)", ""]
    lines += table(["level", "ms/message", "overhead B"], rows)
    emit("ablation_security_records", lines)
    # All levels carry the same small record overhead (counter + tag);
    # the differentiation is in handshakes and compute.
    for r in results.values():
        assert r["overhead_bytes"] <= 32


def test_handshake_amortization_crossover(benchmark):
    """The HIGH handshake is expensive; its relative cost vanishes as
    sessions grow longer. Expected: overhead ratio HIGH/LOW falls
    monotonically with messages-per-session."""

    def measure():
        alice = Identity("a", seed=42)
        bob = Identity("b", seed=42)
        ratios = {}
        for session_messages in (1, 10, 100):
            bytes_per_level = {}
            for level in (SecurityLevel.LOW, SecurityLevel.HIGH):
                tx, _ = SecureChannel.establish(alice, bob, level)
                wire = tx.transcript.total_bytes
                for _ in range(session_messages):
                    wire += len(tx.seal(b"\x01" * 128))
                bytes_per_level[level] = wire
            ratios[session_messages] = (
                bytes_per_level[SecurityLevel.HIGH]
                / bytes_per_level[SecurityLevel.LOW])
        return ratios

    ratios = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["ABLATION: total wire bytes HIGH/LOW vs session length",
             "(handshake + records, 128-byte messages)", ""]
    lines += table(["messages/session", "HIGH / LOW wire ratio"],
                   [[str(n), f"{ratio:.2f}"]
                    for n, ratio in ratios.items()])
    emit("ablation_security_amortization", lines)
    assert ratios[1] > ratios[10] > ratios[100]
    assert ratios[100] < 1.5  # amortized, PQC is affordable


def test_tiering_saves_versus_high_everywhere(channels, benchmark):
    """The point of Table II: devices talk at the weakest level their
    requirement allows. A mixed fleet (public telemetry on LOW,
    management on MEDIUM, patient data on HIGH) must cost less than
    forcing HIGH on all traffic."""

    def measure():
        traffic = [
            ("telemetry", SecurityLevel.LOW, 200, 50),
            ("management", SecurityLevel.MEDIUM, 512, 10),
            ("patient-data", SecurityLevel.HIGH, 2048, 5),
        ]
        def run(level_override=None):
            start = time.perf_counter()
            for _, level, size, count in traffic:
                use = level_override or level
                tx, rx = channels[use]
                for _ in range(count):
                    rx.open(tx.seal(b"\x00" * size))
            return time.perf_counter() - start
        tiered = run()
        all_high = run(SecurityLevel.HIGH)
        return tiered, all_high

    tiered, all_high = benchmark.pedantic(measure, rounds=1,
                                          iterations=1)
    lines = ["ABLATION: tiered levels vs HIGH-everywhere",
             "(mixed traffic: 50 LOW + 10 MEDIUM + 5 HIGH messages)",
             "",
             f"tiered:          {tiered * 1e3:.1f} ms",
             f"HIGH everywhere: {all_high * 1e3:.1f} ms",
             f"tiering saves:   {(1 - tiered / all_high):.0%}"]
    emit("ablation_security_tiering", lines)
    assert tiered < all_high
