"""Ablation: federated vs isolated learning of operating-point models.

Paper Sec. IV: "combining learned models from different agents using FL
techniques, allowing MIRTO edge agents to evolve based on each other's
experiences, is currently under consideration." This ablation gives that
consideration numbers: edge agents each see a *disjoint region* of the
workload space; we compare (a) isolated local models, (b) FedAvg, (c)
FedProx, on held-out data spanning the full space, sweeping rounds and
client counts. Expected shape: federation generalizes to unseen regions
where isolation fails; more rounds and more clients help.
"""

import numpy as np
import pytest

from repro.mirto.learning import (
    FederatedClient,
    FederatedTrainer,
    LinearModel,
    make_operating_point_dataset,
)

from _report import emit, table


def build_clients(n_clients: int, seed: int) -> list[FederatedClient]:
    rng = np.random.default_rng(seed)
    clients = []
    span = 1600.0 / n_clients
    for i in range(n_clients):
        lo = 10.0 + i * span
        features, targets = make_operating_point_dataset(
            rng, 60, megaops_range=(lo, lo + span))
        clients.append(FederatedClient(
            name=f"edge-{i}", model=LinearModel(3),
            features=features, targets=targets))
    return clients


def global_test_set(seed: int = 101):
    rng = np.random.default_rng(seed)
    return make_operating_point_dataset(rng, 400,
                                        megaops_range=(10.0, 1610.0))


def isolated_loss(clients, x_test, y_test) -> float:
    """Mean test loss of per-client models trained only locally."""
    losses = []
    for client in clients:
        model = LinearModel(3)
        for _ in range(200):
            model.gradient_step(client.features, client.targets, lr=0.1)
        losses.append(model.loss(x_test, y_test))
    return float(np.mean(losses))


def run_rounds_sweep():
    x_test, y_test = global_test_set()
    baseline = isolated_loss(build_clients(4, seed=1), x_test, y_test)
    curves = {}
    for algorithm in ("fedavg", "fedprox"):
        trainer = FederatedTrainer(build_clients(4, seed=1),
                                   algorithm=algorithm)
        losses = []
        for _ in range(30):
            trainer.round(local_epochs=8, lr=0.1)
            losses.append(trainer.global_model(3).loss(x_test, y_test))
        curves[algorithm] = losses
    return baseline, curves


def test_federated_vs_isolated_rounds(benchmark):
    baseline, curves = benchmark.pedantic(run_rounds_sweep, rounds=1,
                                          iterations=1)
    checkpoints = [1, 5, 10, 20, 30]
    rows = []
    for algorithm, losses in curves.items():
        for rounds in checkpoints:
            rows.append([algorithm, str(rounds),
                         f"{losses[rounds - 1]:.4f}"])
    rows.append(["isolated (no FL)", "-", f"{baseline:.4f}"])
    lines = ["ABLATION: FL rounds vs held-out loss (4 edge agents,",
             "disjoint workload regions, test spans the full space)",
             ""]
    lines += table(["algorithm", "rounds", "test loss"], rows)
    emit("ablation_federated_rounds", lines)
    # Shape: both FL variants beat isolated training; loss improves
    # with rounds.
    for algorithm, losses in curves.items():
        assert losses[-1] < baseline, algorithm
        assert losses[-1] < losses[0], algorithm


def run_clients_sweep():
    x_test, y_test = global_test_set(seed=202)
    results = {}
    for n_clients in (2, 4, 8):
        trainer = FederatedTrainer(build_clients(n_clients, seed=2))
        trainer.train(rounds=20, local_epochs=8, lr=0.1)
        fl_loss = trainer.global_model(3).loss(x_test, y_test)
        iso_loss = isolated_loss(build_clients(n_clients, seed=2),
                                 x_test, y_test)
        results[n_clients] = (fl_loss, iso_loss)
    return results


def test_federated_advantage_grows_with_fragmentation(benchmark):
    """Fixing the total workload space and fragmenting it over more
    agents hurts everyone (each agent sees a narrower slice — the
    classic heterogeneity/client-drift regime), but FL's advantage over
    isolated training *widens*: the more fragmented the experience, the
    more agents gain from evolving 'based on each other's experiences'.
    """
    results = benchmark.pedantic(run_clients_sweep, rounds=1,
                                 iterations=1)
    rows = []
    for n, (fl_loss, iso_loss) in results.items():
        rows.append([str(n), f"{fl_loss:.4f}", f"{iso_loss:.4f}",
                     f"{iso_loss / fl_loss:.1f}x"])
    lines = ["ABLATION: data fragmentation (clients over a fixed",
             "workload space) vs held-out loss, FL vs isolated", ""]
    lines += table(["clients", "FL loss", "isolated loss",
                    "FL advantage"], rows)
    emit("ablation_federated_clients", lines)
    # Shape: FL beats isolated at every fragmentation level, and the
    # advantage grows as fragments shrink.
    advantages = []
    for n, (fl_loss, iso_loss) in results.items():
        assert fl_loss < iso_loss, n
        advantages.append(iso_loss / fl_loss)
    assert advantages[-1] > advantages[0]


def test_federation_transfers_to_node_manager(benchmark):
    """Closing the loop: the federated model actually drives operating
    point selection on a device the training data never came from."""

    def probe():
        from repro.continuum import Simulator, DeviceKind, make_device
        from repro.continuum.workload import Task
        from repro.continuum.infrastructure import Infrastructure
        from repro.mirto.manager import NodeManager
        trainer = FederatedTrainer(build_clients(4, seed=3))
        trainer.train(rounds=20, local_epochs=8, lr=0.1)
        sim = Simulator()
        infrastructure = Infrastructure(ctx=sim)
        device = infrastructure.add_device(DeviceKind.HMPSOC_FPGA,
                                           name="fpga")
        node_manager = NodeManager(infrastructure)
        node_manager.attach_model("fpga", trainer.global_model(3))
        light = Task("light", megaops=50)
        heavy = Task("heavy", megaops=1800)
        loose_budget = 2.0
        tight_budget = 0.3
        return {
            "light/loose": node_manager.select_operating_point(
                device, light, loose_budget),
            "heavy/tight": node_manager.select_operating_point(
                device, heavy, tight_budget),
        }

    choices = benchmark.pedantic(probe, rounds=1, iterations=1)
    lines = ["ABLATION: federated model driving Node Manager choices",
             ""]
    lines += table(["situation", "selected operating point"],
                   [[k, v] for k, v in choices.items()])
    emit("ablation_federated_node_manager", lines)
    # A light task with slack should run cheap; a heavy task under a
    # tight budget should not pick the cheapest point.
    assert choices["light/loose"] == "low-power"
    assert choices["heavy/tight"] != "low-power"
