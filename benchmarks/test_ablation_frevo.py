"""Ablation: FREVO-evolved swarm rules vs hand-written and global search.

Paper Sec. V: "FREVO generates the local rules for the swarm agents to
be used within the MIRTO Cognitive Engine. To explore the effect of
changes to the local rules on system's KPIs, a simulator ... can be
used." This ablation runs that loop — evolve rule weights against
simulated KPIs — and places the evolved rule on the strategy spectrum:
it should beat the hand-written default rule and close most of the gap
to the globally informed greedy strategy, while remaining a purely
local, decentralized decision procedure.
"""

import random

import pytest

from repro.continuum import Simulator, build_reference_infrastructure
from repro.continuum.workload import KernelClass
from repro.dpe import ComponentModel, ScenarioModel
from repro.mirto.placement import (
    PlacementConstraints,
    PlacementRequest,
    estimate_placement_kpis,
    make_strategy,
)
from repro.mirto.swarm_rules import (
    DEFAULT_RULE,
    RuleBasedPlacement,
    evolve_placement_rule,
)

from _report import emit, table


def scenario():
    model = ScenarioModel("frevo-pipe", latency_budget_s=2.0,
                          min_security_level="low")
    model.add_component(ComponentModel("ingest", 300,
                                       input_bytes=200_000))
    model.add_component(ComponentModel(
        "transform", 2500, kernel=KernelClass.DSP, accelerable=True))
    model.add_component(ComponentModel(
        "analyze", 1800, kernel=KernelClass.ANALYTICS))
    model.add_component(ComponentModel("publish", 200))
    model.connect("ingest", "transform", 200_000)
    model.connect("transform", "analyze", 30_000)
    model.connect("analyze", "publish", 10_000)
    return model


def fitness_of_rule(rule, app, constraints):
    infrastructure = build_reference_infrastructure(Simulator())
    placement = RuleBasedPlacement(rule, random.Random(0)).solve(
        PlacementRequest(application=app,
                         infrastructure=infrastructure,
                         constraints=constraints)).placement
    latency, energy = estimate_placement_kpis(app, placement,
                                              infrastructure)
    return latency + 0.05 * energy


def test_evolved_rule_on_the_strategy_spectrum(benchmark):
    def measure():
        model = scenario()
        app = model.to_application()
        constraints = PlacementConstraints(
            min_security_level=model.min_security_level)

        def factory():
            return build_reference_infrastructure(Simulator())

        best_rule, _, evolver = evolve_placement_rule(
            model, factory, seed=3, generations=15)
        scores = {
            "default swarm rule": fitness_of_rule(DEFAULT_RULE, app,
                                                  constraints),
            "evolved swarm rule": fitness_of_rule(best_rule, app,
                                                  constraints),
        }
        for name in ("random", "greedy"):
            infrastructure = build_reference_infrastructure(Simulator())
            placement = make_strategy(name, random.Random(1)).solve(
                PlacementRequest(application=app,
                                 infrastructure=infrastructure,
                                 constraints=constraints)).placement
            latency, energy = estimate_placement_kpis(
                app, placement, infrastructure)
            scores[name] = latency + 0.05 * energy
        return scores, evolver

    scores, evolver = benchmark.pedantic(measure, rounds=1,
                                         iterations=1)
    lines = ["ABLATION: FREVO rule evolution — blended KPI objective",
             "(latency + 0.05*energy; lower is better)", ""]
    lines += table(["strategy", "objective"],
                   [[name, f"{value:.4f}"]
                    for name, value in sorted(scores.items(),
                                              key=lambda kv: kv[1])])
    convergence = [f"{rec.best_fitness:.4f}"
                   for rec in evolver.history[::3]]
    lines += ["", "evolution best-fitness every 3 generations: "
              + " -> ".join(convergence)]
    emit("ablation_frevo", lines)
    # Shape: evolved <= default; evolved beats random; greedy (global
    # knowledge) remains a lower bound the local rule approaches.
    assert scores["evolved swarm rule"] <= scores["default swarm rule"]
    assert scores["evolved swarm rule"] < scores["random"]
    assert scores["evolved swarm rule"] <= scores["greedy"] * 2.0


def test_rule_generalizes_to_unseen_scale(benchmark):
    """Rules are evolved on one workload but must transfer: evaluate
    the evolved weights on a 2x-heavier variant of the pipeline."""

    def measure():
        model = scenario()

        def factory():
            return build_reference_infrastructure(Simulator())

        best_rule, _, _ = evolve_placement_rule(model, factory, seed=4,
                                                generations=12)
        heavy = ScenarioModel("frevo-heavy", latency_budget_s=2.0,
                              min_security_level="low")
        for component in model.components:
            heavy.add_component(ComponentModel(
                component.name, component.megaops * 2,
                input_bytes=component.input_bytes,
                kernel=component.kernel,
                accelerable=component.accelerable))
        for src, dst, nbytes in model.edges:
            heavy.connect(src, dst, nbytes)
        app = heavy.to_application()
        constraints = PlacementConstraints(min_security_level="low")
        return {
            "evolved on light": fitness_of_rule(best_rule, app,
                                                constraints),
            "default": fitness_of_rule(DEFAULT_RULE, app, constraints),
        }

    scores = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["ABLATION: evolved rule transfer to a 2x-heavier workload",
             ""]
    lines += table(["rule", "objective"],
                   [[k, f"{v:.4f}"] for k, v in scores.items()])
    emit("ablation_frevo_transfer", lines)
    assert scores["evolved on light"] <= scores["default"] * 1.2
