"""Shared reporting helper for the benchmark harness.

Each benchmark regenerates one paper artifact (table or figure) from the
running system. Because pytest captures stdout, the regenerated rows are
also persisted under ``benchmarks/results/<name>.txt`` so they survive a
quiet run and feed EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, lines: list[str]) -> str:
    """Print *lines* and persist them under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines) + "\n"
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print()
    print(text)
    return text


def table(header: list[str], rows: list[list[str]],
          widths: list[int] | None = None) -> list[str]:
    """Simple fixed-width table formatting."""
    if widths is None:
        widths = [
            max(len(str(header[col])),
                *(len(str(row[col])) for row in rows)) if rows
            else len(str(header[col]))
            for col in range(len(header))
        ]
    def fmt(cells):
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))
    lines = [fmt(header), fmt(["-" * w for w in widths])]
    lines += [fmt(row) for row in rows]
    return lines
