"""Reproduces paper TABLE II: MYRTUS envisioned security levels.

The paper's table prescribes, per level (High/Medium/Low), the concrete
mechanisms for Encryption, Authentication, Key exchange and Hashing.
This bench *runs* every cell on real payloads with the from-scratch
primitive implementations and regenerates the table with measured
timings and wire sizes appended — the quantitative column the position
paper could not yet provide.

Expected shape: HIGH (PQC) costs more bytes on the wire than MEDIUM/LOW
(lattice KEM ciphertexts and signatures are big); LOW's lightweight
primitives (ASCON) suit constrained devices.
"""

import time

import pytest

from repro.security import (
    Identity,
    SecureChannel,
    SecurityLevel,
    SecuritySuite,
    SUITE_DESCRIPTORS,
)

from _report import emit, table

PAYLOAD = b'{"telemetry": {"util": 0.42, "latency_ms": 12.5}}' * 8


@pytest.fixture(scope="module")
def identities():
    alice = Identity("gateway", seed=7)
    bob = Identity("fpga-node", seed=7)
    # Force key generation up front so measurements are steady-state.
    for level in SecurityLevel:
        SecureChannel.establish(alice, bob, level)
    return alice, bob


def _measure(fn, repeat=3):
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best * 1e3  # ms


def build_rows(identities):
    alice, bob = identities
    rows = []
    for level in (SecurityLevel.HIGH, SecurityLevel.MEDIUM,
                  SecurityLevel.LOW):
        suite_a = SecuritySuite(level, alice)
        suite_b = SecuritySuite(level, bob)
        key = bytes(range(suite_a.session_key_size()))
        sealed, enc_ms = _measure(
            lambda: suite_a.encrypt(key, b"\x07" * 16, PAYLOAD))
        signature, sign_ms = _measure(lambda: suite_a.sign(PAYLOAD))
        verified = suite_b.verify(alice, PAYLOAD, signature)
        (secret_ct), kem_ms = _measure(lambda: suite_a.encapsulate(bob))
        digest, hash_ms = _measure(lambda: suite_a.hash(PAYLOAD))
        descriptor = SUITE_DESCRIPTORS[level]
        assert verified, f"{level}: signature must verify"
        assert suite_b.decapsulate(alice, secret_ct[1]) == secret_ct[0]
        rows.append([
            level.value.upper(),
            descriptor.encryption,
            f"{enc_ms:.2f}ms/+{len(sealed) - len(PAYLOAD)}B",
            descriptor.authentication.split(" (")[0],
            f"{sign_ms:.1f}ms",
            descriptor.key_exchange.split(" (")[0],
            f"{kem_ms:.1f}ms/{len(secret_ct[1])}B",
            descriptor.hashing,
            f"{hash_ms:.2f}ms/{len(digest)}B",
        ])
    return rows


def test_table2_regenerated(identities, benchmark):
    rows = benchmark.pedantic(build_rows, args=(identities,),
                              rounds=1, iterations=1)
    lines = ["TABLE II (reproduced): MYRTUS security levels, measured",
             f"payload: {len(PAYLOAD)} bytes", ""]
    lines += table(
        ["Level", "Encryption", "enc", "Authentication", "sign",
         "Key exchange", "kem/ct", "Hashing", "hash/digest"],
        rows)
    emit("table2_security_levels", lines)
    # Shape assertions: PQC level pays in KEM ciphertext size.
    high_ct = int(rows[0][6].split("/")[1].rstrip("B"))
    medium_ct = int(rows[1][6].split("/")[1].rstrip("B"))
    low_ct = int(rows[2][6].split("/")[1].rstrip("B"))
    assert high_ct > medium_ct
    assert high_ct > low_ct


def test_handshake_costs_scale_with_level(identities, benchmark):
    alice, bob = identities

    def handshakes():
        sizes = {}
        for level in SecurityLevel:
            channel, _ = SecureChannel.establish(alice, bob, level)
            sizes[level.value] = channel.transcript.total_bytes
        return sizes

    sizes = benchmark.pedantic(handshakes, rounds=1, iterations=1)
    lines = ["Handshake bytes per security level (KEM ct + signature):",
             ""]
    lines += table(["level", "handshake bytes"],
                   [[name, str(size)] for name, size in sizes.items()])
    emit("table2_handshake_sizes", lines)
    assert sizes["high"] > sizes["medium"] > 0
    assert sizes["high"] > sizes["low"] > 0


def test_lightweight_level_fastest_symmetric(identities, benchmark):
    """LOW is built for constrained devices: per-byte AEAD cost must be
    competitive (ASCON here is pure Python, so we assert it functions
    and report relative numbers rather than absolute wins)."""
    alice, _ = identities
    suite = SecuritySuite(SecurityLevel.LOW, alice)
    key = bytes(16)

    def seal():
        return suite.encrypt(key, b"\x01" * 16, PAYLOAD)

    sealed = benchmark(seal)
    assert len(sealed) == len(PAYLOAD) + 16  # 16-byte ASCON tag
