"""Ablation: reliability under device failures (Table I, Orchestration).

The paper's orchestration goals include "improved reliability without
sacrificing security, privacy and trust". This ablation injects
exponential fail/repair processes on edge and fog devices and measures
session success and latency with failure-aware placement (the MIRTO
behaviour: failed devices filtered, work routed around them) versus a
failure-blind baseline that keeps a fixed placement.
"""

import random

import pytest

from repro.continuum import Simulator, build_reference_infrastructure
from repro.continuum.faults import FaultInjector
from repro.core.errors import CapacityError
from repro.mirto.placement import (
    PlacementConstraints,
    PlacementRequest,
    execute_placement,
    make_strategy,
)
from repro.usecases import mobility
from repro.mirto.manager import service_to_application

from _report import emit, table

FAULTY_DEVICES = ["fpga-00-0", "fpga-01-0", "mc-00-0", "mc-01-0",
                  "fmdc-00"]


def run_campaign(failure_aware: bool, sessions: int = 12, seed: int = 9):
    infrastructure = build_reference_infrastructure(Simulator())
    injector = FaultInjector(infrastructure, random.Random(seed),
                             mtbf_s=4.0, mttr_s=1.5,
                             devices=FAULTY_DEVICES)
    injector.start()
    app = service_to_application(
        mobility.build_scenario(vehicles=1).to_service_template())
    constraints = PlacementConstraints(source_device="mc-00-0")
    fixed_placement = None
    succeeded = 0
    failed = 0
    makespans = []
    retries = 2 if failure_aware else 0
    for _ in range(sessions):
        for attempt in range(retries + 1):
            try:
                if failure_aware or fixed_placement is None:
                    placement = make_strategy("greedy").solve(
                        PlacementRequest(
                            application=app,
                            infrastructure=infrastructure,
                            constraints=constraints)).placement
                    if fixed_placement is None:
                        fixed_placement = placement
                use = placement if failure_aware else fixed_placement
                report = execute_placement(app, use, infrastructure,
                                           source_device="mc-00-0")
                makespans.append(report.makespan_s)
                succeeded += 1
                break
            except CapacityError:
                # Failure-aware mode re-places and retries — a device
                # died between placement and admission.
                if attempt == retries:
                    failed += 1
        # Let time pass between sessions so fault state evolves.
        sim = infrastructure.sim
        sim.run(until=sim.now + 1.0)
    mean_ms = (sum(makespans) / len(makespans) * 1e3) if makespans \
        else float("nan")
    return {
        "succeeded": succeeded,
        "failed": failed,
        "mean_ms": mean_ms,
        "fault_events": len(injector.tracker.events),
    }


def test_failure_aware_orchestration(benchmark):
    def measure():
        return {
            "failure-aware (MIRTO)": run_campaign(True),
            "failure-blind (fixed)": run_campaign(False),
        }

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = []
    for mode, r in results.items():
        rows.append([mode, str(r["succeeded"]), str(r["failed"]),
                     f"{r['mean_ms']:.0f}",
                     str(r["fault_events"])])
    lines = ["ABLATION: reliability under device failures",
             "(12 sessions, MTBF 4 s / MTTR 1.5 s on 5 devices)", ""]
    lines += table(["placement mode", "ok", "failed", "mean ms",
                    "fault events"], rows)
    emit("ablation_reliability", lines)
    aware = results["failure-aware (MIRTO)"]
    blind = results["failure-blind (fixed)"]
    # Shape: the failure-aware mode completes every session; the blind
    # mode loses sessions whenever its fixed devices are down.
    assert aware["succeeded"] == 12
    assert blind["failed"] >= 1
    assert aware["succeeded"] > blind["succeeded"]


def test_availability_accounting(benchmark):
    """The tracker's availability estimate converges to MTBF/(MTBF+MTTR)."""

    def measure():
        infrastructure = build_reference_infrastructure(Simulator())
        injector = FaultInjector(infrastructure, random.Random(11),
                                 mtbf_s=8.0, mttr_s=2.0,
                                 devices=["fpga-00-0"])
        injector.start()
        horizon = 4000.0
        infrastructure.sim.run(until=horizon)
        return injector.tracker.availability("fpga-00-0", horizon), \
            injector.tracker.failures_of("fpga-00-0")

    availability, failures = benchmark.pedantic(measure, rounds=1,
                                                iterations=1)
    lines = ["ABLATION: availability accounting (MTBF 8 s, MTTR 2 s,",
             "4000 s horizon)", "",
             f"measured availability: {availability:.3f} "
             f"(theory: {8 / 10:.3f})",
             f"failures observed: {failures}"]
    emit("ablation_reliability_availability", lines)
    assert availability == pytest.approx(0.8, abs=0.05)
    assert failures > 100
