"""Ablation: cognitive vs heuristic orchestration across load levels.

The paper's OBJ2 claims MIRTO's AI-powered orchestration yields high
performance and energy efficiency. This ablation sweeps the load (fleet
size for mobility, session length for telerehab) and compares every
placement strategy. Expected shape: informed strategies (greedy, PSO,
ACO) keep makespan roughly flat until the infrastructure saturates,
while uninformed baselines degrade immediately; deadline hit rates
collapse first for random/round-robin as load grows.
"""

import pytest

from repro.mirto import CognitiveEngine, EngineConfig
from repro.usecases import mobility, run_sessions, telerehab

from _report import emit, table

STRATEGIES = ("random", "round-robin", "greedy", "pso", "aco")


def sweep_mobility():
    results = {}
    for vehicles in mobility.fleet_scales():
        engine = CognitiveEngine(EngineConfig(seed=31))
        scenario = mobility.build_scenario(vehicles=vehicles)
        for strategy in STRATEGIES:
            stats = run_sessions(engine, scenario, strategy, sessions=4)
            results[(vehicles, strategy)] = stats
    return results


def test_orchestration_load_sweep_mobility(benchmark):
    results = benchmark.pedantic(sweep_mobility, rounds=1, iterations=1)
    rows = []
    for vehicles in mobility.fleet_scales():
        for strategy in STRATEGIES:
            stats = results[(vehicles, strategy)]
            rows.append([
                str(vehicles), strategy,
                f"{stats.mean_makespan_s * 1e3:.1f}",
                f"{stats.total_energy_j:.2f}",
                f"{stats.deadline_hit_rate:.0%}",
            ])
    lines = ["ABLATION: orchestration strategy x fleet size",
             "(smart mobility, 4 sessions per cell, budget "
             f"{mobility.LATENCY_BUDGET_S * 1e3:.0f} ms)", ""]
    lines += table(["vehicles", "strategy", "mean ms", "energy J",
                    "deadline hit"], rows)
    emit("ablation_orchestration_mobility", lines)
    # Shape: at every load, informed strategies beat random on latency.
    for vehicles in mobility.fleet_scales():
        random_ms = results[(vehicles, "random")].mean_makespan_s
        for strategy in ("greedy", "pso", "aco"):
            assert results[(vehicles, strategy)].mean_makespan_s \
                < random_ms, (vehicles, strategy)
    # Shape: the informed advantage is large (>=1.5x) at high load.
    heavy = max(mobility.fleet_scales())
    assert results[(heavy, "greedy")].mean_makespan_s * 1.5 \
        < results[(heavy, "random")].mean_makespan_s
    # Shape: deadline hit rate degrades with load for every strategy.
    for strategy in STRATEGIES:
        light_hit = results[(1, strategy)].deadline_hit_rate
        heavy_hit = results[(heavy, strategy)].deadline_hit_rate
        assert heavy_hit <= light_hit + 1e-9


def sweep_telerehab():
    results = {}
    for minutes in telerehab.session_lengths():
        engine = CognitiveEngine(EngineConfig(seed=33))
        scenario = telerehab.build_scenario(session_minutes=minutes)
        for strategy in STRATEGIES:
            results[(minutes, strategy)] = run_sessions(
                engine, scenario, strategy, sessions=3)
    return results


def test_orchestration_load_sweep_telerehab(benchmark):
    results = benchmark.pedantic(sweep_telerehab, rounds=1, iterations=1)
    rows = []
    for minutes in telerehab.session_lengths():
        for strategy in STRATEGIES:
            stats = results[(minutes, strategy)]
            rows.append([
                str(minutes), strategy,
                f"{stats.mean_makespan_s * 1e3:.1f}",
                f"{stats.total_energy_j:.2f}",
                f"{stats.deadline_hit_rate:.0%}",
            ])
    lines = ["ABLATION: orchestration strategy x session length",
             "(telerehabilitation, privacy-constrained, 3 sessions)",
             ""]
    lines += table(["minutes", "strategy", "mean ms", "energy J",
                    "deadline hit"], rows)
    emit("ablation_orchestration_telerehab", lines)
    # Shape: greedy never hits deadlines less often than random, and
    # when it is not strictly faster it is because the Node Manager
    # traded slack latency for energy (budget still met, lower joules).
    for minutes in telerehab.session_lengths():
        rnd = results[(minutes, "random")]
        greedy = results[(minutes, "greedy")]
        assert greedy.deadline_hit_rate >= rnd.deadline_hit_rate
        if greedy.mean_makespan_s >= rnd.mean_makespan_s:
            assert greedy.deadline_hit_rate == 1.0
            assert greedy.total_energy_j < rnd.total_energy_j


def test_cognitive_energy_advantage(benchmark):
    """Energy claim in isolation: with the latency budget slack (small
    fleet), cognitive strategies should spend less energy than random
    placement, because they avoid needlessly powerful devices."""

    def measure():
        engine = CognitiveEngine(EngineConfig(seed=35))
        scenario = mobility.build_scenario(vehicles=1)
        return {
            strategy: run_sessions(engine, scenario, strategy,
                                   sessions=5).total_energy_j
            for strategy in STRATEGIES
        }

    energy = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["ABLATION: energy per strategy (1-vehicle fleet,",
             "5 sessions, latency budget slack)", ""]
    lines += table(["strategy", "total energy J"],
                   [[name, f"{value:.2f}"]
                    for name, value in energy.items()])
    emit("ablation_orchestration_energy", lines)
    for cognitive in ("greedy", "pso", "aco"):
        assert energy[cognitive] < energy["random"]
