"""Ablation: the distributed Knowledge Base under failures.

The paper picks a strongly consistent KB (etcd/Raft) as the substrate
for observability and decision-making. This ablation measures what that
choice buys and costs: write availability across replica counts and
failure patterns, convergence after partitions heal, the message
overhead of consensus, and the decision-quality consequence of reading
stale state when consistency is abandoned.
"""

import random

import pytest

from repro.kb import KnowledgeBase
from repro.kb.raft import RaftCluster

from _report import emit, table


def availability_under_failures():
    """Fraction of 30 writes that commit, per replica count x failures."""
    results = {}
    for replicas in (1, 3, 5):
        for failures in (0, 1, 2):
            if failures >= replicas:
                continue
            kb = KnowledgeBase(replicas=replicas, seed=7)
            kb.put("warmup", 0)
            for i in range(failures):
                victims = [n for n in kb.cluster.nodes
                           if n != kb.cluster.leader()]
                kb.cluster.stop(victims[i])
            committed = 0
            for i in range(30):
                try:
                    kb.put(f"key-{i}", i)
                    committed += 1
                except Exception:
                    break
            results[(replicas, failures)] = committed / 30
    return results


def test_kb_availability_matrix(benchmark):
    results = benchmark.pedantic(availability_under_failures, rounds=1,
                                 iterations=1)
    rows = [[str(replicas), str(failures), f"{rate:.0%}"]
            for (replicas, failures), rate in sorted(results.items())]
    lines = ["ABLATION: KB write availability, replicas x crashed",
             "followers (30 writes each)", ""]
    lines += table(["replicas", "crashed", "writes committed"], rows)
    emit("ablation_kb_availability", lines)
    # Majority intact -> fully available.
    assert results[(3, 1)] == 1.0
    assert results[(5, 2)] == 1.0
    assert results[(1, 0)] == 1.0


def test_kb_partition_heal_convergence(benchmark):
    """A partitioned minority accepts nothing; after healing it
    converges to the majority's history — no lost or phantom writes."""

    def probe():
        kb = KnowledgeBase(replicas=5, seed=9)
        kb.put("before", 1)
        leader = kb.cluster.run_until_leader()
        minority = [n for n in kb.cluster.nodes if n != leader][:2]
        for node in minority:
            kb.cluster.isolate(node)
        for i in range(10):
            kb.put(f"during-{i}", i)
        kb.cluster.heal()
        kb.tick(150)
        states = kb.replica_states()
        reference = states[leader]
        return states, reference, minority

    states, reference, minority = benchmark.pedantic(probe, rounds=1,
                                                     iterations=1)
    lines = ["ABLATION: partition heal — replica convergence", "",
             f"majority keys: {len(reference)}"]
    for name, state in states.items():
        tag = " (was partitioned)" if name in minority else ""
        lines.append(f"  {name}: {len(state)} keys, "
                     f"identical: {state == reference}{tag}")
    emit("ablation_kb_partition_heal", lines)
    assert all(state == reference for state in states.values())
    assert len(reference) == 11


def test_kb_consensus_message_cost(benchmark):
    """The price of consistency: messages per committed write grows
    with replica count (every entry is replicated to all)."""

    def measure():
        costs = {}
        for replicas in (1, 3, 5):
            kb = KnowledgeBase(replicas=replicas, seed=11)
            kb.put("warmup", 0)
            before = kb.cluster.messages_sent
            for i in range(20):
                kb.put(f"k{i}", i)
            costs[replicas] = (kb.cluster.messages_sent - before) / 20
        return costs

    costs = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["ABLATION: consensus messages per committed write", ""]
    lines += table(["replicas", "messages/write"],
                   [[str(n), f"{cost:.1f}"]
                    for n, cost in costs.items()])
    emit("ablation_kb_message_cost", lines)
    assert costs[1] < costs[3] < costs[5]


def test_stale_state_degrades_decisions(benchmark):
    """Why MIRTO wants a consistent KB: an orchestrator working from a
    stale utilization snapshot keeps routing work to an already-loaded
    device. We simulate 40 placement decisions over 4 devices whose
    load the decider only observes through its snapshot."""

    def simulate(refresh_every: int) -> float:
        rng = random.Random(3)
        true_load = {f"dev-{i}": 0.0 for i in range(4)}
        snapshot = dict(true_load)
        imbalance_sum = 0.0
        for step in range(40):
            if step % refresh_every == 0:
                snapshot = dict(true_load)  # consistent read
            target = min(snapshot, key=lambda d: snapshot[d])
            true_load[target] += 1.0
            # Work also drains.
            for dev in true_load:
                true_load[dev] = max(0.0, true_load[dev]
                                     - 0.2 * rng.random())
            values = list(true_load.values())
            imbalance_sum += max(values) - min(values)
        return imbalance_sum / 40

    def sweep():
        return {refresh: simulate(refresh)
                for refresh in (1, 5, 20, 40)}

    imbalance = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["ABLATION: decision quality vs KB staleness",
             "(mean load imbalance across 4 devices, 40 decisions)", ""]
    lines += table(["refresh every N decisions", "mean imbalance"],
                   [[str(n), f"{v:.2f}"]
                    for n, v in imbalance.items()])
    emit("ablation_kb_staleness", lines)
    assert imbalance[1] < imbalance[40]
    assert imbalance[1] < imbalance[20]


def test_kb_log_compaction_bounds_memory(benchmark):
    """The etcd role needs bounded logs: with compaction enabled, the
    Raft log stays below the threshold regardless of write volume,
    while an uncompacted log grows linearly — and a crashed replica
    catches up via InstallSnapshot instead of replaying everything."""

    def measure():
        compacted = KnowledgeBase(replicas=3, seed=13,
                                  snapshot_threshold=16)
        unbounded = KnowledgeBase(replicas=3, seed=13)
        for i in range(120):
            compacted.put(f"k{i % 9}", i)
            unbounded.put(f"k{i % 9}", i)
        compacted.tick(80)
        unbounded.tick(80)
        leader_c = compacted.cluster.run_until_leader()
        leader_u = unbounded.cluster.run_until_leader()
        # Crash-and-recover a compacted follower.
        victim = next(n for n in compacted.cluster.nodes
                      if n != leader_c)
        compacted.cluster.stop(victim)
        for i in range(40):
            compacted.put(f"late-{i % 3}", i)
        compacted.cluster.restart(victim)
        compacted.tick(200)
        return {
            "compacted_log": len(
                compacted.cluster.nodes[leader_c].log),
            "unbounded_log": len(
                unbounded.cluster.nodes[leader_u].log),
            "snapshots_taken": compacted.cluster.nodes[leader_c]
            .snapshots_taken,
            "snapshots_installed": compacted.cluster.nodes[victim]
            .snapshots_installed,
            "recovered_state_ok": (
                compacted.replica_states()[victim]
                == compacted.replica_states()[
                    compacted.cluster.run_until_leader()]),
        }

    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["ABLATION: Raft log compaction (threshold 16, 120+40",
             "writes)", "",
             f"compacted leader log entries: {result['compacted_log']}",
             f"unbounded leader log entries: {result['unbounded_log']}",
             f"snapshots taken by leader: {result['snapshots_taken']}",
             f"snapshots installed by recovering follower: "
             f"{result['snapshots_installed']}",
             f"recovered replica state identical: "
             f"{result['recovered_state_ok']}"]
    emit("ablation_kb_compaction", lines)
    assert result["compacted_log"] < result["unbounded_log"] / 4
    assert result["snapshots_taken"] >= 1
    assert result["snapshots_installed"] >= 1
    assert result["recovered_state_ok"]
