"""Reproduces paper FIGURE 1: the three technical pillars.

Fig. 1 shows MYRTUS organized into three pillars (Continuum Computing
Infrastructure, MIRTO Cognitive Engine, Design & Programming
Environment). This bench instantiates all three, runs one full
design-time -> runtime round trip across them, and regenerates the
figure as a per-pillar component inventory with the integration
hand-offs (Pillar 3 -> 2: deployment specification; Pillar 1 <-> 2:
shared KB) demonstrated live.
"""

import pytest

from repro.dpe import DesignFlow
from repro.mirto import CognitiveEngine, EngineConfig
from repro.tosca import CsarArchive
from repro.usecases import mobility

from _report import emit, table

PILLAR_INVENTORY = {
    "Pillar 1: Continuum Computing Infrastructure": [
        ("DES kernel + device models", "repro.continuum"),
        ("network + protocols + slicing", "repro.net"),
        ("mini-Kubernetes + LIQO peering", "repro.kube"),
        ("Raft KB + Resource Registry", "repro.kb"),
        ("monitors (app/telemetry/infra)", "repro.monitoring"),
        ("Table II crypto + trust", "repro.security"),
    ],
    "Pillar 2: MIRTO Cognitive Engine": [
        ("MAPE-K loop", "repro.mirto.mape"),
        ("4-driver MIRTO Manager", "repro.mirto.manager"),
        ("swarm placement (PSO/ACO)", "repro.mirto.swarm"),
        ("FedAvg/FedProx + Q-learning", "repro.mirto.learning"),
        ("agent API + negotiation", "repro.mirto.agent"),
        ("KB/deployment proxies", "repro.mirto.proxies"),
    ],
    "Pillar 3: Design & Programming Environment": [
        ("scenario modeler + KPI estimation", "repro.dpe.modeling"),
        ("attack-defence trees", "repro.dpe.adt"),
        ("mini-MLIR (dfg/base2/cgra)", "repro.dpe.mlir"),
        ("HLS + MDC composition", "repro.dpe.hls"),
        ("DSE + operating points", "repro.dpe.dse"),
        ("TOSCA + CSAR", "repro.tosca"),
    ],
}


def import_all_components():
    """Every inventory entry must import — the pillar actually exists."""
    import importlib
    count = 0
    for entries in PILLAR_INVENTORY.values():
        for _, module_name in entries:
            importlib.import_module(module_name)
            count += 1
    return count


def round_trip():
    """Pillar 3 designs -> Pillar 2 orchestrates -> Pillar 1 executes."""
    scenario = mobility.build_scenario(vehicles=2)
    spec = DesignFlow(seed=5).run(scenario, mobility.build_adt())
    engine = CognitiveEngine(EngineConfig(seed=5))
    # Hand-off Pillar 3 -> 2 is the CSAR deployment specification.
    archive = CsarArchive.from_bytes(spec.csar_bytes)
    from repro.mirto import ApiRequest
    response = engine.agent().handle(ApiRequest(
        "POST", "/deployments", token=engine.operator_token(),
        body={"csar": spec.csar_bytes, "strategy": "greedy"}))
    assert response.status == 201, response.body
    # Hand-off Pillar 1 <-> 2 is the shared KB: the deployment left its
    # status there.
    status = engine.registry.status("deployment/smart-mobility")
    return {
        "csar_artifacts": len(archive.artifacts),
        "operating_points": len(spec.operating_points),
        "countermeasures": len(spec.countermeasures),
        "makespan_ms": response.body["makespan_s"] * 1e3,
        "kb_status": status,
        "devices": len(engine.infrastructure),
    }


def test_fig1_pillar_inventory(benchmark):
    count = benchmark.pedantic(import_all_components, rounds=1,
                               iterations=1)
    rows = []
    for pillar, entries in PILLAR_INVENTORY.items():
        for i, (component, module_name) in enumerate(entries):
            rows.append([pillar if i == 0 else "", component,
                         module_name])
    lines = ["FIGURE 1 (reproduced): technical pillars and their",
             f"components — {count} modules, all importable", ""]
    lines += table(["Pillar", "Component", "Module"], rows)
    emit("fig1_pillars", lines)
    assert count == 18


def test_fig1_pillar_integration_round_trip(benchmark):
    result = benchmark.pedantic(round_trip, rounds=1, iterations=1)
    lines = [
        "FIGURE 1 (reproduced): cross-pillar integration round trip",
        "",
        f"Pillar 3 -> 2 hand-off (deployment specification):",
        f"  CSAR artifacts: {result['csar_artifacts']}",
        f"  operating points: {result['operating_points']}",
        f"  countermeasures: {result['countermeasures']}",
        f"Pillar 2 -> 1 (orchestrated execution):",
        f"  devices: {result['devices']}",
        f"  measured makespan: {result['makespan_ms']:.1f} ms",
        f"Pillar 1 <-> 2 (shared KB observability):",
        f"  deployment status in KB: {result['kb_status']}",
    ]
    emit("fig1_integration", lines)
    assert result["csar_artifacts"] >= 4
    assert result["kb_status"]["strategy"] == "greedy"
