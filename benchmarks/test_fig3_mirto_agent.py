"""Reproduces paper FIGURE 3: the MIRTO Cognitive Engine agent.

Fig. 3 shows the agent's internal architecture: the MIRTO API daemon
with its Authentication Module and TOSCA Validation Processor, the MIRTO
Manager (four drivers), and the proxies to the KB and deployment
mechanism. This bench drives a deployment through every stage of that
pipeline with per-stage timing, verifies each stage rejects what it
should, and measures the orchestration quality the agent delivers
against the non-cognitive baselines (OBJ2's performance/energy claim).
"""

import time

import pytest

from repro.mirto import ApiRequest, CognitiveEngine, EngineConfig
from repro.tosca.parser import dump_service_template, parse_service_template
from repro.tosca.validator import ToscaValidator
from repro.usecases import mobility, run_sessions

from _report import emit, table


@pytest.fixture(scope="module")
def engine():
    return CognitiveEngine(EngineConfig(seed=13))


def stage_timings(engine):
    """Time each Fig. 3 stage of one deployment independently."""
    scenario = mobility.build_scenario(vehicles=2)
    service = scenario.to_service_template()
    tosca_text = dump_service_template(service)
    agent = engine.agent()
    timings = {}

    start = time.perf_counter()
    token = engine.operator_token()
    user = agent.auth.authenticate(token)
    timings["authentication module"] = time.perf_counter() - start

    start = time.perf_counter()
    parsed = parse_service_template(tosca_text)
    ToscaValidator().validate(parsed)
    timings["TOSCA validation processor"] = time.perf_counter() - start

    start = time.perf_counter()
    outcome = engine.manager.deploy(parsed, strategy="pso")
    timings["MIRTO manager (place+configure+run)"] = \
        time.perf_counter() - start

    start = time.perf_counter()
    engine.registry.update_status("probe/fig3", {"ok": True})
    _ = engine.registry.status("probe/fig3")
    timings["KB proxy (status round trip)"] = time.perf_counter() - start
    return timings, outcome, user


def test_fig3_agent_pipeline_stages(engine, benchmark):
    (timings, outcome, user) = benchmark.pedantic(
        stage_timings, args=(engine,), rounds=1, iterations=1)
    rows = [[stage, f"{seconds * 1e3:.2f}"]
            for stage, seconds in timings.items()]
    lines = ["FIGURE 3 (reproduced): MIRTO agent pipeline, per-stage",
             "wall time for one smart-mobility deployment", ""]
    lines += table(["agent stage", "time ms"], rows)
    lines += ["",
              f"authenticated user: {user.name} (roles {user.roles})",
              f"deployment outcome: makespan "
              f"{outcome.report.makespan_s * 1e3:.1f} ms, "
              f"security level {outcome.security_level}"]
    emit("fig3_agent_stages", lines)
    assert outcome.report.makespan_s > 0


def test_fig3_each_stage_rejects_bad_input(engine, benchmark):
    """Every box in the figure is a real gate, not pass-through."""

    def probe():
        agent = engine.agent()
        results = {}
        # Authentication Module gate.
        results["bad token"] = agent.handle(ApiRequest(
            "POST", "/deployments", token=b"forged",
            body={"tosca": ""})).status
        # TOSCA Validation Processor gate.
        invalid = """
tosca_definitions_version: myrtus_tosca_1_0
topology_template:
  node_templates:
    broken: {type: myrtus.nodes.Container, properties: {image: x}}
"""
        results["invalid tosca"] = agent.handle(ApiRequest(
            "POST", "/deployments", token=engine.operator_token(),
            body={"tosca": invalid})).status
        # Authorization gate (auditor cannot deploy).
        agent.auth.register_user("fig3-auditor", ["auditor"])
        results["no permission"] = agent.handle(ApiRequest(
            "POST", "/deployments",
            token=agent.auth.issue_token("fig3-auditor"),
            body={"tosca": invalid})).status
        return results

    results = benchmark.pedantic(probe, rounds=1, iterations=1)
    assert results == {"bad token": 401, "invalid tosca": 422,
                       "no permission": 403}


def test_fig3_cognitive_orchestration_beats_baselines(engine, benchmark):
    """OBJ2: the cognitive engine improves performance and energy over
    naive orchestration. Expected shape: cognitive (pso/aco) and
    informed (greedy) strategies dominate random/round-robin on both
    makespan and energy; random is the worst."""
    scenario = mobility.build_scenario(vehicles=2)

    def compare():
        stats = {}
        for strategy in ("random", "round-robin", "greedy", "pso",
                         "aco", "swarm-rule"):
            stats[strategy] = run_sessions(engine, scenario, strategy,
                                           sessions=5)
        return stats

    stats = benchmark.pedantic(compare, rounds=1, iterations=1)
    rows = [[name,
             f"{s.mean_makespan_s * 1e3:.1f}",
             f"{s.p95_makespan_s * 1e3:.1f}",
             f"{s.total_energy_j:.2f}",
             f"{s.deadline_hit_rate:.0%}"]
            for name, s in stats.items()]
    lines = ["FIGURE 3 (reproduced): orchestration quality, MIRTO",
             "strategies vs baselines (smart mobility, 5 sessions)", ""]
    lines += table(["strategy", "mean ms", "p95 ms", "energy J",
                    "deadline hit"], rows)
    emit("fig3_strategy_comparison", lines)
    # Shape assertions (factors, not absolutes).
    assert stats["greedy"].mean_makespan_s \
        < stats["random"].mean_makespan_s / 1.5
    for cognitive in ("pso", "aco"):
        assert stats[cognitive].mean_makespan_s \
            < stats["random"].mean_makespan_s
        assert stats[cognitive].total_energy_j \
            < stats["random"].total_energy_j
    assert stats["random"].deadline_hit_rate \
        <= max(stats["greedy"].deadline_hit_rate,
               stats["aco"].deadline_hit_rate)


def test_fig3_agent_negotiation_mesh(engine, benchmark):
    """Agents at all layers are peered and expose the same API."""

    def probe():
        statuses = {}
        for layer in ("edge", "fog", "cloud"):
            response = engine.agents[layer].handle(ApiRequest(
                "GET", "/status",
                token=engine.operator_token(layer)))
            assert response.status == 200
            statuses[layer] = response.body
        return statuses

    statuses = benchmark.pedantic(probe, rounds=1, iterations=1)
    for layer, status in statuses.items():
        assert len(status["peers"]) == 2, layer
