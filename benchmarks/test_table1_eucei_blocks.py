"""Reproduces paper TABLE I: EU-CEI building blocks vs MYRTUS implementation.

The paper's table maps the eight EU-CEI building blocks to envisioned
MYRTUS technologies. This bench *exercises each building block* in the
running reproduction and regenerates the table with executable evidence
per row — each cell is backed by a concrete measurement from the code
path that implements it.
"""

import pytest

from repro.continuum.workload import KernelClass
from repro.dpe import ComponentModel, ScenarioModel
from repro.mirto import CognitiveEngine, EngineConfig
from repro.security import (
    Identity,
    InteractionOutcome,
    SecureChannel,
    SecurityLevel,
    TrustEngine,
)

from _report import emit, table


@pytest.fixture(scope="module")
def engine():
    return CognitiveEngine(EngineConfig(seed=21))


def demo_scenario():
    scenario = ScenarioModel("bb-probe", latency_budget_s=1.0,
                             min_security_level="medium")
    scenario.add_component(ComponentModel(
        "sense", 100, input_bytes=100_000))
    scenario.add_component(ComponentModel(
        "process", 1500, kernel=KernelClass.DSP, accelerable=True))
    scenario.add_component(ComponentModel("store", 200))
    scenario.connect("sense", "process", 100_000)
    scenario.connect("process", "store", 10_000)
    return scenario


def exercise_all_blocks(engine):
    """Run one probe per building block; return evidence strings."""
    evidence = {}

    # 1+2. Security and Privacy / Trust and Reputation.
    a, b = Identity("probe-a", 1), Identity("probe-b", 1)
    channel, peer = SecureChannel.establish(a, b, SecurityLevel.MEDIUM)
    assert peer.open(channel.seal(b"probe")) == b"probe"
    trust = TrustEngine("probe")
    for _ in range(5):
        trust.observe("node", InteractionOutcome(0, True, 1.0))
    evidence["Security and Privacy"] = (
        f"authenticated AEAD channel established (handshake "
        f"{channel.transcript.total_bytes} B); token auth + RBAC active")
    evidence["Trust and Reputation"] = (
        f"EWMA trust after 5 good interactions: "
        f"{trust.trust('node'):.2f} (prior 0.50)")

    # 3. Data management: the replicated KB holds registry + status.
    engine.kb.put("probe/data", {"value": 42})
    revision = engine.kb.revision
    evidence["Data management"] = (
        f"Raft-replicated KV store at revision {revision}; "
        f"{len(engine.registry.snapshot())} components registered")

    # 4+5. Resource management and Orchestration.
    outcome = engine.manager.deploy(demo_scenario().to_service_template(),
                                    strategy="pso")
    evidence["Resource management"] = (
        f"kube-style scheduling + MIRTO high-level placement over "
        f"{len(engine.infrastructure)} devices")
    evidence["Orchestration"] = (
        f"cognitive placement: makespan "
        f"{outcome.report.makespan_s * 1e3:.0f} ms, energy "
        f"{outcome.report.energy_j:.2f} J, deadline met: "
        f"{outcome.deadline_met}")

    # 6. Network: identical interfaces/protocols + slicing.
    net_slice = engine.manager.network.reserve_slice(
        "probe-slice", "probe", "fpga-00-0", "fmdc-00", 0.25)
    bw = engine.manager.network.slices.slice_bandwidth("probe-slice")
    evidence["Network"] = (
        f"HTTP/MQTT/CoAP adapters; slice of 25% reserved end-to-end "
        f"({bw / 1e6:.0f} Mbps guaranteed)")

    # 7. Monitoring and Observability: the MAPE sense stage.
    record = engine.mape.iterate()
    evidence["Monitoring and Observability"] = (
        f"app/telemetry/infrastructure monitors; sensed "
        f"{record.sensed_components} components into the shared KB, "
        f"{len(record.triggers)} triggers raised")

    # 8. AI: swarm + RL + FL strategies live in the manager.
    layer = engine.manager.network.advise_layer(explore=False)
    evidence["Artificial Intelligence (AI)"] = (
        f"PSO/ACO placement, Q-learning network advice "
        f"(current: prefer {layer.value}), FedAvg/FedProx federation")
    return evidence


PAPER_CELLS = {
    "Security and Privacy": "authn/authz, data integrity, secure comms",
    "Trust and Reputation": "trust KPIs, runtime reputation schemes",
    "Data management": "layer-dependent storage and processing",
    "Resource management": "Kubernetes low-level + MIRTO high-level",
    "Orchestration": "latency/throughput/reliability + energy goals",
    "Network": "identical interfaces, protocols, slicing",
    "Monitoring and Observability": "app/telemetry/infra monitors + KB",
    "Artificial Intelligence (AI)": "intelligence strategies in MIRTO",
}


def test_table1_regenerated(engine, benchmark):
    evidence = benchmark.pedantic(exercise_all_blocks, args=(engine,),
                                  rounds=1, iterations=1)
    assert set(evidence) == set(PAPER_CELLS)
    rows = [[block, PAPER_CELLS[block], evidence[block]]
            for block in PAPER_CELLS]
    lines = ["TABLE I (reproduced): EU-CEI building blocks, each",
             "exercised end-to-end in the simulated continuum", ""]
    lines += table(["EU-CEI building block", "Paper (envisioned)",
                    "Measured evidence"], rows)
    emit("table1_eucei_blocks", lines)


def test_every_block_is_load_bearing(engine, benchmark):
    """Removing a block breaks the system: spot-check two of them."""

    def probe():
        from repro.core.errors import SecurityError
        from repro.mirto import ApiRequest
        agent = engine.agent()
        # Without Security and Privacy: a bad token is rejected.
        response = agent.handle(ApiRequest("GET", "/status",
                                           token=b"forged"))
        assert response.status == 401
        # Without the KB: component liveness would be unknowable.
        assert engine.registry.is_alive("fpga-00-0")
        return True

    assert benchmark.pedantic(probe, rounds=1, iterations=1)
