"""The measured workloads: deterministic batches over the hot paths.

Every scenario seeds its own RNGs and uses fixed op counts, so two runs
on the same commit execute byte-for-byte the same work. Scenario names
are stable identifiers — the committed baseline and CI regression gate
key on them.
"""

from __future__ import annotations

import random

from repro.core.events import EventBus
from repro.continuum.simulator import Simulator
from repro.continuum.workload import Application, Task
from repro.runtime import RuntimeContext
from repro.runtime.trace import TraceRecorder

from benchmarks.perf.harness import scenario

# -- event bus dispatch -----------------------------------------------------

# Published topics cycle over a bounded set: real traffic concentrates on
# a small topic vocabulary (fault/mape/deploy/metric channels), which is
# what makes dispatch caching representative rather than flattering.
_TOPIC_CYCLE = 32


def _count_handler(counter):
    def handler(topic, payload):
        counter[0] += 1
    return handler


def _bus_scenario(n_subs: int, kind: str, n_ops: int):
    bus = EventBus()
    counter = [0]
    for i in range(n_subs):
        if kind == "exact":
            pattern = f"bench.exact.t{i % _TOPIC_CYCLE:04d}"
        elif kind == "star":
            pattern = f"bench.star.s{i % _TOPIC_CYCLE:04d}.*"
        else:  # mid-pattern ** glob
            pattern = f"bench.glob.**.g{i % 16}"
        bus.subscribe(pattern, _count_handler(counter))
    if kind == "exact":
        topics = [f"bench.exact.t{j % _TOPIC_CYCLE:04d}"
                  for j in range(_TOPIC_CYCLE)]
    elif kind == "star":
        topics = [f"bench.star.s{j % _TOPIC_CYCLE:04d}.x"
                  for j in range(_TOPIC_CYCLE)]
    else:
        topics = [f"bench.glob.a.b.g{j % 16}" for j in range(_TOPIC_CYCLE)]

    def run():
        publish = bus.publish
        for j in range(n_ops):
            publish(topics[j % _TOPIC_CYCLE], j)
    return n_ops, run


def _register_bus(kind: str, n_subs: int, full_ops: int):
    name = f"bus.publish.{kind}.{n_subs}"

    @scenario(name)
    def make(quick: bool, _kind=kind, _n=n_subs, _ops=full_ops):
        return _bus_scenario(_n, _kind, _ops // 10 if quick else _ops)


for _kind in ("exact", "star", "midglob"):
    _register_bus(_kind, 10, 20_000)
    _register_bus(_kind, 100, 5_000)
    _register_bus(_kind, 1000, 500)


# -- DES kernel -------------------------------------------------------------

@scenario("sim.timeout_storm")
def _timeout_storm(quick: bool):
    n_ops = 5_000 if quick else 50_000
    sim = Simulator()
    rng = random.Random(42)
    delays = [rng.random() * 100.0 for _ in range(n_ops)]

    def run():
        timeout = sim.timeout
        for delay in delays:
            timeout(delay)
        sim.run()
    return n_ops, run


@scenario("sim.process_churn")
def _process_churn(quick: bool):
    n_ops = 2_000 if quick else 20_000
    sim = Simulator()

    def worker(s):
        yield s.timeout(0)
        yield s.timeout(0)

    def run():
        process = sim.process
        for _ in range(n_ops):
            process(worker(sim))
        sim.run()
    return n_ops, run


# -- trace recording --------------------------------------------------------

@scenario("trace.record.flat")
def _trace_record(quick: bool):
    n_ops = 10_000 if quick else 100_000
    recorder = TraceRecorder(capacity=1 << 16)

    def run():
        record = recorder.record
        for i in range(n_ops):
            record(float(i), "bench.metric.sample",
                   {"device": "mc-00-0", "value": 0.5, "seq": i,
                    "ok": True})
    return n_ops, run


@scenario("trace.export_jsonl")
def _trace_export(quick: bool):
    n_records = 2_000 if quick else 20_000
    recorder = TraceRecorder(capacity=1 << 16)
    for i in range(n_records):
        recorder.record(float(i), "bench.metric.sample",
                        {"device": "fpga-01-0", "value": i * 0.25,
                         "nested": {"a": 1, "b": [1, 2, 3]}})

    def run():
        recorder.to_jsonl()
    return n_records, run


# -- observability span overhead --------------------------------------------

def _span_publish_scenario(enabled: bool, n_ops: int):
    """Traced-bus publish with the causal tracer on vs off.

    The pair shares one construction path so the only difference is the
    span machinery: ``enabled`` publishes inside an active span (every
    record carries an envelope), ``disabled`` publishes with the tracer
    off. The --check gate holds enabled/disabled at <= 1.3x.
    """
    ctx = RuntimeContext(seed=11)
    topics = [f"bench.obs.t{j % _TOPIC_CYCLE:04d}"
              for j in range(_TOPIC_CYCLE)]
    if not enabled:
        ctx.tracer.disable()

    def run():
        publish = ctx.bus.publish
        if enabled:
            with ctx.tracer.start_span("bench.obs.batch", layer="bench"):
                for j in range(n_ops):
                    publish(topics[j % _TOPIC_CYCLE], j)
        else:
            for j in range(n_ops):
                publish(topics[j % _TOPIC_CYCLE], j)
    return n_ops, run


@scenario("obs.span.publish.enabled")
def _span_publish_enabled(quick: bool):
    return _span_publish_scenario(True, 2_000 if quick else 20_000)


@scenario("obs.span.publish.disabled")
def _span_publish_disabled(quick: bool):
    return _span_publish_scenario(False, 2_000 if quick else 20_000)


# -- MAPE loop --------------------------------------------------------------

@scenario("mape.tick")
def _mape_tick(quick: bool):
    from repro.mirto import CognitiveEngine, EngineConfig

    n_ops = 3 if quick else 15
    engine = CognitiveEngine(EngineConfig(seed=1))

    def run():
        engine.mape_iterate(n_ops)
    return n_ops, run


@scenario("chaos.campaign.tick")
def _chaos_campaign_tick(quick: bool):
    """One full chaos campaign driven through the DES per op.

    Measures the campaign runner's mutation dispatch plus the fault /
    link / breaker machinery it drives — the chaos-path equivalent of
    ``mape.tick``.
    """
    from repro.chaos import ChaosCampaign, ChaosController, DeviceFlap, \
        LinkDegradation, ZoneOutage
    from repro.continuum import build_reference_infrastructure

    n_ops = 2 if quick else 10

    def run():
        for i in range(n_ops):
            ctx = RuntimeContext(seed=100 + i)
            infra = build_reference_infrastructure(ctx)
            controller = ChaosController(infra)
            campaign = ChaosCampaign(f"bench-{i}", [
                ZoneOutage(zone="mc-00", at_s=1.0, duration_s=2.0),
                LinkDegradation(a="gw-00-0", b="fmdc-00", at_s=2.0,
                                duration_s=3.0),
                DeviceFlap(device="fpga-01-0", at_s=1.5, duration_s=4.0,
                           cycles=4),
            ])
            controller.run_campaign(campaign)
            ctx.run(until=8.0)
    return n_ops, run


# -- swarm placement --------------------------------------------------------

def _bench_application() -> Application:
    app = Application("bench-dag")
    for i in range(8):
        app.add_task(Task(name=f"t{i}", megaops=200.0 + 150.0 * i,
                          input_bytes=100_000, output_bytes=50_000,
                          memory_bytes=16 * 2**20))
    app.connect("t0", "t1", 80_000)
    app.connect("t0", "t2", 60_000)
    app.connect("t0", "t3", 40_000)
    app.connect("t1", "t4", 70_000)
    app.connect("t2", "t4", 50_000)
    app.connect("t3", "t5", 30_000)
    app.connect("t4", "t6", 90_000)
    app.connect("t5", "t6", 20_000)
    app.connect("t6", "t7", 110_000)
    return app


def _placement_scenario(strategy: str, n_ops: int):
    from repro.continuum import build_reference_infrastructure
    from repro.mirto.placement import (
        AcoPlacement,
        PlacementConstraints,
        PlacementRequest,
        PsoPlacement,
    )

    ctx = RuntimeContext(seed=9)
    infra = build_reference_infrastructure(ctx)
    app = _bench_application()
    constraints = PlacementConstraints(source_device="mc-00-0")
    rng = random.Random(7)
    cls = {"pso": PsoPlacement, "aco": AcoPlacement}[strategy]
    placer = cls(rng, iterations=12)

    def run():
        for _ in range(n_ops):
            placer.solve(PlacementRequest(
                application=app, infrastructure=infra,
                constraints=constraints))
    return n_ops, run


@scenario("placement.pso.place")
def _pso(quick: bool):
    return _placement_scenario("pso", 2 if quick else 6)


@scenario("placement.aco.place")
def _aco(quick: bool):
    return _placement_scenario("aco", 2 if quick else 6)


@scenario("placement.kpi_estimate")
def _kpi_estimate(quick: bool):
    from repro.continuum import build_reference_infrastructure
    from repro.mirto.placement import (
        GreedyPlacement,
        PlacementConstraints,
        estimate_placement_kpis,
    )

    n_ops = 300 if quick else 2_000
    ctx = RuntimeContext(seed=9)
    infra = build_reference_infrastructure(ctx)
    app = _bench_application()
    constraints = PlacementConstraints(source_device="mc-00-0")
    from repro.mirto.placement import PlacementRequest
    placement = GreedyPlacement().solve(PlacementRequest(
        application=app, infrastructure=infra,
        constraints=constraints)).placement

    def run():
        for _ in range(n_ops):
            estimate_placement_kpis(app, placement, infra,
                                    source_device="mc-00-0")
    return n_ops, run


@scenario("placement.exact.small")
def _exact_small(quick: bool):
    """Branch-and-bound proving optimality on a 5-task instance.

    One op = one full exact solve (tree exhausted, optimal proven);
    ns/op tracks bounding + incremental-schedule cost.
    """
    from repro.continuum import build_reference_infrastructure
    from repro.mirto.exact import ExactPlacement
    from repro.mirto.placement import (
        PlacementConstraints,
        PlacementRequest,
    )

    n_ops = 2 if quick else 6
    ctx = RuntimeContext(seed=9)
    infra = build_reference_infrastructure(ctx)
    app = Application("bench-exact")
    for i in range(5):
        app.add_task(Task(name=f"t{i}", megaops=200.0 + 150.0 * i,
                          input_bytes=100_000, output_bytes=50_000,
                          memory_bytes=16 * 2**20))
    app.connect("t0", "t1", 80_000)
    app.connect("t0", "t2", 60_000)
    app.connect("t1", "t3", 70_000)
    app.connect("t2", "t3", 50_000)
    app.connect("t3", "t4", 90_000)
    constraints = PlacementConstraints(source_device="mc-00-0")
    placer = ExactPlacement()

    def run():
        for _ in range(n_ops):
            result = placer.solve(PlacementRequest(
                application=app, infrastructure=infra,
                constraints=constraints))
            assert result.optimal
    return n_ops, run


@scenario("placement.portfolio.deadline")
def _portfolio_deadline(quick: bool):
    """Deadline-raced portfolio on the 8-task DAG under a 50ms budget.

    One op = one raced solve across all four lanes; ns/op tracks the
    cooperative-stepping overhead on top of the individual backends.
    """
    from repro.continuum import build_reference_infrastructure
    from repro.mirto.placement import (
        PlacementConstraints,
        PlacementRequest,
        SolveBudget,
    )
    from repro.mirto.portfolio import PortfolioPlacement

    n_ops = 1 if quick else 3
    ctx = RuntimeContext(seed=9)
    infra = build_reference_infrastructure(ctx)
    app = _bench_application()
    constraints = PlacementConstraints(source_device="mc-00-0")
    placer = PortfolioPlacement(seed=7, iterations=8)

    def run():
        for _ in range(n_ops):
            placer.solve(PlacementRequest(
                application=app, infrastructure=infra,
                constraints=constraints,
                budget=SolveBudget(deadline_s=0.050)))
    return n_ops, run


# -- static analysis --------------------------------------------------------


@scenario("analysis.flow.full")
def _analysis_flow_full(quick: bool):
    """Whole-program topic-flow + DES-contract analysis of src/repro.

    One op = one analyzed file (parse, symbol table, call graph and
    every flow rule), so ns/op tracks per-file analyzer cost as the
    codebase grows. Quick mode restricts the program to two packages.
    """
    from pathlib import Path

    from repro.analysis.config import AnalysisConfig
    from repro.analysis.flow import run_flow

    root = Path(__file__).resolve().parents[2]
    paths = ["src/repro/chaos", "src/repro/continuum"] if quick \
        else ["src/repro"]
    config = AnalysisConfig(root=root, flow_paths=paths)
    n_files = sum(1 for p in paths
                  for _ in (root / p).rglob("*.py"))

    def run():
        run_flow(config)  # fresh ParseCache per batch: cold analysis
    return n_files, run


# -- zone-sharded simulation ------------------------------------------------

@scenario("sim.sharded.10k")
def _sharded_scale(quick: bool):
    """The continuum-scale scenario end to end: vectorized fleets on
    zone shards behind epoch barriers, zone-0 aggregation, one outage.
    ``n_ops`` counts device-steps, the unit the vectorization amortizes.
    """
    from repro.continuum.scale import ScaleConfig, run_scale_scenario

    devices = 1_000 if quick else 10_000
    horizon_s = 100.0 if quick else 500.0
    config = ScaleConfig(devices=devices, zones=8, shards=8,
                         horizon_s=horizon_s, barrier_record_every=100)
    n_ops = devices * int(horizon_s / config.telemetry_period_s)

    def run():
        run_scale_scenario(config)
    return n_ops, run


@scenario("sim.sharded.parallel.10k")
def _sharded_scale_parallel(quick: bool):
    """The same continuum-scale scenario on the multiprocess backend:
    two worker processes, cross-worker relay routed through the
    coordinator, trace batches streamed back per epoch. Wall-clock
    gains require >= 2 physical cores; the digest contract holds
    everywhere. ``n_ops`` counts device-steps, like ``sim.sharded.10k``.
    """
    from repro.continuum.scale import ScaleConfig, run_scale_scenario

    devices = 5_000 if quick else 10_000
    horizon_s = 200.0 if quick else 500.0
    # Quick mode widens the lookahead so barrier IPC and worker spawn
    # amortize the way the full run does — otherwise the CI-sized run
    # measures pipe round-trips, not the backend.
    latency = 5.0 if quick else 0.5
    config = ScaleConfig(devices=devices, zones=8, shards=8,
                         horizon_s=horizon_s, link_latency_s=latency,
                         barrier_record_every=100)
    n_ops = devices * int(horizon_s / config.telemetry_period_s)

    def run():
        run_scale_scenario(config, workers=2)
    return n_ops, run


@scenario("fleet.step.100k")
def _fleet_step_100k(quick: bool):
    """Vectorized fleet stepping at the 100k-preset zone size: one
    DeviceFleet holding a full zone's population, stepped with the
    batched draw pair. ``n_ops`` counts device-steps — per-fleet memory
    stays flat (six arrays), whatever the population."""
    from repro.continuum.fleet import DeviceFleet
    from repro.runtime.context import RuntimeContext

    size = 10_000 if quick else 100_000
    steps = 5 if quick else 10
    fleet = DeviceFleet("bench-100k", size, ctx=RuntimeContext(seed=3),
                        fail_rate_per_s=2e-4, repair_rate_per_s=5e-2)

    def run():
        for _ in range(steps):
            fleet.step(10.0)
    return size * steps, run


@scenario("bus.publish.crossshard")
def _crossshard_relay(quick: bool):
    """Cross-shard relay throughput: two zones on two shards, every
    publish tapped, buffered at the epoch barrier and re-injected into
    the destination shard at its arrival time. Payloads mirror the
    continuum fleet's telemetry shape — the message that actually
    crosses zones in the scale scenarios."""
    from repro.runtime.shard import ShardedContext

    n_ops = 2_000 if quick else 20_000

    def run():
        sharded = ShardedContext(seed=0, zones=("a", "b"), n_shards=2,
                                 link_latency_s=0.5,
                                 trace_capacity=4096)
        ctx_a, ctx_b = sharded.zone("a"), sharded.zone("b")
        counter = [0]

        def on_msg(topic, payload):
            counter[0] += 1

        ctx_b.subscribe("bench.relay.*", on_msg)

        def sender():
            timeout = ctx_a.sim.timeout
            publish = ctx_a.publish
            for i in range(n_ops):
                yield timeout(0.01)
                publish(f"bench.relay.m{i % _TOPIC_CYCLE}",
                        {"zone": "a", "time_s": i * 0.01, "up": 990,
                         "utilization": 0.42, "energy_j": 1.5e3,
                         "failures": i, "repairs": 0})

        ctx_a.sim.process(sender())
        sharded.run(until=n_ops * 0.01 + 2.0)
    return n_ops, run


@scenario("obs.span.crossshard")
def _crossshard_span_relay(quick: bool):
    """Cross-shard relay with span propagation: same two-zone workload
    as ``bus.publish.crossshard``, but the sender publishes inside an
    active span (the ``obs.span.publish.enabled`` idiom) — each tapped
    message ships its ``(trace_id, span_id)`` and each barrier delivery
    resumes it in the destination zone under a ``shard.relay.deliver``
    child span. The --check gate holds the pair at <= 1.3x: span
    propagation must stay a thin layer on the relay itself."""
    from repro.runtime.shard import ShardedContext

    n_ops = 2_000 if quick else 20_000

    def run():
        sharded = ShardedContext(seed=0, zones=("a", "b"), n_shards=2,
                                 link_latency_s=0.5,
                                 trace_capacity=4096)
        ctx_a, ctx_b = sharded.zone("a"), sharded.zone("b")
        counter = [0]

        def on_msg(topic, payload):
            counter[0] += 1

        ctx_b.subscribe("bench.relay.*", on_msg)

        def sender():
            timeout = ctx_a.sim.timeout
            publish = ctx_a.publish
            with ctx_a.tracer.start_span("bench.relay.batch",
                                         layer="bench"):
                for i in range(n_ops):
                    yield timeout(0.01)
                    publish(f"bench.relay.m{i % _TOPIC_CYCLE}",
                            {"zone": "a", "time_s": i * 0.01, "up": 990,
                             "utilization": 0.42, "energy_j": 1.5e3,
                             "failures": i, "repairs": 0})

        ctx_a.sim.process(sender())
        sharded.run(until=n_ops * 0.01 + 2.0)
    return n_ops, run


@scenario("shard.metrics.merge")
def _shard_metrics_merge(quick: bool):
    """Deterministic metrics aggregation: fold realistic per-zone
    payloads (labelled counters, gauges, histograms) into a fresh
    global registry — the exact coordinator-side operation behind every
    ``aggregate_metrics()`` call on either sharded backend."""
    from repro.obs.metrics import MetricsRegistry

    n_ops = 200 if quick else 2_000
    source = MetricsRegistry()
    for i in range(8):
        counter = source.counter(f"bench.fleet.c{i}", label_key="zone")
        counter.value = 100 + i
        counter.labels.update(
            {f"zone-{z:02d}": 10 + z for z in range(8)})
        source.gauge(f"bench.fleet.g{i}").set(float(i))
        histogram = source.histogram(f"bench.fleet.h{i}")
        for value in (0.001, 0.1, 5.0):
            histogram.observe(value)
    payload = source.to_payload()

    def run():
        for _ in range(n_ops):
            registry = MetricsRegistry()
            for _zone in range(8):
                registry.merge_payload(payload)
            registry.to_payload()
    return n_ops, run
