"""Timing machinery: deterministic workloads, median-of-k measurement.

A scenario is a named factory: ``make(quick)`` builds fresh state and
returns ``(n_ops, run)`` where ``run()`` executes the whole batch once.
Each repeat rebuilds the state so no repeat warms the next one's caches
beyond what a real workload would (caches *within* a batch are part of
the measured behavior — repeated topics and revisited swarm candidates
are exactly what production traffic looks like).
"""

from __future__ import annotations

import gc
import json
import statistics
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

SCHEMA_VERSION = 1

#: Registered scenarios, in definition order: name -> factory.
_SCENARIOS: dict[str, Callable[[bool], tuple[int, Callable[[], None]]]] = {}


def scenario(name: str):
    """Decorator registering a scenario factory under *name*."""
    def register(factory):
        if name in _SCENARIOS:
            raise ValueError(f"duplicate scenario {name!r}")
        _SCENARIOS[name] = factory
        return factory
    return register


@dataclass
class BenchResult:
    """Median-of-k measurement for one scenario."""

    name: str
    ns_per_op: float
    ops_per_s: float
    n_ops: int
    repeats: int

    def to_dict(self) -> dict:
        return {
            "ns_per_op": round(self.ns_per_op, 1),
            "ops_per_s": round(self.ops_per_s, 1),
            "n_ops": self.n_ops,
            "repeats": self.repeats,
        }


def run_scenario(name: str, quick: bool = False,
                 repeats: int | None = None) -> BenchResult:
    """Measure one scenario: median wall time over *repeats* fresh runs."""
    factory = _SCENARIOS[name]
    # Quick mode trades op count, not repeats, for time: batches are
    # ~10x smaller so the per-run noise is larger, and the same-run
    # ratio gates (span overhead) need a stable median.
    repeats = repeats if repeats is not None else 5
    timings_ns = []
    for _ in range(repeats):
        n_ops, run = factory(quick)
        # Collector isolation, the ``timeit`` convention: collect the
        # previous repeat's garbage outside the timed region and keep
        # the collector off inside it, so a gen-2 pass landing mid-run
        # doesn't charge one scenario for another's allocations.
        gc.collect()
        was_enabled = gc.isenabled()
        gc.disable()
        try:
            start = time.perf_counter_ns()
            run()
            timings_ns.append(time.perf_counter_ns() - start)
        finally:
            if was_enabled:
                gc.enable()
    median_ns = statistics.median(timings_ns)
    ns_per_op = median_ns / max(1, n_ops)
    return BenchResult(
        name=name,
        ns_per_op=ns_per_op,
        ops_per_s=1e9 / ns_per_op if ns_per_op > 0 else float("inf"),
        n_ops=n_ops,
        repeats=repeats,
    )


def measure_pair_ratio(name_a: str, name_b: str, quick: bool = False,
                       repeats: int | None = None,
                       target: float | None = None,
                       max_repeats: int = 21
                       ) -> tuple[float, float, float]:
    """Paired A/B measurement: ``min(a_i) / min(b_i)`` over interleaved
    rounds.

    The same-run ratio gates compare two scenarios; measuring each in
    its own window lets machine-wide interference (another tenant, a
    frequency step) land on one side only and fake a regression. Two
    defenses compose here: rounds interleave A and B so both sides
    sample the same time period, and each side's estimate is the
    minimum across rounds — contention only ever *adds* time, so the
    minimum is the uncontended cost, and one clean round per side is
    enough. When a *target* ratio is given and the estimate still
    exceeds it after *repeats* rounds, measurement keeps extending (up
    to *max_repeats*) rather than concluding: an over-target minimum is
    indistinguishable from a contention storm covering every round so
    far, and more rounds either find a clean window or make the verdict
    trustworthy. Returns ``(ratio, a_ns_per_op, b_ns_per_op)``.
    """
    repeats = repeats if repeats is not None else 7
    a_ns, b_ns = [], []
    while True:
        n_a, run_a = _SCENARIOS[name_a](quick)
        n_b, run_b = _SCENARIOS[name_b](quick)
        gc.collect()
        was_enabled = gc.isenabled()
        gc.disable()
        try:
            start = time.perf_counter_ns()
            run_a()
            mid = time.perf_counter_ns()
            run_b()
            end = time.perf_counter_ns()
        finally:
            if was_enabled:
                gc.enable()
        a_ns.append((mid - start) / max(1, n_a))
        b_ns.append((end - mid) / max(1, n_b))
        if len(a_ns) < repeats:
            continue
        a_min, b_min = min(a_ns), min(b_ns)
        ratio = a_min / b_min if b_min > 0 else float("inf")
        if target is not None and ratio > target \
                and len(a_ns) < max_repeats:
            continue
        return ratio, a_min, b_min


def run_all(quick: bool = False, only: list[str] | None = None,
            verbose: bool = True) -> dict[str, BenchResult]:
    """Run every registered scenario (importing the scenario module)."""
    import benchmarks.perf.scenarios  # noqa: F401  (registers scenarios)

    results: dict[str, BenchResult] = {}
    for name in _SCENARIOS:
        if only and name not in only:
            continue
        result = run_scenario(name, quick=quick)
        results[name] = result
        if verbose:
            print(f"  {name:<28} {result.ns_per_op:>14,.0f} ns/op "
                  f"{result.ops_per_s:>14,.0f} ops/s")
    return results


def write_results(results: dict[str, BenchResult],
                  path: str | Path, quick: bool) -> None:
    """Write ``BENCH_perf.json`` (stable key order, stable schema)."""
    payload = {
        "schema": SCHEMA_VERSION,
        "mode": "quick" if quick else "full",
        "unit": "ns/op (median of repeats)",
        "scenarios": {name: results[name].to_dict()
                      for name in sorted(results)},
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True)
                          + "\n")


def load_results(path: str | Path) -> dict:
    return json.loads(Path(path).read_text())


def compare(results: dict[str, BenchResult], baseline: dict,
            max_regression: float = 3.0
            ) -> tuple[list[tuple[str, float, float, float]], list[str]]:
    """Compare against a baseline JSON document.

    Returns ``(rows, regressions)`` where each row is
    ``(name, baseline_ns, current_ns, speedup)`` and *regressions* lists
    scenario names slower than ``max_regression``x the baseline.
    """
    rows = []
    regressions = []
    base_scenarios = baseline.get("scenarios", {})
    for name in sorted(results):
        if name not in base_scenarios:
            continue
        base_ns = base_scenarios[name]["ns_per_op"]
        cur_ns = results[name].ns_per_op
        speedup = base_ns / cur_ns if cur_ns > 0 else float("inf")
        rows.append((name, base_ns, cur_ns, speedup))
        if cur_ns > base_ns * max_regression:
            regressions.append(name)
    return rows, regressions


def format_table(rows: list[tuple[str, float, float, float]]) -> str:
    """Render the speedup table the PR body quotes."""
    lines = [
        f"{'scenario':<28} {'baseline ns/op':>16} {'now ns/op':>14} "
        f"{'speedup':>9}",
        "-" * 70,
    ]
    for name, base_ns, cur_ns, speedup in rows:
        lines.append(f"{name:<28} {base_ns:>16,.0f} {cur_ns:>14,.0f} "
                     f"{speedup:>8.2f}x")
    return "\n".join(lines)
