"""Microbenchmark harness for the continuum's hot paths.

``python -m benchmarks.perf`` times the code the simulation spends its
life in — event-bus dispatch, the DES kernel, trace recording, MAPE
ticks and swarm placement — and emits ``BENCH_perf.json`` (median-of-k
ns/op and ops/s per scenario) plus a speedup table against the committed
baseline in ``benchmarks/perf/baseline.json``.

The workloads are fully deterministic (fixed seeds, fixed op counts);
only the measured wall-clock durations vary between machines. CI runs
``--quick --check`` and fails when any scenario regresses more than the
allowed factor against the baseline.
"""

import sys
from pathlib import Path

# The harness is run from the repo root (`python -m benchmarks.perf`);
# make `repro` importable even when PYTHONPATH=src was not exported.
_SRC = Path(__file__).resolve().parents[2] / "src"
if str(_SRC) not in sys.path:  # pragma: no cover - environment shim
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(_SRC))

from benchmarks.perf.harness import (  # noqa: E402
    BenchResult,
    compare,
    format_table,
    run_all,
    write_results,
)

__all__ = [
    "BenchResult",
    "compare",
    "format_table",
    "run_all",
    "write_results",
]
