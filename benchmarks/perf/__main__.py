"""CLI for the perf harness.

    python -m benchmarks.perf                     # full run, writes BENCH_perf.json
    python -m benchmarks.perf --quick             # CI-sized run
    python -m benchmarks.perf --check             # exit 1 on >3x regression
    python -m benchmarks.perf --save-baseline     # refresh the committed baseline
    python -m benchmarks.perf --only bus.publish.exact.1000
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from benchmarks.perf.harness import (
    compare,
    format_table,
    load_results,
    measure_pair_ratio,
    run_all,
    write_results,
)

_REPO_ROOT = Path(__file__).resolve().parents[2]
DEFAULT_OUT = _REPO_ROOT / "BENCH_perf.json"
DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.perf",
        description="Hot-path microbenchmarks (bus, DES kernel, trace, "
                    "MAPE, swarm placement).")
    parser.add_argument("--quick", action="store_true",
                        help="smaller op counts and fewer repeats (CI)")
    parser.add_argument("--out", default=str(DEFAULT_OUT),
                        help="where to write BENCH_perf.json")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE),
                        help="baseline JSON to compare against")
    parser.add_argument("--save-baseline", action="store_true",
                        help="write results to the baseline path instead")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 when a scenario regresses more than "
                             "--max-regression vs the baseline")
    parser.add_argument("--max-regression", type=float, default=3.0,
                        help="allowed slowdown factor in --check mode "
                             "(default 3.0)")
    parser.add_argument("--max-span-overhead", type=float, default=1.3,
                        help="allowed obs.span.publish enabled/disabled "
                             "ratio in --check mode (default 1.3)")
    parser.add_argument("--only", action="append", default=None,
                        help="run only the named scenario (repeatable)")
    args = parser.parse_args(argv)

    mode = "quick" if args.quick else "full"
    print(f"benchmarks.perf: {mode} run")
    results = run_all(quick=args.quick, only=args.only)
    if not results:
        print("no scenarios matched", file=sys.stderr)
        return 2

    if args.save_baseline:
        write_results(results, args.baseline, args.quick)
        print(f"\nbaseline written to {args.baseline}")
        return 0

    write_results(results, args.out, args.quick)
    print(f"\nresults written to {args.out}")

    baseline_path = Path(args.baseline)
    if baseline_path.exists():
        rows, regressions = compare(results, load_results(baseline_path),
                                    max_regression=args.max_regression)
        if rows:
            print(f"\nspeedup vs baseline ({baseline_path.name}):")
            print(format_table(rows))
        if args.check and regressions:
            print(f"\nREGRESSION: {', '.join(regressions)} slower than "
                  f"{args.max_regression:g}x baseline", file=sys.stderr)
            return 1
    elif args.check:
        print(f"baseline {baseline_path} missing; cannot --check",
              file=sys.stderr)
        return 2

    # Same-run ratio gates (no committed baseline needed), re-measured
    # as interleaved pairs so machine-wide drift lands on both sides of
    # every round — observability cannot silently eat dispatch-path
    # wins, and a background process cannot fake a regression.
    gates = [
        ("span overhead", "SPAN OVERHEAD",
         "obs.span.publish.enabled", "obs.span.publish.disabled",
         "enabled", "disabled"),
        # Relaying spans across zones (capture, ship, resume, child
        # span per delivery) must stay a thin layer over the bare relay.
        ("cross-shard span propagation overhead",
         "CROSS-SHARD SPAN OVERHEAD",
         "obs.span.crossshard", "bus.publish.crossshard",
         "with spans", "bare relay"),
    ]
    for label, fail_label, name_a, name_b, desc_a, desc_b in gates:
        if name_a not in results or name_b not in results:
            continue
        ratio, a_ns, b_ns = measure_pair_ratio(
            name_a, name_b, quick=args.quick,
            target=args.max_span_overhead)
        print(f"\n{label}: {ratio:.2f}x "
              f"({desc_a} {a_ns:,.0f} ns/op vs "
              f"{desc_b} {b_ns:,.0f} ns/op, "
              f"limit {args.max_span_overhead:g}x)")
        if args.check and ratio > args.max_span_overhead:
            print(f"\n{fail_label}: {ratio:.2f}x exceeds "
                  f"{args.max_span_overhead:g}x", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
