#!/usr/bin/env python3
"""Virtual Telerehabilitation use case (paper Sec. I, UNICA + REPLY).

Demonstrates the privacy/security story: raw patient video is pinned to
the edge by privacy policy, the whole pipeline runs at the HIGH (PQC)
security level of Table II, secure channels protect the assessment
links, and federated learning lets edge agents share operating-point
models without sharing patient data.

Run:  python examples/telerehabilitation.py
"""

import numpy as np

from repro.mirto import (
    CognitiveEngine,
    EngineConfig,
    FederatedClient,
    FederatedTrainer,
    LinearModel,
    make_operating_point_dataset,
)
from repro.security import Identity, SecureChannel, SecurityLevel
from repro.usecases import telerehab


def main() -> None:
    engine = CognitiveEngine(EngineConfig(edge_sites=2, seed=11))
    scenario = telerehab.build_scenario(session_minutes=20)

    # -- privacy-constrained placement --------------------------------------
    print("== Privacy-constrained deployment ==")
    outcome = engine.manager.deploy(scenario.to_service_template(),
                                    strategy="greedy")
    for task, device_name in sorted(outcome.placement.assignment.items()):
        device = engine.infrastructure.device(device_name)
        print(f"  {task:<22} -> {device_name:<10} "
              f"({device.spec.layer.value}, "
              f"security {device.spec.max_security_level})")
    print(f"makespan {outcome.report.makespan_s * 1e3:.0f} ms, "
          f"deadline met: {outcome.deadline_met}, "
          f"level: {outcome.security_level}")

    # -- secure channel at the negotiated level ---------------------------------
    print("\n== Secure channel (Table II, HIGH level) ==")
    pose_node = Identity("pose-estimation@edge", seed=1)
    assess_node = Identity("assessment@fog", seed=1)
    channel, peer = SecureChannel.establish(pose_node, assess_node,
                                            SecurityLevel.HIGH)
    keypoints = b'{"joints": [[0.5, 0.3], [0.52, 0.41]]}'
    wire = channel.seal(keypoints)
    assert peer.open(wire) == keypoints
    print(f"  handshake: {channel.transcript.total_bytes} bytes "
          f"(Kyber-style KEM + Dilithium-style signature)")
    print(f"  per-record overhead: "
          f"{len(wire) - len(keypoints)} bytes (AES-256 AEAD)")

    # -- federated operating-point learning ----------------------------------
    print("\n== Federated learning across edge agents ==")
    rng = np.random.default_rng(5)
    clients = []
    for i, (lo, hi) in enumerate([(10, 400), (400, 800), (800, 1200)]):
        features, targets = make_operating_point_dataset(
            rng, 60, megaops_range=(float(lo), float(hi)))
        clients.append(FederatedClient(
            name=f"clinic-{i}", model=LinearModel(3),
            features=features, targets=targets))
    trainer = FederatedTrainer(clients, algorithm="fedavg")
    losses = trainer.train(rounds=15, local_epochs=8, lr=0.1)
    print(f"  3 clinics, disjoint workload regions")
    print(f"  round 1 loss {losses[0]:.4f} -> "
          f"round 15 loss {losses[-1]:.4f}")
    engine.manager.node_manager.attach_model(
        "fpga-00-0", trainer.global_model(3))
    print("  global model attached to fpga-00-0's Node Manager")

    # -- MAPE adapts the now-idle infrastructure --------------------------------
    record = engine.mape_iterate(1)[0]
    low_power = [d.name for d in engine.infrastructure.devices.values()
                 if d.operating_point.name == "low-power"]
    print(f"\n== MAPE-K ==\n  {record.executed} actions; "
          f"{len(low_power)} idle devices switched to low-power")


if __name__ == "__main__":
    main()
