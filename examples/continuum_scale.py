"""Continuum-scale demo: 10k devices across 8 zone-sharded simulators.

Runs the :mod:`repro.continuum.scale` scenario — per-zone vectorized
device fleets, cross-shard telemetry aggregation through conservative
epoch barriers, one correlated zone outage — and prints the resilience
scorecard. The same seed always yields the same merged trace, whatever
the shard count:

    PYTHONPATH=src python examples/continuum_scale.py
    PYTHONPATH=src python examples/continuum_scale.py \
        --devices 1000 --zones 4 --shards 4 --horizon 200 \
        --check examples/continuum_scale.digest

``--check`` additionally runs the single-shard twin, verifies the two
merged traces are byte-identical, and compares the digest against the
committed fingerprint (the CI ``scale-smoke`` gate).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.continuum import ScaleConfig, run_scale_scenario


def build_config(args: argparse.Namespace) -> ScaleConfig:
    return ScaleConfig(devices=args.devices, zones=args.zones,
                       shards=args.shards, horizon_s=args.horizon,
                       seed=args.seed)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--devices", type=int, default=10_000)
    parser.add_argument("--zones", type=int, default=8)
    parser.add_argument("--shards", type=int, default=8)
    parser.add_argument("--horizon", type=float, default=1000.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--export", type=Path, metavar="JSONL",
                        help="write the merged trace to this path")
    parser.add_argument("--check", type=Path, metavar="DIGEST_FILE",
                        help="verify sharded == single-shard and match "
                             "the committed digest")
    parser.add_argument("--write-digest", type=Path, metavar="DIGEST_FILE",
                        help="(re)write the committed digest file")
    args = parser.parse_args(argv)
    config = build_config(args)

    result = run_scale_scenario(config)
    digest = result.digest()
    scorecard = result.scorecard()
    print(f"devices={scorecard['devices']} zones={config.zones} "
          f"shards={config.shards} horizon={config.horizon_s}s "
          f"epochs={scorecard['epochs']}")
    print(f"{'zone':<10} {'up':>6} {'fail':>6} {'repair':>7} "
          f"{'avail':>8} {'energy_kj':>10}")
    for zone in scorecard["zones"]:
        print(f"{zone['zone']:<10} {zone['up']:>6} {zone['failures']:>6} "
              f"{zone['repairs']:>7} {zone['availability']:>8.4f} "
              f"{zone['energy_j'] / 1e3:>10.1f}")
    print(f"aggregated samples at zone-00: "
          f"{scorecard['aggregator']['samples']}")
    print(f"merged trace digest: {digest}")

    if args.export:
        written = result.sharded.export_jsonl(args.export)
        print(f"exported {written} records to {args.export}")

    if args.write_digest:
        args.write_digest.write_text(digest + "\n")
        print(f"wrote digest to {args.write_digest}")

    if args.check:
        twin = run_scale_scenario(config, n_shards=1)
        if twin.digest() != digest:
            print("FAIL: single-shard twin trace differs from sharded run")
            return 1
        if twin.scorecard() != scorecard:
            print("FAIL: single-shard twin scorecard differs")
            return 1
        committed = args.check.read_text().strip()
        if committed != digest:
            print(f"FAIL: digest mismatch\n  committed: {committed}\n"
                  f"  computed:  {digest}")
            return 1
        print("check passed: sharded == single-shard == committed digest")
    return 0


if __name__ == "__main__":
    sys.exit(main())
