"""Continuum-scale demo: 10k-100k devices across zone-sharded simulators.

Runs the :mod:`repro.continuum.scale` scenario — per-zone vectorized
device fleets, cross-shard telemetry aggregation through conservative
epoch barriers, one correlated zone outage — and prints the resilience
scorecard plus a wall-clock summary. The same seed always yields the
same merged trace, whatever the shard count *or* worker-process count:

    PYTHONPATH=src python examples/continuum_scale.py
    PYTHONPATH=src python examples/continuum_scale.py --preset 100k \
        --workers 4
    PYTHONPATH=src python examples/continuum_scale.py \
        --devices 1000 --zones 4 --shards 4 --horizon 200 --workers 2 \
        --check examples/continuum_scale.digest

``--workers N`` (N >= 1) runs the multiprocess backend — one worker
process per shard heap; ``--workers 0`` (default) runs sequentially in
one interpreter. ``--check`` additionally runs the sequential
single-shard twin, verifies the merged traces *and the aggregated
metrics payloads* are byte-identical, and compares both digests against
the committed fingerprints (the CI ``scale-smoke`` gate,
sequential-vs-parallel matrix).

``--profile`` turns on the opt-in barrier/straggler profiler; combined
with ``--export`` the written JSONL carries the aggregated metrics and
shard-profile snapshots as trailing rows, ready for::

    PYTHONPATH=src python examples/continuum_scale.py --preset 100k \
        --profile --export /tmp/scale.jsonl
    PYTHONPATH=src python -m repro.obs shards /tmp/scale.jsonl
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import time
from dataclasses import replace
from pathlib import Path

from repro.continuum import ScaleConfig, run_scale_scenario

PRESETS = {
    "10k": ScaleConfig(),
    "100k": ScaleConfig.metro_100k(),
}


def build_config(args: argparse.Namespace) -> ScaleConfig:
    base = PRESETS[args.preset]
    overrides = {name: value for name, value in (
        ("devices", args.devices), ("zones", args.zones),
        ("shards", args.shards), ("horizon_s", args.horizon),
        ("seed", args.seed)) if value is not None}
    if args.profile:
        overrides["profile"] = True
    return replace(base, **overrides) if overrides else base


def metrics_digest(result) -> str:
    """SHA-256 over the canonical aggregated-metrics JSON — worker- and
    shard-count-invariant, same bytes from either backend."""
    payload = result.sharded.snapshot_observability()["metrics"]
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--preset", choices=sorted(PRESETS),
                        default="10k",
                        help="base configuration (flags below override)")
    parser.add_argument("--devices", type=int, default=None)
    parser.add_argument("--zones", type=int, default=None)
    parser.add_argument("--shards", type=int, default=None)
    parser.add_argument("--horizon", type=float, default=None)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--workers", type=int, default=0, metavar="N",
                        help="worker processes (0 = sequential backend)")
    parser.add_argument("--profile", action="store_true",
                        help="record the barrier/straggler profile "
                             "(repro-obs shards)")
    parser.add_argument("--export", type=Path, metavar="JSONL",
                        help="write the merged trace (plus metrics/"
                             "profile snapshots) to this path")
    parser.add_argument("--check", type=Path, metavar="DIGEST_FILE",
                        help="verify against the sequential single-shard "
                             "twin and the committed digest")
    parser.add_argument("--write-digest", type=Path, metavar="DIGEST_FILE",
                        help="(re)write the committed digest file")
    args = parser.parse_args(argv)
    config = build_config(args)

    wall_start = time.perf_counter()
    result = run_scale_scenario(config, workers=args.workers)
    wall_s = time.perf_counter() - wall_start
    digest = result.digest()
    m_digest = metrics_digest(result)
    scorecard = result.scorecard()
    backend = f"parallel x{args.workers}" if args.workers else "sequential"
    print(f"devices={scorecard['devices']} zones={config.zones} "
          f"shards={config.shards} horizon={config.horizon_s}s "
          f"epochs={scorecard['epochs']} backend={backend}")
    print(f"{'zone':<10} {'up':>6} {'fail':>6} {'repair':>7} "
          f"{'avail':>8} {'energy_kj':>10}")
    for zone in scorecard["zones"]:
        print(f"{zone['zone']:<10} {zone['up']:>6} {zone['failures']:>6} "
              f"{zone['repairs']:>7} {zone['availability']:>8.4f} "
              f"{zone['energy_j'] / 1e3:>10.1f}")
    print(f"aggregated samples at zone-00: "
          f"{scorecard['aggregator']['samples']}")
    events = result.sharded.events_executed
    print(f"wall-clock: devices={scorecard['devices']} "
          f"zones={config.zones} sim_s={config.horizon_s:g} "
          f"wall_s={wall_s:.2f} events={events} "
          f"events_per_s={events / wall_s:,.0f} workers={args.workers}")
    print(f"merged trace digest: {digest}")
    print(f"aggregated metrics digest: {m_digest}")

    if args.export:
        written = result.sharded.export_jsonl(args.export,
                                              observability=True)
        print(f"exported {written} records to {args.export}")

    if args.write_digest:
        args.write_digest.write_text(f"{digest}\n{m_digest}\n")
        print(f"wrote digests to {args.write_digest}")

    if args.check:
        twin = run_scale_scenario(config, n_shards=1, workers=0)
        if twin.digest() != digest:
            print("FAIL: single-shard twin trace differs from "
                  f"{backend} run")
            return 1
        if metrics_digest(twin) != m_digest:
            print("FAIL: single-shard twin aggregated metrics differ "
                  f"from {backend} run")
            return 1
        if twin.scorecard() != scorecard:
            print("FAIL: single-shard twin scorecard differs")
            return 1
        committed = args.check.read_text().split()
        if committed[0] != digest:
            print(f"FAIL: trace digest mismatch\n"
                  f"  committed: {committed[0]}\n  computed:  {digest}")
            return 1
        if len(committed) > 1 and committed[1] != m_digest:
            print(f"FAIL: metrics digest mismatch\n"
                  f"  committed: {committed[1]}\n  computed:  {m_digest}")
            return 1
        print(f"check passed: {backend} == single-shard == "
              "committed digests (trace + metrics)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
