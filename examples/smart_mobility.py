#!/usr/bin/env python3
"""Smart Mobility use case end-to-end (paper Sec. I, TNO + CRF).

Runs the full MYRTUS story for the mobility scenario:

1. DPE (Pillar 3): scenario model + attack-defence tree -> KPI
   estimates, synthesized countermeasures, operating points, CSAR.
2. MIRTO (Pillar 2): deploy the CSAR through the agent API; compare the
   cognitive placement against the baselines as the fleet grows.
3. Infrastructure (Pillar 1): per-layer report and offload statistics.

Run:  python examples/smart_mobility.py
"""

from repro.dpe import DesignFlow
from repro.mirto import CognitiveEngine, EngineConfig
from repro.usecases import mobility, run_sessions


def main() -> None:
    # -- Pillar 3: design time -----------------------------------------
    scenario = mobility.build_scenario(vehicles=2)
    spec = DesignFlow(seed=7).run(scenario, mobility.build_adt(),
                                  defence_budget=8.0)
    print("== DPE (design time) ==")
    print(f"estimated latency: {spec.kpi_estimate.latency_s * 1e3:.1f} ms "
          f"(budget {mobility.LATENCY_BUDGET_S * 1e3:.0f} ms, "
          f"meets: {spec.kpi_estimate.meets_budget})")
    print(f"threat risk reduced by "
          f"{spec.adt_result.risk_reduction:.0%} "
          f"at cost {spec.adt_result.total_cost:.1f}")
    for snippet in spec.countermeasures:
        print(f"  countermeasure: {snippet}")
    print(f"operating points exported: {len(spec.operating_points)}")
    print(f"CSAR: {len(spec.csar_bytes)} bytes, "
          f"{len(spec.artifact_inventory)} artifacts")

    # -- Pillar 2: runtime orchestration ----------------------------------
    print("\n== MIRTO (runtime) ==")
    engine = CognitiveEngine(EngineConfig(edge_sites=2, seed=7))
    response = engine.deploy(spec.service, strategy="pso")
    assert response.ok, response.body
    print(f"cognitive placement: {response.body['placement']}")
    print(f"measured makespan: "
          f"{response.body['makespan_s'] * 1e3:.1f} ms, "
          f"deadline met: {response.body['deadline_met']}")

    print("\nstrategy comparison (2-vehicle fleet, 5 sessions each):")
    print(f"{'strategy':<12} {'mean ms':>9} {'p95 ms':>9} "
          f"{'energy J':>9} {'hit rate':>9}")
    for strategy in ("random", "round-robin", "greedy", "pso", "aco"):
        stats = run_sessions(engine, scenario, strategy, sessions=5)
        print(f"{strategy:<12} {stats.mean_makespan_s * 1e3:>9.1f} "
              f"{stats.p95_makespan_s * 1e3:>9.1f} "
              f"{stats.total_energy_j:>9.2f} "
              f"{stats.deadline_hit_rate:>9.0%}")

    # -- Pillar 1: what the continuum did ----------------------------------
    print("\n== Infrastructure ==")
    for layer, report in engine.infrastructure.layer_report().items():
        print(f"{layer:>6}: {report['tasks_executed']:.0f} tasks, "
              f"util {report['mean_utilization']:.1%}, "
              f"{report['accelerated_tasks']:.0f} accelerated")
    offloads = engine.infrastructure.offloads
    print(f"offloads: {offloads.horizontal} horizontal, "
          f"{offloads.vertical_up} up, {offloads.vertical_down} down")


if __name__ == "__main__":
    main()
