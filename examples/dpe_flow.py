#!/usr/bin/env python3
"""The DPE compiler flow in detail (paper Fig. 4 and Sec. V).

Walks an ONNX-style neural network through the node-level toolchain:
import into the tensor dialect, canonicalization, base2 fixed-point
quantization (with measured error), HLS to an FPGA artifact, CGRA
mapping of a scalar kernel, MDC composition of two dataflow
configurations into one reconfigurable accelerator, and finally DSE
over a heterogeneous platform with Pareto operating points.

Run:  python examples/dpe_flow.py
"""

import random

import numpy as np

from repro.continuum.workload import Application, KernelClass, Task
from repro.dpe import (
    ExhaustiveExplorer,
    MappingEvaluator,
    PlatformModel,
    ProcessorModel,
    compose,
    export_operating_points,
    import_onnx,
    lower_to_hardware,
    reference_mlp,
    synthesize,
)
from repro.dpe.mlir import (
    Actor,
    Base2Type,
    Builder,
    CgraMachine,
    CgraModel,
    DataflowGraph,
    F32,
    Interpreter,
    Module,
    canonicalize,
    map_function,
)


def main() -> None:
    rng = np.random.default_rng(3)
    module = Module("dpe-demo")

    # -- ONNX import and quantization ------------------------------------
    print("== ONNX -> IR -> base2 -> FPGA ==")
    model = reference_mlp(rng, input_dim=8, hidden=16, output_dim=4)
    func = import_onnx(model, module)
    sample = rng.normal(0, 1, (1, 8))
    deployment = lower_to_hardware(module, func, sample,
                                   fixed=Base2Type(16, 8), target="fpga")
    print(f"  quantization error (16.8 fixed point): "
          f"{deployment.quantization_error:.4f}")
    print(f"  HLS: {deployment.artifact['luts']} LUTs, "
          f"{deployment.artifact['dsps']} DSPs, "
          f"{deployment.artifact['latency_cycles']} cycles, "
          f"{deployment.artifact['throughput_per_s'] / 1e6:.1f} M inf/s")

    # -- scalar kernel onto a CGRA ----------------------------------------
    print("\n== Scalar kernel -> CGRA (cgra-mlir analogue) ==")
    builder = Builder(module, "ema_filter", [F32, F32, F32])
    scaled = builder.op("arith.mulf", [builder.args[0], builder.args[2]],
                        [F32])
    one = builder.op("arith.constant", [], [F32], {"value": 1.0})
    inv = builder.op("arith.subf", [one.result(), builder.args[2]], [F32])
    keep = builder.op("arith.mulf", [builder.args[1], inv.result()], [F32])
    out = builder.op("arith.addf", [scaled.result(), keep.result()], [F32])
    builder.ret([out.result()])
    canonicalize(module.function("ema_filter"))
    config = map_function(module, "ema_filter", CgraModel(2, 2))
    results, cycles = CgraMachine(module, config).run(1.0, 0.5, 0.3)
    reference = Interpreter(module).run("ema_filter", 1.0, 0.5, 0.3)
    assert results == reference, "CGRA lowering must match interpreter"
    print(f"  4-PE grid: {config.utilized_pes} PEs, {cycles} cycles, "
          f"{config.latency_s() * 1e9:.0f} ns @ 200 MHz "
          f"(functionally equivalent: True)")

    # -- MDC: two dataflow configs, one reconfigurable datapath --------------
    print("\n== MDC multi-dataflow composition ==")
    for name, op in (("hp_stage", "arith.subf"), ("lp_stage", "arith.addf")):
        stage = Builder(module, name, [F32, F32])
        o = stage.op(op, [stage.args[0], stage.args[1]], [F32])
        stage.ret([o.result()])
    high_pass = DataflowGraph("high-pass", module)
    high_pass.add_actor(Actor("pre", "ema_filter", (1, 1, 1), (1,)))
    high_pass.add_actor(Actor("diff", "hp_stage", (1, 1), (1,)))
    low_pass = DataflowGraph("low-pass", module)
    low_pass.add_actor(Actor("pre", "ema_filter", (1, 1, 1), (1,)))
    low_pass.add_actor(Actor("acc", "lp_stage", (1, 1), (1,)))
    accelerator = compose(module, [high_pass, low_pass])
    print(f"  shared actor instances: {len(accelerator.shared_actors)} "
          f"(ema_filter shared across both configs)")
    print(f"  LUTs merged {accelerator.resources.luts} vs unshared "
          f"{accelerator.resources_unshared.luts} "
          f"-> {accelerator.sharing_gain:.0%} saving")
    print(f"  bitstream(high-pass): "
          f"{len(accelerator.bitstream('high-pass'))} bytes")

    # -- DSE: mapping exploration + operating points -----------------------------
    print("\n== DSE (mocasin analogue) ==")
    app = Application("pipeline")
    app.add_task(Task("src", megaops=100))
    app.add_task(Task("filter", megaops=2000, kernel=KernelClass.DSP))
    app.add_task(Task("sink", megaops=300))
    app.connect("src", "filter", 50_000)
    app.connect("filter", "sink", 10_000)
    platform = PlatformModel("het-soc", (
        ProcessorModel("arm", "cpu", gops=10.0, busy_power_w=4.0,
                       idle_power_w=1.0),
        ProcessorModel("fpga", "fpga", gops=4.0, busy_power_w=8.0,
                       idle_power_w=2.0,
                       accel_kernels={KernelClass.DSP: 8.0}),
        ProcessorModel("riscv", "cgra", gops=1.5, busy_power_w=1.2,
                       idle_power_w=0.3,
                       accel_kernels={KernelClass.DSP: 5.0}),
    ))
    evaluator = MappingEvaluator(app, platform)
    results = ExhaustiveExplorer(evaluator).explore()
    points = export_operating_points(results, max_points=4)
    print(f"  {evaluator.evaluations} mappings evaluated; "
          f"{len(points)} Pareto operating points:")
    for point in points:
        print(f"    {point['name']}: {point['latency_s'] * 1e3:.1f} ms, "
              f"{point['energy_j'] * 1e3:.1f} mJ, "
              f"filter on {point['mapping']['filter']}")


if __name__ == "__main__":
    main()
