#!/usr/bin/env python3
"""Observability: one fault, one causal span tree across every layer.

Runs the cross-layer scenario (continuum infrastructure + MIRTO engine +
kube cluster + monitor on one RuntimeContext), injects a device fault
mid-run, lets the MAPE loop react, then remediates inside the fault's
causal scope. The exported trace carries the full span tree — fault
inject (continuum) -> kube evict -> MAPE cycle and phases (mirto) ->
repair -> redeploy with placement solve/execute -> kube bind — under a
single trace id, plus a metrics snapshot and a DES profiler report.

Run:  python examples/observability.py [--out obs-trace.jsonl]

Then inspect it:

    repro-obs tree obs-trace.jsonl
    repro-obs timeline obs-trace.jsonl --by layer
    repro-obs metrics obs-trace.jsonl
    repro-obs profile obs-trace.jsonl
"""

import argparse

from repro.continuum import build_reference_infrastructure
from repro.continuum.faults import FaultInjector
from repro.continuum.workload import KernelClass
from repro.dpe import ComponentModel, ScenarioModel
from repro.kube import KubeCluster, Node, PodSpec, ResourceRequest
from repro.mirto import CognitiveEngine, EngineConfig
from repro.monitoring import InfrastructureMonitor
from repro.obs import DesProfiler
from repro.runtime import RuntimeContext

FAULT_AT_S = 5.0


def _scenario(name: str) -> ScenarioModel:
    scenario = ScenarioModel(name, latency_budget_s=0.5)
    scenario.add_component(ComponentModel(
        "decode", megaops=100, input_bytes=100_000))
    scenario.add_component(ComponentModel(
        "detect", megaops=1200, kernel=KernelClass.DSP, accelerable=True))
    scenario.connect("decode", "detect", 100_000)
    return scenario


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="cross-layer observability demo (spans + metrics + "
                    "DES profile)")
    parser.add_argument("--out", default="obs-trace.jsonl",
                        help="trace JSONL output path "
                             "(default: obs-trace.jsonl)")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)

    # One shared runtime spine; the profiler attributes every executed
    # DES event to its owning process before anything is scheduled.
    ctx = RuntimeContext(seed=args.seed)
    profiler = DesProfiler().install(ctx.sim)

    infrastructure = build_reference_infrastructure(ctx)
    engine = CognitiveEngine(EngineConfig(seed=args.seed),
                             infrastructure=infrastructure)
    target = "mc-00-0"
    cluster = KubeCluster("edge", ctx=ctx)
    cluster.add_node(Node(name=target,
                          capacity=ResourceRequest(4000, 8 * 2**30)))
    cluster.watch_device_faults()
    cluster.create_pod(PodSpec(name="svc",
                               request=ResourceRequest(500, 2**20)))
    cluster.reconcile()
    monitor = InfrastructureMonitor("site", ctx=ctx)
    monitor.watch_device_faults()

    response = engine.deploy(_scenario("pipeline").to_service_template(),
                             strategy="greedy")
    assert response.ok, response.body

    # Fail the deployed device mid-run. The inject span is the causal
    # root: the kube eviction and monitor sample nest inside it.
    injector = FaultInjector(engine.infrastructure)

    def fault_process():
        yield ctx.sim.timeout(FAULT_AT_S)
        injector.inject_now(target)

    ctx.sim.process(fault_process())
    ctx.run()

    # The MAPE loop reacts on its next cycle; its span attaches to the
    # fault it is reacting to, not to whatever else is running.
    record = engine.mape_iterate(1)[0]

    # Remediation continues the same trace: resume() re-enters the MAPE
    # cycle's span scope, so the repair, the redeploy (placement solve +
    # execute) and the kube reschedule/bind all share the fault's
    # trace id.
    with ctx.tracer.resume(record.span_context):
        injector.repair_now(target)
        retry = engine.deploy(_scenario("pipeline-retry")
                              .to_service_template(), strategy="greedy")
        assert retry.ok, retry.body
        cluster.create_pod(PodSpec(name="svc-retry",
                                   request=ResourceRequest(500, 2**20)))
        cluster.reconcile()

    # Append the metrics + profiler snapshots and export everything.
    ctx.snapshot_observability()
    n = ctx.trace.export_jsonl(args.out)

    print(f"trace: {n} records -> {args.out}")
    print(f"spans recorded: {ctx.tracer.spans_recorded}")
    print(f"metrics registered: {len(ctx.metrics)}")
    print(f"DES events profiled: {profiler.events_profiled}")
    print(f"inspect with: repro-obs tree {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
