#!/usr/bin/env python3
"""Execution-time orchestration demo (paper Sec. IV).

MIRTO orchestrates "both at deployment time ... and at execution time
(while tasks are already running)". A streaming pipeline runs
periodically; halfway through, a noisy co-tenant saturates the device
hosting the heavy inference stage. Watch the adaptive deployment detect
the drift from the backlog signal, migrate the stage, and recover —
while a static deployment keeps suffering.

Run:  python examples/continuous_orchestration.py
"""

from repro.continuum import build_reference_infrastructure
from repro.continuum.workload import Application, KernelClass, Task
from repro.mirto import (
    ContinuousDeployment,
    MigrationPolicy,
    run_with_interference,
)
from repro.mirto.placement import PlacementConstraints
from repro.runtime import RuntimeContext


def streaming_app() -> Application:
    app = Application("video-stream")
    app.add_task(Task("grab", 100, input_bytes=100_000))
    app.add_task(Task("infer", 2500, kernel=KernelClass.DSP))
    app.add_task(Task("emit", 150))
    app.connect("grab", "infer", 100_000)
    app.connect("infer", "emit", 5_000)
    return app


def run_mode(adaptive: bool):
    infrastructure = build_reference_infrastructure(RuntimeContext(seed=0))
    deployment = ContinuousDeployment(
        streaming_app(), infrastructure,
        constraints=PlacementConstraints(source_device="mc-00-0"),
        policy=MigrationPolicy(
            improvement_threshold=0.15 if adaptive else 10.0))
    victim = deployment.placement.device_of("infer")
    records = run_with_interference(
        deployment, periods=8, interfere_at=2,
        interference_device=victim,
        interference_megaops=8000, interference_tasks=16)
    return deployment, records, victim


def main() -> None:
    adaptive, adaptive_records, victim = run_mode(adaptive=True)
    static, static_records, _ = run_mode(adaptive=False)
    print(f"heavy stage initially on: {victim}")
    print(f"co-tenant interference starts at period 2\n")
    print(f"{'period':<8}{'static ms':>12}{'adaptive ms':>13}  note")
    for period in range(len(adaptive_records)):
        note = ""
        if adaptive_records[period].migrated:
            new_home = adaptive_records[period].placement["infer"]
            note = f"<- migrated infer to {new_home}"
        print(f"{period:<8}"
              f"{static_records[period].makespan_s * 1e3:>12.0f}"
              f"{adaptive_records[period].makespan_s * 1e3:>13.0f}"
              f"  {note}")
    print(f"\npost-interference mean (last 4 periods): "
          f"static {static.mean_makespan(4) * 1e3:.0f} ms, "
          f"adaptive {adaptive.mean_makespan(4) * 1e3:.0f} ms "
          f"({static.mean_makespan(4) / adaptive.mean_makespan(4):.0f}x "
          f"better)")


if __name__ == "__main__":
    main()
