#!/usr/bin/env python3
"""Quickstart: deploy a workload onto the MYRTUS continuum in ~40 lines.

Builds the reference edge-fog-cloud infrastructure (paper Fig. 2), wires
up the MIRTO Cognitive Engine (Fig. 3), describes a small application as
a TOSCA service, and deploys it through the full agent API path:
authentication -> TOSCA validation -> MIRTO Manager -> placement ->
simulated execution.

Run:  python examples/quickstart.py
"""

from repro.continuum.workload import KernelClass
from repro.dpe import ComponentModel, ScenarioModel
from repro.mirto import CognitiveEngine, EngineConfig


def main() -> None:
    # 1. A fully wired cognitive engine over the reference continuum:
    #    2 edge sites (multicore + FPGA + RISC-V behind a gateway),
    #    1 fog micro data center, 2 cloud servers, Raft-replicated KB.
    engine = CognitiveEngine(EngineConfig(edge_sites=2, seed=42))
    print(f"continuum devices: {len(engine.infrastructure)}")

    # 2. Describe an application: a 3-stage video analytics pipeline.
    scenario = ScenarioModel("hello-continuum", latency_budget_s=0.5,
                             min_security_level="medium")
    scenario.add_component(ComponentModel(
        "decode", megaops=100, input_bytes=200_000))
    scenario.add_component(ComponentModel(
        "detect", megaops=1200, kernel=KernelClass.DSP,
        accelerable=True))
    scenario.add_component(ComponentModel("alert", megaops=50))
    scenario.connect("decode", "detect", 200_000)
    scenario.connect("detect", "alert", 1_000)

    # 3. Deploy through the MIRTO agent's REST-like API (Fig. 3 path).
    response = engine.deploy(scenario.to_service_template(),
                             strategy="greedy")
    assert response.ok, response.body
    body = response.body
    print(f"placed: {body['placement']}")
    print(f"makespan: {body['makespan_s'] * 1000:.1f} ms "
          f"(budget 500 ms, met: {body['deadline_met']})")
    print(f"energy: {body['energy_j']:.3f} J "
          f"at security level {body['security_level']}")

    # 4. One MAPE-K cycle: sense -> analyze -> plan -> execute.
    record = engine.mape_iterate(1)[0]
    print(f"MAPE: sensed {record.sensed_components} components, "
          f"{len(record.triggers)} triggers, "
          f"{record.executed} reconfigurations applied")

    # 5. Everything above happened on one shared RuntimeContext: the
    #    placement decision and each MAPE phase are already on the
    #    causally ordered trace (export with engine.ctx.trace.to_jsonl()).
    mape_events = engine.ctx.trace.records("mirto.**")
    print(f"trace: {len(engine.ctx.trace)} records, e.g. "
          + ", ".join(r.topic for r in mape_events[:3]))

    # 6. The anytime solver portfolio: race exact branch-and-bound
    #    against the swarm heuristics under one 50ms-equivalent budget.
    #    The result says where the winner came from (provenance) and,
    #    when the exact lane finishes its tree, proves optimality.
    from repro.mirto import (PlacementConstraints, PlacementRequest,
                             PortfolioPlacement, SolveBudget)
    from repro.mirto.manager import service_to_application
    app = service_to_application(scenario.to_service_template())
    result = PortfolioPlacement(seed=42).solve(PlacementRequest(
        application=app,
        infrastructure=engine.infrastructure,
        constraints=PlacementConstraints(min_security_level="medium"),
        budget=SolveBudget(deadline_s=0.050)))
    lanes = {s.backend: s.evaluations for s in result.stats}
    print(f"portfolio: cost {result.cost:.4f} from "
          f"{result.provenance} (optimal: {result.optimal}, "
          f"lower bound {result.lower_bound:.4f}; evaluations {lanes})")


if __name__ == "__main__":
    main()
