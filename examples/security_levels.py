#!/usr/bin/env python3
"""Security levels in action (paper Table II).

Establishes secure channels at all three MYRTUS security levels,
exercises the whole primitive stack (all implemented from scratch in
this repo), shows level negotiation against device capabilities, and
demonstrates the trust/reputation machinery of Table I.

Run:  python examples/security_levels.py
"""

import time

from repro.security import (
    Identity,
    InteractionOutcome,
    SecureChannel,
    SecurityLevel,
    SUITE_DESCRIPTORS,
    TrustEngine,
    aggregate_reputation,
    negotiate_level,
)


def main() -> None:
    gateway = Identity("smart-gateway", seed=1)
    fpga = Identity("hmpsoc-fpga", seed=1)

    print("== Table II: the three security levels ==")
    payload = b'{"telemetry": {"util": 0.42, "power_w": 3.1}}' * 4
    print(f"{'level':<8} {'encryption':<12} {'auth':<24} "
          f"{'handshake B':>12} {'record ovh B':>13} {'time ms':>9}")
    for level in (SecurityLevel.LOW, SecurityLevel.MEDIUM,
                  SecurityLevel.HIGH):
        descriptor = SUITE_DESCRIPTORS[level]
        start = time.perf_counter()
        channel, peer = SecureChannel.establish(gateway, fpga, level)
        wire = channel.seal(payload)
        assert peer.open(wire) == payload
        elapsed_ms = (time.perf_counter() - start) * 1e3
        print(f"{level.value:<8} {descriptor.encryption:<12} "
              f"{descriptor.authentication[:24]:<24} "
              f"{channel.transcript.total_bytes:>12} "
              f"{len(wire) - len(payload):>13} {elapsed_ms:>9.1f}")

    print("\n== Level negotiation against device capabilities ==")
    for required, device_max in [(SecurityLevel.LOW, "high"),
                                 (SecurityLevel.MEDIUM, "high"),
                                 (SecurityLevel.HIGH, "high"),
                                 (SecurityLevel.LOW, "low")]:
        chosen = negotiate_level(required, [device_max])
        print(f"  required {required.value:<7} device max {device_max:<7}"
              f" -> use {chosen.value}")
    try:
        negotiate_level(SecurityLevel.HIGH, ["low"])
    except Exception as exc:
        print(f"  required high, device max low -> REFUSED ({exc})")

    print("\n== Trust and reputation (Table I) ==")
    trust = TrustEngine("mirto-edge", now_fn=lambda: 0.0)
    for _ in range(8):
        trust.observe("fmdc-00", InteractionOutcome(0, True, 1.0))
        trust.observe("flaky-node", InteractionOutcome(0, False, 0.2))
    print(f"  direct trust: fmdc-00 {trust.trust('fmdc-00'):.2f}, "
          f"flaky-node {trust.trust('flaky-node'):.2f}")
    print(f"  fmdc-00 placement-eligible: "
          f"{trust.trustworthy('fmdc-00')}; "
          f"flaky-node: {trust.trustworthy('flaky-node')}")
    reputation = aggregate_reputation({
        "honest-agent-1": (0.92, 0.95),
        "honest-agent-2": (0.88, 0.90),
        "badmouthing-agent": (0.05, 0.0),
    })
    print(f"  federated reputation (badmouther discounted): "
          f"{reputation:.2f}")


if __name__ == "__main__":
    main()
