"""Cloud Service Archive (.csar) packaging.

The DPE's TOSCA Designer "will allow users to automatically export the
Cloud Service Archive (.csar) package, which will contain relevant TOSCA
templates, scripts and files to allow workload deployment and management
in all TOSCA-compatible environments" (paper Sec. V). A CSAR is a zip
with a ``TOSCA-Metadata/TOSCA.meta`` manifest naming the entry template;
this module writes and reads such archives fully in memory, including
deployment artifacts (bitstreams, executables, operating-point
meta-information).
"""

from __future__ import annotations

import io
import zipfile
from dataclasses import dataclass, field

from repro.core.errors import ValidationError
from repro.tosca.model import ServiceTemplate
from repro.tosca.parser import dump_service_template, parse_service_template

_META_PATH = "TOSCA-Metadata/TOSCA.meta"
_TEMPLATE_PATH = "Definitions/service-template.yaml"


@dataclass
class CsarArchive:
    """An in-memory CSAR: one service template plus named artifacts."""

    service: ServiceTemplate
    artifacts: dict[str, bytes] = field(default_factory=dict)

    def add_artifact(self, path: str, content: bytes) -> None:
        """Attach a deployment artifact (bitstream, binary, metadata)."""
        if not path or path.startswith("/"):
            raise ValidationError(f"bad artifact path {path!r}")
        self.artifacts[path] = content

    def to_bytes(self) -> bytes:
        """Serialize to CSAR (zip) bytes."""
        buffer = io.BytesIO()
        with zipfile.ZipFile(buffer, "w", zipfile.ZIP_DEFLATED) as archive:
            meta = (
                "TOSCA-Meta-File-Version: 1.1\n"
                "CSAR-Version: 1.1\n"
                "Created-By: myrtus-repro DPE\n"
                f"Entry-Definitions: {_TEMPLATE_PATH}\n"
            )
            archive.writestr(_META_PATH, meta)
            archive.writestr(_TEMPLATE_PATH,
                             dump_service_template(self.service))
            for path, content in sorted(self.artifacts.items()):
                archive.writestr(f"Artifacts/{path}", content)
        return buffer.getvalue()

    @staticmethod
    def from_bytes(data: bytes) -> "CsarArchive":
        """Parse CSAR bytes back into an archive object."""
        try:
            archive = zipfile.ZipFile(io.BytesIO(data))
        except zipfile.BadZipFile as exc:
            raise ValidationError("not a CSAR (bad zip)") from exc
        names = set(archive.namelist())
        if _META_PATH not in names:
            raise ValidationError("CSAR missing TOSCA-Metadata/TOSCA.meta")
        meta = archive.read(_META_PATH).decode()
        entry = None
        for line in meta.splitlines():
            if line.startswith("Entry-Definitions:"):
                entry = line.split(":", 1)[1].strip()
        if entry is None or entry not in names:
            raise ValidationError("CSAR metadata lacks a valid "
                                  "Entry-Definitions")
        service = parse_service_template(archive.read(entry).decode())
        artifacts = {
            name[len("Artifacts/"):]: archive.read(name)
            for name in names if name.startswith("Artifacts/")
        }
        return CsarArchive(service=service, artifacts=artifacts)

    def artifact_inventory(self) -> dict[str, int]:
        """Artifact paths and sizes, for the Fig. 4 bench report."""
        return {path: len(content)
                for path, content in sorted(self.artifacts.items())}
