"""TOSCA subset: object model, YAML parser, validator, CSAR packaging.

The orchestration request language of the MIRTO agent (Fig. 3) and the
deployment-specification format the DPE exports (Sec. V).
"""

from repro.tosca.model import (
    NodeTemplate,
    NodeType,
    Policy,
    POLICY_TYPES,
    PropertyDef,
    Requirement,
    ServiceTemplate,
    STANDARD_NODE_TYPES,
    effective_properties,
    resolve_type,
)
from repro.tosca.parser import dump_service_template, parse_service_template
from repro.tosca.validator import ToscaValidator
from repro.tosca.csar import CsarArchive

__all__ = [
    "NodeTemplate",
    "NodeType",
    "Policy",
    "POLICY_TYPES",
    "PropertyDef",
    "Requirement",
    "ServiceTemplate",
    "STANDARD_NODE_TYPES",
    "effective_properties",
    "resolve_type",
    "dump_service_template",
    "parse_service_template",
    "ToscaValidator",
    "CsarArchive",
]
