"""TOSCA object model (subset of OASIS TOSCA v2.0).

The MIRTO agent's REST-like API accepts orchestration requests as TOSCA
service templates (paper Fig. 3), and the DPE exports deployment
specifications as TOSCA/CSAR (Sec. V). This subset covers what MYRTUS
needs: node types with typed properties, node templates with
requirements (HostedOn/ConnectsTo relationships), and policies carrying
the security/latency/energy/privacy constraints the MIRTO Manager must
solve for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.errors import ValidationError


@dataclass(frozen=True)
class PropertyDef:
    """Schema for one property of a node or policy type."""

    name: str
    type: str  # "string" | "integer" | "float" | "boolean" | "map" | "list"
    required: bool = False
    default: Any = None

    _CHECKS = {
        "string": lambda v: isinstance(v, str),
        "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
        "float": lambda v: isinstance(v, (int, float))
        and not isinstance(v, bool),
        "boolean": lambda v: isinstance(v, bool),
        "map": lambda v: isinstance(v, dict),
        "list": lambda v: isinstance(v, list),
    }

    def check(self, value: Any) -> bool:
        checker = self._CHECKS.get(self.type)
        if checker is None:
            raise ValidationError(f"unknown property type {self.type!r}")
        return checker(value)


@dataclass
class NodeType:
    """A reusable node type in the type hierarchy."""

    name: str
    derived_from: str | None = None
    properties: dict[str, PropertyDef] = field(default_factory=dict)
    capabilities: tuple[str, ...] = ()


@dataclass
class RelationshipType:
    name: str
    derived_from: str | None = None


def _prop(name: str, type_: str, required: bool = False,
          default: Any = None) -> tuple[str, PropertyDef]:
    return name, PropertyDef(name, type_, required, default)


# The MYRTUS type library: base TOSCA compute plus continuum-specific
# node and policy types.
STANDARD_NODE_TYPES: dict[str, NodeType] = {}
STANDARD_RELATIONSHIP_TYPES: dict[str, RelationshipType] = {}


def _register(node_type: NodeType) -> NodeType:
    STANDARD_NODE_TYPES[node_type.name] = node_type
    return node_type


_register(NodeType("tosca.nodes.Root"))
_register(NodeType(
    "tosca.nodes.Compute",
    derived_from="tosca.nodes.Root",
    properties=dict([
        _prop("num_cpus", "integer"),
        _prop("mem_size_bytes", "integer"),
    ]),
    capabilities=("host",),
))
_register(NodeType(
    "myrtus.nodes.EdgeDevice",
    derived_from="tosca.nodes.Compute",
    properties=dict([
        _prop("device_kind", "string", required=True),
        _prop("max_security_level", "string", default="low"),
    ]),
    capabilities=("host", "edge"),
))
_register(NodeType(
    "myrtus.nodes.FogNode",
    derived_from="tosca.nodes.Compute",
    properties=dict([_prop("fmdc", "boolean", default=False)]),
    capabilities=("host", "fog"),
))
_register(NodeType(
    "myrtus.nodes.CloudServer",
    derived_from="tosca.nodes.Compute",
    capabilities=("host", "cloud"),
))
_register(NodeType(
    "myrtus.nodes.Container",
    derived_from="tosca.nodes.Root",
    properties=dict([
        _prop("image", "string", required=True),
        _prop("cpu_millicores", "integer", required=True),
        _prop("memory_bytes", "integer", required=True),
        _prop("kernel_class", "string", default="general"),
        _prop("megaops", "float", default=0.0),
        _prop("input_bytes", "integer", default=0),
        _prop("output_bytes", "integer", default=0),
        _prop("operating_points", "list", default=None),
    ]),
))
_register(NodeType(
    "myrtus.nodes.AcceleratedKernel",
    derived_from="myrtus.nodes.Container",
    properties=dict([
        _prop("bitstream", "string"),
        _prop("image", "string", required=True),
        _prop("cpu_millicores", "integer", required=True),
        _prop("memory_bytes", "integer", required=True),
    ]),
))

for rel in ("tosca.relationships.Root", "tosca.relationships.HostedOn",
            "tosca.relationships.ConnectsTo", "myrtus.relationships.Streams"):
    STANDARD_RELATIONSHIP_TYPES[rel] = RelationshipType(rel)


POLICY_TYPES: dict[str, dict[str, PropertyDef]] = {
    "myrtus.policies.Security": dict([
        _prop("min_level", "string", required=True),
        _prop("encrypted_storage", "boolean", default=False),
    ]),
    "myrtus.policies.Latency": dict([
        _prop("end_to_end_budget_s", "float", required=True),
    ]),
    "myrtus.policies.Energy": dict([
        _prop("budget_j", "float"),
        _prop("prefer_low_power", "boolean", default=True),
    ]),
    "myrtus.policies.Privacy": dict([
        _prop("data_class", "string", required=True),
        _prop("max_layer", "string", default="cloud"),
    ]),
    "myrtus.policies.Placement": dict([
        _prop("preferred_layer", "string"),
        _prop("anti_affinity_group", "string"),
    ]),
}


@dataclass
class Requirement:
    """A dangling edge of a node template, resolved to another template."""

    name: str  # e.g. "host", "connection"
    target: str  # node template name
    relationship: str = "tosca.relationships.Root"


@dataclass
class NodeTemplate:
    """An occurrence of a node type inside a service topology."""

    name: str
    type: str
    properties: dict[str, Any] = field(default_factory=dict)
    requirements: list[Requirement] = field(default_factory=list)

    def requirement(self, name: str) -> Requirement | None:
        for req in self.requirements:
            if req.name == name:
                return req
        return None


@dataclass
class Policy:
    """A constraint applied to a set of node templates."""

    name: str
    type: str
    targets: list[str]
    properties: dict[str, Any] = field(default_factory=dict)


@dataclass
class ServiceTemplate:
    """A complete TOSCA service: topology plus policies plus metadata."""

    name: str
    node_templates: dict[str, NodeTemplate] = field(default_factory=dict)
    policies: list[Policy] = field(default_factory=list)
    inputs: dict[str, Any] = field(default_factory=dict)
    metadata: dict[str, Any] = field(default_factory=dict)

    def add_node(self, template: NodeTemplate) -> NodeTemplate:
        if template.name in self.node_templates:
            raise ValidationError(
                f"duplicate node template {template.name!r}")
        self.node_templates[template.name] = template
        return template

    def add_policy(self, policy: Policy) -> Policy:
        self.policies.append(policy)
        return policy

    def containers(self) -> list[NodeTemplate]:
        """Templates of Container type (or derived) — the deployable units."""
        result = []
        for template in self.node_templates.values():
            type_name = template.type
            while type_name is not None:
                if type_name == "myrtus.nodes.Container":
                    result.append(template)
                    break
                node_type = STANDARD_NODE_TYPES.get(type_name)
                type_name = node_type.derived_from if node_type else None
        return result

    def policies_of_type(self, type_name: str) -> list[Policy]:
        return [p for p in self.policies if p.type == type_name]

    def policies_for(self, template_name: str) -> list[Policy]:
        """Policies targeting one template (or everything, via '*')."""
        return [p for p in self.policies
                if template_name in p.targets or "*" in p.targets]


def resolve_type(name: str) -> NodeType:
    """Look up a node type by name."""
    if name not in STANDARD_NODE_TYPES:
        raise ValidationError(f"unknown node type {name!r}")
    return STANDARD_NODE_TYPES[name]


def effective_properties(node_type_name: str) -> dict[str, PropertyDef]:
    """Property schema of a type including everything inherited."""
    props: dict[str, PropertyDef] = {}
    chain: list[NodeType] = []
    current: str | None = node_type_name
    while current is not None:
        node_type = resolve_type(current)
        chain.append(node_type)
        current = node_type.derived_from
    for node_type in reversed(chain):  # base first, derived overrides
        props.update(node_type.properties)
    return props
