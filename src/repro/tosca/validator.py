"""The TOSCA Validation Processor (paper Fig. 3).

Semantic validation of a parsed service template: type existence,
property schema conformance, requirement resolution, HostedOn cycle
detection, and policy well-formedness. Returns all problems at once.
"""

from __future__ import annotations

import networkx as nx

from repro.core.errors import ValidationError
from repro.tosca.model import (
    POLICY_TYPES,
    STANDARD_NODE_TYPES,
    STANDARD_RELATIONSHIP_TYPES,
    ServiceTemplate,
    effective_properties,
)

_SECURITY_LEVELS = ("low", "medium", "high")
_LAYERS = ("edge", "fog", "cloud")


class ToscaValidator:
    """Collects problems; ``validate`` raises when any exist."""

    def check(self, service: ServiceTemplate) -> list[str]:
        """Return the list of problems (empty when valid)."""
        problems: list[str] = []
        problems += self._check_templates(service)
        problems += self._check_requirements(service)
        problems += self._check_hosting_cycles(service)
        problems += self._check_policies(service)
        return problems

    def validate(self, service: ServiceTemplate) -> None:
        """Raise :class:`ValidationError` listing every problem found."""
        problems = self.check(service)
        if problems:
            raise ValidationError(
                f"service template {service.name!r} invalid", problems)

    # -- individual passes -------------------------------------------------------

    def _check_templates(self, service: ServiceTemplate) -> list[str]:
        problems = []
        for template in service.node_templates.values():
            if template.type not in STANDARD_NODE_TYPES:
                problems.append(
                    f"node {template.name}: unknown type {template.type}")
                continue
            schema = effective_properties(template.type)
            for prop_name, value in template.properties.items():
                if prop_name not in schema:
                    problems.append(
                        f"node {template.name}: unknown property "
                        f"{prop_name}")
                elif value is not None and not schema[prop_name].check(value):
                    problems.append(
                        f"node {template.name}: property {prop_name} is "
                        f"not a {schema[prop_name].type}")
            for prop_name, definition in schema.items():
                if definition.required and \
                        template.properties.get(prop_name) is None:
                    problems.append(
                        f"node {template.name}: missing required property "
                        f"{prop_name}")
        return problems

    def _check_requirements(self, service: ServiceTemplate) -> list[str]:
        problems = []
        for template in service.node_templates.values():
            for req in template.requirements:
                if req.target not in service.node_templates:
                    problems.append(
                        f"node {template.name}: requirement {req.name} "
                        f"targets unknown template {req.target}")
                if req.relationship not in STANDARD_RELATIONSHIP_TYPES:
                    problems.append(
                        f"node {template.name}: unknown relationship "
                        f"{req.relationship}")
                if req.target == template.name:
                    problems.append(
                        f"node {template.name}: requirement {req.name} "
                        "targets itself")
        return problems

    def _check_hosting_cycles(self, service: ServiceTemplate) -> list[str]:
        graph = nx.DiGraph()
        for template in service.node_templates.values():
            for req in template.requirements:
                if req.name == "host" and \
                        req.target in service.node_templates:
                    graph.add_edge(template.name, req.target)
        try:
            cycle = nx.find_cycle(graph)
        except nx.NetworkXNoCycle:
            return []
        chain = " -> ".join(edge[0] for edge in cycle)
        return [f"hosting cycle: {chain}"]

    def _check_policies(self, service: ServiceTemplate) -> list[str]:
        problems = []
        for policy in service.policies:
            if policy.type not in POLICY_TYPES:
                problems.append(f"policy {policy.name}: unknown type "
                                f"{policy.type}")
                continue
            schema = POLICY_TYPES[policy.type]
            for target in policy.targets:
                if target != "*" and target not in service.node_templates:
                    problems.append(
                        f"policy {policy.name}: unknown target {target}")
            for prop_name, value in policy.properties.items():
                if prop_name not in schema:
                    problems.append(
                        f"policy {policy.name}: unknown property "
                        f"{prop_name}")
                elif value is not None and not schema[prop_name].check(value):
                    problems.append(
                        f"policy {policy.name}: property {prop_name} is "
                        f"not a {schema[prop_name].type}")
            for prop_name, definition in schema.items():
                if definition.required and \
                        policy.properties.get(prop_name) is None:
                    problems.append(
                        f"policy {policy.name}: missing required property "
                        f"{prop_name}")
            problems += self._check_policy_values(policy)
        return problems

    @staticmethod
    def _check_policy_values(policy) -> list[str]:
        problems = []
        if policy.type == "myrtus.policies.Security":
            level = policy.properties.get("min_level")
            if level is not None and level not in _SECURITY_LEVELS:
                problems.append(
                    f"policy {policy.name}: min_level must be one of "
                    f"{_SECURITY_LEVELS}")
        if policy.type == "myrtus.policies.Latency":
            budget = policy.properties.get("end_to_end_budget_s")
            if isinstance(budget, (int, float)) and budget <= 0:
                problems.append(
                    f"policy {policy.name}: latency budget must be positive")
        if policy.type == "myrtus.policies.Privacy":
            layer = policy.properties.get("max_layer")
            if layer is not None and layer not in _LAYERS:
                problems.append(
                    f"policy {policy.name}: max_layer must be one of "
                    f"{_LAYERS}")
        return problems
