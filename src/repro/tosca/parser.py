"""YAML parser for the TOSCA subset.

Accepts the TOSCA-style document layout::

    tosca_definitions_version: myrtus_tosca_1_0
    metadata: {...}
    topology_template:
      inputs: {...}
      node_templates:
        <name>:
          type: myrtus.nodes.Container
          properties: {...}
          requirements:
            - host: <target>
            - connection:
                node: <target>
                relationship: tosca.relationships.ConnectsTo
      policies:
        - <name>:
            type: myrtus.policies.Latency
            targets: [a, b]
            properties: {...}
"""

from __future__ import annotations

from typing import Any

import yaml

from repro.core.errors import ValidationError
from repro.tosca.model import (
    NodeTemplate,
    Policy,
    Requirement,
    ServiceTemplate,
)

SUPPORTED_VERSIONS = ("myrtus_tosca_1_0", "tosca_2_0")


def parse_service_template(text: str, name: str = "service"
                           ) -> ServiceTemplate:
    """Parse a YAML document into a :class:`ServiceTemplate`.

    Structural errors raise :class:`ValidationError`; semantic checks
    are the validator's job (:mod:`repro.tosca.validator`).
    """
    try:
        doc = yaml.safe_load(text)
    except yaml.YAMLError as exc:
        raise ValidationError(f"invalid YAML: {exc}") from exc
    if not isinstance(doc, dict):
        raise ValidationError("TOSCA document must be a mapping")
    version = doc.get("tosca_definitions_version")
    if version not in SUPPORTED_VERSIONS:
        raise ValidationError(
            f"unsupported tosca_definitions_version {version!r} "
            f"(supported: {SUPPORTED_VERSIONS})"
        )
    topology = doc.get("topology_template")
    if not isinstance(topology, dict):
        raise ValidationError("missing topology_template section")
    service = ServiceTemplate(
        name=doc.get("metadata", {}).get("template_name", name),
        inputs=dict(topology.get("inputs") or {}),
        metadata=dict(doc.get("metadata") or {}),
    )
    node_templates = topology.get("node_templates")
    if not isinstance(node_templates, dict) or not node_templates:
        raise ValidationError("topology_template needs node_templates")
    for tpl_name, body in node_templates.items():
        service.add_node(_parse_node_template(tpl_name, body))
    for policy_entry in topology.get("policies") or []:
        service.add_policy(_parse_policy(policy_entry))
    return service


def _parse_node_template(name: str, body: Any) -> NodeTemplate:
    if not isinstance(body, dict):
        raise ValidationError(f"node template {name!r} must be a mapping")
    type_name = body.get("type")
    if not isinstance(type_name, str):
        raise ValidationError(f"node template {name!r} missing type")
    template = NodeTemplate(
        name=name,
        type=type_name,
        properties=dict(body.get("properties") or {}),
    )
    for entry in body.get("requirements") or []:
        template.requirements.append(_parse_requirement(name, entry))
    return template


def _parse_requirement(owner: str, entry: Any) -> Requirement:
    if not isinstance(entry, dict) or len(entry) != 1:
        raise ValidationError(
            f"node template {owner!r}: each requirement must be a "
            "single-key mapping"
        )
    req_name, value = next(iter(entry.items()))
    if isinstance(value, str):
        return Requirement(name=req_name, target=value)
    if isinstance(value, dict):
        target = value.get("node")
        if not isinstance(target, str):
            raise ValidationError(
                f"node template {owner!r}: requirement {req_name!r} "
                "missing node"
            )
        return Requirement(
            name=req_name,
            target=target,
            relationship=value.get("relationship",
                                   "tosca.relationships.Root"),
        )
    raise ValidationError(
        f"node template {owner!r}: malformed requirement {req_name!r}"
    )


def _parse_policy(entry: Any) -> Policy:
    if not isinstance(entry, dict) or len(entry) != 1:
        raise ValidationError("each policy must be a single-key mapping")
    name, body = next(iter(entry.items()))
    if not isinstance(body, dict):
        raise ValidationError(f"policy {name!r} must be a mapping")
    type_name = body.get("type")
    if not isinstance(type_name, str):
        raise ValidationError(f"policy {name!r} missing type")
    targets = body.get("targets")
    if not isinstance(targets, list) or not targets:
        raise ValidationError(f"policy {name!r} needs a non-empty targets "
                              "list")
    return Policy(
        name=name,
        type=type_name,
        targets=[str(t) for t in targets],
        properties=dict(body.get("properties") or {}),
    )


def dump_service_template(service: ServiceTemplate) -> str:
    """Serialize a service template back to TOSCA YAML."""
    node_templates: dict[str, Any] = {}
    for template in service.node_templates.values():
        body: dict[str, Any] = {"type": template.type}
        if template.properties:
            body["properties"] = template.properties
        if template.requirements:
            body["requirements"] = [
                {req.name: {"node": req.target,
                            "relationship": req.relationship}}
                for req in template.requirements
            ]
        node_templates[template.name] = body
    policies = [
        {p.name: {"type": p.type, "targets": p.targets,
                  "properties": p.properties}}
        for p in service.policies
    ]
    doc: dict[str, Any] = {
        "tosca_definitions_version": "myrtus_tosca_1_0",
        "metadata": {**service.metadata, "template_name": service.name},
        "topology_template": {
            "inputs": service.inputs,
            "node_templates": node_templates,
            "policies": policies,
        },
    }
    return yaml.safe_dump(doc, sort_keys=False)
