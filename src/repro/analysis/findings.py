"""Shared finding/severity/baseline core for all three analysis engines.

Every engine (continuum-lint, the MLIR dataflow analyses, the static
TOSCA checker) reports :class:`Finding` objects with a stable
fingerprint, so one baseline file and one reporter serve all of them.
Fingerprints hash the *content* of the finding (rule, file, offending
source context) rather than the line number, so unrelated edits that
shift lines do not invalidate the baseline.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from enum import Enum
from pathlib import Path


class Severity(str, Enum):
    """Ordered severity ladder; ``--check`` gates on ERROR and WARNING."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 2, "warning": 1, "info": 0}[self.value]

    def __lt__(self, other: "Severity") -> bool:  # type: ignore[override]
        return self.rank < other.rank


@dataclass(frozen=True)
class Finding:
    """One diagnostic from one engine.

    ``context`` carries the content the fingerprint is derived from
    (the stripped source line for lint findings, the structural message
    for IR/TOSCA findings); ``occurrence`` disambiguates identical
    findings in the same file.
    """

    tool: str  # "lint" | "mlir" | "tosca"
    rule: str  # e.g. "global-random"
    path: str  # repo-relative path or logical location
    line: int
    message: str
    severity: Severity = Severity.ERROR
    context: str = ""
    occurrence: int = 0

    @property
    def fingerprint(self) -> str:
        payload = (f"{self.tool}:{self.rule}:{self.path}:"
                   f"{self.context or self.message}:{self.occurrence}")
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def as_dict(self) -> dict:
        return {
            "tool": self.tool,
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "severity": self.severity.value,
            "fingerprint": self.fingerprint,
        }


def assign_occurrences(findings: list[Finding]) -> list[Finding]:
    """Number findings that would otherwise share a fingerprint.

    Two identical violations on different lines of one file get
    occurrence 0 and 1 (in line order), keeping fingerprints unique and
    stable under unrelated edits.
    """
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.rule))
    seen: dict[str, int] = {}
    result = []
    for finding in ordered:
        key = f"{finding.tool}:{finding.rule}:{finding.path}:{finding.context}"
        index = seen.get(key, 0)
        seen[key] = index + 1
        result.append(replace(finding, occurrence=index))
    return result


@dataclass
class BaselineDiff:
    """Partition of a run's findings against the committed baseline."""

    new: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    fixed: list[dict] = field(default_factory=list)  # stale baseline entries

    @property
    def blocking(self) -> list[Finding]:
        """New findings that should fail ``--check``."""
        return [f for f in self.new if f.severity != Severity.INFO]


class Baseline:
    """A committed set of accepted pre-existing findings.

    New findings (not in the baseline) block CI; baselined ones are
    reported but pass. Entries whose finding no longer occurs are
    surfaced as "fixed" so the baseline can be shrunk.
    """

    VERSION = 1

    def __init__(self, entries: list[dict] | None = None):
        self.entries = list(entries or [])
        self._by_fingerprint = {e["fingerprint"]: e for e in self.entries}

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        path = Path(path)
        if not path.exists():
            return cls()
        data = json.loads(path.read_text())
        if data.get("version") != cls.VERSION:
            raise ValueError(
                f"baseline {path} has unsupported version "
                f"{data.get('version')!r}")
        return cls(data.get("entries", []))

    @staticmethod
    def write(path: str | Path, findings: list[Finding]) -> None:
        entries = [f.as_dict() for f in
                   sorted(findings, key=lambda f: (f.path, f.line, f.rule))]
        payload = {"version": Baseline.VERSION, "entries": entries}
        Path(path).write_text(json.dumps(payload, indent=2) + "\n")

    def diff(self, findings: list[Finding]) -> BaselineDiff:
        result = BaselineDiff()
        seen: set[str] = set()
        for finding in findings:
            seen.add(finding.fingerprint)
            if finding.fingerprint in self._by_fingerprint:
                result.baselined.append(finding)
            else:
                result.new.append(finding)
        result.fixed = [e for e in self.entries
                        if e["fingerprint"] not in seen]
        return result
