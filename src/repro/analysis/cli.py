"""Command line for the analysis subsystem.

Lint + flow mode (the default)::

    python -m repro.analysis                 # report against baseline
    python -m repro.analysis --check         # exit 1 on new findings
    python -m repro.analysis --write-baseline
    python -m repro.analysis --json src/repro/kb

Topic-graph mode::

    python -m repro.analysis graph                # JSON topic graph
    python -m repro.analysis graph --format dot   # Graphviz DOT

TOSCA mode::

    python -m repro.analysis tosca service.yaml
    python -m repro.analysis tosca package.csar

The default run merges continuum-lint findings with the whole-program
flow analyses (topic contracts, DES generator rules) and diffs the
union against one baseline. Parsed ASTs are shared between the engines
through an mtime+size-keyed cache persisted at ``cache`` from
``[tool.repro-analysis]`` (``--no-cache`` disables persistence).

Exit codes: 0 = clean (or everything baselined), 1 = new blocking
findings, 2 = usage/configuration error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.cache import ParseCache
from repro.analysis.config import load_config
from repro.analysis.findings import Baseline, Severity
from repro.analysis.reporters import render_findings, render_json, render_text


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-analysis",
        description="Static analysis for the MYRTUS reproduction "
                    "(continuum-lint, topic-flow/DES contracts, "
                    "TOSCA checking).")
    parser.add_argument("paths", nargs="*",
                        help="files/dirs to lint (default: configured "
                             "paths), 'graph' for the topic graph, or "
                             "'tosca FILE' for template mode")
    parser.add_argument("--root", default=".",
                        help="repo root (where pyproject.toml and the "
                             "baseline live)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when new findings exist")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable output")
    parser.add_argument("--write-baseline", action="store_true",
                        help="accept the current findings as baseline")
    parser.add_argument("--baseline", default=None,
                        help="baseline file (default from config)")
    parser.add_argument("--rules", default=None,
                        help="comma-separated rule ids to run "
                             "(default: all enabled)")
    parser.add_argument("--format", default="json",
                        choices=("json", "dot"),
                        help="graph mode output format")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not load or persist the parse cache")
    parser.add_argument("--cache", default=None,
                        help="parse-cache file (default from config)")
    parser.add_argument("--verbose", action="store_true",
                        help="also list baselined findings")
    return parser


def _open_cache(args, config) -> tuple[ParseCache, Path | None]:
    if args.no_cache:
        return ParseCache(), None
    cache_path = Path(args.cache) if args.cache else config.cache_path
    if cache_path is None:
        return ParseCache(), None
    return ParseCache.load(cache_path), cache_path


def _run_tosca(paths: list[str], as_json: bool) -> int:
    from repro.analysis.tosca_check import check_csar_bytes, check_service
    from repro.core.errors import ValidationError
    from repro.tosca.parser import parse_service_template

    if not paths:
        print("tosca mode needs at least one file", file=sys.stderr)
        return 2
    findings = []
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            print(f"no such file: {path}", file=sys.stderr)
            return 2
        if path.suffix in (".csar", ".zip"):
            findings += check_csar_bytes(path.read_bytes(), str(path))
        else:
            try:
                service = parse_service_template(path.read_text())
            except ValidationError as exc:
                print(f"{path}: cannot parse: {exc}", file=sys.stderr)
                return 1
            findings += check_service(service, str(path))
    if as_json:
        import json as json_module
        print(json_module.dumps([f.as_dict() for f in findings],
                                indent=2))
    else:
        print(render_findings(findings))
    blocking = [f for f in findings if f.severity != Severity.INFO]
    return 1 if blocking else 0


def _run_graph(args) -> int:
    import json as json_module

    from repro.analysis.flow import (build_topic_graph, graph_to_dot,
                                     load_project)

    config = load_config(args.root)
    cache, cache_path = _open_cache(args, config)
    project = load_project(config, cache)
    graph = build_topic_graph(project)
    if cache_path is not None:
        cache.save(cache_path)
    if args.format == "dot":
        print(graph_to_dot(graph), end="")
    else:
        print(json_module.dumps(graph, indent=2))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.paths and args.paths[0] == "tosca":
        return _run_tosca(args.paths[1:], args.json)
    if args.paths and args.paths[0] == "graph":
        if len(args.paths) > 1:
            print("graph mode takes no paths", file=sys.stderr)
            return 2
        return _run_graph(args)

    from repro.analysis.flow import FLOW_RULES, run_flow
    from repro.analysis.lint import LintEngine, all_rules

    config = load_config(args.root)
    only_rules = None
    if args.rules:
        only_rules = {r.strip() for r in args.rules.split(",")
                      if r.strip()}
        known = set(all_rules()) | FLOW_RULES
        unknown = only_rules - known
        if unknown:
            print(f"unknown rule(s): {', '.join(sorted(unknown))}; "
                  f"available: {', '.join(sorted(known))}",
                  file=sys.stderr)
            return 2
    for raw in args.paths:
        if not Path(raw).exists():
            print(f"no such path: {raw}", file=sys.stderr)
            return 2
    cache, cache_path = _open_cache(args, config)
    engine = LintEngine(config, only_rules=only_rules, cache=cache)
    findings = engine.run(args.paths or None)
    # The flow analyses are whole-program: they run on the configured
    # flow paths (not the lint path selection) unless rule-filtered out.
    if only_rules is None or only_rules & FLOW_RULES:
        findings = findings + run_flow(config, cache=cache,
                                       only_rules=only_rules)
    findings.sort(key=lambda f: (f.path, f.line, f.tool, f.rule,
                                 f.occurrence))
    if cache_path is not None:
        cache.save(cache_path)

    baseline_path = Path(args.baseline) if args.baseline \
        else config.baseline_path
    if args.write_baseline:
        Baseline.write(baseline_path, findings)
        print(f"wrote {len(findings)} finding(s) to {baseline_path}")
        return 0
    baseline = Baseline.load(baseline_path)
    diff = baseline.diff(findings)
    print(render_json(diff) if args.json
          else render_text(diff, verbose=args.verbose))
    if args.check and diff.blocking:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
