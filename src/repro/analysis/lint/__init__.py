"""continuum-lint: AST rule engine enforcing determinism invariants."""

from repro.analysis.lint.engine import (
    LintContext,
    LintEngine,
    Rule,
    all_rules,
    register_rule,
)
from repro.analysis.lint import rules  # noqa: F401  (registers the rules)

__all__ = ["LintContext", "LintEngine", "Rule", "all_rules",
           "register_rule", "rules"]
