"""The continuum-lint rules.

These encode the determinism and simulation invariants DESIGN.md
states: all randomness flows through ``repro.core.rng.RngRegistry``,
simulation code never reads wall-clock time, and seeds are derived with
``derive_seed`` (full-entropy, hash-stable) rather than from RNG floats
or ``hash()``.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Severity
from repro.analysis.lint.engine import LintContext, Rule, register_rule

# Module-level functions on `random` that consume the global stream.
_GLOBAL_RANDOM_FNS = frozenset({
    "random", "randint", "randrange", "getrandbits", "choice", "choices",
    "shuffle", "sample", "uniform", "triangular", "gauss", "normalvariate",
    "lognormvariate", "expovariate", "betavariate", "paretovariate",
    "vonmisesvariate", "weibullvariate", "seed",
})

# Legacy numpy global-state API (np.random.<fn> without a Generator).
_GLOBAL_NP_RANDOM_FNS = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "choice",
    "shuffle", "permutation", "normal", "uniform", "exponential",
    "poisson", "binomial", "seed",
})

_WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

_SEEDING_CALLS = frozenset({
    "random.Random", "numpy.random.default_rng", "numpy.random.RandomState",
})

# Canonical and re-exported names of the runtime primitives that only
# repro.runtime (and tests) may construct directly.
_RUNTIME_PRIMITIVES = frozenset({
    "repro.continuum.simulator.Simulator",
    "repro.continuum.Simulator",
    "repro.core.events.EventBus",
    "repro.core.EventBus",
})


@register_rule
class GlobalRandomRule(Rule):
    """All stochastic choices must come from an ``RngRegistry`` stream.

    Flags calls into the process-global ``random`` module (or numpy's
    legacy global-state API), and unseeded generator constructions
    (``random.Random()`` / ``np.random.default_rng()`` with no seed),
    anywhere outside the rng-allowlisted files.
    """

    rule_id = "global-random"
    description = ("stochastic call bypasses RngRegistry "
                   "(global random module or unseeded generator)")
    severity = Severity.ERROR
    node_types = (ast.Call,)

    def on_node(self, node: ast.Call, ctx: LintContext) -> None:
        if ctx.config.is_rng_allowed(ctx.rel_path):
            return
        target = ctx.resolve_call_target(node.func)
        if target is None:
            return
        parts = target.split(".")
        if parts[0] == "random" and len(parts) == 2 \
                and parts[1] in _GLOBAL_RANDOM_FNS:
            ctx.report(self, node,
                       f"call to global random module ({target}); route "
                       "it through repro.core.rng.RngRegistry")
        elif parts[0] == "numpy" and len(parts) >= 2 \
                and parts[1] == "random" \
                and parts[-1] in _GLOBAL_NP_RANDOM_FNS and len(parts) == 3:
            ctx.report(self, node,
                       f"call to numpy global random state ({target}); "
                       "use RngRegistry.numpy() instead")
        elif target in _SEEDING_CALLS and not node.args \
                and not node.keywords:
            ctx.report(self, node,
                       f"unseeded generator {target}() is "
                       "nondeterministic; pass an explicit seed")


@register_rule
class WallClockRule(Rule):
    """Simulation code runs on logical clocks, never the wall clock."""

    rule_id = "wall-clock"
    description = ("wall-clock read inside simulation code "
                   "(use the simulator's logical clock)")
    severity = Severity.ERROR
    node_types = (ast.Call,)

    def on_node(self, node: ast.Call, ctx: LintContext) -> None:
        if not ctx.config.is_simulation_path(ctx.rel_path):
            return
        target = ctx.resolve_call_target(node.func)
        if target in _WALL_CLOCK_CALLS:
            ctx.report(self, node,
                       f"wall-clock read ({target}) in simulation code; "
                       "use the logical clock")


@register_rule
class MutableDefaultRule(Rule):
    """Mutable default arguments alias state across calls."""

    rule_id = "mutable-default"
    description = "mutable default argument (list/dict/set literal)"
    severity = Severity.WARNING
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef)

    def on_node(self, node: ast.FunctionDef, ctx: LintContext) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                kind = type(default).__name__.lower()
                ctx.report(self, default,
                           f"function {node.name}: mutable default "
                           f"argument ({kind} literal); use None and "
                           "construct inside the body")
            elif isinstance(default, ast.Call) \
                    and isinstance(default.func, ast.Name) \
                    and default.func.id in ("list", "dict", "set") \
                    and not default.args and not default.keywords:
                ctx.report(self, default,
                           f"function {node.name}: mutable default "
                           f"argument ({default.func.id}()); use None "
                           "and construct inside the body")


@register_rule
class OverbroadExceptRule(Rule):
    """Bare excepts (and silently swallowed broad ones) hide faults."""

    rule_id = "overbroad-except"
    description = "bare except, or broad except whose body only passes"
    severity = Severity.WARNING
    node_types = (ast.ExceptHandler,)

    def on_node(self, node: ast.ExceptHandler, ctx: LintContext) -> None:
        if node.type is None:
            ctx.report(self, node,
                       "bare except: catches SystemExit/KeyboardInterrupt; "
                       "name the exception type")
            return
        if isinstance(node.type, ast.Name) \
                and node.type.id in ("Exception", "BaseException") \
                and self._body_swallows(node.body):
            ctx.report(self, node,
                       f"except {node.type.id} with a pass-only body "
                       "silently swallows all errors")

    @staticmethod
    def _body_swallows(body: list[ast.stmt]) -> bool:
        if len(body) != 1:
            return False
        stmt = body[0]
        return isinstance(stmt, ast.Pass) or (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis)


@register_rule
class RuntimeConstructionRule(Rule):
    """The runtime layer owns clock and bus; nobody else constructs them.

    A subsystem that builds its own ``Simulator()`` or ``EventBus()``
    forks the timeline: its events can no longer be causally ordered
    against the rest of the system, and its trace diverges from the
    canonical one. Everything outside ``repro/runtime/`` (and tests)
    must be injected with a ``RuntimeContext`` instead.
    """

    rule_id = "runtime-construction"
    description = ("direct Simulator()/EventBus() construction outside "
                   "repro.runtime (inject a RuntimeContext)")
    severity = Severity.ERROR
    node_types = (ast.Call,)

    def on_node(self, node: ast.Call, ctx: LintContext) -> None:
        if ctx.config.is_runtime_allowed(ctx.rel_path):
            return
        target = ctx.resolve_call_target(node.func)
        if target in _RUNTIME_PRIMITIVES:
            kind = target.rsplit(".", 1)[-1]
            ctx.report(self, node,
                       f"direct {kind}() construction forks the shared "
                       "timeline; accept a repro.runtime.RuntimeContext "
                       "and use ctx.sim / ctx.bus")


@register_rule
class HotPathAllocationRule(Rule):
    """Functions marked ``# perf: hot`` must not allocate per call.

    The pragma marks dispatch/scheduling/serialization hot paths whose
    cost was measured and paid down (see benchmarks/perf). A
    comprehension or ``list(...)`` copy creeping back into one of them
    is how the win quietly erodes, so the gate flags them; hoist the
    allocation out of the hot path (as ``EventBus.publish`` does with
    ``_build_dispatch``) or drop the pragma if the function is no
    longer hot.
    """

    rule_id = "hot-path-allocation"
    description = ("list/dict/set comprehension or list() copy inside "
                   "a function marked '# perf: hot'")
    severity = Severity.WARNING
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef)

    _COMPREHENSIONS = {
        ast.ListComp: "list comprehension",
        ast.SetComp: "set comprehension",
        ast.DictComp: "dict comprehension",
    }

    def on_node(self, node: ast.FunctionDef, ctx: LintContext) -> None:
        if not self._is_hot(node, ctx):
            return
        for inner in self._own_nodes(node):
            kind = self._COMPREHENSIONS.get(type(inner))
            if kind is not None:
                ctx.report(self, inner,
                           f"function {node.name} is marked '# perf: "
                           f"hot' but builds a {kind}; hoist it out of "
                           "the hot path")
            elif isinstance(inner, ast.Call) \
                    and isinstance(inner.func, ast.Name) \
                    and inner.func.id == "list" \
                    and len(inner.args) == 1 and not inner.keywords:
                ctx.report(self, inner,
                           f"function {node.name} is marked '# perf: "
                           "hot' but copies with list(); iterate the "
                           "original instead")

    @staticmethod
    def _is_hot(node: ast.FunctionDef, ctx: LintContext) -> bool:
        """The pragma may sit on any line of the (multi-line) signature."""
        first_body_line = node.body[0].lineno if node.body \
            else node.lineno + 1
        return any("# perf: hot" in ctx.source_line(line)
                   for line in range(node.lineno, first_body_line))

    @staticmethod
    def _own_nodes(func: ast.FunctionDef):
        """Walk the function body, pruning nested scopes.

        Nested defs are dispatched to this rule as their own nodes (and
        comprehensions/lambdas inside them run in the nested scope), so
        they are not this function's per-call cost.
        """
        stack: list[ast.AST] = list(func.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda, ast.ClassDef)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))


@register_rule
class PrintTelemetryRule(Rule):
    """Telemetry goes through ``repro.obs``, never ad-hoc ``print()``.

    A ``print()`` in library code is telemetry that bypasses the trace,
    the metrics registry, and the span tree: it cannot be replayed,
    exported, or asserted on, and it interleaves nondeterministically
    with real output. Only the rendering CLIs (the print-allowlist) may
    write to stdout; everything else records spans/metrics or publishes
    on the bus.
    """

    rule_id = "print-telemetry"
    description = ("ad-hoc print() telemetry outside a rendering CLI "
                   "(use repro.obs spans/metrics or the trace)")
    severity = Severity.ERROR
    node_types = (ast.Call,)

    def on_node(self, node: ast.Call, ctx: LintContext) -> None:
        if ctx.config.is_print_allowed(ctx.rel_path):
            return
        if isinstance(node.func, ast.Name) and node.func.id == "print":
            ctx.report(self, node,
                       "print() telemetry bypasses the trace and the "
                       "metrics registry; record a span/metric or "
                       "publish on the bus instead")


# Canonical and re-exported names of the deprecated context shims:
# RuntimeContext.adopt() replaced both.
_CONTEXT_SHIMS = frozenset({
    "repro.runtime.ensure_context",
    "repro.runtime.as_simulator",
    "repro.runtime.context.ensure_context",
    "repro.runtime.context.as_simulator",
})


@register_rule
class DeprecatedContextShimRule(Rule):
    """``ensure_context``/``as_simulator`` are deprecated shims.

    ``RuntimeContext.adopt()`` is the one context-injection surface;
    the old helpers survive only for external callers (they warn) and
    inside ``repro/runtime/`` itself. Any other in-repo call site is a
    migration that was missed — flag it so the shims can eventually be
    deleted. Stragglers with a reason to wait go on the
    ``context-shim-allowlist``.
    """

    rule_id = "deprecated-context-shim"
    description = ("call to deprecated ensure_context()/as_simulator() "
                   "(use RuntimeContext.adopt)")
    severity = Severity.ERROR
    node_types = (ast.Call,)

    def on_node(self, node: ast.Call, ctx: LintContext) -> None:
        if ctx.config.is_context_shim_allowed(ctx.rel_path):
            return
        target = ctx.resolve_call_target(node.func)
        if target in _CONTEXT_SHIMS:
            shim = target.rsplit(".", 1)[-1]
            ctx.report(self, node,
                       f"deprecated context shim {shim}(); use "
                       "RuntimeContext.adopt(obj) instead")


@register_rule
class DeprecatedPlaceApiRule(Rule):
    """``PlacementStrategy.place()`` is a deprecated shim over solve().

    The anytime API (``solve(PlacementRequest) -> PlacementResult``)
    carries budgets, warm starts and solver statistics; ``place()``
    survives only for external callers (it warns once per call site).
    Any in-repo ``.place(...)`` call is a migration that was missed.
    Stragglers with a reason to wait go on the ``place-api-allowlist``
    (empty by default; tests are always allowed).
    """

    rule_id = "deprecated-place-api"
    description = ("call to deprecated PlacementStrategy.place() "
                   "(build a PlacementRequest and call solve())")
    severity = Severity.ERROR
    node_types = (ast.Call,)

    def on_node(self, node: ast.Call, ctx: LintContext) -> None:
        if ctx.config.is_place_api_allowed(ctx.rel_path):
            return
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr == "place":
            ctx.report(self, node,
                       "deprecated place() API; build a "
                       "PlacementRequest and call solve() instead")


@register_rule
class SeedEntropyRule(Rule):
    """Child seeds must come from ``derive_seed``, not RNG floats/hash().

    ``random.Random(rng.random())`` folds a 53-bit float into the seed
    space non-uniformly, and ``hash(...)`` changes across processes
    (PYTHONHASHSEED), so either pattern silently breaks replayability.
    """

    rule_id = "seed-entropy"
    description = ("seed derived from rng.random()/hash()/time.time() "
                   "instead of repro.core.rng.derive_seed")
    severity = Severity.ERROR
    node_types = (ast.Call,)

    def on_node(self, node: ast.Call, ctx: LintContext) -> None:
        target = ctx.resolve_call_target(node.func)
        is_seeding = target in _SEEDING_CALLS or (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "seed")
        if not is_seeding:
            return
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            for inner in ast.walk(arg):
                if not isinstance(inner, ast.Call):
                    continue
                inner_target = ctx.resolve_call_target(inner.func)
                if isinstance(inner.func, ast.Attribute) \
                        and inner.func.attr == "random":
                    ctx.report(self, node,
                               "seeding from a .random() float loses "
                               "entropy; use derive_seed(root, name)")
                elif inner_target == "hash":
                    ctx.report(self, node,
                               "seeding from hash() is unstable across "
                               "processes (PYTHONHASHSEED); use "
                               "derive_seed(root, name)")
                elif inner_target in _WALL_CLOCK_CALLS:
                    ctx.report(self, node,
                               "seeding from the wall clock makes runs "
                               "unreproducible; use derive_seed")
