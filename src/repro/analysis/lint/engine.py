"""continuum-lint: the AST rule engine.

One walk per file: the engine parses the module, builds an import map
(so rules can resolve ``rnd.random()`` back to ``random.random`` no
matter how the module was imported), dispatches every AST node to the
rules that registered interest in its type, then filters the collected
findings through suppression pragmas.

Pragma syntax (documented in DESIGN.md):

- ``# continuum-lint: disable=rule-a,rule-b`` on the offending line
  suppresses those rules for that line (``disable`` alone = all rules).
- ``# continuum-lint: disable-file=rule-a`` anywhere in the file
  suppresses the rule file-wide.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.cache import ParseCache, ParsedFile, parse_source
from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding, Severity, assign_occurrences

_PRAGMA = re.compile(
    r"#\s*continuum-lint:\s*(disable(?:-file)?)\s*(?:=\s*([\w,\-\s]+))?")


@dataclass
class LintContext:
    """Per-file state shared with every rule during the walk."""

    rel_path: str
    tree: ast.Module
    lines: list[str]
    config: AnalysisConfig
    # alias -> dotted module name ("np" -> "numpy")
    import_aliases: dict[str, str] = field(default_factory=dict)
    # local name -> dotted origin ("randint" -> "random.randint")
    from_imports: dict[str, str] = field(default_factory=dict)
    findings: list[Finding] = field(default_factory=list)

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def report(self, rule: "Rule", node: ast.AST, message: str) -> None:
        lineno = getattr(node, "lineno", 1)
        self.findings.append(Finding(
            tool="lint",
            rule=rule.rule_id,
            path=self.rel_path,
            line=lineno,
            message=message,
            severity=rule.severity,
            context=self.source_line(lineno),
        ))

    def resolve_call_target(self, node: ast.AST) -> str | None:
        """Dotted origin of a call target, through import aliases.

        ``np.random.default_rng`` with ``import numpy as np`` resolves
        to ``numpy.random.default_rng``; a bare ``randint`` imported via
        ``from random import randint`` resolves to ``random.randint``.
        Returns None for names the imports cannot explain.
        """
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        head = current.id
        parts.reverse()
        if head in self.import_aliases:
            return ".".join([self.import_aliases[head]] + parts)
        if head in self.from_imports:
            return ".".join([self.from_imports[head]] + parts)
        if not parts and head in ("hash",):  # builtin of interest
            return head
        return None


class Rule:
    """Base class for lint rules.

    Subclasses set ``rule_id``/``severity``/``node_types`` and
    implement :meth:`on_node`; the engine calls it for every AST node
    whose type is listed in ``node_types``.
    """

    rule_id: str = ""
    description: str = ""
    severity: Severity = Severity.ERROR
    node_types: tuple[type, ...] = ()

    def on_node(self, node: ast.AST, ctx: LintContext) -> None:
        raise NotImplementedError


_REGISTRY: dict[str, type[Rule]] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} lacks a rule_id")
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> dict[str, type[Rule]]:
    return dict(_REGISTRY)


def _collect_imports(tree: ast.Module, ctx: LintContext) -> None:
    # Shared with the flow symbol table: one resolution semantics for
    # both engines (`import numpy as np` -> "np": "numpy", `from random
    # import randint as ri` -> "ri": "random.randint").
    from repro.analysis.flow.symbols import collect_import_maps
    aliases, from_imports = collect_import_maps(tree)
    ctx.import_aliases.update(aliases)
    ctx.from_imports.update(from_imports)


def _parse_pragmas(lines: list[str]) -> tuple[
        dict[int, set[str] | None], dict[str, bool], bool]:
    """Return (line pragmas, file-wide disabled rules, disable-all-file).

    A ``None`` rule set means "all rules" for that line.
    """
    line_pragmas: dict[int, set[str] | None] = {}
    file_disabled: dict[str, bool] = {}
    file_all = False
    for lineno, line in enumerate(lines, start=1):
        match = _PRAGMA.search(line)
        if not match:
            continue
        kind, rules_text = match.groups()
        rules = None
        if rules_text:
            rules = {r.strip() for r in rules_text.split(",") if r.strip()}
        if kind == "disable":
            line_pragmas[lineno] = rules
        else:  # disable-file
            if rules is None:
                file_all = True
            else:
                for rule in rules:
                    file_disabled[rule] = True
    return line_pragmas, file_disabled, file_all


def _suppressed(finding: Finding,
                line_pragmas: dict[int, set[str] | None],
                file_disabled: dict[str, bool], file_all: bool) -> bool:
    if file_all or file_disabled.get(finding.rule):
        return True
    if finding.line in line_pragmas:
        rules = line_pragmas[finding.line]
        return rules is None or finding.rule in rules
    return False


class LintEngine:
    """Runs the registered rules over a set of Python files."""

    def __init__(self, config: AnalysisConfig,
                 only_rules: set[str] | None = None,
                 cache: ParseCache | None = None):
        self.config = config
        self.cache = cache if cache is not None else ParseCache()
        self.rules: list[Rule] = []
        for rule_id, cls in sorted(all_rules().items()):
            if only_rules is not None and rule_id not in only_rules:
                continue
            if config.rule_enabled(rule_id):
                self.rules.append(cls())

    def run(self, paths: list[str | Path] | None = None) -> list[Finding]:
        """Lint *paths* (files or directories); returns all findings."""
        root = self.config.root
        targets = [Path(p) for p in (paths or self.config.paths)]
        files: list[Path] = []
        for target in targets:
            target = target if target.is_absolute() else root / target
            if target.is_dir():
                files.extend(sorted(target.rglob("*.py")))
            elif target.suffix == ".py":
                files.append(target)
        findings: list[Finding] = []
        for file_path in files:
            try:
                rel = str(file_path.relative_to(root))
            except ValueError:
                rel = str(file_path)
            if self.config.is_excluded(rel):
                continue
            findings.extend(self.lint_file(file_path, rel))
        return assign_occurrences(findings)

    def lint_file(self, file_path: Path, rel_path: str) -> list[Finding]:
        parsed = self.cache.parse(file_path)
        if parsed.error is not None and parsed.error[0] == \
                "unreadable file":
            return []
        return self._lint_parsed(parsed, rel_path)

    def lint_source(self, source: str, rel_path: str) -> list[Finding]:
        """Lint a source string (the unit the rule tests exercise)."""
        return self._lint_parsed(parse_source(source), rel_path)

    def _lint_parsed(self, parsed: ParsedFile,
                     rel_path: str) -> list[Finding]:
        lines = parsed.lines
        if parsed.tree is None:
            message, lineno = parsed.error or ("invalid syntax", 1)
            return [Finding(
                tool="lint", rule="syntax-error", path=rel_path,
                line=lineno, message=f"cannot parse: {message}",
                severity=Severity.ERROR,
                context=lines[lineno - 1].strip()
                if 0 < lineno <= len(lines) else "")]
        ctx = LintContext(rel_path=rel_path, tree=parsed.tree,
                          lines=lines, config=self.config)
        _collect_imports(parsed.tree, ctx)
        dispatch: dict[type, list[Rule]] = {}
        for rule in self.rules:
            for node_type in rule.node_types:
                dispatch.setdefault(node_type, []).append(rule)
        for node in ast.walk(parsed.tree):
            for rule in dispatch.get(type(node), ()):
                rule.on_node(node, ctx)
        line_pragmas, file_disabled, file_all = _parse_pragmas(lines)
        return [f for f in ctx.findings
                if not _suppressed(f, line_pragmas, file_disabled,
                                   file_all)]
