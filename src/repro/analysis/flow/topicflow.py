"""Whole-program topic-flow extraction and contract checking.

Walks every function (including nested handlers) in the project for
``*.publish(...)`` / ``*.subscribe(...)`` calls on a bus-like receiver,
resolves the topic argument to a static :class:`TopicPattern` (literal
strings exactly, f-strings with placeholders widened to ``*``), then
checks the whole program against the registry in
:mod:`repro.analysis.flow.topics`:

- ``flow-topic-name`` — malformed topic segments, or wildcard
  characters typed into a *published* topic.
- ``flow-undeclared-topic`` — a publish whose topic family matches no
  registered contract.
- ``flow-dead-topic`` — a ``consumed="bus"`` contract that is published
  but has no in-process subscriber whose pattern can receive it.
- ``flow-orphan-subscriber`` — a subscription no publish site can ever
  reach.
- ``flow-payload-schema`` — a literal payload dict that violates the
  matching contract's key set, or a handler accessing payload keys the
  contract does not carry.
- ``des-handler-yields`` — a bus handler that is a generator function
  (the bus calls handlers synchronously; a generator body never runs).

Forwarding wrappers (``RuntimeContext.publish`` and friends, whose
topic argument is one of their own parameters) are not publish sites —
the analysis charges the topic to the caller that named it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.findings import Finding, Severity
from repro.analysis.flow.patterns import (TopicPattern, pattern_from_ast,
                                          segment_violations)
from repro.analysis.flow.symbols import (FunctionInfo, ModuleInfo, Project,
                                         function_body_nodes)
from repro.analysis.flow.topics import (TOPIC_CONTRACTS, TopicContract,
                                        contracts_for)

#: Terminal receiver names that make `x.publish(...)` a bus call.
_BUS_RECEIVERS = frozenset({"bus", "_bus", "ctx", "_ctx", "context"})


@dataclass
class PublishSite:
    """One statically resolved ``publish`` call."""

    module: str
    qualname: str  # enclosing function ("repro.mod:Cls.meth")
    rel_path: str
    lineno: int
    pattern: TopicPattern
    payload: ast.expr | None
    context: str  # stripped source line, for fingerprints


@dataclass
class SubscribeSite:
    """One statically resolved ``subscribe`` call."""

    module: str
    qualname: str
    rel_path: str
    lineno: int
    pattern: TopicPattern
    handler: FunctionInfo | None  # resolved handler function, if any
    context: str

    @property
    def handler_name(self) -> str:
        return self.handler.qualname if self.handler else self.qualname


def _receiver_terminal(func: ast.Attribute) -> str | None:
    """Name of the object ``.publish``/``.subscribe`` is called on."""
    value = func.value
    if isinstance(value, ast.Attribute):
        return value.attr
    if isinstance(value, ast.Name):
        return value.id
    return None


def _call_arg(call: ast.Call, index: int, *names: str) -> ast.expr | None:
    if len(call.args) > index:
        return call.args[index]
    for keyword in call.keywords:
        if keyword.arg in names:
            return keyword.value
    return None


def _nested_function(owner: ast.FunctionDef, name: str,
                     module: str, qualname: str) -> FunctionInfo | None:
    """A def nested directly inside *owner*, as an ad-hoc FunctionInfo."""
    from repro.analysis.flow.symbols import _is_generator
    for stmt in ast.walk(owner):
        if isinstance(stmt, ast.FunctionDef) and stmt.name == name:
            return FunctionInfo(
                module=module, name=name,
                qualname=f"{qualname}.{name}", node=stmt,
                is_generator=_is_generator(stmt))
    return None


class _SiteExtractor:
    """Recursive walk collecting publish/subscribe sites per module."""

    def __init__(self, project: Project):
        self.project = project
        self.publishes: list[PublishSite] = []
        self.subscribes: list[SubscribeSite] = []

    def extract(self) -> None:
        for name in sorted(self.project.modules):
            info = self.project.modules[name]
            self._visit_body(info.tree.body, info, class_name=None,
                             func=None, qualname=f"{info.name}:<module>")

    # -- traversal ----------------------------------------------------------

    def _visit_body(self, body, info: ModuleInfo, class_name: str | None,
                    func: ast.FunctionDef | None, qualname: str) -> None:
        for stmt in body:
            self._visit(stmt, info, class_name, func, qualname)

    def _visit(self, node: ast.AST, info: ModuleInfo,
               class_name: str | None, func: ast.FunctionDef | None,
               qualname: str) -> None:
        if isinstance(node, ast.ClassDef):
            self._visit_body(node.body, info, node.name, None,
                             f"{info.name}:{node.name}")
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if func is None:
                base = f"{info.name}:{class_name}.{node.name}" \
                    if class_name else f"{info.name}:{node.name}"
            else:
                base = f"{qualname}.{node.name}"
            self._visit_body(node.body, info, class_name, node, base)
            return
        if isinstance(node, ast.Call):
            self._maybe_site(node, info, class_name, func, qualname)
        for child in ast.iter_child_nodes(node):
            self._visit(child, info, class_name, func, qualname)

    # -- site recognition ---------------------------------------------------

    def _maybe_site(self, call: ast.Call, info: ModuleInfo,
                    class_name: str | None,
                    func: ast.FunctionDef | None, qualname: str) -> None:
        target = call.func
        if not isinstance(target, ast.Attribute) \
                or target.attr not in ("publish", "subscribe") \
                or _receiver_terminal(target) not in _BUS_RECEIVERS:
            return
        topic_arg = _call_arg(call, 0, "topic", "pattern")
        if topic_arg is None:
            return
        # Forwarding wrapper: the topic is one of the enclosing
        # function's own parameters — the real site is the caller.
        if isinstance(topic_arg, ast.Name) and func is not None:
            params = {a.arg for a in (func.args.posonlyargs
                                      + func.args.args
                                      + func.args.kwonlyargs)}
            if topic_arg.id in params:
                return
        pattern = pattern_from_ast(topic_arg)
        if pattern is None:
            return  # dynamic beyond static resolution; no finding
        lineno = getattr(call, "lineno", 1)
        context = info.lines[lineno - 1].strip() \
            if 0 < lineno <= len(info.lines) else ""
        if target.attr == "publish":
            self.publishes.append(PublishSite(
                module=info.name, qualname=qualname,
                rel_path=info.rel_path, lineno=lineno, pattern=pattern,
                payload=_call_arg(call, 1, "payload"), context=context))
        else:
            handler = self._resolve_handler(
                _call_arg(call, 1, "handler"), info, class_name, func,
                qualname)
            self.subscribes.append(SubscribeSite(
                module=info.name, qualname=qualname,
                rel_path=info.rel_path, lineno=lineno, pattern=pattern,
                handler=handler, context=context))

    def _resolve_handler(self, node: ast.expr | None, info: ModuleInfo,
                         class_name: str | None,
                         func: ast.FunctionDef | None,
                         qualname: str) -> FunctionInfo | None:
        if node is None:
            return None
        if isinstance(node, ast.Attribute) \
                and isinstance(node.value, ast.Name) \
                and node.value.id in ("self", "cls") \
                and class_name is not None:
            cls_info = info.classes.get(class_name)
            if cls_info is not None:
                return self.project._method_in_mro(cls_info, node.attr)
            return None
        if isinstance(node, ast.Name):
            if func is not None:
                nested = _nested_function(func, node.id, info.name,
                                          qualname)
                if nested is not None:
                    return nested
            if node.id in info.functions:
                return info.functions[node.id]
            origin = info.from_imports.get(node.id)
            if origin is not None:
                return self.project.resolve_dotted(origin)
        return None


def extract_sites(project: Project) -> tuple[list[PublishSite],
                                             list[SubscribeSite]]:
    """All statically resolvable publish/subscribe sites, in
    deterministic (module, line) order."""
    extractor = _SiteExtractor(project)
    extractor.extract()
    key = (lambda s: (s.rel_path, s.lineno, s.pattern.text))
    return (sorted(extractor.publishes, key=key),
            sorted(extractor.subscribes, key=key))


# ---------------------------------------------------------------------------
# contract checks
# ---------------------------------------------------------------------------


def _finding(rule: str, path: str, line: int, message: str,
             context: str, severity: Severity = Severity.ERROR) -> Finding:
    return Finding(tool="flow", rule=rule, path=path, line=line,
                   message=message, severity=severity, context=context)


def _literal_dict_keys(node: ast.expr) -> tuple[set[str], bool] | None:
    """(string keys, has_spread) for a literal dict payload, else None."""
    if not isinstance(node, ast.Dict):
        return None
    keys: set[str] = set()
    spread = False
    for key in node.keys:
        if key is None:
            spread = True
        elif isinstance(key, ast.Constant) and isinstance(key.value, str):
            keys.add(key.value)
        else:
            return None  # computed key: not statically checkable
    return keys, spread


def _dict_accepted(contract: TopicContract, keys: set[str],
                   spread: bool) -> str | None:
    """None when *keys* satisfies *contract*, else the violation text."""
    if contract.payload == "opaque":
        return None
    if contract.payload == "none":
        return "contract declares no payload"
    if spread:
        return None  # `**` spread: content unknowable statically
    missing = contract.required - keys
    if missing:
        return f"missing required key(s) {sorted(missing)}"
    if contract.payload == "dict":
        unknown = keys - contract.required - contract.optional
        if unknown:
            return f"unknown key(s) {sorted(unknown)}"
    return None


def check_publishes(publishes: list[PublishSite]) -> list[Finding]:
    findings: list[Finding] = []
    for site in publishes:
        problems = segment_violations(site.pattern, allow_wildcards=False)
        for problem in problems:
            findings.append(_finding(
                "flow-topic-name", site.rel_path, site.lineno,
                f"published topic {site.pattern.text!r}: {problem}",
                site.context))
        if problems:
            continue  # a malformed topic cannot match contracts
        contracts = contracts_for(site.pattern)
        if not contracts:
            findings.append(_finding(
                "flow-undeclared-topic", site.rel_path, site.lineno,
                f"topic {site.pattern.text!r} matches no contract in "
                f"the registry (repro.analysis.flow.topics)",
                site.context))
            continue
        if site.payload is None:
            continue
        literal = _literal_dict_keys(site.payload)
        if literal is None:
            continue  # non-dict payloads are checked by their contracts
        keys, spread = literal
        # Accepted if ANY overlapping contract takes this dict: a
        # dynamic pattern can straddle several families.
        violations = [
            (c, v) for c in contracts
            for v in [_dict_accepted(c, keys, spread)] if v is not None]
        if len(violations) == len(contracts):
            contract, violation = violations[0]
            findings.append(_finding(
                "flow-payload-schema", site.rel_path, site.lineno,
                f"payload for {site.pattern.text!r} violates contract "
                f"{contract.pattern!r}: {violation}", site.context))
    return findings


def check_subscribers(publishes: list[PublishSite],
                      subscribes: list[SubscribeSite]) -> list[Finding]:
    findings: list[Finding] = []
    for site in subscribes:
        for problem in segment_violations(site.pattern,
                                          allow_wildcards=True):
            findings.append(_finding(
                "flow-topic-name", site.rel_path, site.lineno,
                f"subscription pattern {site.pattern.text!r}: {problem}",
                site.context))
        if not any(site.pattern.intersects(pub.pattern)
                   for pub in publishes):
            findings.append(_finding(
                "flow-orphan-subscriber", site.rel_path, site.lineno,
                f"no publish site can ever reach subscription "
                f"{site.pattern.text!r}", site.context,
                severity=Severity.WARNING))
        if site.handler is not None and site.handler.is_generator:
            findings.append(_finding(
                "des-handler-yields", site.rel_path, site.lineno,
                f"bus handler {site.handler.qualname} is a generator: "
                f"the bus calls handlers synchronously, so its body "
                f"never runs", site.context))
        findings.extend(_check_handler_keys(site))
    return findings


def check_dead_topics(publishes: list[PublishSite],
                      subscribes: list[SubscribeSite]) -> list[Finding]:
    """``consumed="bus"`` contracts whose events nothing receives."""
    findings: list[Finding] = []
    for contract in TOPIC_CONTRACTS:
        if contract.consumed != "bus":
            continue
        publishers = [p for p in publishes
                      if contract.intersects(p.pattern)]
        if not publishers:
            continue  # unpublished contract: nothing to receive
        if not any(s.pattern.intersects(contract.pattern)
                   for s in subscribes):
            first = publishers[0]
            findings.append(_finding(
                "flow-dead-topic", first.rel_path, first.lineno,
                f"topic {first.pattern.text!r} is consumed=\"bus\" per "
                f"contract {contract.pattern!r} but has no in-process "
                f"subscriber", first.context))
    return findings


def _handler_payload_param(handler: FunctionInfo) -> str | None:
    args = [a.arg for a in handler.node.args.args]
    if handler.class_name is not None and args and \
            args[0] in ("self", "cls"):
        args = args[1:]
    if len(args) >= 2:
        return args[1]
    return None


def _check_handler_keys(site: SubscribeSite) -> list[Finding]:
    """Key accesses in the handler vs the closed contract key set."""
    if site.handler is None:
        return []
    contracts = contracts_for(site.pattern)
    if not contracts or any(c.payload != "dict" for c in contracts):
        return []  # any open/opaque family: all key accesses legal
    allowed: set[str] = set()
    for contract in contracts:
        allowed |= contract.required | contract.optional
    payload_name = _handler_payload_param(site.handler)
    if payload_name is None:
        return []
    names = {payload_name}
    findings: list[Finding] = []
    for node in function_body_nodes(site.handler.node):
        # Track `data = payload or {}` style aliases.
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and _mentions(node.value, names):
            names.add(node.targets[0].id)
            continue
        key = _key_access(node, names)
        if key is not None and key not in allowed:
            findings.append(_finding(
                "flow-payload-schema", site.rel_path,
                getattr(node, "lineno", site.lineno),
                f"handler {site.handler.qualname} reads payload key "
                f"{key!r}, not in contract(s) "
                f"{sorted(c.pattern for c in contracts)}",
                f"{site.handler.qualname}:{key}"))
    return findings


def _mentions(node: ast.expr, names: set[str]) -> bool:
    return any(isinstance(n, ast.Name) and n.id in names
               for n in ast.walk(node))


def _key_access(node: ast.AST, names: set[str]) -> str | None:
    """The string key when *node* reads one from the payload."""
    if isinstance(node, ast.Subscript) \
            and isinstance(node.value, ast.Name) \
            and node.value.id in names \
            and isinstance(node.slice, ast.Constant) \
            and isinstance(node.slice.value, str):
        return node.slice.value
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
            and node.func.attr == "get" and node.args \
            and isinstance(node.args[0], ast.Constant) \
            and isinstance(node.args[0].value, str):
        receiver = node.func.value
        if isinstance(receiver, ast.Name) and receiver.id in names:
            return node.args[0].value
        # `(payload or {}).get("k")`
        if isinstance(receiver, ast.BoolOp) and _mentions(receiver, names):
            return node.args[0].value
    return None


def analyze_topic_flow(project: Project) -> list[Finding]:
    """All topic-flow findings for *project* (unsorted; the runner
    assigns occurrences and orders the union)."""
    publishes, subscribes = extract_sites(project)
    findings = check_publishes(publishes)
    findings += check_subscribers(publishes, subscribes)
    findings += check_dead_topics(publishes, subscribes)
    return findings


# ---------------------------------------------------------------------------
# topic graph
# ---------------------------------------------------------------------------


def build_topic_graph(project: Project) -> dict:
    """Deterministic publisher → topic → subscriber graph.

    Keyed on function qualnames and pattern texts — never line numbers
    — so the JSON is byte-stable across unrelated edits.
    """
    publishes, subscribes = extract_sites(project)
    topics: dict[str, dict] = {}
    for site in publishes:
        entry = topics.setdefault(site.pattern.text, {
            "pattern": site.pattern.text,
            "contracts": sorted(
                c.pattern for c in contracts_for(site.pattern)),
            "publishers": set(), "subscribers": set()})
        entry["publishers"].add(site.qualname)
    for site in subscribes:
        for entry in topics.values():
            if site.pattern.intersects(entry["pattern"]):
                entry["subscribers"].add(
                    (site.pattern.text, site.handler_name))
    topic_list = []
    for text in sorted(topics):
        entry = topics[text]
        topic_list.append({
            "pattern": entry["pattern"],
            "contracts": entry["contracts"],
            "publishers": sorted(entry["publishers"]),
            "subscribers": [
                {"pattern": pat, "handler": handler}
                for pat, handler in sorted(entry["subscribers"])],
        })
    return {
        "topics": topic_list,
        "publisher_count": len({q for t in topic_list
                                for q in t["publishers"]}),
        "subscriber_count": len({s["handler"] for t in topic_list
                                 for s in t["subscribers"]}),
    }


def graph_to_dot(graph: dict) -> str:
    """Render :func:`build_topic_graph` output as Graphviz DOT."""
    lines = ["digraph topic_flow {", "  rankdir=LR;",
             '  node [fontsize=10];']
    emitted: set[str] = set()

    def node(name: str, shape: str) -> str:
        ident = '"%s"' % name.replace('"', r'\"')
        if ident not in emitted:
            emitted.add(ident)
            lines.append(f"  {ident} [shape={shape}];")
        return ident

    edges: list[str] = []
    for topic in graph["topics"]:
        t_node = node(topic["pattern"], "ellipse")
        for publisher in topic["publishers"]:
            edges.append(f"  {node(publisher, 'box')} -> {t_node};")
        for sub in topic["subscribers"]:
            edges.append(
                f"  {t_node} -> {node(sub['handler'], 'box')} "
                f"[label=\"{sub['pattern']}\"];")
    lines.extend(sorted(set(edges)))
    lines.append("}")
    return "\n".join(lines) + "\n"
