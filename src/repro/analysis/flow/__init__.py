"""Whole-program topic-flow & DES-contract analysis.

The third static-analysis engine (after continuum-lint and the TOSCA
checker): builds a project-wide symbol table and call graph over
``src/repro``, extracts every publish/subscribe site, and checks topic
names, payload schemas, dead topics, orphan subscribers and DES
generator contracts. Pattern matching is shared byte-for-byte with the
runtime bus (:func:`repro.core.events.compile_pattern`).

Entry points: :func:`run_flow` (findings, baseline-compatible) and
:func:`build_topic_graph` / :func:`graph_to_dot` (the
``repro-analysis graph`` subcommand).
"""

from __future__ import annotations

from repro.analysis.cache import ParseCache
from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding, assign_occurrences
from repro.analysis.flow.des import analyze_des_contracts
from repro.analysis.flow.patterns import (TopicPattern, pattern_from_ast,
                                          patterns_intersect,
                                          segment_violations)
from repro.analysis.flow.symbols import Project
from repro.analysis.flow.topicflow import (PublishSite, SubscribeSite,
                                           analyze_topic_flow,
                                           build_topic_graph,
                                           extract_sites, graph_to_dot)
from repro.analysis.flow.topics import (NAMESPACES, TOPIC_CONTRACTS,
                                        TopicContract, contracts_for)

#: Every rule id the flow engine can emit (for `--rules` validation).
FLOW_RULES = frozenset({
    "flow-topic-name",
    "flow-undeclared-topic",
    "flow-dead-topic",
    "flow-orphan-subscriber",
    "flow-payload-schema",
    "des-generator-not-driven",
    "des-process-not-generator",
    "des-handler-yields",
})


def load_project(config: AnalysisConfig,
                 cache: ParseCache | None = None) -> Project:
    """The whole-program symbol table for the configured flow paths."""
    return Project.load(config.root, config.flow_paths, cache)


def run_flow(config: AnalysisConfig,
             cache: ParseCache | None = None,
             only_rules: set[str] | None = None,
             project: Project | None = None) -> list[Finding]:
    """Run every flow analysis; returns occurrence-numbered findings.

    Respects the same ``# continuum-lint: disable=...`` pragmas as the
    lint engine (both engines report on the same source lines) and the
    ``disable`` list in ``[tool.repro-analysis]``.
    """
    from repro.analysis.lint.engine import _parse_pragmas, _suppressed

    if project is None:
        project = load_project(config, cache)
    findings = analyze_topic_flow(project) + analyze_des_contracts(project)
    findings = [f for f in findings if config.rule_enabled(f.rule)
                and (only_rules is None or f.rule in only_rules)]
    lines_by_path = {info.rel_path: info.lines
                     for info in project.modules.values()}
    kept: list[Finding] = []
    for finding in findings:
        lines = lines_by_path.get(finding.path)
        if lines is not None:
            pragmas = _parse_pragmas(lines)
            if _suppressed(finding, *pragmas):
                continue
        kept.append(finding)
    return assign_occurrences(kept)


__all__ = [
    "FLOW_RULES", "NAMESPACES", "TOPIC_CONTRACTS",
    "AnalysisConfig", "Finding", "ParseCache", "Project",
    "PublishSite", "SubscribeSite", "TopicContract", "TopicPattern",
    "analyze_des_contracts", "analyze_topic_flow", "build_topic_graph",
    "contracts_for", "extract_sites", "graph_to_dot", "load_project",
    "pattern_from_ast", "patterns_intersect", "run_flow",
    "segment_violations",
]
