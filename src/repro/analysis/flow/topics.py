"""The topic schema registry: per-topic payload contracts.

Every topic the runtime spine publishes is declared here — the static
counterpart of the bus. A :class:`TopicContract` names the topic (or a
pattern with ``*`` for dynamic segments such as gateway or cluster
names), the payload shape, and how the topic is consumed:

- ``consumed="bus"`` — at least one in-process subscription must match
  (the topic exists to trigger reactions; losing its last subscriber
  is a dead topic).
- ``consumed="trace"`` — telemetry consumed from the recorded trace by
  tests, scorecards and the ``repro-obs``/``repro-chaos`` CLIs; zero
  in-process subscribers is the expected state.

``payload`` is one of ``"dict"`` (literal payload dicts are checked
key-for-key against ``required``/``optional``; handlers may only access
those keys), ``"open-dict"`` (``required`` keys checked, extras allowed
— used where payloads splat per-action detail), ``"opaque"`` (a typed
object such as an Alert or ClusterEvent; key checks skipped) or
``"none"`` (the topic is a pure signal).

A publish whose topic matches no contract is ``flow-undeclared-topic``:
adding a topic to the spine *means* declaring its contract here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.flow.patterns import TopicPattern, patterns_intersect


@dataclass(frozen=True)
class TopicContract:
    """Contract for one topic (or one dynamic-segment topic family)."""

    pattern: str
    payload: str = "dict"  # dict | open-dict | opaque | none
    required: frozenset[str] = frozenset()
    optional: frozenset[str] = frozenset()
    consumed: str = "trace"  # bus | trace
    description: str = ""

    @property
    def namespace(self) -> str:
        return self.pattern.split(".", 1)[0]

    def intersects(self, pattern: TopicPattern | str) -> bool:
        text = pattern.text if isinstance(pattern, TopicPattern) \
            else pattern
        return patterns_intersect(self.pattern, text)


def _c(pattern: str, payload: str = "dict", *, required: str = "",
       optional: str = "", consumed: str = "trace",
       description: str = "") -> TopicContract:
    split = (lambda s: frozenset(k for k in s.split() if k))
    return TopicContract(pattern=pattern, payload=payload,
                         required=split(required),
                         optional=split(optional), consumed=consumed,
                         description=description)


#: The whole-program topic vocabulary, one contract per topic family.
TOPIC_CONTRACTS: tuple[TopicContract, ...] = (
    # -- continuum: faults, infrastructure, gateways ------------------------
    _c("continuum.fault.fail", required="device time_s interrupted",
       consumed="bus",
       description="device failure; kube/MAPE/monitors react"),
    _c("continuum.fault.repair", required="device time_s",
       consumed="bus",
       description="device repair; readiness and series recover"),
    _c("continuum.infra.device-added",
       required="device kind layer",
       description="infrastructure grew by one device"),
    _c("continuum.gateway.*.delivered", payload="opaque",
       description="one hub-mediated delivery (DeliveryRecord)"),
    _c("continuum.gateway.*.dropped", required="dst topic",
       optional="reason",
       description="delivery lost: full buffer or brownout"),
    # -- kube control plane -------------------------------------------------
    _c("kube.*.*", payload="opaque",
       description="cluster events (ClusterEvent) keyed "
                   "kube.<cluster>.<kind>"),
    # -- MIRTO MAPE + orchestration ----------------------------------------
    _c("mirto.mape.sense", required="iteration components",
       description="Monitor phase completed"),
    _c("mirto.mape.analyze", required="iteration triggers",
       description="Analyze phase: trigger list"),
    _c("mirto.mape.plan", required="iteration actions",
       description="Plan phase: action list"),
    _c("mirto.mape.execute", required="iteration executed",
       description="Execute phase: actions applied"),
    _c("mirto.deploy.placed",
       required="service strategy assignment makespan_s energy_j "
                "deadline_met",
       description="a service was placed and deployed"),
    _c("mirto.continuous.migrated",
       required="application period assignment predicted_gain",
       description="continuous orchestration migrated a task set"),
    _c("mirto.placement.solve",
       required="service strategy cost optimal lower_bound provenance "
                "evaluations",
       description="anytime placement solve finished (deploy or Plan)"),
    _c("mirto.placement.incumbent", required="backend cost",
       description="a portfolio lane improved the shared incumbent"),
    # -- chaos campaigns + resilience policies ------------------------------
    _c("chaos.campaign.begin", required="campaign actions time_s",
       consumed="bus",
       description="campaign started; MAPE arms degradation"),
    _c("chaos.campaign.end", required="campaign status time_s",
       consumed="bus",
       description="campaign finished; MAPE may restore"),
    _c("chaos.action.*", payload="open-dict",
       required="campaign action index phase time_s",
       description="one campaign action phase (plus per-action "
                   "detail)"),
    _c("chaos.zone.fail", required="zone devices time_s",
       description="correlated zone outage injected"),
    _c("chaos.zone.repair", required="zone devices time_s",
       description="zone outage repaired"),
    _c("chaos.net.partition", required="cut time_s",
       description="network partition: links cut"),
    _c("chaos.net.heal", required="links time_s",
       description="partition healed"),
    _c("chaos.policy.retry", required="policy attempt delay_s error",
       description="retry policy backing off"),
    _c("chaos.policy.timeout", required="policy limit_s time_s",
       description="call abandoned at its time limit"),
    _c("chaos.policy.hedge", required="policy delay_s time_s",
       description="hedge launched a backup attempt"),
    _c("chaos.breaker.state", required="breaker state time_s",
       description="circuit breaker transition"),
    # -- zone-sharded simulation --------------------------------------------
    # Emitted identically by both shard backends (ShardedContext and the
    # multiprocess ParallelShardedContext) — the merged-trace digest is
    # byte-identical across them, so the contracts below are
    # backend-agnostic.
    _c("shard.partition.assign",
       required="zone rank epoch_s lookahead_s time_s",
       description="zone joined the sharded run (rank order; shard/"
                   "worker binding deliberately absent — see DESIGN.md)"),
    _c("shard.epoch.barrier", required="epoch zone time_s",
       description="conservative epoch barrier reached (sampled per "
                   "barrier_record_every)"),
    _c("shard.relay.deliver", required="epoch zone count spans time_s",
       description="cross-shard messages injected into this zone at a "
                   "barrier (pipe-routed when zones live in worker "
                   "processes); spans counts the deliveries that "
                   "carried a propagated span context"),
    _c("shard.fleet.telemetry.*",
       required="zone time_s up utilization energy_j failures repairs",
       consumed="bus",
       description="per-zone vectorized fleet aggregate, keyed "
                   "shard.fleet.telemetry.<zone>"),
    # -- observability snapshots --------------------------------------------
    # Not bus-published: spans are recorded straight into the trace at
    # close, metric/profile snapshots at observability-export time, and
    # all are consumed from the file by ``repro-obs``. Declared so the
    # topic vocabulary of a merged sharded export is complete.
    _c("obs.span", payload="open-dict",
       required="name layer trace_id span_id parent_id start_s end_s "
                "status",
       description="one closed causal span (crosses zones/workers via "
                   "the relay's span propagation + resume)"),
    _c("obs.metrics", payload="opaque",
       description="metrics registry snapshot; in sharded exports the "
                   "deterministic (epoch, zone rank)-ordered aggregate"),
    _c("obs.profile", payload="opaque",
       description="DES profiler snapshot (wall times: "
                   "nondeterministic, excluded from digests)"),
    _c("obs.shard_profile", payload="opaque",
       description="sharded-run barrier/straggler profile "
                   "(runtime.shard.epoch.* histogram source; wall "
                   "times nondeterministic, excluded from digests)"),
    # -- monitoring ---------------------------------------------------------
    _c("monitor.metrics.*.*.*", required="time_s value",
       description="one sample, keyed "
                   "monitor.metrics.<kind>.<monitor>.<metric>"),
    _c("monitor.alerts.*.*", payload="opaque",
       description="threshold alert (Alert), keyed "
                   "monitor.alerts.<kind>.<monitor>"),
    # -- network substrate --------------------------------------------------
    _c("net.link.state",
       required="a b up latency_factor bandwidth_factor",
       description="link state/degradation change"),
)


#: Layer namespaces: the only legal first segments for published topics.
NAMESPACES: frozenset[str] = frozenset(
    c.namespace for c in TOPIC_CONTRACTS)


def contracts_for(pattern: TopicPattern | str) -> list[TopicContract]:
    """Every contract whose topic family overlaps *pattern*."""
    return [c for c in TOPIC_CONTRACTS if c.intersects(pattern)]


def _check_registry() -> None:
    """Registry invariants, enforced at import time.

    Exact contracts must not shadow each other, and every pattern must
    be well-formed (the naming rule the registry itself anchors).
    """
    from repro.analysis.flow.patterns import segment_violations
    seen: set[str] = set()
    for contract in TOPIC_CONTRACTS:
        if contract.pattern in seen:
            raise ValueError(
                f"duplicate topic contract {contract.pattern!r}")
        seen.add(contract.pattern)
        problems = segment_violations(
            TopicPattern(contract.pattern), allow_wildcards=True)
        if problems:
            raise ValueError(
                f"bad registry pattern {contract.pattern!r}: "
                f"{problems}")
        if contract.payload not in ("dict", "open-dict", "opaque",
                                    "none"):
            raise ValueError(
                f"{contract.pattern!r}: unknown payload kind "
                f"{contract.payload!r}")
        if contract.consumed not in ("bus", "trace"):
            raise ValueError(
                f"{contract.pattern!r}: unknown consumption "
                f"{contract.consumed!r}")


_check_registry()
