"""Static topic patterns and the pattern-intersection decision.

A :class:`TopicPattern` is the compile-time view of a bus topic: a
sequence of dotted segments where each segment is a literal, ``*``
(exactly one segment — also what a resolved f-string placeholder
becomes) or ``**`` (any number of segments). Concrete-topic matching
delegates to :func:`repro.core.events.compile_pattern`, the *same*
compiler the runtime bus dispatches through, so the static analyzer can
never drift from delivery semantics; pattern-vs-pattern intersection
(can any single topic match both?) is decided here with a product walk
over the two segment lists.

The hypothesis property in ``tests/test_analysis_flow.py`` pins the
equivalence: for every generated pattern/topic pair, intersecting the
pattern with the topic-as-exact-pattern agrees with the runtime
compiled matcher.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from functools import lru_cache

from repro.core.events import topic_matches

#: Legal characters for one literal topic segment (DESIGN.md: lowercase
#: dotted names; digits, underscore and hyphen allowed inside segments).
SEGMENT_RE = re.compile(r"^[a-z0-9_-]+$")


@dataclass(frozen=True)
class TopicPattern:
    """One static topic pattern, with provenance for findings."""

    text: str  # dotted pattern, placeholders already folded to `*`
    dynamic: bool = False  # True when built from an f-string

    @property
    def segments(self) -> tuple[str, ...]:
        return tuple(self.text.split("."))

    @property
    def exact(self) -> bool:
        """Wildcard-free: names exactly one topic."""
        return "*" not in self.segments and "**" not in self.segments

    def matches_topic(self, topic: str) -> bool:
        """Runtime-identical concrete matching (shared compiler)."""
        return topic_matches(self.text, topic)

    def intersects(self, other: "TopicPattern | str") -> bool:
        """Could any single concrete topic match both patterns?"""
        text = other.text if isinstance(other, TopicPattern) else other
        return patterns_intersect(self.text, text)

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return self.text


@lru_cache(maxsize=16384)
def patterns_intersect(a: str, b: str) -> bool:
    """Decide whether the topic sets of patterns *a* and *b* overlap.

    Both sides may contain ``*`` and ``**`` segments. The walk advances
    an index pair through the two segment lists; every recursion step
    strictly increases ``i + j``, so the search terminates without a
    visited set and memoization keeps it linear in ``len(a) * len(b)``.
    """
    return _intersect(tuple(a.split(".")), tuple(b.split(".")), 0, 0)


def _all_glob(segs: tuple[str, ...], i: int) -> bool:
    return all(s == "**" for s in segs[i:])


def _intersect(pa: tuple[str, ...], pb: tuple[str, ...],
               i: int, j: int, _memo: dict | None = None) -> bool:
    if _memo is None:
        _memo = {}
    key = (i, j)
    if key in _memo:
        return _memo[key]
    if i == len(pa):
        result = _all_glob(pb, j)
    elif j == len(pb):
        result = _all_glob(pa, i)
    else:
        sa, sb = pa[i], pb[j]
        if sa == "**" and sb == "**":
            # Either glob may yield first; consuming a shared segment
            # with both staying put returns to this state, so the two
            # epsilon moves cover every interleaving.
            result = (_intersect(pa, pb, i + 1, j, _memo)
                      or _intersect(pa, pb, i, j + 1, _memo))
        elif sa == "**":
            # Zero segments, or consume one that sb also consumes
            # (any literal/`*` names a topic segment `**` accepts).
            result = (_intersect(pa, pb, i + 1, j, _memo)
                      or _intersect(pa, pb, i, j + 1, _memo))
        elif sb == "**":
            result = (_intersect(pa, pb, i, j + 1, _memo)
                      or _intersect(pa, pb, i + 1, j, _memo))
        elif sa == "*" or sb == "*" or sa == sb:
            result = _intersect(pa, pb, i + 1, j + 1, _memo)
        else:
            result = False
    _memo[key] = result
    return result


def pattern_from_ast(node: ast.AST) -> TopicPattern | None:
    """Resolve a topic-argument expression to a static pattern.

    Literal strings map segment-for-segment; f-strings fold every
    placeholder into a ``*`` segment (the repo convention — enforced by
    ``flow-topic-name`` — is that interpolated values are single
    dot-free segments, e.g. a device, gateway or cluster name). A
    placeholder embedded in a wider segment (``t{i}``) also widens that
    whole segment to ``*``. Anything else (a bare name, a call) is
    dynamic beyond static resolution: returns None.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return TopicPattern(node.value, dynamic=False)
    if isinstance(node, ast.JoinedStr):
        text = ""
        for part in node.values:
            if isinstance(part, ast.Constant) and \
                    isinstance(part.value, str):
                text += part.value
            elif isinstance(part, ast.FormattedValue):
                text += "\0"
            else:
                return None
        segments = []
        for segment in text.split("."):
            segments.append("*" if "\0" in segment else segment)
        return TopicPattern(".".join(segments), dynamic=True)
    return None


def segment_violations(pattern: TopicPattern,
                       allow_wildcards: bool) -> list[str]:
    """Naming-convention problems with *pattern*'s segments.

    Published topics may not contain wildcard segments
    (``allow_wildcards=False`` — a literal ``*`` in a published topic
    is almost certainly a subscription pattern pasted into a publish);
    resolved f-string placeholders are exempt because their ``*`` is
    the analyzer's own widening, not a character in the topic.
    """
    problems = []
    for segment in pattern.segments:
        if segment in ("*", "**"):
            if not allow_wildcards and not pattern.dynamic:
                problems.append(
                    f"wildcard segment {segment!r} in a published topic")
            continue
        if not segment:
            problems.append("empty segment (consecutive/leading dots)")
        elif not SEGMENT_RE.match(segment):
            problems.append(
                f"segment {segment!r} has characters outside [a-z0-9_-]")
    return problems
