"""Project-wide symbol table and call graph for ``src/repro``.

The whole-program pass the flow analyses run on: every module is parsed
(through the shared mtime+size parse cache), its import aliases are
collected, and every function/method becomes a :class:`FunctionInfo`
with its enclosing class, generator-ness and abstractness. Call sites
are then resolved best-effort — local names, project imports,
``self.method`` through the class and its project-resolvable bases, and
(as a last resort) unique-by-name attribute lookups — into a call graph
the DES-contract rules walk.

Resolution is deliberately conservative: an unresolvable callee simply
produces no edge and no finding, so dynamic dispatch never yields false
positives.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.cache import ParseCache


def collect_import_maps(tree: ast.Module) -> tuple[dict[str, str],
                                                   dict[str, str]]:
    """(alias -> module, local name -> dotted origin) for *tree*.

    The same resolution continuum-lint uses: ``import numpy as np``
    maps ``np -> numpy``; ``from random import randint as ri`` maps
    ``ri -> random.randint``. Relative imports are resolved by the
    caller (they need the importing module's package).
    """
    aliases: dict[str, str] = {}
    from_imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or
                        alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module \
                and node.level == 0:
            for alias in node.names:
                from_imports[alias.asname or alias.name] = \
                    f"{node.module}.{alias.name}"
    return aliases, from_imports


def _is_abstract(node: ast.FunctionDef) -> bool:
    """Body is only a docstring plus ``raise``/``pass``/``...``."""
    body = list(node.body)
    if body and isinstance(body[0], ast.Expr) \
            and isinstance(body[0].value, ast.Constant) \
            and isinstance(body[0].value.value, str):
        body = body[1:]
    if not body:
        return True
    return all(isinstance(stmt, (ast.Raise, ast.Pass)) or (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Constant)
        and stmt.value.value is Ellipsis) for stmt in body)


def _is_generator(node: ast.FunctionDef) -> bool:
    """Contains yield/yield-from in its own scope (nested defs pruned)."""
    stack: list[ast.AST] = list(node.body)
    while stack:
        current = stack.pop()
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.Lambda)):
            continue
        if isinstance(current, (ast.Yield, ast.YieldFrom)):
            return True
        stack.extend(ast.iter_child_nodes(current))
    return False


@dataclass
class FunctionInfo:
    """One function or method in the project."""

    module: str  # dotted module ("repro.chaos.policies")
    name: str  # bare name
    qualname: str  # "repro.chaos.policies:RetryPolicy.call"
    node: ast.FunctionDef
    class_name: str | None = None
    is_generator: bool = False
    is_abstract: bool = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FunctionInfo({self.qualname})"


@dataclass
class ClassInfo:
    """One class: its methods and (textual) base-class names."""

    module: str
    name: str
    qualname: str
    bases: list[str] = field(default_factory=list)
    methods: dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed module with its import maps."""

    name: str  # dotted module name
    rel_path: str
    tree: ast.Module
    lines: list[str]
    import_aliases: dict[str, str] = field(default_factory=dict)
    from_imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)


def _module_name(rel_path: str) -> str:
    parts = Path(rel_path).with_suffix("").parts
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    # Strip a leading source root so "src/repro/x.py" -> "repro.x".
    if parts and parts[0] == "src":
        parts = parts[1:]
    return ".".join(parts)


class Project:
    """All modules under the analyzed roots, plus resolution indexes."""

    def __init__(self):
        self.modules: dict[str, ModuleInfo] = {}
        #: dotted function qualname ("repro.mod.func") -> FunctionInfo
        self.functions_by_dotted: dict[str, FunctionInfo] = {}
        #: method name -> every concrete FunctionInfo defining it
        self.methods_by_name: dict[str, list[FunctionInfo]] = {}
        #: class name -> every ClassInfo with that (bare) name
        self.classes_by_name: dict[str, list[ClassInfo]] = {}
        #: caller qualname -> sorted callee qualnames (resolved edges)
        self.call_graph: dict[str, list[str]] = {}

    # -- construction -------------------------------------------------------

    @classmethod
    def load(cls, root: Path, paths: list[str],
             cache: ParseCache | None = None) -> "Project":
        """Parse every ``*.py`` under *paths* (relative to *root*)."""
        cache = cache if cache is not None else ParseCache()
        project = cls()
        files: list[Path] = []
        for raw in paths:
            target = Path(raw)
            target = target if target.is_absolute() else root / target
            if target.is_dir():
                files.extend(sorted(target.rglob("*.py")))
            elif target.suffix == ".py":
                files.append(target)
        for file_path in files:
            try:
                rel = str(file_path.relative_to(root))
            except ValueError:
                rel = str(file_path)
            parsed = cache.parse(file_path)
            if parsed.tree is None:
                continue  # syntax errors are continuum-lint's findings
            project.add_module(rel, parsed.tree, parsed.lines)
        project.build_indexes()
        return project

    def add_module(self, rel_path: str, tree: ast.Module,
                   lines: list[str]) -> ModuleInfo:
        name = _module_name(rel_path.replace("\\", "/"))
        aliases, from_imports = collect_import_maps(tree)
        info = ModuleInfo(name=name, rel_path=rel_path, tree=tree,
                          lines=lines, import_aliases=aliases,
                          from_imports=from_imports)
        for node in tree.body:
            self._collect_scope(info, node, class_name=None)
        self.modules[name] = info
        return info

    def _collect_scope(self, info: ModuleInfo, node: ast.AST,
                       class_name: str | None) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = f"{info.name}:{class_name}.{node.name}" \
                if class_name else f"{info.name}:{node.name}"
            fn = FunctionInfo(
                module=info.name, name=node.name, qualname=qual,
                node=node, class_name=class_name,
                is_generator=_is_generator(node),
                is_abstract=_is_abstract(node))
            if class_name:
                info.classes[class_name].methods[node.name] = fn
            else:
                info.functions[node.name] = fn
            # Nested defs are resolvable only within their enclosing
            # function; the per-function walks handle them locally.
        elif isinstance(node, ast.ClassDef):
            bases = []
            for base in node.bases:
                if isinstance(base, ast.Name):
                    bases.append(base.id)
                elif isinstance(base, ast.Attribute):
                    bases.append(base.attr)
            cls_info = ClassInfo(module=info.name, name=node.name,
                                 qualname=f"{info.name}:{node.name}",
                                 bases=bases)
            info.classes[node.name] = cls_info
            for child in node.body:
                self._collect_scope(info, child, class_name=node.name)

    def build_indexes(self) -> None:
        for info in self.modules.values():
            for fn in info.functions.values():
                self.functions_by_dotted[f"{info.name}.{fn.name}"] = fn
            for cls_info in info.classes.values():
                self.classes_by_name.setdefault(
                    cls_info.name, []).append(cls_info)
                for fn in cls_info.methods.values():
                    self.methods_by_name.setdefault(
                        fn.name, []).append(fn)
        self._build_call_graph()

    # -- resolution ---------------------------------------------------------

    def resolve_dotted(self, dotted: str) -> FunctionInfo | None:
        """A project function by fully dotted name, through re-exports.

        ``repro.chaos.policies.RetryPolicy`` style class paths resolve
        to the class's ``__init__`` when present (a constructor call is
        a call of that method for generator-ness purposes — it never
        is one).
        """
        if dotted in self.functions_by_dotted:
            return self.functions_by_dotted[dotted]
        module, _, attr = dotted.rpartition(".")
        info = self.modules.get(module)
        if info is not None:
            if attr in info.functions:
                return info.functions[attr]
            # Package re-export: follow `from x import name` in
            # the package __init__.
            origin = info.from_imports.get(attr)
            if origin is not None and origin != dotted:
                return self.resolve_dotted(origin)
        return None

    def resolve_class(self, module: ModuleInfo,
                      name: str) -> ClassInfo | None:
        """*name* as a class visible from *module* (local or imported)."""
        if name in module.classes:
            return module.classes[name]
        origin = module.from_imports.get(name)
        if origin is not None:
            owner, _, cls_name = origin.rpartition(".")
            seen = set()
            while owner and owner not in seen:
                seen.add(owner)
                info = self.modules.get(owner)
                if info is None:
                    break
                if cls_name in info.classes:
                    return info.classes[cls_name]
                # Re-export chain through a package __init__.
                next_origin = info.from_imports.get(cls_name)
                if next_origin is None:
                    break
                owner, _, cls_name = next_origin.rpartition(".")
        candidates = self.classes_by_name.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def class_is_subclass(self, cls_info: ClassInfo,
                          base_name: str) -> bool:
        """Textual-MRO walk: does *cls_info* derive from *base_name*?"""
        seen: set[str] = set()
        stack = [cls_info]
        while stack:
            current = stack.pop()
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            if current.name == base_name:
                return True
            module = self.modules.get(current.module)
            for base in current.bases:
                if base == base_name:
                    return True
                resolved = None
                if module is not None:
                    resolved = self.resolve_class(module, base)
                if resolved is not None:
                    stack.append(resolved)
        return False

    def _method_in_mro(self, cls_info: ClassInfo,
                       method: str) -> FunctionInfo | None:
        seen: set[str] = set()
        stack = [cls_info]
        while stack:
            current = stack.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            if method in current.methods:
                return current.methods[method]
            module = self.modules.get(current.module)
            if module is None:
                continue
            for base in current.bases:
                resolved = self.resolve_class(module, base)
                if resolved is not None:
                    stack.append(resolved)
        return None

    def resolve_call(self, call: ast.Call, module: ModuleInfo,
                     enclosing_class: str | None) -> FunctionInfo | None:
        """Best-effort resolution of *call*'s target function."""
        func = call.func
        if isinstance(func, ast.Name):
            # Local module function, or a project import.
            if func.id in module.functions:
                return module.functions[func.id]
            origin = module.from_imports.get(func.id)
            if origin is not None:
                return self.resolve_dotted(origin)
            return None
        if not isinstance(func, ast.Attribute):
            return None
        # self.method(...) / cls.method(...) within a known class.
        if isinstance(func.value, ast.Name) \
                and func.value.id in ("self", "cls") \
                and enclosing_class is not None:
            cls_info = module.classes.get(enclosing_class)
            if cls_info is not None:
                found = self._method_in_mro(cls_info, func.attr)
                if found is not None:
                    return found
        # module.attr(...) through an import alias.
        parts: list[str] = [func.attr]
        current = func.value
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if isinstance(current, ast.Name):
            head = current.id
            parts.reverse()
            base = module.import_aliases.get(head)
            if base is None and head in module.from_imports:
                base = module.from_imports[head]
            if base is not None:
                return self.resolve_dotted(".".join([base] + parts))
        # Fallback: a uniquely named method whose concrete definitions
        # all agree on generator-ness (abstract bases excluded).
        concrete = [fn for fn in self.methods_by_name.get(func.attr, [])
                    if not fn.is_abstract]
        if concrete and len({fn.is_generator for fn in concrete}) == 1:
            return concrete[0]
        return None

    # -- call graph ---------------------------------------------------------

    def _build_call_graph(self) -> None:
        for info in self.modules.values():
            for fn in self._all_functions(info):
                callees: set[str] = set()
                for node in function_body_nodes(fn.node):
                    if isinstance(node, ast.Call):
                        target = self.resolve_call(
                            node, info, fn.class_name)
                        if target is not None:
                            callees.add(target.qualname)
                if callees:
                    self.call_graph[fn.qualname] = sorted(callees)

    def _all_functions(self, info: ModuleInfo):
        yield from info.functions.values()
        for cls_info in info.classes.values():
            yield from cls_info.methods.values()

    def all_functions(self):
        """Every module-level function and method, deterministic order."""
        for name in sorted(self.modules):
            yield from self._all_functions(self.modules[name])


def function_body_nodes(func: ast.FunctionDef):
    """Walk a function's own scope, pruning nested defs and lambdas."""
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))
