"""DES generator-contract rules.

The simulator's processes are generator functions driven by the event
loop; resilience policies (``repro.chaos.policies``) wrap process
bodies as generators that must be delegated to with ``yield from``.
Both idioms fail silently when misused — calling a generator function
without driving it creates a generator object and throws it away, and
``yield``-ing one suspends the process on a non-Event. These rules walk
every function through the project symbol table (so ``policy.call`` is
recognized across module boundaries via the call-graph resolution):

- ``des-generator-not-driven`` — an expression statement that calls a
  project generator function and discards the generator, or a ``yield``
  whose value is a generator call (``yield policy.call(...)`` instead
  of ``yield from policy.call(...)``).
- ``des-process-not-generator`` — ``sim.process(fn(...))`` where *fn*
  resolves to a concrete non-generator: the simulator would reject (or
  no-op) the process at runtime, many sim-seconds after the bug.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding, Severity
from repro.analysis.flow.symbols import (FunctionInfo, ModuleInfo, Project,
                                         function_body_nodes)

#: Terminal receiver names that make `x.process(...)` a simulator call.
_SIM_RECEIVERS = frozenset({"sim", "_sim", "simulator"})


def _finding(rule: str, module: ModuleInfo, node: ast.AST,
             message: str) -> Finding:
    lineno = getattr(node, "lineno", 1)
    context = module.lines[lineno - 1].strip() \
        if 0 < lineno <= len(module.lines) else ""
    return Finding(tool="flow", rule=rule, path=module.rel_path,
                   line=lineno, message=message,
                   severity=Severity.ERROR, context=context)


def _resolved_generator_call(project: Project, node: ast.AST,
                             module: ModuleInfo,
                             class_name: str | None) -> FunctionInfo | None:
    """The generator FunctionInfo *node* calls, when it provably is one."""
    if not isinstance(node, ast.Call):
        return None
    target = project.resolve_call(node, module, class_name)
    if target is not None and target.is_generator \
            and not target.is_abstract:
        return target
    return None


def _may_return_generator(project: Project, fn: FunctionInfo,
                          depth: int = 0,
                          seen: frozenset[str] = frozenset()) -> bool:
    """Could calling *fn* evaluate to a generator object?

    True for generator functions, and for plain functions whose return
    value the analysis cannot prove generator-free — e.g.
    ``return policy.call(factory)`` (a resolved generator call) or
    ``return factory()`` (unresolvable). Only a function whose every
    ``return`` is provably non-generator (or that never returns a
    value) is safely False; soundness over recall.
    """
    if fn.is_generator:
        return True
    if depth > 4 or fn.qualname in seen:
        return True  # recursion / depth bail-out: assume the worst
    module = project.modules.get(fn.module)
    if module is None:
        return True
    for node in function_body_nodes(fn.node):
        if not isinstance(node, ast.Return) or node.value is None:
            continue
        value = node.value
        if isinstance(value, _NON_GENERATOR_EXPRS):
            continue
        if isinstance(value, ast.Call):
            target = project.resolve_call(value, module, fn.class_name)
            if target is None or target.is_abstract:
                return True
            if _may_return_generator(project, target, depth + 1,
                                     seen | {fn.qualname}):
                return True
            continue
        return True  # a name/attribute could hold a generator
    return False


#: Expression types whose value is never a generator object (note that
#: ast.GeneratorExp is deliberately NOT here).
_NON_GENERATOR_EXPRS = (ast.Constant, ast.BinOp, ast.UnaryOp,
                        ast.Compare, ast.JoinedStr, ast.Dict, ast.List,
                        ast.Tuple, ast.Set, ast.ListComp, ast.SetComp,
                        ast.DictComp)


def _sim_process_arg(call: ast.Call) -> ast.expr | None:
    """The process argument of a ``sim.process(...)`` call, else None."""
    func = call.func
    if not isinstance(func, ast.Attribute) or func.attr != "process":
        return None
    receiver = func.value
    terminal = receiver.attr if isinstance(receiver, ast.Attribute) \
        else receiver.id if isinstance(receiver, ast.Name) else None
    if terminal not in _SIM_RECEIVERS:
        return None
    if call.args:
        return call.args[0]
    for keyword in call.keywords:
        if keyword.arg in ("process", "generator", "gen"):
            return keyword.value
    return None


def _direct_nested_defs(node: ast.FunctionDef):
    """Defs nested one level inside *node*'s own scope."""
    stack: list[ast.AST] = list(node.body)
    while stack:
        current = stack.pop()
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield current
            continue
        if isinstance(current, (ast.Lambda, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(current))


def _function_units(project: Project):
    """(qualname, class_name, def-node, module) for every function —
    including defs nested inside other functions (process bodies and
    bus handlers are frequently closures)."""
    for fn in project.all_functions():
        module = project.modules[fn.module]
        worklist = [(fn.qualname, fn.node)]
        while worklist:
            qualname, node = worklist.pop()
            yield qualname, fn.class_name, node, module
            for nested in _direct_nested_defs(node):
                worklist.append((f"{qualname}.{nested.name}", nested))


def analyze_des_contracts(project: Project) -> list[Finding]:
    """All DES-contract findings for *project*."""
    findings: list[Finding] = []
    for qualname, class_name, fn_node, module in _function_units(project):
        for node in function_body_nodes(fn_node):
            # Expression statement discarding a fresh generator.
            if isinstance(node, ast.Expr):
                target = _resolved_generator_call(
                    project, node.value, module, class_name)
                if target is not None:
                    findings.append(_finding(
                        "des-generator-not-driven", module, node,
                        f"{qualname} calls generator "
                        f"{target.qualname} and discards the result; "
                        f"drive it with `yield from` or "
                        f"`sim.process(...)`"))
                continue
            # `yield gen(...)`: suspends on a generator, not an Event.
            if isinstance(node, ast.Yield) and node.value is not None:
                target = _resolved_generator_call(
                    project, node.value, module, class_name)
                if target is not None:
                    findings.append(_finding(
                        "des-generator-not-driven", module, node,
                        f"{qualname} yields generator "
                        f"{target.qualname}; delegate with "
                        f"`yield from` so it actually runs"))
                continue
            # sim.process(fn(...)) with a non-generator fn.
            if isinstance(node, ast.Call):
                arg = _sim_process_arg(node)
                if isinstance(arg, ast.Call):
                    target = project.resolve_call(arg, module,
                                                  class_name)
                    if target is not None and not target.is_abstract \
                            and not _may_return_generator(project,
                                                          target):
                        findings.append(_finding(
                            "des-process-not-generator", module, node,
                            f"{qualname} passes non-generator "
                            f"{target.qualname} to sim.process(); "
                            f"processes must be generator functions"))
    return findings
