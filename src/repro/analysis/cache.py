"""mtime+size-keyed AST parse cache shared by every analysis engine.

Parsing is the dominant cost of an analysis run (continuum-lint and the
flow analyses both walk every module under ``src/repro``, and CI plus
pre-commit run them back to back). The cache keys each file on
``(path, mtime_ns, size)`` so an unchanged file is parsed exactly once
per process — and, when a cache file is configured, once per *machine*:
the CLI persists the cache with :mod:`pickle` (AST nodes pickle
cleanly) and validates every entry against the file's current stat on
reuse, so a stale entry can never survive an edit.

The cache is an optimization only: a missing, unreadable or corrupt
cache file silently degrades to parsing from scratch.
"""

from __future__ import annotations

import ast
import pickle
from dataclasses import dataclass
from pathlib import Path

#: Bump when ParsedFile's shape changes; mismatched caches are dropped.
CACHE_VERSION = 1


@dataclass
class ParsedFile:
    """One parse result. ``tree`` is None when the file failed to parse
    (``error`` then carries the SyntaxError message and line)."""

    source: str
    lines: list[str]
    tree: ast.Module | None
    error: tuple[str, int] | None = None  # (message, lineno)


def _stat_key(path: Path) -> tuple[int, int] | None:
    try:
        stat = path.stat()
    except OSError:
        return None
    return (stat.st_mtime_ns, stat.st_size)


class ParseCache:
    """In-process parse cache with optional on-disk persistence."""

    def __init__(self):
        #: resolved path -> ((mtime_ns, size), ParsedFile)
        self._entries: dict[str, tuple[tuple[int, int], ParsedFile]] = {}
        self.hits = 0
        self.misses = 0

    def parse(self, path: str | Path) -> ParsedFile:
        """Parse *path*, reusing the cached AST when stat is unchanged."""
        path = Path(path)
        key = str(path.resolve())
        stat_key = _stat_key(path)
        if stat_key is not None:
            cached = self._entries.get(key)
            if cached is not None and cached[0] == stat_key:
                self.hits += 1
                return cached[1]
        self.misses += 1
        try:
            source = path.read_text()
        except OSError:
            return ParsedFile(source="", lines=[], tree=None,
                              error=("unreadable file", 1))
        parsed = parse_source(source)
        if stat_key is not None:
            self._entries[key] = (stat_key, parsed)
        return parsed

    def __len__(self) -> int:
        return len(self._entries)

    # -- persistence --------------------------------------------------------

    @classmethod
    def load(cls, cache_path: str | Path) -> "ParseCache":
        """Restore a persisted cache; any failure yields an empty one."""
        cache = cls()
        try:
            payload = pickle.loads(Path(cache_path).read_bytes())
            if payload.get("version") == CACHE_VERSION:
                cache._entries = payload["entries"]
        except (OSError, pickle.PickleError, AttributeError, EOFError,
                KeyError, TypeError, ValueError, ImportError):
            pass
        return cache

    def save(self, cache_path: str | Path) -> bool:
        """Persist the cache; returns False (and stays silent) on I/O
        failure — the cache must never break an analysis run."""
        payload = {"version": CACHE_VERSION, "entries": self._entries}
        try:
            Path(cache_path).write_bytes(pickle.dumps(payload))
        except (OSError, pickle.PickleError):
            return False
        return True


def parse_source(source: str) -> ParsedFile:
    """Parse a source string into a ParsedFile (no caching)."""
    lines = source.splitlines()
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return ParsedFile(source=source, lines=lines, tree=None,
                          error=(exc.msg or "invalid syntax",
                                 exc.lineno or 1))
    return ParsedFile(source=source, lines=lines, tree=tree)
