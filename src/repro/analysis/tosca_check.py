"""Static TOSCA/CSAR checking — validate templates without deploying.

The runtime validator (:mod:`repro.tosca.validator`) raises on schema
violations at deployment time; this checker runs the same template
*statically* (pre-deployment, in CI) and reports findings instead of
raising, adding the checks the validator leaves to the orchestrator:

- dependency cycles across *all* requirement kinds, not just HostedOn;
- operating-point metadata shape (the Pareto points the DPE embeds and
  the MIRTO Node Manager consumes at runtime);
- security-level metadata (policy ``min_level`` and node
  ``max_security_level`` against the Table II ladder);
- CSAR artifact cross-references (templates naming artifacts that are
  not in the archive, and orphaned artifacts nothing references).
"""

from __future__ import annotations

import json

import networkx as nx

from repro.tosca.csar import CsarArchive
from repro.tosca.model import ServiceTemplate
from repro.tosca.validator import ToscaValidator

from repro.analysis.findings import Finding, Severity, assign_occurrences

_SECURITY_LEVELS = ("low", "medium", "high")

#: keys every exported operating point must carry (dse.export_operating_points)
_OPERATING_POINT_REQUIRED = ("name", "latency_s", "energy_j")


def _finding(rule: str, path: str, message: str,
             severity: Severity = Severity.ERROR) -> Finding:
    return Finding(tool="tosca", rule=rule, path=path, line=0,
                   message=message, severity=severity, context=message)


def check_service(service: ServiceTemplate,
                  path: str | None = None) -> list[Finding]:
    """Statically check one service template; returns findings."""
    path = path or f"tosca:{service.name}"
    findings: list[Finding] = []
    # Reuse the runtime validator's schema checks as findings.
    for problem in ToscaValidator().check(service):
        findings.append(_finding("schema", path, problem))
    findings += _check_dependency_cycles(service, path)
    findings += _check_operating_points(service, path)
    findings += _check_security_levels(service, path)
    return assign_occurrences(findings)


def _check_dependency_cycles(service: ServiceTemplate,
                             path: str) -> list[Finding]:
    """Cycles over every requirement kind (host, connection, streams).

    The runtime validator only rejects HostedOn cycles; a ConnectsTo
    cycle with no initial tokens deadlocks startup ordering the same
    way, so the static checker covers the full requirement graph.
    """
    graph = nx.DiGraph()
    for template in service.node_templates.values():
        for req in template.requirements:
            if req.target in service.node_templates \
                    and req.target != template.name:
                graph.add_edge(template.name, req.target,
                               kind=req.name)
    findings = []
    for cycle in nx.simple_cycles(graph):
        chain = " -> ".join(cycle + [cycle[0]])
        findings.append(_finding(
            "dependency-cycle", path,
            f"requirement cycle: {chain}",
            # host cycles are fatal; mixed cycles are suspicious
            Severity.ERROR))
    return findings


def _check_operating_points(service: ServiceTemplate,
                            path: str) -> list[Finding]:
    findings = []
    for template in service.node_templates.values():
        points = template.properties.get("operating_points")
        if points is None:
            continue
        if not isinstance(points, list):
            findings.append(_finding(
                "operating-points", path,
                f"node {template.name}: operating_points must be a "
                "list of point mappings"))
            continue
        names: set[str] = set()
        for index, point in enumerate(points):
            where = f"node {template.name}: operating point #{index}"
            if not isinstance(point, dict):
                findings.append(_finding(
                    "operating-points", path,
                    f"{where} is not a mapping"))
                continue
            for key in _OPERATING_POINT_REQUIRED:
                if key not in point:
                    findings.append(_finding(
                        "operating-points", path,
                        f"{where} lacks required key {key!r}"))
            for key in ("latency_s", "energy_j"):
                value = point.get(key)
                if value is not None and (
                        not isinstance(value, (int, float))
                        or isinstance(value, bool) or value < 0):
                    findings.append(_finding(
                        "operating-points", path,
                        f"{where}: {key} must be a non-negative number"))
            name = point.get("name")
            if isinstance(name, str):
                if name in names:
                    findings.append(_finding(
                        "operating-points", path,
                        f"{where}: duplicate point name {name!r}"))
                names.add(name)
    return findings


def _check_security_levels(service: ServiceTemplate,
                           path: str) -> list[Finding]:
    findings = []
    for template in service.node_templates.values():
        level = template.properties.get("max_security_level")
        if level is not None and level not in _SECURITY_LEVELS:
            findings.append(_finding(
                "security-level", path,
                f"node {template.name}: max_security_level {level!r} "
                f"is not one of {_SECURITY_LEVELS}"))
    for policy in service.policies:
        if policy.type != "myrtus.policies.Security":
            continue
        level = policy.properties.get("min_level")
        if level is not None and level not in _SECURITY_LEVELS:
            findings.append(_finding(
                "security-level", path,
                f"policy {policy.name}: min_level {level!r} is not one "
                f"of {_SECURITY_LEVELS}"))
    meta_level = service.metadata.get("security_level")
    if meta_level is not None and meta_level not in _SECURITY_LEVELS:
        findings.append(_finding(
            "security-level", path,
            f"metadata security_level {meta_level!r} is not one of "
            f"{_SECURITY_LEVELS}"))
    return findings


def check_csar(archive: CsarArchive,
               path: str | None = None) -> list[Finding]:
    """Check a CSAR: the embedded template plus artifact cross-refs."""
    path = path or f"csar:{archive.service.name}"
    findings = list(check_service(archive.service, path))
    referenced: set[str] = set()
    for template in archive.service.node_templates.values():
        bitstream = template.properties.get("bitstream")
        if isinstance(bitstream, str) and bitstream:
            referenced.add(bitstream)
            if bitstream not in archive.artifacts:
                findings.append(_finding(
                    "artifact-ref", path,
                    f"node {template.name}: bitstream {bitstream!r} is "
                    "not packaged in the archive"))
    # Operating-point JSON artifacts must parse and be well-formed.
    for artifact_path, content in sorted(archive.artifacts.items()):
        if artifact_path.endswith("operating_points.json"):
            referenced.add(artifact_path)
            try:
                points = json.loads(content.decode())
            except (UnicodeDecodeError, json.JSONDecodeError):
                findings.append(_finding(
                    "artifact-ref", path,
                    f"artifact {artifact_path}: not valid JSON"))
                continue
            if not isinstance(points, list) or any(
                    not isinstance(p, dict)
                    or any(k not in p for k in _OPERATING_POINT_REQUIRED)
                    for p in points):
                findings.append(_finding(
                    "operating-points", path,
                    f"artifact {artifact_path}: malformed operating "
                    "points"))
    for artifact_path in sorted(archive.artifacts):
        if artifact_path not in referenced:
            findings.append(_finding(
                "artifact-ref", path,
                f"artifact {artifact_path} is referenced by no "
                "template", Severity.WARNING))
    return assign_occurrences(findings)


def check_csar_bytes(data: bytes, path: str = "csar") -> list[Finding]:
    """Check raw CSAR bytes (the CLI entry point for .csar files)."""
    from repro.core.errors import ValidationError

    try:
        archive = CsarArchive.from_bytes(data)
    except ValidationError as exc:
        return [_finding("archive", path, str(exc))]
    return check_csar(archive, path)
