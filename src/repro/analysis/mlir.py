"""Dataflow analyses for the mini-MLIR (`repro.dpe.mlir`).

The IR verifier in ``repro.dpe.mlir.ir`` enforces SSA dominance and
per-op structural rules; this module adds the classic dataflow
analyses on top: def-use chains, use-before-def and dead-value
detection, backward liveness over an explicit control-flow graph, and a
type/arity consistency checker that is stricter than the dialect
verifiers (element kinds for arith ops, result types of base2/select,
cmp operand agreement).

``check_function`` combines the blocking analyses and is invoked from
``repro.dpe.mlir.passes`` after every rewrite, so each lowering stage
of the DPE flow is statically checked — not just interpreted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import CompilationError
from repro.dpe.mlir.ir import (
    OP_VERIFIERS,
    Base2Type,
    Function,
    Module,
    Operation,
    ScalarType,
    TensorType,
    Value,
)

from repro.analysis.findings import Finding, Severity, assign_occurrences

#: Ops kept alive regardless of result uses (side effects on channels /
#: configuration state) — mirrors the DCE rule in passes.py.
_SIDE_EFFECT_PREFIXES = ("dfg.", "cgra.")


# -- def-use chains ----------------------------------------------------------------


@dataclass
class DefUse:
    """Where one SSA value is defined and every place it is used."""

    value: Value
    producer: Operation | None  # None = function argument
    uses: list[tuple[Operation, int]] = field(default_factory=list)
    returned: bool = False

    @property
    def is_argument(self) -> bool:
        return self.producer is None

    @property
    def is_dead(self) -> bool:
        return not self.uses and not self.returned


def def_use_chains(function: Function) -> dict[Value, DefUse]:
    """Build the def-use chain for every value in *function*."""
    chains: dict[Value, DefUse] = {}
    for arg in function.arguments:
        chains[arg] = DefUse(value=arg, producer=None)
    for op in function.ops:
        for res in op.results:
            chains[res] = DefUse(value=res, producer=op)
    for op in function.ops:
        for index, operand in enumerate(op.operands):
            if operand in chains:
                chains[operand].uses.append((op, index))
    for ret in function.returns:
        if ret in chains:
            chains[ret].returned = True
    return chains


def use_before_def(function: Function) -> list[str]:
    """Report operands read before (or without ever being) defined."""
    problems: list[str] = []
    defined: set[int] = {id(a) for a in function.arguments}
    all_defs: set[int] = set(defined)
    for op in function.ops:
        for res in op.results:
            all_defs.add(id(res))
    for position, op in enumerate(function.ops):
        for operand in op.operands:
            if id(operand) in defined:
                continue
            if id(operand) in all_defs:
                problems.append(
                    f"{function.name}: op #{position} ({op.name}) uses "
                    f"%{operand.name} before its definition")
            else:
                problems.append(
                    f"{function.name}: op #{position} ({op.name}) uses "
                    f"%{operand.name} which is never defined")
        for res in op.results:
            defined.add(id(res))
    for ret in function.returns:
        if id(ret) not in defined:
            problems.append(
                f"{function.name}: returns %{ret.name} which is never "
                "defined")
    return problems


def dead_values(function: Function) -> list[Value]:
    """Values produced but never consumed nor returned.

    Results of side-effecting ops (dfg.*, cgra.*) are not reported:
    their firing matters even when the token value is unread.
    """
    dead = []
    for info in def_use_chains(function).values():
        if not info.is_dead or info.is_argument:
            continue
        if info.producer is not None and \
                info.producer.name.startswith(_SIDE_EFFECT_PREFIXES):
            continue
        dead.append(info.value)
    return dead


# -- liveness over an explicit CFG ----------------------------------------------------

# The IR's functions are single-block, but the analysis is written
# against a block graph so lowering stages that introduce control flow
# (and the tests' diamond CFG) use the same fixed-point engine.


@dataclass
class Block:
    """A straight-line sequence of operations inside a CFG."""

    name: str
    ops: list[Operation] = field(default_factory=list)

    def use_def(self) -> tuple[set[Value], set[Value]]:
        """(upward-exposed uses, definitions) for this block."""
        uses: set[Value] = set()
        defs: set[Value] = set()
        for op in self.ops:
            for operand in op.operands:
                if operand not in defs:
                    uses.add(operand)
            for res in op.results:
                defs.add(res)
        return uses, defs


class ControlFlowGraph:
    """A directed graph of blocks with one entry."""

    def __init__(self, name: str, entry: str = "entry"):
        self.name = name
        self.entry = entry
        self.blocks: dict[str, Block] = {}
        self._successors: dict[str, list[str]] = {}

    def add_block(self, name: str,
                  ops: list[Operation] | None = None) -> Block:
        if name in self.blocks:
            raise CompilationError(f"duplicate block {name!r}")
        block = Block(name, list(ops or []))
        self.blocks[name] = block
        self._successors[name] = []
        return block

    def add_edge(self, src: str, dst: str) -> None:
        for endpoint in (src, dst):
            if endpoint not in self.blocks:
                raise CompilationError(f"unknown block {endpoint!r}")
        self._successors[src].append(dst)

    def successors(self, name: str) -> list[str]:
        return list(self._successors[name])

    def exit_blocks(self) -> list[str]:
        return [name for name, succ in self._successors.items()
                if not succ]


@dataclass
class LivenessResult:
    """Per-block live-in/live-out sets from the backward fixed point."""

    live_in: dict[str, frozenset[Value]]
    live_out: dict[str, frozenset[Value]]


def liveness(cfg: ControlFlowGraph,
             exit_live: set[Value] | None = None) -> LivenessResult:
    """Backward may-liveness: ``in = use ∪ (out − def)``.

    *exit_live* is the set of values live past the function (its
    returns); it seeds the live-out of every exit block.
    """
    exit_live = set(exit_live or ())
    use_def = {name: block.use_def()
               for name, block in cfg.blocks.items()}
    live_in: dict[str, set[Value]] = {n: set() for n in cfg.blocks}
    live_out: dict[str, set[Value]] = {n: set() for n in cfg.blocks}
    exits = set(cfg.exit_blocks())
    changed = True
    while changed:
        changed = False
        for name in cfg.blocks:
            out: set[Value] = set(exit_live) if name in exits else set()
            for succ in cfg.successors(name):
                out |= live_in[succ]
            uses, defs = use_def[name]
            new_in = uses | (out - defs)
            if out != live_out[name] or new_in != live_in[name]:
                live_out[name] = out
                live_in[name] = new_in
                changed = True
    return LivenessResult(
        live_in={n: frozenset(s) for n, s in live_in.items()},
        live_out={n: frozenset(s) for n, s in live_out.items()},
    )


def cfg_of_function(function: Function) -> ControlFlowGraph:
    """View a single-block IR function as a one-block CFG."""
    cfg = ControlFlowGraph(function.name)
    cfg.add_block(cfg.entry, function.ops)
    return cfg


def live_into_function(function: Function) -> frozenset[Value]:
    """Values the function body needs from outside (should ⊆ args)."""
    cfg = cfg_of_function(function)
    result = liveness(cfg, exit_live=set(function.returns))
    return result.live_in[cfg.entry]


# -- type / arity consistency -------------------------------------------------------

#: op name -> (operand count, result count); None = unconstrained.
_ARITY: dict[str, tuple[int | None, int | None]] = {
    "arith.constant": (0, 1),
    "arith.cmp": (2, 1),
    "arith.select": (3, 1),
    "tensor.constant": (0, 1),
    "tensor.matmul": (2, 1),
    "tensor.add": (2, 1),
    "tensor.mul": (2, 1),
    "tensor.relu": (1, 1),
    "tensor.reshape": (1, 1),
    "base2.quantize": (1, 1),
    "base2.dequantize": (1, 1),
    "base2.add": (2, 1),
    "base2.mul": (2, 1),
    "base2.matmul": (2, 1),
    "base2.relu": (1, 1),
}
for _name in ("arith.addi", "arith.subi", "arith.muli", "arith.addf",
              "arith.subf", "arith.mulf", "arith.divf", "arith.maxf",
              "arith.minf"):
    _ARITY[_name] = (2, 1)

_INT_ARITH = frozenset({"arith.addi", "arith.subi", "arith.muli"})
_FLOAT_ARITH = frozenset({"arith.addf", "arith.subf", "arith.mulf",
                          "arith.divf", "arith.maxf", "arith.minf"})


def _element_of(type_):
    return type_.element if isinstance(type_, TensorType) else type_


def check_types(function: Function) -> list[str]:
    """Arity + type consistency beyond the dialect verifiers.

    Runs the registered per-op verifier, then checks the stricter rules
    the dialects leave open: scalar kind of arith int/float ops, cmp
    operand agreement, select result type, and base2 result elements.
    """
    problems: list[str] = []

    def bad(op: Operation, message: str) -> None:
        problems.append(f"{function.name}: {op.name}: {message}")

    for op in function.ops:
        arity = _ARITY.get(op.name)
        if arity is not None:
            want_operands, want_results = arity
            if want_operands is not None \
                    and len(op.operands) != want_operands:
                bad(op, f"expects {want_operands} operands, has "
                        f"{len(op.operands)}")
                continue
            if want_results is not None \
                    and len(op.results) != want_results:
                bad(op, f"expects {want_results} results, has "
                        f"{len(op.results)}")
                continue
        verifier = OP_VERIFIERS.get(op.name)
        if verifier is not None:
            try:
                verifier(op)
            except CompilationError as exc:
                bad(op, str(exc))
                continue
        if op.name in _INT_ARITH or op.name in _FLOAT_ARITH:
            elem = _element_of(op.operands[0].type)
            if isinstance(elem, ScalarType):
                if op.name in _INT_ARITH and not elem.is_integer:
                    bad(op, f"integer arith on non-integer type {elem}")
                if op.name in _FLOAT_ARITH and not elem.is_float:
                    bad(op, f"float arith on non-float type {elem}")
        elif op.name == "arith.cmp":
            lhs, rhs = op.operands
            if lhs.type != rhs.type:
                bad(op, f"cmp operand types differ: {lhs.type} vs "
                        f"{rhs.type}")
        elif op.name == "arith.select":
            if op.results[0].type != op.operands[1].type:
                bad(op, "select result type must match branch type")
        elif op.name in ("base2.add", "base2.mul", "base2.matmul",
                         "base2.relu"):
            elem = _element_of(op.results[0].type)
            if not isinstance(elem, Base2Type):
                bad(op, f"base2 op result element is {elem}, "
                        "expected a base2 type")
        elif op.name == "base2.dequantize":
            elem = _element_of(op.results[0].type)
            if isinstance(elem, Base2Type):
                bad(op, "dequantize result must be a float/scalar type")
    return problems


# -- combined checks (the pass entry points) ------------------------------------------


def check_function(function: Function) -> list[str]:
    """Blocking checks: use-before-def + type/arity consistency."""
    return use_before_def(function) + check_types(function)


def check_module(module: Module) -> None:
    """Raise :class:`CompilationError` when any function fails."""
    problems: list[str] = []
    for function in module.functions.values():
        problems += check_function(function)
    if problems:
        raise CompilationError(
            f"module {module.name!r} failed dataflow checks: "
            + "; ".join(problems))


def analyze_module(module: Module) -> list[Finding]:
    """Full report as findings (blocking problems + dead-value warnings)."""
    findings: list[Finding] = []
    for function in module.functions.values():
        path = f"mlir:{module.name}/{function.name}"
        for problem in check_function(function):
            findings.append(Finding(
                tool="mlir", rule="dataflow", path=path, line=0,
                message=problem, severity=Severity.ERROR,
                context=problem))
        for value in dead_values(function):
            producer = value.producer.name if value.producer else "?"
            message = (f"{function.name}: %{value.name} ({producer}) is "
                       "never used")
            findings.append(Finding(
                tool="mlir", rule="dead-value", path=path, line=0,
                message=message, severity=Severity.WARNING,
                context=message))
    return assign_occurrences(findings)
