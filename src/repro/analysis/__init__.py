"""Static analysis for the reproduction (`repro.analysis`).

Three engines share one finding/baseline core and one CLI
(``python -m repro.analysis`` / ``repro-analysis``):

- **continuum-lint** (:mod:`repro.analysis.lint`) — an AST rule engine
  enforcing the determinism invariants: no global ``random`` use
  outside ``core/rng.py``, no wall-clock reads in simulation code, no
  seed derivation from RNG floats or ``hash()``, plus general hygiene
  (mutable defaults, overbroad excepts).
- **MLIR dataflow analyses** (:mod:`repro.analysis.mlir`) — def-use
  chains, use-before-def, dead values, CFG liveness and a type/arity
  checker for ``repro.dpe.mlir`` modules, run after every rewrite
  pass.
- **static TOSCA/CSAR checking** (:mod:`repro.analysis.tosca_check`)
  — validates templates and archives without deploying them.
"""

from repro.analysis.findings import (
    Baseline,
    BaselineDiff,
    Finding,
    Severity,
    assign_occurrences,
)
from repro.analysis.config import AnalysisConfig, load_config

__all__ = [
    "AnalysisConfig",
    "Baseline",
    "BaselineDiff",
    "Finding",
    "Severity",
    "assign_occurrences",
    "load_config",
]
