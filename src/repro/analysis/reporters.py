"""Human and JSON reporters shared by all analysis engines."""

from __future__ import annotations

import json

from repro.analysis.findings import BaselineDiff, Finding


def render_text(diff: BaselineDiff, verbose: bool = False) -> str:
    """The human report: new findings in full, the rest summarized."""
    lines: list[str] = []
    for finding in sorted(diff.new,
                          key=lambda f: (f.path, f.line, f.rule)):
        lines.append(f"{finding.location}: {finding.severity.value} "
                     f"[{finding.rule}] {finding.message}")
    if verbose:
        for finding in sorted(diff.baselined,
                              key=lambda f: (f.path, f.line, f.rule)):
            lines.append(f"{finding.location}: baselined "
                         f"[{finding.rule}] {finding.message}")
    summary = (f"{len(diff.new)} new, {len(diff.baselined)} baselined, "
               f"{len(diff.fixed)} fixed-in-baseline")
    if diff.fixed:
        summary += " (rerun with --write-baseline to shrink it)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(diff: BaselineDiff) -> str:
    """Machine-readable report (one object; findings grouped by status)."""
    payload = {
        "new": [f.as_dict() for f in diff.new],
        "baselined": [f.as_dict() for f in diff.baselined],
        "fixed": diff.fixed,
        "summary": {
            "new": len(diff.new),
            "baselined": len(diff.baselined),
            "fixed": len(diff.fixed),
            "blocking": len(diff.blocking),
        },
    }
    return json.dumps(payload, indent=2)


def render_findings(findings: list[Finding]) -> str:
    """Plain listing used outside the baseline workflow (tosca mode)."""
    lines = [f"{f.location}: {f.severity.value} [{f.rule}] {f.message}"
             for f in findings]
    lines.append(f"{len(findings)} finding(s)")
    return "\n".join(lines)
