"""Configuration for the analysis subsystem.

Settings live in ``pyproject.toml`` under ``[tool.repro-analysis]`` so
the repo carries one source of truth for rule toggles, per-path
excludes, the simulation-package list (where wall-clock reads are
forbidden) and the baseline location. Everything has defaults, so the
analyzers also run on a bare checkout with no config at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

try:  # Python >= 3.11
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - 3.10 fallback
    tomllib = None


@dataclass
class AnalysisConfig:
    """Resolved configuration for one analysis run."""

    root: Path = field(default_factory=Path.cwd)
    paths: list[str] = field(default_factory=lambda: ["src/repro"])
    exclude: list[str] = field(default_factory=list)
    disable: list[str] = field(default_factory=list)
    # Packages treated as deterministic simulation code: wall-clock
    # reads are forbidden inside them (DESIGN.md invariants).
    simulation_packages: list[str] = field(
        default_factory=lambda: ["continuum", "kube", "kb", "mirto",
                                 "chaos"])
    # Files allowed to touch the global `random` / `np.random` modules.
    rng_allowlist: list[str] = field(
        default_factory=lambda: ["core/rng.py"])
    # Paths allowed to construct Simulator()/EventBus() directly; all
    # other code must be injected with a RuntimeContext.
    runtime_allowlist: list[str] = field(
        default_factory=lambda: ["runtime/", "tests/"])
    # Files allowed to print() (rendering CLIs). Telemetry everywhere
    # else must flow through repro.obs (spans/metrics/trace).
    print_allowlist: list[str] = field(
        default_factory=lambda: ["analysis/cli.py", "obs/cli.py",
                                 "chaos/cli.py"])
    # Call sites still permitted to use the deprecated context shims
    # (ensure_context / as_simulator). Empty by default: new code goes
    # through RuntimeContext.adopt; the shims survive only inside
    # runtime/ itself (built-in) and tests.
    context_shim_allowlist: list[str] = field(default_factory=list)
    # Call sites still permitted to use the deprecated
    # PlacementStrategy.place() entry point. Empty by default: new code
    # builds a PlacementRequest and calls solve(); tests keep calling
    # the shim (they prove it still works) and are always allowed.
    place_api_allowlist: list[str] = field(default_factory=list)
    # Roots the whole-program flow analyses (topic contracts, DES
    # generator rules) build their symbol table from. Product code
    # only: benchmarks/examples publish nothing on the spine.
    flow_paths: list[str] = field(
        default_factory=lambda: ["src/repro"])
    baseline: str = "analysis-baseline.json"
    # On-disk AST parse cache (mtime+size validated); empty disables
    # persistence. Relative to root.
    cache: str = ".repro-analysis-cache"

    def is_excluded(self, rel_path: str) -> bool:
        rel = rel_path.replace("\\", "/")
        return any(rel.startswith(prefix.rstrip("/"))
                   for prefix in self.exclude)

    def is_simulation_path(self, rel_path: str) -> bool:
        rel = rel_path.replace("\\", "/")
        return any(f"/{pkg}/" in f"/{rel}" for pkg
                   in self.simulation_packages)

    def is_rng_allowed(self, rel_path: str) -> bool:
        rel = rel_path.replace("\\", "/")
        return any(rel.endswith(suffix) for suffix in self.rng_allowlist)

    def is_runtime_allowed(self, rel_path: str) -> bool:
        """May this file construct Simulator/EventBus directly?"""
        rel = rel_path.replace("\\", "/")
        return any(f"/{entry.strip('/')}/" in f"/{rel}"
                   for entry in self.runtime_allowlist)

    def is_print_allowed(self, rel_path: str) -> bool:
        """May this file emit telemetry via print()?

        Entries ending in ``/`` match directories; anything else
        matches as a path suffix (same semantics as the rng allowlist).
        """
        rel = rel_path.replace("\\", "/")
        for entry in self.print_allowlist:
            if entry.endswith("/"):
                if f"/{entry.strip('/')}/" in f"/{rel}":
                    return True
            elif rel.endswith(entry):
                return True
        return False

    def is_context_shim_allowed(self, rel_path: str) -> bool:
        """May this file still call the deprecated context shims?

        ``runtime/`` (where the shims live) and test trees are always
        allowed; other entries use the print-allowlist semantics.
        """
        rel = rel_path.replace("\\", "/")
        if "/runtime/" in f"/{rel}" or "/tests/" in f"/{rel}":
            return True
        for entry in self.context_shim_allowlist:
            if entry.endswith("/"):
                if f"/{entry.strip('/')}/" in f"/{rel}":
                    return True
            elif rel.endswith(entry):
                return True
        return False

    def is_place_api_allowed(self, rel_path: str) -> bool:
        """May this file still call the deprecated ``place()`` API?

        Test trees are always allowed (the shim's behavior is itself
        under test); other entries use the print-allowlist semantics.
        """
        rel = rel_path.replace("\\", "/")
        if "/tests/" in f"/{rel}":
            return True
        for entry in self.place_api_allowlist:
            if entry.endswith("/"):
                if f"/{entry.strip('/')}/" in f"/{rel}":
                    return True
            elif rel.endswith(entry):
                return True
        return False

    def rule_enabled(self, rule_id: str) -> bool:
        return rule_id not in self.disable

    @property
    def baseline_path(self) -> Path:
        return self.root / self.baseline

    @property
    def cache_path(self) -> Path | None:
        return self.root / self.cache if self.cache else None


def load_config(root: str | Path | None = None) -> AnalysisConfig:
    """Read ``[tool.repro-analysis]`` from *root*/pyproject.toml.

    Missing file, missing table, or a Python without tomllib all yield
    the defaults — the analyzers must never fail to start because of
    configuration.
    """
    root = Path(root) if root is not None else Path.cwd()
    config = AnalysisConfig(root=root)
    pyproject = root / "pyproject.toml"
    if tomllib is None or not pyproject.exists():
        return config
    try:
        data = tomllib.loads(pyproject.read_text())
    except (OSError, tomllib.TOMLDecodeError):
        return config
    table = data.get("tool", {}).get("repro-analysis", {})
    for key, attr in (("paths", "paths"), ("exclude", "exclude"),
                      ("disable", "disable"),
                      ("simulation-packages", "simulation_packages"),
                      ("rng-allowlist", "rng_allowlist"),
                      ("runtime-allowlist", "runtime_allowlist"),
                      ("print-allowlist", "print_allowlist"),
                      ("context-shim-allowlist",
                       "context_shim_allowlist"),
                      ("place-api-allowlist", "place_api_allowlist"),
                      ("flow-paths", "flow_paths")):
        value = table.get(key)
        if isinstance(value, list):
            setattr(config, attr, [str(v) for v in value])
    if isinstance(table.get("baseline"), str):
        config.baseline = table["baseline"]
    if isinstance(table.get("cache"), str):
        config.cache = table["cache"]
    return config
