"""The three monitor kinds of the EU-CEI Monitoring building block."""

from __future__ import annotations

from typing import Any

from repro.core.errors import ConfigurationError
from repro.core.events import EventBus
from repro.continuum.devices import Device
from repro.monitoring.metrics import Alert, MetricSeries
from repro.net.topology import Network
from repro.runtime import RuntimeContext


class _MonitorBase:
    """Shared plumbing: named series registry + bus publication.

    Monitors read the canonical clock of an injected
    :class:`~repro.runtime.RuntimeContext`: every ``time_s`` parameter
    is optional and defaults to ``ctx.now``. Passing an explicit
    ``time_s`` (e.g. for replaying historical samples) still works; a
    monitor with neither a context nor an explicit time raises.
    """

    kind = "abstract"

    def __init__(self, name: str, bus: EventBus | None = None,
                 retention: int = 1024,
                 ctx: RuntimeContext | None = None):
        self.name = name
        self.ctx = ctx
        self.bus = bus if bus is not None else (
            ctx.bus if ctx is not None else None)
        self.retention = retention
        self.series: dict[str, MetricSeries] = {}
        if ctx is not None:
            metrics = ctx.metrics
            self._samples_ctr = metrics.counter(
                f"monitoring.{self.kind}.samples",
                "samples recorded", label_key="monitor")
            self._alerts_ctr = metrics.counter(
                f"monitoring.{self.kind}.alerts",
                "threshold alerts raised", label_key="monitor")
        else:
            self._samples_ctr = None
            self._alerts_ctr = None

    def _now(self, time_s: float | None) -> float:
        if time_s is not None:
            return time_s
        if self.ctx is not None:
            return self.ctx.now
        raise ConfigurationError(
            f"monitor {self.name!r} has no RuntimeContext; pass time_s "
            "explicitly or inject ctx=")

    def metric(self, metric_name: str, alert_above: float | None = None,
               alert_below: float | None = None) -> MetricSeries:
        """Get-or-create a metric series owned by this monitor.

        Thresholds passed here stick even when the series already
        exists (recording via :meth:`_record` may have created it
        first), so alerts can be armed at any point.
        """
        if metric_name not in self.series:
            self.series[metric_name] = MetricSeries(
                f"{self.name}.{metric_name}", retention=self.retention,
                alert_above=alert_above, alert_below=alert_below)
        else:
            series = self.series[metric_name]
            if alert_above is not None:
                series.alert_above = alert_above
            if alert_below is not None:
                series.alert_below = alert_below
        return self.series[metric_name]

    def _record(self, metric_name: str, time_s: float | None,
                value: float, alert_above: float | None = None,
                alert_below: float | None = None) -> Alert | None:
        time_s = self._now(time_s)
        series = self.metric(metric_name, alert_above=alert_above,
                             alert_below=alert_below)
        alert = series.record(time_s, value)
        if self._samples_ctr is not None:
            self._samples_ctr.inc(label=self.name)
            if alert is not None:
                self._alerts_ctr.inc(label=self.name)
        if self.bus is not None:
            # Topic segments must stay dot-free (metric names such as
            # "webcam-0.utilization" would otherwise add segments).
            metric_seg = metric_name.replace(".", "-")
            self.bus.publish(
                f"monitor.metrics.{self.kind}.{self.name}.{metric_seg}",
                {"time_s": time_s, "value": value})
            if alert is not None:
                self.bus.publish(
                    f"monitor.alerts.{self.kind}.{self.name}", alert)
        return alert

    def all_alerts(self) -> list[Alert]:
        return [a for s in self.series.values() for a in s.alerts]


class ApplicationMonitor(_MonitorBase):
    """Tracks per-application KPIs: end-to-end latency, deadline misses,
    throughput — "underperformance issues not related to network/devices"."""

    kind = "application"

    def record_completion(self, time_s: float | None = None,
                          latency_s: float | None = None,
                          deadline_s: float | None = None) -> None:
        """Log one application-instance completion."""
        if latency_s is None:
            raise ConfigurationError("record_completion needs latency_s")
        self._record("latency_s", time_s, latency_s)
        if deadline_s is not None:
            self._record("deadline_miss", time_s,
                         1.0 if latency_s > deadline_s else 0.0)

    def record_throughput(self, time_s: float | None = None,
                          completions_per_s: float = 0.0) -> None:
        self._record("throughput", time_s, completions_per_s)

    def miss_rate(self) -> float:
        """Fraction of completions that missed their deadline."""
        series = self.series.get("deadline_miss")
        if not series or not len(series):
            return 0.0
        values = [v for _, v in series.samples]
        return sum(values) / len(values)


class TelemetryMonitor(_MonitorBase):
    """Tracks connectivity status and information loss on the network."""

    kind = "telemetry"

    def record_message(self, time_s: float | None = None,
                       delivered: bool = True,
                       latency_s: float | None = None) -> None:
        self._record("delivered", time_s, 1.0 if delivered else 0.0)
        if delivered and latency_s is not None:
            self._record("message_latency_s", time_s, latency_s)

    def sample_network(self, time_s: float | None = None,
                       network: Network | None = None) -> None:
        """Snapshot per-link load into the series."""
        if network is None:
            raise ConfigurationError("sample_network needs a network")
        for link in network.links:
            key = f"link_{link.a}-{link.b}_bytes"
            self._record(key, time_s, float(link.bytes_carried))

    def loss_rate(self) -> float:
        """Fraction of messages not delivered."""
        series = self.series.get("delivered")
        if not series or not len(series):
            return 0.0
        values = [v for _, v in series.samples]
        return 1.0 - sum(values) / len(values)


class InfrastructureMonitor(_MonitorBase):
    """Tracks component status: utilization, energy, queue depth, PMCs.

    The paper notes FPGA edge devices are "already instrumented to
    support basic runtime monitoring through performance monitoring
    counters"; :meth:`sample_device` reads exactly those counters.
    """

    kind = "infrastructure"

    def sample_device(self, time_s: float | None = None,
                      device: Device | None = None) -> dict[str, Any]:
        """Pull one telemetry sample from a device into the series."""
        if device is None:
            raise ConfigurationError("sample_device needs a device")
        sample = device.telemetry()
        for key in ("utilization", "queue_length", "energy_j"):
            self._record(f"{device.name}.{key}", time_s, sample[key])
        # PMC-derived counters for reconfigurable devices.
        if device.spec.reconfig_regions > 0:
            self._record(f"{device.name}.reconfigurations", time_s,
                         sample["reconfigurations"])
        return sample

    def watch_device_faults(self) -> None:
        """Record continuum fault events from the shared bus.

        Each ``continuum.fault.fail``/``.repair`` becomes a sample on
        the ``<device>.failed`` series (1.0 while down), stamped with
        the canonical clock — so the monitor sees a fault at the same
        simulated instant as every other subscriber.
        """
        if self.ctx is None:
            raise ConfigurationError(
                "watch_device_faults() needs an injected RuntimeContext")

        def _on_fault(topic: str, payload) -> None:
            device = (payload or {}).get("device")
            if device is not None:
                self._record(f"{device}.failed", None,
                             0.0 if topic.endswith(".repair") else 1.0)

        self.ctx.subscribe("continuum.fault.*", _on_fault)

    def device_utilization(self, device_name: str) -> float | None:
        series = self.series.get(f"{device_name}.utilization")
        return series.latest() if series else None

    def overloaded_devices(self, threshold: float = 0.9) -> list[str]:
        """Device names whose latest utilization exceeds *threshold*."""
        result = []
        for key, series in self.series.items():
            if key.endswith(".utilization"):
                latest = series.latest()
                if latest is not None and latest > threshold:
                    result.append(key[: -len(".utilization")])
        return sorted(result)
