"""The three monitor kinds of the EU-CEI Monitoring building block."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.events import EventBus
from repro.continuum.devices import Device
from repro.monitoring.metrics import Alert, MetricSeries
from repro.net.topology import Network


class _MonitorBase:
    """Shared plumbing: named series registry + bus publication."""

    kind = "abstract"

    def __init__(self, name: str, bus: EventBus | None = None,
                 retention: int = 1024):
        self.name = name
        self.bus = bus
        self.retention = retention
        self.series: dict[str, MetricSeries] = {}

    def metric(self, metric_name: str, alert_above: float | None = None,
               alert_below: float | None = None) -> MetricSeries:
        """Get-or-create a metric series owned by this monitor."""
        if metric_name not in self.series:
            self.series[metric_name] = MetricSeries(
                f"{self.name}.{metric_name}", retention=self.retention,
                alert_above=alert_above, alert_below=alert_below)
        return self.series[metric_name]

    def _record(self, metric_name: str, time_s: float,
                value: float) -> Alert | None:
        series = self.metric(metric_name)
        alert = series.record(time_s, value)
        if self.bus is not None:
            self.bus.publish(
                f"metrics.{self.kind}.{self.name}.{metric_name}",
                {"time_s": time_s, "value": value})
            if alert is not None:
                self.bus.publish(f"alerts.{self.kind}.{self.name}", alert)
        return alert

    def all_alerts(self) -> list[Alert]:
        return [a for s in self.series.values() for a in s.alerts]


class ApplicationMonitor(_MonitorBase):
    """Tracks per-application KPIs: end-to-end latency, deadline misses,
    throughput — "underperformance issues not related to network/devices"."""

    kind = "application"

    def record_completion(self, time_s: float, latency_s: float,
                          deadline_s: float | None = None) -> None:
        """Log one application-instance completion."""
        self._record("latency_s", time_s, latency_s)
        if deadline_s is not None:
            self._record("deadline_miss", time_s,
                         1.0 if latency_s > deadline_s else 0.0)

    def record_throughput(self, time_s: float,
                          completions_per_s: float) -> None:
        self._record("throughput", time_s, completions_per_s)

    def miss_rate(self) -> float:
        """Fraction of completions that missed their deadline."""
        series = self.series.get("deadline_miss")
        if not series or not len(series):
            return 0.0
        values = [v for _, v in series.samples]
        return sum(values) / len(values)


class TelemetryMonitor(_MonitorBase):
    """Tracks connectivity status and information loss on the network."""

    kind = "telemetry"

    def record_message(self, time_s: float, delivered: bool,
                       latency_s: float | None = None) -> None:
        self._record("delivered", time_s, 1.0 if delivered else 0.0)
        if delivered and latency_s is not None:
            self._record("message_latency_s", time_s, latency_s)

    def sample_network(self, time_s: float, network: Network) -> None:
        """Snapshot per-link load into the series."""
        for link in network.links:
            key = f"link_{link.a}-{link.b}_bytes"
            self._record(key, time_s, float(link.bytes_carried))

    def loss_rate(self) -> float:
        """Fraction of messages not delivered."""
        series = self.series.get("delivered")
        if not series or not len(series):
            return 0.0
        values = [v for _, v in series.samples]
        return 1.0 - sum(values) / len(values)


class InfrastructureMonitor(_MonitorBase):
    """Tracks component status: utilization, energy, queue depth, PMCs.

    The paper notes FPGA edge devices are "already instrumented to
    support basic runtime monitoring through performance monitoring
    counters"; :meth:`sample_device` reads exactly those counters.
    """

    kind = "infrastructure"

    def sample_device(self, time_s: float, device: Device) -> dict[str, Any]:
        """Pull one telemetry sample from a device into the series."""
        sample = device.telemetry()
        for key in ("utilization", "queue_length", "energy_j"):
            self._record(f"{device.name}.{key}", time_s, sample[key])
        # PMC-derived counters for reconfigurable devices.
        if device.spec.reconfig_regions > 0:
            self._record(f"{device.name}.reconfigurations", time_s,
                         sample["reconfigurations"])
        return sample

    def device_utilization(self, device_name: str) -> float | None:
        series = self.series.get(f"{device_name}.utilization")
        return series.latest() if series else None

    def overloaded_devices(self, threshold: float = 0.9) -> list[str]:
        """Device names whose latest utilization exceeds *threshold*."""
        result = []
        for key, series in self.series.items():
            if key.endswith(".utilization"):
                latest = series.latest()
                if latest is not None and latest > threshold:
                    result.append(key[: -len(".utilization")])
        return sorted(result)
