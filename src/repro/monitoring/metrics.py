"""Metric time series with bounded retention and threshold alerts."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import ConfigurationError


@dataclass(frozen=True)
class MetricStats:
    """Summary statistics over a window of samples."""

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    stddev: float


@dataclass(frozen=True)
class Alert:
    """A threshold violation raised by a metric."""

    metric: str
    time_s: float
    value: float
    threshold: float
    direction: str  # "above" or "below"


class MetricSeries:
    """A named, bounded series of (time, value) samples.

    Optional thresholds turn the series into an alert source: crossing
    ``alert_above``/``alert_below`` appends an :class:`Alert`. Alerts
    use the same bounded-deque discipline as the samples (an alerting
    series left running would otherwise grow without bound); old alerts
    fall off the front and :attr:`dropped_alerts` counts the evictions,
    mirroring ``TraceRecorder.dropped_count``.
    """

    def __init__(self, name: str, retention: int = 1024,
                 alert_above: float | None = None,
                 alert_below: float | None = None,
                 alert_retention: int = 256):
        if retention < 1:
            raise ConfigurationError("retention must be >= 1")
        if alert_retention < 1:
            raise ConfigurationError("alert retention must be >= 1")
        self.name = name
        self.samples: deque[tuple[float, float]] = deque(maxlen=retention)
        self.alert_above = alert_above
        self.alert_below = alert_below
        self.alerts: deque[Alert] = deque(maxlen=alert_retention)
        self._alerts_total = 0

    def record(self, time_s: float, value: float) -> Alert | None:
        """Append a sample; returns an alert when a threshold is crossed."""
        self.samples.append((time_s, float(value)))
        alert = None
        if self.alert_above is not None and value > self.alert_above:
            alert = Alert(self.name, time_s, value, self.alert_above, "above")
        elif self.alert_below is not None and value < self.alert_below:
            alert = Alert(self.name, time_s, value, self.alert_below, "below")
        if alert is not None:
            self.alerts.append(alert)
            self._alerts_total += 1
        return alert

    @property
    def total_alerts(self) -> int:
        """Alerts ever raised (including any that fell off the deque)."""
        return self._alerts_total

    @property
    def dropped_alerts(self) -> int:
        """Alerts evicted by the retention bound."""
        return self._alerts_total - len(self.alerts)

    def latest(self) -> float | None:
        """Most recent value, or None when empty."""
        return self.samples[-1][1] if self.samples else None

    def window(self, since_s: float) -> list[float]:
        """Values recorded at or after *since_s*."""
        return [v for t, v in self.samples if t >= since_s]

    def stats(self, since_s: float = float("-inf")) -> MetricStats | None:
        """Summary statistics over samples at or after *since_s*."""
        values = self.window(since_s)
        if not values:
            return None
        arr = np.asarray(values)
        return MetricStats(
            count=len(values),
            mean=float(arr.mean()),
            minimum=float(arr.min()),
            maximum=float(arr.max()),
            p50=float(np.percentile(arr, 50)),
            p95=float(np.percentile(arr, 95)),
            stddev=float(arr.std()),
        )

    def rate(self, window_s: float, now_s: float) -> float:
        """Samples per second over the trailing window."""
        if window_s <= 0:
            raise ConfigurationError("rate window must be positive")
        recent = [t for t, _ in self.samples if t >= now_s - window_s]
        return len(recent) / window_s

    def __len__(self) -> int:
        return len(self.samples)
