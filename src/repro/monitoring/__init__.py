"""Monitoring and observability (Table I, Monitoring row).

The paper classifies monitors into three kinds, all reproduced here:

1. **Application monitoring** — status of the application, to identify
   underperformance not related to network/devices
   (:class:`ApplicationMonitor`);
2. **Telemetry monitoring** — connectivity status and information loss
   (:class:`TelemetryMonitor`);
3. **Infrastructure and resource monitoring** — status of the components
   (:class:`InfrastructureMonitor`).

All monitors append to :class:`MetricSeries` ring buffers, publish
samples on the event bus, and can raise threshold alerts. Observability
across the continuum comes from pushing samples into the shared
Knowledge Base via a :class:`ResourceRegistry`.
"""

from repro.monitoring.metrics import MetricSeries, MetricStats, Alert
from repro.monitoring.monitors import (
    ApplicationMonitor,
    InfrastructureMonitor,
    TelemetryMonitor,
)

__all__ = [
    "MetricSeries",
    "MetricStats",
    "Alert",
    "ApplicationMonitor",
    "InfrastructureMonitor",
    "TelemetryMonitor",
]
