"""Opt-in DES profiler: wall time and sim time per event owner.

The simulator's drain loop is the one place every executed event passes
through, so that is where profiling hooks live — but the hooks are dark
by default (a single attribute check per drain) and the wall-clock read
happens *here*, in ``obs``, never inside simulation code. Wall times
are inherently nondeterministic; the profiler is therefore opt-in and
its output is excluded from determinism comparisons (sim-time and event
counts in the same rows *are* deterministic).

Attribution is by event owner, duck-typed so this module never imports
the simulator (runtime → obs → continuum would be a cycle):

- a callback bound to an object with a ``generator`` attribute is a
  simulation :class:`Process` → ``process:<name>``;
- an event with a ``delay`` attribute is a bare :class:`Timeout` →
  ``kernel:timeout``;
- anything else is attributed to its type → ``kernel:<type>``.

``repro-obs profile`` renders the aggregation as a table plus a
two-level flamegraph-style view (kind → name, bar width ∝ wall time).
"""

from __future__ import annotations

import time
from typing import Any

#: Topic under which a profile snapshot is recorded in the trace.
PROFILE_TOPIC = "obs.profile"

#: Topic under which a sharded-run profile snapshot is recorded.
SHARD_PROFILE_TOPIC = "obs.shard_profile"


def _owner_of(event: Any, callbacks: list) -> str:
    """Attribute an executed event to its owning process or kernel type."""
    if hasattr(event, "generator"):
        # The process-completion event itself (Process is an Event).
        name = getattr(event, "name", None) or "anonymous"
        return "process:" + name
    for callback in callbacks:
        target = getattr(callback, "__self__", None)
        if target is not None and hasattr(target, "generator"):
            name = getattr(target, "name", None) or "anonymous"
            return "process:" + name
    if hasattr(event, "delay"):
        return "kernel:timeout"
    return "kernel:" + type(event).__name__.lower()


class DesProfiler:
    """Aggregates executed-event cost per owner; install on a Simulator.

    Rows map owner → [events, wall_ns, sim_s]. ``sim_s`` is the sim
    time that elapsed while the event was at the head of the queue (the
    inter-event gap it closed), ``wall_ns`` is the host time spent
    running its callbacks.
    """

    #: Wall-clock source, read only from this module. Kept as a class
    #: attribute so tests can substitute a fake clock.
    clock = staticmethod(time.perf_counter_ns)

    def __init__(self) -> None:
        self.rows: dict[str, list] = {}
        self.events_profiled = 0

    def install(self, sim: Any) -> "DesProfiler":
        """Attach to a simulator; its drain loop starts accounting."""
        sim._profiler = self
        return self

    def uninstall(self, sim: Any) -> None:
        if getattr(sim, "_profiler", None) is self:
            sim._profiler = None

    def account(self, event: Any, callbacks: list,
                sim_dt: float, wall_ns: int) -> None:
        """Called by the simulator drain loop for each executed event."""
        owner = _owner_of(event, callbacks)
        row = self.rows.get(owner)
        if row is None:
            self.rows[owner] = [1, wall_ns, sim_dt]
        else:
            row[0] += 1
            row[1] += wall_ns
            row[2] += sim_dt
        self.events_profiled += 1

    def to_payload(self) -> dict[str, Any]:
        """JSON-ready snapshot; rows sorted by owner for stable layout.

        (The wall_ns values themselves are nondeterministic — do not
        include this payload in byte-identical replay comparisons.)
        """
        return {
            "events_profiled": self.events_profiled,
            "rows": {owner: {"events": row[0], "wall_ns": row[1],
                             "sim_s": row[2]}
                     for owner, row in sorted(self.rows.items())},
        }


class ShardProfiler:
    """Barrier/straggler accounting for the sharded backends (opt-in).

    One row per epoch: per-shard advance wall time (how long each heap
    took to reach the barrier), per-shard barrier wait (the idle gap to
    the slowest shard — on the sequential backend shards advance one
    after another, so "wait" reads as *the time the barrier would have
    idled* had they run concurrently), per-shard relay injections, and
    the critical-path shard (max advance, lowest index on ties).

    Like :class:`DesProfiler`, wall times are nondeterministic: the
    payload is recorded under :data:`SHARD_PROFILE_TOPIC` only by
    ``snapshot_observability`` exports, never in the merged trace the
    digest fingerprints — and enabling profiling must not (and does
    not) perturb any zone's record stream.
    """

    #: Wall-clock source, read only from obs code (continuum-lint keeps
    #: simulation packages wall-clock-free); class attribute so tests
    #: can substitute a fake clock.
    clock = staticmethod(time.perf_counter_ns)

    def __init__(self, n_shards: int, backend: str = "sequential"):
        self.n_shards = int(n_shards)
        self.backend = backend
        self.epochs: list[dict[str, Any]] = []
        self.advance_ns = [0] * self.n_shards
        self.wait_ns = [0] * self.n_shards
        self.relay = [0] * self.n_shards
        self.critical_epochs = [0] * self.n_shards

    def record_epoch(self, epoch: int, t_barrier_s: float,
                     advance_ns: list[int], relay: list[int]) -> int:
        """Account one epoch; returns the critical-path shard index."""
        slowest = max(advance_ns)
        critical = advance_ns.index(slowest)
        wait = [slowest - ns for ns in advance_ns]
        self.epochs.append({
            "epoch": epoch, "t_s": t_barrier_s,
            "advance_ns": list(advance_ns), "wait_ns": wait,
            "relay": list(relay), "critical": critical})
        for shard in range(self.n_shards):
            self.advance_ns[shard] += advance_ns[shard]
            self.wait_ns[shard] += wait[shard]
            self.relay[shard] += relay[shard]
        self.critical_epochs[critical] += 1
        return critical

    def to_payload(self) -> dict[str, Any]:
        """JSON-ready snapshot (epoch rows + per-shard totals).

        Relay counts and epoch/shard structure are deterministic; the
        wall_ns values are not — same exclusion rule as
        :class:`DesProfiler`.
        """
        return {
            "backend": self.backend,
            "n_shards": self.n_shards,
            "epochs": list(self.epochs),
            "shards": [{"advance_ns": self.advance_ns[s],
                        "wait_ns": self.wait_ns[s],
                        "relay": self.relay[s],
                        "critical_epochs": self.critical_epochs[s]}
                       for s in range(self.n_shards)],
        }
