"""``python -m repro.obs`` — delegate to the CLI."""

import sys

from repro.obs.cli import main

if __name__ == "__main__":
    sys.exit(main())
