"""Causal spans: the cross-layer tracing primitive.

A :class:`SpanContext` is the (trace_id, span_id, parent_id) triple that
links everything one cause touched — a device fault, the kube evictions
it forces, the MAPE cycle that reacts, the placement that re-solves and
the binds that land — into one tree, across every layer of the
continuum. Span and trace ids are drawn from a named stream of the
shared RNG seed tree, so two same-seed runs produce byte-identical ids
and byte-identical span dumps.

The :class:`Tracer` lives on the :class:`~repro.runtime.RuntimeContext`.
Causality propagates two ways:

- **Synchronously** through the ambient span stack: bus delivery is
  synchronous, so a handler reacting to a publish runs while the
  publisher's span is still current and its own spans nest under it.
- **Asynchronously** through captured contexts: a subscriber that only
  reacts later (the MAPE loop consumes faults on its *next* cycle)
  calls :meth:`Tracer.capture` at delivery time and passes the context
  as ``parent=`` when the reaction finally runs — or re-enters a
  finished span with :meth:`Tracer.resume` so remediation work attaches
  under it.

Every finished span lands in the shared trace as an ``obs.span`` record;
``repro-obs tree`` rebuilds the trees from the exported JSONL.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.trace import TraceRecorder

#: Topic under which finished spans are recorded in the trace.
SPAN_TOPIC = "obs.span"


@dataclass(frozen=True, slots=True)
class SpanContext:
    """Identity of one span: which trace it belongs to and its parent."""

    trace_id: str
    span_id: str
    parent_id: Optional[str] = None


def _make_envelope(context: SpanContext) -> dict[str, Any]:
    """The dict stamped onto bus publishes made under this span.

    Built once per span and shared by reference across trace records;
    nothing may mutate it after construction.
    """
    return {"trace_id": context.trace_id, "span_id": context.span_id,
            "parent_id": context.parent_id}


class Span:
    """One timed, named unit of work; use as a context manager.

    Entering pushes the span onto the tracer's ambient stack (publishes
    and child spans made inside attach to it); exiting pops it and
    records an ``obs.span`` trace record stamped with sim-time start and
    end. An exception propagating through marks ``status="error"``.
    """

    __slots__ = ("_tracer", "name", "layer", "context", "attrs",
                 "start_s", "end_s", "status", "envelope")

    def __init__(self, tracer: "Tracer", name: str, layer: str,
                 context: SpanContext, attrs: dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.layer = layer
        self.context = context
        self.attrs = attrs
        self.start_s: float | None = None
        self.end_s: float | None = None
        self.status = "ok"
        self.envelope = _make_envelope(context)

    def __enter__(self) -> "Span":
        self.start_s = self._tracer._clock()
        self._tracer._stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._stack.pop()
        self.end_s = self._tracer._clock()
        if exc_type is not None:
            self.status = "error"
        self._tracer._record(self)
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Span({self.name!r}, layer={self.layer!r}, "
                f"trace={self.context.trace_id[:8]})")


class _NullSpan:
    """No-op span returned by a disabled tracer."""

    __slots__ = ()
    context: Optional[SpanContext] = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


def null_span() -> _NullSpan:
    """A no-op span for call sites without a tracer (bus-only wiring)."""
    return NULL_SPAN


class _ResumedScope:
    """Stack entry for :meth:`Tracer.resume`: an adopted parent context."""

    __slots__ = ("context", "envelope")

    def __init__(self, context: SpanContext):
        self.context = context
        self.envelope = _make_envelope(context)

    def __enter__(self) -> "_ResumedScope":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


class _RelayScope:
    """Ambient-stack entry for the cross-shard relay fast path.

    ``repro.runtime.shard.relay_deliver`` hand-inlines the
    ``resume(parent) + start_span("shard.relay.deliver")`` pair — it
    runs once per relayed message, and the generic context-manager
    construction costs more than the relay itself. One slot-allocated
    scope stands in for both stack entries; handlers reacting inside
    the delivery see exactly the context/envelope the generic pair
    would have exposed.

    The caller hands over the envelope dict (it already holds the ids
    as locals); ``context`` materializes lazily because most deliveries
    never read it — only handlers that :meth:`Tracer.capture` or open
    child spans touch the stack top's context, and a frozen-dataclass
    construction per delivery is measurable on the relay path.
    """

    __slots__ = ("envelope",)

    def __init__(self, envelope: dict[str, Any]):
        self.envelope = envelope

    @property
    def context(self) -> SpanContext:
        env = self.envelope
        return SpanContext(env["trace_id"], env["span_id"],
                           env["parent_id"])


class _ResumeGuard:
    """Context manager that pushes/pops a resumed scope on the stack."""

    __slots__ = ("_tracer", "_scope", "context")

    def __init__(self, tracer: "Tracer", scope: _ResumedScope):
        self._tracer = tracer
        self._scope = scope
        self.context = scope.context

    def __enter__(self) -> _ResumedScope:
        self._tracer._stack.append(self._scope)
        return self._scope

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._stack.remove(self._scope)
        return False


class Tracer:
    """Factory and ambient stack for causal spans.

    Ids come from the injected ``random.Random`` stream (derived from
    the context seed tree), the clock is the canonical simulated time,
    and finished spans are appended to the shared trace recorder.
    """

    def __init__(self, id_rng: random.Random,
                 clock: Callable[[], float],
                 trace: "TraceRecorder", enabled: bool = True):
        self._id_rng = id_rng
        self._clock = clock
        self._trace = trace
        self.enabled = enabled
        #: Ambient span stack. TracedEventBus reads it directly on every
        #: publish, so keep it a plain list of objects with ``.envelope``
        #: and ``.context``.
        self._stack: list[Span | _ResumedScope] = []
        self.spans_recorded = 0

    # -- id allocation -------------------------------------------------------

    def _new_id(self) -> str:
        return f"{self._id_rng.getrandbits(64):016x}"

    # -- span lifecycle ------------------------------------------------------

    def start_span(self, name: str, layer: str = "core",
                   parent: SpanContext | None = None, root: bool = False,
                   **attrs: Any) -> Span | _NullSpan:
        """Create a span; use ``with``. Parent resolution, in order:
        an explicit ``parent=`` context, the current ambient span, or a
        fresh root (new trace id).

        ``root=True`` marks an exogenous event (e.g. a fault firing
        mid-drain): incidental ambient spans from whatever DES process
        happened to be running are ignored — but an explicitly resumed
        scope still wins, because :meth:`resume` is a deliberate causal
        assertion by the caller, not drain-loop coincidence.
        """
        if not self.enabled:
            return NULL_SPAN
        if parent is None and self._stack:
            top = self._stack[-1]
            if not root or type(top) is _ResumedScope:
                parent = top.context
        if parent is not None:
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            trace_id, parent_id = self._new_id(), None
        context = SpanContext(trace_id, self._new_id(), parent_id)
        return Span(self, name, layer, context, attrs)

    def record_span(self, name: str, layer: str, start_s: float,
                    end_s: float, parent: SpanContext | None = None,
                    **attrs: Any) -> SpanContext | None:
        """Record a completed span with explicit timestamps.

        For work whose extent is only known after the fact — e.g. a DES
        task execution that interleaved with other processes, where an
        ambient ``with`` block would misattribute the interleavings.
        """
        if not self.enabled:
            return None
        if parent is None and self._stack:
            parent = self._stack[-1].context
        if parent is not None:
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            trace_id, parent_id = self._new_id(), None
        context = SpanContext(trace_id, self._new_id(), parent_id)
        span = Span(self, name, layer, context, attrs)
        span.start_s = float(start_s)
        span.end_s = float(end_s)
        self._record(span)
        return context

    def capture(self) -> SpanContext | None:
        """Context of the current ambient span (None outside any span).

        Subscribers that react *later* capture at delivery time and pass
        the context as ``parent=`` when the reaction runs.
        """
        return self._stack[-1].context if self._stack else None

    def resume(self, context: SpanContext | None) -> "_ResumeGuard | _NullSpan":
        """Re-enter a (possibly finished) span context; use ``with``.

        New spans and publishes inside the block attach under
        *context* — the continuation mechanism for remediation work that
        happens after the causing span already closed. A ``None``
        context yields a no-op scope.
        """
        if context is None or not self.enabled:
            return NULL_SPAN
        return _ResumeGuard(self, _ResumedScope(context))

    def disable(self) -> None:
        """Stop creating spans; publishes carry no envelope."""
        self.enabled = False

    def enable(self) -> None:
        self.enabled = True

    # -- export --------------------------------------------------------------

    def _record(self, span: Span) -> None:
        self.spans_recorded += 1
        self._trace.record(span.end_s, SPAN_TOPIC, {
            "name": span.name,
            "layer": span.layer,
            "trace_id": span.context.trace_id,
            "span_id": span.context.span_id,
            "parent_id": span.context.parent_id,
            "start_s": span.start_s,
            "end_s": span.end_s,
            "status": span.status,
            "attrs": span.attrs,
        })
