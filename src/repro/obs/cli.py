"""repro-obs: inspect an exported trace JSONL.

Subcommands, all reading the unified trace a run exports with
``RuntimeContext.trace.export_jsonl`` (after calling
``snapshot_observability()`` so metric/profile snapshots are embedded):

- ``tree``      — causal span trees, one per trace id
- ``timeline``  — chronological publish log, or per-topic/layer summary
- ``metrics``   — Prometheus-style exposition of the metrics snapshot
- ``profile``   — DES profiler table + flamegraph-style aggregation
- ``shards``    — sharded-run barrier/straggler profile

Merged sharded exports (``ShardedContext.export_jsonl`` /
``ParallelShardedContext.export_jsonl``) tag every row with its zone;
``tree`` annotates each span node with it and ``--zone`` filters both
``tree`` and ``timeline`` to one zone's slice of the run.

Everything is stdlib-only and renders from the file alone; no live
runtime objects are needed, so traces can be inspected long after (or
far away from) the run that produced them.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Optional, Sequence

from repro.obs.metrics import METRICS_TOPIC, render_exposition
from repro.obs.profiler import PROFILE_TOPIC, SHARD_PROFILE_TOPIC
from repro.obs.spans import SPAN_TOPIC


def load_records(path: str) -> list[dict[str, Any]]:
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


# ---------------------------------------------------------------------------
# tree


def _span_records(records: list[dict[str, Any]]) -> list[dict[str, Any]]:
    spans = []
    for record in records:
        if record["topic"] != SPAN_TOPIC:
            continue
        span = record["payload"]
        span["_index"] = len(spans)
        # Merged sharded exports tag rows with the owning zone; plain
        # single-context exports have no zone key.
        span["_zone"] = record.get("zone")
        spans.append(span)
    return spans


def render_tree(records: list[dict[str, Any]],
                trace_id: Optional[str] = None,
                zone: Optional[str] = None) -> str:
    """Box-drawing span trees, one per trace id, chronological roots.

    *zone* keeps only the trees that touch that zone — a cross-shard
    tree shows whole (the point of span propagation is that one fault's
    consequences in other zones stay attached), trees entirely outside
    the zone are dropped.
    """
    spans = _span_records(records)
    if trace_id is not None:
        spans = [s for s in spans if s["trace_id"] == trace_id]
    if zone is not None:
        touching = {s["trace_id"] for s in spans if s["_zone"] == zone}
        spans = [s for s in spans if s["trace_id"] in touching]
    if not spans:
        return "(no spans)"

    by_id = {s["span_id"]: s for s in spans}
    children: dict[Optional[str], list[dict[str, Any]]] = {}
    roots: list[dict[str, Any]] = []
    for span in spans:
        parent = span["parent_id"]
        if parent is not None and parent in by_id:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)

    # Spans land on the trace at their end instant, so file position is
    # completion order — the right tiebreaker when siblings share a
    # start time (common at zero-duration simulated instants).
    def start_key(span: dict[str, Any]):
        return (span.get("start_s") or 0.0, span["_index"])

    roots.sort(key=start_key)
    for kids in children.values():
        kids.sort(key=start_key)

    lines: list[str] = []

    def emit(span: dict[str, Any], prefix: str, is_last: bool,
             is_root: bool) -> None:
        connector = "" if is_root else ("└─ " if is_last else "├─ ")
        status = "" if span["status"] == "ok" else f" [{span['status']}]"
        where = f" @{span['_zone']}" if span["_zone"] else ""
        lines.append(
            f"{prefix}{connector}{span['name']}{where} "
            f"({span['layer']}) "
            f"[{span['start_s']:.3f}s → {span['end_s']:.3f}s]{status}")
        kids = children.get(span["span_id"], ())
        child_prefix = prefix if is_root else (
            prefix + ("   " if is_last else "│  "))
        for i, kid in enumerate(kids):
            emit(kid, child_prefix, i == len(kids) - 1, False)

    for root in roots:
        lines.append(f"trace {root['trace_id']}")
        emit(root, "  ", True, True)
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


# ---------------------------------------------------------------------------
# timeline


_SNAPSHOT_TOPICS = frozenset({SPAN_TOPIC, METRICS_TOPIC, PROFILE_TOPIC,
                              SHARD_PROFILE_TOPIC})


def render_timeline(records: list[dict[str, Any]],
                    by: Optional[str] = None,
                    zone: Optional[str] = None) -> str:
    """Chronological publish log; ``by`` collapses to topic/layer counts
    and ``zone`` keeps only one zone's rows of a merged sharded export."""
    events = [r for r in records if r["topic"] not in _SNAPSHOT_TOPICS]
    if zone is not None:
        events = [r for r in events if r.get("zone") == zone]
    if not events:
        return "(no events)"
    if by is not None:
        counts: dict[str, int] = {}
        for record in events:
            key = record["topic"] if by == "topic" \
                else record["topic"].split(".", 1)[0]
            counts[key] = counts.get(key, 0) + 1
        width = max(len(k) for k in counts)
        return "\n".join(
            f"{key:<{width}}  {counts[key]}"
            for key in sorted(counts)) + "\n"
    lines = []
    for record in events:
        span = record.get("span")
        marker = f"  ⇐ {span['trace_id'][:8]}" if span else ""
        where = f"[{record['zone']}] " if record.get("zone") else ""
        lines.append(
            f"{record['time_s']:>10.3f}s  {where}{record['topic']}{marker}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# metrics / profile


def _last_payload(records: list[dict[str, Any]],
                  topic: str) -> Optional[dict[str, Any]]:
    for record in reversed(records):
        if record["topic"] == topic:
            return record["payload"]
    return None


def render_metrics(records: list[dict[str, Any]]) -> str:
    payload = _last_payload(records, METRICS_TOPIC)
    if payload is None:
        return ("(no metrics snapshot; call "
                "ctx.snapshot_observability() before export)")
    return render_exposition(payload)


def render_profile(records: list[dict[str, Any]], width: int = 40) -> str:
    payload = _last_payload(records, PROFILE_TOPIC)
    if payload is None:
        return ("(no profile snapshot; install a DesProfiler and call "
                "ctx.snapshot_observability() before export)")
    rows = payload["rows"]
    if not rows:
        return "(profiler installed but no events executed)"
    total_wall = sum(r["wall_ns"] for r in rows.values()) or 1
    name_width = max(len(name) for name in rows)
    ordered = sorted(rows.items(),
                     key=lambda kv: (-kv[1]["wall_ns"], kv[0]))
    lines = [f"{'owner':<{name_width}}  {'events':>8}  "
             f"{'wall_ms':>10}  {'sim_s':>10}  share",
             "-" * (name_width + 42)]
    for name, row in ordered:
        share = row["wall_ns"] / total_wall
        lines.append(
            f"{name:<{name_width}}  {row['events']:>8}  "
            f"{row['wall_ns'] / 1e6:>10.3f}  {row['sim_s']:>10.3f}  "
            f"{share:>5.1%}")
    # Flamegraph-style two-level aggregation: kind → owner, bar width
    # proportional to wall share.
    lines.append("")
    kinds: dict[str, int] = {}
    for name, row in rows.items():
        kind = name.split(":", 1)[0]
        kinds[kind] = kinds.get(kind, 0) + row["wall_ns"]
    for kind in sorted(kinds, key=lambda k: (-kinds[k], k)):
        bar = "█" * max(1, round(width * kinds[kind] / total_wall))
        lines.append(f"{kind:<{name_width}}  {bar}")
        for name, row in ordered:
            if name.split(":", 1)[0] != kind:
                continue
            sub = "▒" * max(1, round(width * row["wall_ns"] / total_wall))
            lines.append(f"  {name:<{name_width}}{sub}")
    return "\n".join(lines) + "\n"


def render_shards(records: list[dict[str, Any]], width: int = 40,
                  top: int = 5) -> str:
    """Sharded-run barrier/straggler profile (``obs.shard_profile``).

    Per-shard totals — advance wall time, barrier wait, relay
    injections, critical-path epochs — with an advance-share bar, then
    the *top* straggler epochs (largest barrier wait, i.e. the epochs
    where the fleet idled longest on one slow shard).
    """
    payload = _last_payload(records, SHARD_PROFILE_TOPIC)
    if payload is None:
        return ("(no shard profile; run the sharded backend with "
                "profile=True and export with observability=True)")
    epochs = payload["epochs"]
    shards = payload["shards"]
    lines = [f"shard profile: {payload['backend']} backend, "
             f"{payload['n_shards']} shards, {len(epochs)} epochs"]
    if not epochs:
        return lines[0] + "\n(no epochs recorded)\n"
    total_advance = sum(s["advance_ns"] for s in shards) or 1
    lines += ["",
              f"{'shard':>5}  {'advance_ms':>10}  {'wait_ms':>10}  "
              f"{'relay':>7}  {'critical':>8}  share",
              "-" * (5 + 10 + 10 + 7 + 8 + 8 + 8)]
    for index, row in enumerate(shards):
        share = row["advance_ns"] / total_advance
        bar = "█" * max(1, round(width * share))
        lines.append(
            f"{index:>5}  {row['advance_ns'] / 1e6:>10.3f}  "
            f"{row['wait_ns'] / 1e6:>10.3f}  {row['relay']:>7}  "
            f"{row['critical_epochs']:>8}  {bar}")
    stragglers = sorted(epochs, key=lambda e: -max(e["wait_ns"]))[:top]
    lines += ["", f"top {len(stragglers)} straggler epochs "
              "(largest barrier wait):",
              f"{'epoch':>6}  {'t_s':>10}  {'critical':>8}  "
              f"{'slowest_ms':>10}  {'max_wait_ms':>11}",
              "-" * (6 + 10 + 8 + 10 + 11 + 8)]
    for row in stragglers:
        lines.append(
            f"{row['epoch']:>6}  {row['t_s']:>10.3f}  "
            f"{row['critical']:>8}  "
            f"{max(row['advance_ns']) / 1e6:>10.3f}  "
            f"{max(row['wait_ns']) / 1e6:>11.3f}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# entry point


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Inspect an exported repro trace JSONL.")
    sub = parser.add_subparsers(dest="command", required=True)

    tree = sub.add_parser("tree", help="render causal span trees")
    tree.add_argument("trace", help="path to trace JSONL")
    tree.add_argument("--trace-id", default=None,
                      help="only the tree with this trace id")
    tree.add_argument("--zone", default=None,
                      help="only trees touching this zone "
                           "(merged sharded exports)")

    timeline = sub.add_parser("timeline", help="chronological event log")
    timeline.add_argument("trace", help="path to trace JSONL")
    timeline.add_argument("--by", choices=("topic", "layer"), default=None,
                          help="collapse to per-topic/per-layer counts")
    timeline.add_argument("--zone", default=None,
                          help="only this zone's rows "
                               "(merged sharded exports)")

    metrics = sub.add_parser("metrics",
                             help="Prometheus-style metrics exposition")
    metrics.add_argument("trace", help="path to trace JSONL")

    profile = sub.add_parser("profile", help="DES profiler aggregation")
    profile.add_argument("trace", help="path to trace JSONL")

    shards = sub.add_parser(
        "shards", help="sharded-run barrier/straggler profile")
    shards.add_argument("trace", help="path to trace JSONL")
    shards.add_argument("--top", type=int, default=5,
                        help="straggler epochs to list (default 5)")

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        records = load_records(args.trace)
    except OSError as exc:
        print(f"repro-obs: cannot read {args.trace}: {exc}",
              file=sys.stderr)
        return 2
    if args.command == "tree":
        out = render_tree(records, trace_id=args.trace_id, zone=args.zone)
    elif args.command == "timeline":
        out = render_timeline(records, by=args.by, zone=args.zone)
    elif args.command == "metrics":
        out = render_metrics(records)
    elif args.command == "shards":
        out = render_shards(records, top=args.top)
    else:
        out = render_profile(records)
    print(out, end="" if out.endswith("\n") else "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
