"""Unified metrics registry: counters, gauges, fixed-bucket histograms.

Every subsystem registers its instruments against the one
:class:`MetricsRegistry` on the :class:`~repro.runtime.RuntimeContext`.
Names follow the ``layer.subsystem.name`` convention (at least three
dotted segments, e.g. ``runtime.bus.publishes``); the registry rejects
anything flatter so grep-ability never erodes.

Two export formats, both deterministic:

- :meth:`MetricsRegistry.to_payload` — a plain, sorted dict suitable
  for ``trace.record`` / JSON (same seed → byte-identical dump).
- :func:`render_exposition` — Prometheus-style text (``repro_`` prefix,
  dots mangled to underscores), shared with the ``repro-obs metrics``
  subcommand so the CLI renders exactly what a scrape would.

Hot paths (bus publish, placement cache) bump ``Counter.value`` /
``Counter.labels`` directly rather than going through registry lookups;
that is the supported idiom, not a back door.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Iterable, Optional

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*){2,}$")

#: Topic under which a metrics snapshot is recorded in the trace.
METRICS_TOPIC = "obs.metrics"

#: Default histogram buckets (seconds): sub-ms to minutes, fixed so two
#: same-seed runs bucket identically regardless of data.
DEFAULT_BUCKETS = (0.001, 0.01, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(
            f"metric name {name!r} must be layer.subsystem.name "
            "(>=3 lowercase dotted segments)")
    return name


class Counter:
    """Monotonic count, optionally split by one label dimension."""

    __slots__ = ("name", "help", "label_key", "value", "labels")

    kind = "counter"

    def __init__(self, name: str, help: str = "",
                 label_key: Optional[str] = None):
        self.name = _check_name(name)
        self.help = help
        self.label_key = label_key
        #: Unlabeled total; hot paths may do ``counter.value += 1``.
        self.value: float = 0
        #: Per-label counts when ``label_key`` is set; hot paths may do
        #: ``c.labels[k] = c.labels.get(k, 0) + 1``.
        self.labels: dict[str, float] = {}

    def inc(self, amount: float = 1, label: Optional[str] = None) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount
        if label is not None:
            self.labels[label] = self.labels.get(label, 0) + amount

    def to_payload(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"kind": self.kind, "value": self.value}
        if self.label_key is not None:
            payload["label_key"] = self.label_key
            payload["labels"] = dict(sorted(self.labels.items()))
        return payload


class Gauge:
    """Point-in-time value; set directly or backed by a pull callback."""

    __slots__ = ("name", "help", "_value", "_callback")

    kind = "gauge"

    def __init__(self, name: str, help: str = "",
                 callback: Optional[Callable[[], float]] = None):
        self.name = _check_name(name)
        self.help = help
        self._value: float = 0
        self._callback = callback

    def set(self, value: float) -> None:
        if self._callback is not None:
            raise RuntimeError(f"gauge {self.name} is callback-backed")
        self._value = value

    @property
    def value(self) -> float:
        if self._callback is not None:
            return self._callback()
        return self._value

    def to_payload(self) -> dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """Fixed-bucket histogram (cumulative, Prometheus-style).

    Buckets are frozen at registration, so the distribution of a
    deterministic run exports byte-identically; there is no adaptive
    re-bucketing.
    """

    __slots__ = ("name", "help", "buckets", "counts", "count", "sum")

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Iterable[float] = DEFAULT_BUCKETS):
        self.name = _check_name(name)
        self.help = help
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        #: Per-bucket counts, non-cumulative; one extra slot for +Inf.
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum: float = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def to_payload(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
        }


class MetricsRegistry:
    """Get-or-create home for every instrument in one runtime context."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, factory, kind: str):
        existing = self._metrics.get(name)
        if existing is not None:
            if existing.kind != kind:
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {kind}")
            return existing
        metric = factory()
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "",
                label_key: Optional[str] = None) -> Counter:
        return self._get_or_create(
            name, lambda: Counter(name, help, label_key), "counter")

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(
            name, lambda: Gauge(name, help), "gauge")

    def gauge_callback(self, name: str, callback: Callable[[], float],
                       help: str = "") -> Gauge:
        """Register a pull-style gauge read at export time.

        Re-registering the same name rebinds the callback — forks of a
        context re-wire their gauges to the live objects.
        """
        metric = self._metrics.get(name)
        if metric is not None:
            if metric.kind != "gauge":
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}")
            metric._callback = callback
            return metric
        metric = Gauge(name, help, callback=callback)
        self._metrics[name] = metric
        return metric

    def histogram(self, name: str, help: str = "",
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, help, buckets), "histogram")

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        return self._metrics.get(name)

    def __len__(self) -> int:
        return len(self._metrics)

    def to_payload(self) -> dict[str, Any]:
        """Deterministic JSON-ready dump: names sorted, labels sorted."""
        return {name: self._metrics[name].to_payload()
                for name in sorted(self._metrics)}

    def merge_payload(self, payload: dict[str, Any], *,
                      exclude: frozenset[str] = frozenset()) -> None:
        """Fold one :meth:`to_payload` snapshot into this registry.

        Counters and gauges add (labels key-wise), histograms add
        count-for-count — which requires identical bucket bounds, the
        fixed-bucket design's whole point. Addition is commutative, but
        the sharded coordinators still fold zone payloads in rank order
        so even label/bucket *registration* order is pinned. ``exclude``
        drops metric names whose values are execution details (e.g. a
        shared-heap event count) rather than zone-deterministic facts.
        """
        for name in sorted(payload):
            if name in exclude:
                continue
            data = payload[name]
            kind = data.get("kind")
            if kind == "counter":
                counter = self.counter(name,
                                       label_key=data.get("label_key"))
                counter.value += data["value"]
                labels = counter.labels
                for label, amount in data.get("labels", {}).items():
                    labels[label] = labels.get(label, 0) + amount
            elif kind == "gauge":
                gauge = self.gauge(name)
                gauge.set(gauge.value + data["value"])
            elif kind == "histogram":
                hist = self.histogram(name, buckets=data["buckets"])
                if list(hist.buckets) != list(data["buckets"]):
                    raise TypeError(
                        f"histogram {name!r} bucket mismatch: "
                        f"{list(hist.buckets)} vs {data['buckets']}")
                for i, count in enumerate(data["counts"]):
                    hist.counts[i] += count
                hist.count += data["count"]
                hist.sum += data["sum"]
            else:
                raise TypeError(
                    f"metric {name!r}: cannot merge kind {kind!r}")

    def render(self) -> str:
        return render_exposition(self.to_payload())


def payload_delta(previous: dict[str, Any],
                  current: dict[str, Any]) -> dict[str, Any]:
    """Metrics that changed (or appeared) between two payload snapshots.

    Per-metric granularity: an entry is shipped whole when any of its
    value/labels/buckets changed. Shard workers piggyback these deltas
    on the per-epoch flush ack; applying a delta is plain ``update`` on
    the coordinator's per-zone replica payload.
    """
    return {name: data for name, data in current.items()
            if previous.get(name) != data}


def _mangle(name: str) -> str:
    return "repro_" + name.replace(".", "_")


def render_exposition(payload: dict[str, Any]) -> str:
    """Prometheus-style text exposition of a metrics payload.

    Takes the :meth:`MetricsRegistry.to_payload` shape (not the live
    registry) so the CLI can render a payload recovered from a trace
    JSONL with the exact same code path.
    """
    lines: list[str] = []
    for name in sorted(payload):
        data = payload[name]
        mangled = _mangle(name)
        kind = data.get("kind", "untyped")
        lines.append(f"# TYPE {mangled} {kind}")
        if kind == "histogram":
            cumulative = 0
            bounds = list(data["buckets"]) + ["+Inf"]
            for bound, count in zip(bounds, data["counts"]):
                cumulative += count
                lines.append(
                    f'{mangled}_bucket{{le="{bound}"}} {cumulative}')
            lines.append(f"{mangled}_sum {data['sum']}")
            lines.append(f"{mangled}_count {data['count']}")
        else:
            lines.append(f"{mangled} {data['value']}")
            if kind == "counter" and data.get("labels"):
                key = data.get("label_key", "label")
                for label, count in data["labels"].items():
                    lines.append(
                        f'{mangled}{{{key}="{label}"}} {count}')
    return "\n".join(lines) + ("\n" if lines else "")
