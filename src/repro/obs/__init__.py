"""repro.obs — cross-layer observability: spans, metrics, profiler.

Three instruments over the PR-2 runtime spine:

- :mod:`repro.obs.spans` — deterministic causal tracing; one fault,
  one span tree across continuum/mirto/kube/monitoring.
- :mod:`repro.obs.metrics` — the unified ``layer.subsystem.name``
  metrics registry with Prometheus-style exposition.
- :mod:`repro.obs.profiler` — opt-in DES drain-loop profiler
  attributing wall/sim time per owning process, plus the sharded-run
  :class:`~repro.obs.profiler.ShardProfiler` (per-epoch advance/
  barrier-wait/straggler accounting).

``python -m repro.obs`` (console script ``repro-obs``) inspects
exported trace JSONL files: ``tree``, ``timeline``, ``metrics``,
``profile``, ``shards``.
"""

from repro.obs.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    METRICS_TOPIC,
    MetricsRegistry,
    payload_delta,
    render_exposition,
)
from repro.obs.profiler import (
    PROFILE_TOPIC,
    SHARD_PROFILE_TOPIC,
    DesProfiler,
    ShardProfiler,
)
from repro.obs.spans import (
    NULL_SPAN,
    SPAN_TOPIC,
    Span,
    SpanContext,
    Tracer,
    null_span,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "DesProfiler",
    "Gauge",
    "Histogram",
    "METRICS_TOPIC",
    "MetricsRegistry",
    "NULL_SPAN",
    "PROFILE_TOPIC",
    "SHARD_PROFILE_TOPIC",
    "SPAN_TOPIC",
    "ShardProfiler",
    "Span",
    "SpanContext",
    "Tracer",
    "null_span",
    "payload_delta",
    "render_exposition",
]
