"""MYRTUS cognitive computing continuum — full simulated reproduction.

A from-scratch Python instantiation of the MYRTUS (DATE 2025) project
architecture: a layered edge-fog-cloud continuum infrastructure
(:mod:`repro.continuum`, :mod:`repro.net`, :mod:`repro.kube`,
:mod:`repro.kb`, :mod:`repro.security`, :mod:`repro.monitoring`),
the MIRTO cognitive orchestration engine (:mod:`repro.mirto`), and the
Design & Programming Environment (:mod:`repro.dpe`, :mod:`repro.tosca`),
assessed on the paper's two use cases (:mod:`repro.usecases`).

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
table/figure reproduction index.
"""

__version__ = "1.0.0"
