"""Exception hierarchy shared by all MYRTUS reproduction subsystems.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without also swallowing programming
errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid parameters."""


class ValidationError(ReproError):
    """A user-supplied model or document failed validation.

    Collects individual problem strings so callers can report every issue
    at once instead of fixing them one at a time.
    """

    def __init__(self, message: str, problems: list[str] | None = None):
        super().__init__(message)
        self.problems: list[str] = list(problems or [])

    def __str__(self) -> str:  # pragma: no cover - trivial formatting
        base = super().__str__()
        if not self.problems:
            return base
        details = "; ".join(self.problems)
        return f"{base}: {details}"


class CapacityError(ReproError):
    """A resource request exceeded the capacity of the target component."""


class NotFoundError(ReproError):
    """A referenced entity (node, key, template, ...) does not exist."""


class DeliveryError(ReproError):
    """A message could not be delivered (dropped, partitioned, timed out).

    Raised inside gateway delivery processes so resilience policies
    (``repro.chaos.policies``) can catch and retry it.
    """


class SecurityError(ReproError):
    """Authentication, authorization or cryptographic failure."""


class OrchestrationError(ReproError):
    """The orchestrator could not produce or execute a valid placement."""


class CompilationError(ReproError):
    """The DPE failed to compile a model into a deployable artifact."""


class ConsensusError(ReproError):
    """The distributed knowledge base could not reach consensus."""
