"""Shared kernel for the MYRTUS reproduction.

This package hosts the small, dependency-free utilities every other
subpackage builds on: the exception hierarchy, deterministic identifier
generation, unit helpers, seeded random-number management and a simple
publish/subscribe event bus.
"""

from repro.core.errors import (
    ReproError,
    ConfigurationError,
    ValidationError,
    CapacityError,
    NotFoundError,
    SecurityError,
    OrchestrationError,
    CompilationError,
    ConsensusError,
)
from repro.core.ids import IdGenerator, qualified_name
from repro.core.rng import RngRegistry, derive_seed
from repro.core.events import EventBus, Subscription
from repro.core.units import (
    Bytes,
    KIB,
    MIB,
    GIB,
    MS,
    US,
    SEC,
    MINUTE,
    JOULE,
    MILLIJOULE,
    WATT,
    format_bytes,
    format_duration,
    format_energy,
)

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ValidationError",
    "CapacityError",
    "NotFoundError",
    "SecurityError",
    "OrchestrationError",
    "CompilationError",
    "ConsensusError",
    "IdGenerator",
    "qualified_name",
    "RngRegistry",
    "derive_seed",
    "EventBus",
    "Subscription",
    "Bytes",
    "KIB",
    "MIB",
    "GIB",
    "MS",
    "US",
    "SEC",
    "MINUTE",
    "JOULE",
    "MILLIJOULE",
    "WATT",
    "format_bytes",
    "format_duration",
    "format_energy",
]
