"""In-process publish/subscribe event bus.

Used for loose coupling between subsystems: monitors publish telemetry,
MIRTO agents subscribe to triggers, the kube control plane publishes
object-change notifications. Topics are dotted names; subscription
patterns may use ``*`` (exactly one segment) and ``**`` (any number of
segments, anywhere in the pattern).

Dispatch is index-based: patterns are compiled once at subscribe time —
wildcard-free patterns land in an exact-topic dict, wildcard patterns
get a specialized matcher (prefix test for trailing ``**``, fixed-length
segment walk for ``*``-only, an iterative NFA with literal prefix/suffix
guards for mid-pattern ``**``) and are bucketed by their literal first
segment so a topic is only tested against wildcards that could match it
— and per-topic delivery lists are cached on the bus, invalidated on
every subscribe/unsubscribe. Publishing to a previously seen topic is a
dict lookup plus the handler calls, independent of how many
subscriptions exist.
"""

from __future__ import annotations

from functools import lru_cache
from operator import attrgetter
from typing import Any, Callable, Optional

Handler = Callable[[str, Any], None]

#: Bound on the per-bus topic -> delivery-list cache. Real topic
#: vocabularies are small; the bound only guards against unbounded
#: growth when topics embed identifiers.
_DISPATCH_CACHE_MAX = 4096

_by_order = attrgetter("order")


class Subscription:
    """Handle returned by :meth:`EventBus.subscribe`; use to unsubscribe."""

    __slots__ = ("pattern", "handler", "active", "order", "matcher")

    def __init__(self, pattern: str, handler: Handler,
                 active: bool = True, order: int = 0):
        self.pattern = pattern
        self.handler = handler
        self.active = active
        #: Bus-wide subscription sequence number; delivery order.
        self.order = order
        #: Compiled matcher (None means the pattern is wildcard-free).
        self.matcher: Optional[Callable[[str], bool]] = \
            compile_pattern(pattern)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "active" if self.active else "inactive"
        return f"Subscription({self.pattern!r}, {state})"


def topic_matches(pattern: str, topic: str) -> bool:
    """Return True when dotted *topic* matches *pattern*.

    A pattern segment of ``*`` matches exactly one topic segment; a
    ``**`` segment matches any number of segments (including none) and
    may appear anywhere — ``a.**.z`` matches ``a.z``, ``a.b.z`` and
    ``a.b.c.z`` but not ``a.b.c``.
    """
    matcher = compile_pattern(pattern)
    if matcher is None:
        return pattern == topic
    return matcher(topic)


def _segments_match(pats: list[str], tops: list[str]) -> bool:
    """Reference matcher (recursive). The compiled matchers must agree
    with this definition exactly; the property tests check they do."""
    if not pats:
        return not tops
    if pats[0] == "**":
        return any(_segments_match(pats[1:], tops[i:])
                   for i in range(len(tops) + 1))
    if not tops:
        return False
    if pats[0] != "*" and pats[0] != tops[0]:
        return False
    return _segments_match(pats[1:], tops[1:])


@lru_cache(maxsize=4096)
def compile_pattern(pattern: str) -> Optional[Callable[[str], bool]]:
    """Compile *pattern* to a matcher callable, or None when exact.

    This is THE pattern-compiler: the bus dispatches through it at
    subscribe time, and the static topic-flow analyzer
    (:mod:`repro.analysis.flow`) imports it so compile-time matching
    can never drift from runtime delivery semantics.

    Specializations, cheapest first: wildcard-free patterns need no
    matcher at all (the bus indexes them by topic); a single trailing
    ``**`` reduces to a string-prefix test; ``*``-only patterns to a
    fixed-length segment walk; anything with a mid-pattern ``**`` runs
    the iterative NFA.
    """
    segs = pattern.split(".")
    has_star = "*" in segs
    has_glob = "**" in segs
    if not has_star and not has_glob:
        return None
    if has_glob and not has_star and segs[-1] == "**" \
            and "**" not in segs[:-1]:
        if len(segs) == 1:  # bare "**" matches every topic
            return lambda topic: True
        prefix = ".".join(segs[:-1])
        prefix_dot = prefix + "."
        return lambda topic: (topic == prefix
                              or topic.startswith(prefix_dot))
    if not has_glob:
        n = len(segs)

        def match_stars(topic: str, _segs=segs, _n=n) -> bool:
            tops = topic.split(".")
            if len(tops) != _n:
                return False
            for p, t in zip(_segs, tops):
                if p != t and p != "*":
                    return False
            return True
        return match_stars

    # Mid-pattern ``**``: guard the NFA walk with the pattern's literal
    # prefix (segments before the first wildcard) and literal suffix
    # (segments after the last wildcard). Both are implied by the NFA
    # semantics — a topic failing either can never match — and each is
    # a single C-level string test, so non-matching topics skip the
    # set-of-states simulation entirely.
    lead = 0
    while segs[lead] != "*" and segs[lead] != "**":
        lead += 1
    prefix_dot = ".".join(segs[:lead]) + "." if lead else ""
    tail = len(segs)
    while segs[tail - 1] != "*" and segs[tail - 1] != "**":
        tail -= 1
    suffix = ".".join(segs[tail:])
    suffix_dot = "." + suffix

    def match_nfa(topic: str, _segs=segs, _pre=prefix_dot,
                  _suf=suffix, _sufd=suffix_dot) -> bool:
        if _pre and not topic.startswith(_pre):
            return False
        if _suf and topic != _suf and not topic.endswith(_sufd):
            return False
        return _nfa_match(_segs, topic.split("."))
    return match_nfa


def _nfa_match(segs: list[str], tops: list[str]) -> bool:
    """Iterative set-of-states simulation for patterns with ``**``.

    States are indices into *segs*; ``**`` adds an epsilon edge to the
    next index (zero segments) and a self loop (consume one segment).
    O(len(tops) * len(segs)) worst case, no recursion.
    """
    n = len(segs)
    states = _epsilon_closure({0}, segs, n)
    for top in tops:
        nxt = set()
        for s in states:
            if s >= n:
                continue
            seg = segs[s]
            if seg == "**":
                nxt.add(s)  # consume this topic segment, stay in **
            elif seg == "*" or seg == top:
                nxt.add(s + 1)
        if not nxt:
            return False
        states = _epsilon_closure(nxt, segs, n)
    return n in states


def _epsilon_closure(states: set[int], segs: list[str], n: int) -> set[int]:
    stack = list(states)
    while stack:
        s = stack.pop()
        if s < n and segs[s] == "**" and s + 1 not in states:
            states.add(s + 1)
            stack.append(s + 1)
    return states


class EventBus:
    """Synchronous topic-based event dispatcher with a compiled index."""

    def __init__(self):
        #: All live + tombstoned subscriptions, insertion order.
        self._subs: list[Subscription] = []
        #: Exact (wildcard-free) patterns: topic -> subscriptions.
        self._exact: dict[str, list[Subscription]] = {}
        #: Wildcard subscriptions whose first segment is a literal,
        #: bucketed by that segment: only topics sharing the segment can
        #: match, so dispatch for a topic probes one bucket instead of
        #: walking every wildcard subscription.
        self._wild_first: dict[str, list[Subscription]] = {}
        #: Wildcard subscriptions starting with ``*``/``**`` — the only
        #: ones every topic must be tested against.
        self._wild_any: list[Subscription] = []
        #: topic -> ordered tuple of matching subscriptions (bounded).
        self._dispatch_cache: dict[str, tuple[Subscription, ...]] = {}
        self._order = 0
        self._dead = 0
        self._delivered = 0

    def subscribe(self, pattern: str, handler: Handler) -> Subscription:
        """Register *handler* for topics matching *pattern*."""
        sub = Subscription(pattern, handler, order=self._order)
        self._order += 1
        self._subs.append(sub)
        self._index(sub)
        self._dispatch_cache.clear()
        return sub

    def _index(self, sub: Subscription) -> None:
        """File *sub* in the exact dict or a wildcard bucket."""
        if sub.matcher is None:
            self._exact.setdefault(sub.pattern, []).append(sub)
            return
        first = sub.pattern.split(".", 1)[0]
        if first == "*" or first == "**":
            self._wild_any.append(sub)
        else:
            self._wild_first.setdefault(first, []).append(sub)

    def unsubscribe(self, sub: Subscription) -> None:
        """Deactivate a subscription; it will receive no further events.

        O(1) amortized: the subscription is tombstoned (``active=False``
        — publish skips it without a match attempt) and the index is
        compacted once tombstones outnumber live entries.
        """
        if not sub.active:
            return
        sub.active = False
        self._dead += 1
        self._dispatch_cache.clear()
        if self._dead * 2 > len(self._subs):
            self._compact()

    def _compact(self) -> None:
        """Drop tombstoned subscriptions and rebuild the index."""
        live = [s for s in self._subs if s.active]
        self._subs = live
        self._exact = {}
        self._wild_first = {}
        self._wild_any = []
        for sub in live:
            self._index(sub)
        self._dead = 0

    def publish(self, topic: str, payload: Any = None) -> int:  # perf: hot
        """Deliver *payload* to all matching subscribers.

        Returns the number of handlers invoked. Handlers run synchronously
        in subscription order; a handler added during delivery only sees
        later events.
        """
        subs = self._dispatch_cache.get(topic)
        if subs is None:
            subs = self._build_dispatch(topic)
        delivered = 0
        for sub in subs:
            if sub.active:
                sub.handler(topic, payload)
                delivered += 1
        self._delivered += delivered
        return delivered

    def _build_dispatch(self, topic: str) -> tuple[Subscription, ...]:
        """Resolve and cache the delivery list for *topic*."""
        matched = [s for s in self._exact.get(topic, ()) if s.active]
        bucket = self._wild_first.get(topic.split(".", 1)[0])
        if bucket is not None:
            for sub in bucket:
                if sub.active and sub.matcher(topic):
                    matched.append(sub)
        for sub in self._wild_any:
            if sub.active and sub.matcher(topic):
                matched.append(sub)
        matched.sort(key=_by_order)
        subs = tuple(matched)
        if len(self._dispatch_cache) >= _DISPATCH_CACHE_MAX:
            self._dispatch_cache.clear()
        self._dispatch_cache[topic] = subs
        return subs

    @property
    def total_delivered(self) -> int:
        """Total number of handler invocations since construction."""
        return self._delivered
