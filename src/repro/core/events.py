"""In-process publish/subscribe event bus.

Used for loose coupling between subsystems: monitors publish telemetry,
MIRTO agents subscribe to triggers, the kube control plane publishes
object-change notifications. Topics are dotted names and subscriptions may
use a trailing ``*`` wildcard segment (``metrics.edge.*``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

Handler = Callable[[str, Any], None]


@dataclass
class Subscription:
    """Handle returned by :meth:`EventBus.subscribe`; use to unsubscribe."""

    pattern: str
    handler: Handler
    active: bool = True


def topic_matches(pattern: str, topic: str) -> bool:
    """Return True when dotted *topic* matches *pattern*.

    A pattern segment of ``*`` matches exactly one topic segment; a
    ``**`` segment matches any number of segments (including none) and
    may appear anywhere — ``a.**.z`` matches ``a.z``, ``a.b.z`` and
    ``a.b.c.z`` but not ``a.b.c``.
    """
    return _segments_match(pattern.split("."), topic.split("."))


def _segments_match(pats: list[str], tops: list[str]) -> bool:
    if not pats:
        return not tops
    if pats[0] == "**":
        return any(_segments_match(pats[1:], tops[i:])
                   for i in range(len(tops) + 1))
    if not tops:
        return False
    if pats[0] != "*" and pats[0] != tops[0]:
        return False
    return _segments_match(pats[1:], tops[1:])


@dataclass
class EventBus:
    """Synchronous topic-based event dispatcher."""

    _subs: list[Subscription] = field(default_factory=list)
    _delivered: int = 0

    def subscribe(self, pattern: str, handler: Handler) -> Subscription:
        """Register *handler* for topics matching *pattern*."""
        sub = Subscription(pattern=pattern, handler=handler)
        self._subs.append(sub)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        """Deactivate a subscription; it will receive no further events."""
        sub.active = False
        if sub in self._subs:
            self._subs.remove(sub)

    def publish(self, topic: str, payload: Any = None) -> int:
        """Deliver *payload* to all matching subscribers.

        Returns the number of handlers invoked. Handlers run synchronously
        in subscription order; a handler added during delivery only sees
        later events.
        """
        delivered = 0
        for sub in list(self._subs):
            if sub.active and topic_matches(sub.pattern, topic):
                sub.handler(topic, payload)
                delivered += 1
        self._delivered += delivered
        return delivered

    @property
    def total_delivered(self) -> int:
        """Total number of handler invocations since construction."""
        return self._delivered
