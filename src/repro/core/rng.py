"""Seeded random-number management.

All stochastic behaviour in the reproduction flows through a
:class:`RngRegistry` so that a single root seed makes an entire simulation
run deterministic, while each subsystem still gets an independent stream.
"""

from __future__ import annotations

import hashlib
import random

import numpy as np


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a stable 63-bit child seed from *root_seed* and a stream name.

    Uses SHA-256 so two different stream names virtually never collide and
    the derivation is stable across Python versions (unlike ``hash()``).
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFF_FFFF_FFFF_FFFF


class RngRegistry:
    """Factory for named, independently seeded random streams.

    Repeated requests for the same stream name return the same generator
    object, so state advances continuously within one run.
    """

    def __init__(self, root_seed: int = 0):
        self.root_seed = int(root_seed)
        self._python_streams: dict[str, random.Random] = {}
        self._numpy_streams: dict[str, np.random.Generator] = {}

    def python(self, name: str) -> random.Random:
        """Return the ``random.Random`` stream for *name*."""
        if name not in self._python_streams:
            self._python_streams[name] = random.Random(
                derive_seed(self.root_seed, name)
            )
        return self._python_streams[name]

    def numpy(self, name: str) -> np.random.Generator:
        """Return the numpy ``Generator`` stream for *name*."""
        if name not in self._numpy_streams:
            self._numpy_streams[name] = np.random.default_rng(
                derive_seed(self.root_seed, name)
            )
        return self._numpy_streams[name]

    def fork(self, name: str) -> "RngRegistry":
        """Return a child registry rooted at a seed derived from *name*."""
        return RngRegistry(derive_seed(self.root_seed, name))
