"""Deterministic identifier generation.

Simulation runs must be reproducible, so identifiers are sequential per
prefix rather than random UUIDs. ``IdGenerator`` hands out ids such as
``node-0001``; ``qualified_name`` builds hierarchical dotted names.
"""

from __future__ import annotations

from collections import defaultdict


class IdGenerator:
    """Hands out deterministic, monotonically increasing identifiers.

    Each prefix has its own counter, so ``gen.next("pod")`` and
    ``gen.next("node")`` advance independently.
    """

    def __init__(self, width: int = 4):
        if width < 1:
            raise ValueError("id width must be >= 1")
        self._width = width
        self._counters: dict[str, int] = defaultdict(int)

    def next(self, prefix: str) -> str:
        """Return the next id for *prefix*, e.g. ``pod-0007``."""
        if not prefix:
            raise ValueError("prefix must be non-empty")
        value = self._counters[prefix]
        self._counters[prefix] = value + 1
        return f"{prefix}-{value:0{self._width}d}"

    def peek(self, prefix: str) -> int:
        """Return the counter value that the next id for *prefix* will use."""
        return self._counters[prefix]

    def reset(self, prefix: str | None = None) -> None:
        """Reset one prefix counter, or all counters when *prefix* is None."""
        if prefix is None:
            self._counters.clear()
        else:
            self._counters.pop(prefix, None)


def qualified_name(*parts: str) -> str:
    """Join non-empty name segments into a dotted hierarchical name.

    >>> qualified_name("edge", "hmpsoc-0001", "pmc")
    'edge.hmpsoc-0001.pmc'
    """
    cleaned = [p for p in parts if p]
    if not cleaned:
        raise ValueError("at least one non-empty name part is required")
    return ".".join(cleaned)
