"""Unit constants and human-readable formatting.

Internally the simulation uses SI base units throughout: seconds for time,
bytes for data, joules for energy, watts for power. These constants make
call sites read naturally (``timeout(5 * MS)``) and the formatters make
reports readable.
"""

from __future__ import annotations

Bytes = int

# Data sizes (bytes).
KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

# Durations (seconds).
US = 1e-6
MS = 1e-3
SEC = 1.0
MINUTE = 60.0

# Energy (joules) and power (watts).
JOULE = 1.0
MILLIJOULE = 1e-3
WATT = 1.0


def format_bytes(n: float) -> str:
    """Render a byte count with a binary-prefix unit, e.g. ``1.5 MiB``."""
    n = float(n)
    for unit, factor in (("GiB", GIB), ("MiB", MIB), ("KiB", KIB)):
        if abs(n) >= factor:
            return f"{n / factor:.2f} {unit}"
    return f"{n:.0f} B"


def format_duration(seconds: float) -> str:
    """Render a duration with an appropriate unit, e.g. ``3.20 ms``."""
    s = float(seconds)
    if abs(s) >= MINUTE:
        return f"{s / MINUTE:.2f} min"
    if abs(s) >= SEC:
        return f"{s:.2f} s"
    if abs(s) >= MS:
        return f"{s / MS:.2f} ms"
    return f"{s / US:.2f} us"


def format_energy(joules: float) -> str:
    """Render an energy amount, e.g. ``12.4 mJ``."""
    j = float(joules)
    if abs(j) >= JOULE:
        return f"{j:.3f} J"
    return f"{j / MILLIJOULE:.2f} mJ"
