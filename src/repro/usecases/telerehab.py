"""Virtual Telerehabilitation use case (paper Sec. I, UNICA and REPLY).

A patient performs exercises in front of a camera: raw video must never
leave the edge (privacy), a neural pose-estimation kernel runs on the
edge FPGA, movement-quality assessment aggregates at the fog, and the
clinician's longitudinal dashboard lives in the cloud. Feedback to the
patient has a responsiveness budget. The continuum tension: the hard
privacy ceiling pins the heavy kernel to constrained edge silicon while
analytics and history want bigger machines.
"""

from __future__ import annotations

from repro.continuum.workload import KernelClass, PrivacyClass
from repro.dpe.adt import AttackDefenceTree, AttackNode, Defence, Refinement
from repro.dpe.modeling import ComponentModel, ScenarioModel

SCENARIO_NAME = "telerehabilitation"

#: Patient feedback responsiveness budget.
LATENCY_BUDGET_S = 0.6


def build_scenario(session_minutes: int = 20,
                   video_frame_bytes: int = 900_000) -> ScenarioModel:
    """The telerehab pipeline; assessment grows with session length."""
    scenario = ScenarioModel(
        SCENARIO_NAME,
        latency_budget_s=LATENCY_BUDGET_S,
        min_security_level="high",
        expected_rate_per_s=2.0,
    )
    scenario.add_component(ComponentModel(
        "capture", megaops=30, input_bytes=video_frame_bytes,
        output_bytes=video_frame_bytes,
        privacy=PrivacyClass.RAW_PERSONAL,
        memory_bytes=256 * 1024**2))
    scenario.add_component(ComponentModel(
        "pose-estimation", megaops=700, input_bytes=video_frame_bytes,
        output_bytes=8_000, kernel=KernelClass.NEURAL, accelerable=True,
        privacy=PrivacyClass.RAW_PERSONAL,
        memory_bytes=512 * 1024**2))
    scenario.add_component(ComponentModel(
        "exercise-assessment", megaops=40 * session_minutes,
        input_bytes=8_000, output_bytes=6_000,
        kernel=KernelClass.ANALYTICS,
        privacy=PrivacyClass.AGGREGATED,
        memory_bytes=512 * 1024**2))
    scenario.add_component(ComponentModel(
        "patient-feedback", megaops=60, input_bytes=6_000,
        output_bytes=2_000, memory_bytes=128 * 1024**2))
    scenario.add_component(ComponentModel(
        "clinician-dashboard", megaops=25 * session_minutes,
        input_bytes=6_000, output_bytes=10_000,
        kernel=KernelClass.ANALYTICS,
        memory_bytes=1024 * 1024**2))
    scenario.connect("capture", "pose-estimation", video_frame_bytes)
    scenario.connect("pose-estimation", "exercise-assessment", 8_000)
    scenario.connect("exercise-assessment", "patient-feedback", 6_000)
    scenario.connect("exercise-assessment", "clinician-dashboard", 6_000)
    return scenario


def build_adt() -> AttackDefenceTree:
    """Threat model: exfiltration or falsification of patient data."""
    root = AttackNode("compromise-patient-data", Refinement.OR)
    steal = root.add_child(AttackNode("exfiltrate", Refinement.AND))
    breach = steal.add_child(AttackNode(
        "breach-edge-device", probability=0.3, attack_cost=25))
    extract = steal.add_child(AttackNode(
        "extract-video-buffer", probability=0.7, attack_cost=10))
    eavesdrop = root.add_child(AttackNode(
        "eavesdrop-assessment-link", probability=0.5, attack_cost=6))
    falsify = root.add_child(AttackNode(
        "falsify-progress-report", probability=0.25, attack_cost=18))
    breach.add_defence(Defence(
        "edge-access-control", mitigation=0.25, cost=2.0,
        primitive="access-control"))
    extract.add_defence(Defence(
        "buffer-isolation", mitigation=0.2, cost=3.0,
        primitive="isolation"))
    eavesdrop.add_defence(Defence(
        "assessment-encryption", mitigation=0.05, cost=2.5,
        primitive="encrypt-channel"))
    falsify.add_defence(Defence(
        "report-signatures", mitigation=0.1, cost=2.0,
        primitive="authenticate-peer"))
    return AttackDefenceTree(root)


def session_lengths() -> list[int]:
    """Session lengths (minutes) the benchmarks sweep."""
    return [5, 10, 20, 40]
