"""The two MYRTUS assessment use cases (paper Sec. I).

* Smart Mobility (:mod:`repro.usecases.mobility`) — TNO + CRF;
* Virtual Telerehabilitation (:mod:`repro.usecases.telerehab`) —
  UNICA + Forge Reply.

Both expose ``build_scenario()`` (the DPE input), ``build_adt()`` (the
threat model) and a sweep-parameter helper; :func:`run_sessions` deploys
a scenario repeatedly through a cognitive engine and aggregates KPIs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.usecases import mobility, telerehab
from repro.dpe.modeling import ScenarioModel
from repro.mirto.engine import CognitiveEngine


@dataclass
class SessionStats:
    """Aggregated KPIs over repeated deployments of one scenario."""

    scenario: str
    strategy: str
    sessions: int
    mean_makespan_s: float
    p95_makespan_s: float
    total_energy_j: float
    deadline_hit_rate: float


def run_sessions(engine: CognitiveEngine, scenario: ScenarioModel,
                 strategy: str, sessions: int = 10) -> SessionStats:
    """Deploy *scenario* repeatedly via the engine's manager."""
    makespans = []
    energies = []
    hits = 0
    for _ in range(sessions):
        service = scenario.to_service_template()
        outcome = engine.manager.deploy(service, strategy=strategy)
        makespans.append(outcome.report.makespan_s)
        energies.append(outcome.report.energy_j)
        hits += int(outcome.deadline_met)
    ordered = sorted(makespans)
    p95_index = min(len(ordered) - 1, int(0.95 * len(ordered)))
    return SessionStats(
        scenario=scenario.name,
        strategy=strategy,
        sessions=sessions,
        mean_makespan_s=sum(makespans) / len(makespans),
        p95_makespan_s=ordered[p95_index],
        total_energy_j=sum(energies),
        deadline_hit_rate=hits / sessions,
    )


__all__ = ["mobility", "telerehab", "SessionStats", "run_sessions"]
