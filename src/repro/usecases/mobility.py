"""Smart Mobility use case (paper Sec. I, developed by TNO and CRF).

A vehicle-fleet perception pipeline: on-vehicle camera/radar ingestion
feeds a DSP-heavy perception kernel (FPGA-accelerable), V2X messages
aggregate at the roadside gateway, multi-vehicle fusion runs on fog
analytics, and route planning closes the loop under a tight end-to-end
latency budget. The tension the continuum must solve: perception wants
edge acceleration, fusion wants fog-scale analytics, and everything must
fit the driving-decision deadline.
"""

from __future__ import annotations

from repro.continuum.workload import KernelClass, PrivacyClass
from repro.dpe.adt import AttackDefenceTree, AttackNode, Defence, Refinement
from repro.dpe.modeling import ComponentModel, ScenarioModel

SCENARIO_NAME = "smart-mobility"

#: End-to-end budget for a driving decision (perception -> plan).
LATENCY_BUDGET_S = 0.25


def build_scenario(vehicles: int = 4,
                   camera_frame_bytes: int = 600_000) -> ScenarioModel:
    """The mobility pipeline, scaled by fleet size.

    Fusion and planning compute grow with the number of vehicles whose
    streams they combine; per-vehicle stages do not.
    """
    scenario = ScenarioModel(
        SCENARIO_NAME,
        latency_budget_s=LATENCY_BUDGET_S,
        min_security_level="medium",
        expected_rate_per_s=10.0,
    )
    scenario.add_component(ComponentModel(
        "ingest", megaops=50, input_bytes=camera_frame_bytes,
        output_bytes=camera_frame_bytes,
        memory_bytes=256 * 1024**2))
    scenario.add_component(ComponentModel(
        "perception", megaops=900, input_bytes=camera_frame_bytes,
        output_bytes=40_000, kernel=KernelClass.DSP, accelerable=True,
        memory_bytes=512 * 1024**2))
    scenario.add_component(ComponentModel(
        "v2x-aggregate", megaops=80 * vehicles, input_bytes=40_000,
        output_bytes=30_000, privacy=PrivacyClass.AGGREGATED,
        memory_bytes=128 * 1024**2))
    scenario.add_component(ComponentModel(
        "fusion", megaops=500 * vehicles, input_bytes=30_000,
        output_bytes=25_000, kernel=KernelClass.ANALYTICS,
        privacy=PrivacyClass.AGGREGATED,
        memory_bytes=1024 * 1024**2))
    scenario.add_component(ComponentModel(
        "planning", megaops=300 + 60 * vehicles, input_bytes=25_000,
        output_bytes=5_000, memory_bytes=256 * 1024**2))
    scenario.connect("ingest", "perception", camera_frame_bytes)
    scenario.connect("perception", "v2x-aggregate", 40_000)
    scenario.connect("v2x-aggregate", "fusion", 30_000)
    scenario.connect("fusion", "planning", 25_000)
    return scenario


def build_adt() -> AttackDefenceTree:
    """Threat model: compromising the driving decision chain."""
    root = AttackNode("corrupt-driving-decision", Refinement.OR)
    spoof = root.add_child(AttackNode(
        "spoof-v2x-messages", probability=0.5, attack_cost=8))
    mitm = root.add_child(AttackNode("hijack-pipeline", Refinement.AND))
    intercept = mitm.add_child(AttackNode(
        "intercept-fog-link", probability=0.4, attack_cost=15))
    inject = mitm.add_child(AttackNode(
        "inject-fused-track", probability=0.6, attack_cost=12))
    spoof.add_defence(Defence(
        "v2x-signatures", mitigation=0.08, cost=3.0,
        primitive="authenticate-peer"))
    intercept.add_defence(Defence(
        "fog-link-encryption", mitigation=0.1, cost=2.5,
        primitive="encrypt-channel"))
    inject.add_defence(Defence(
        "track-integrity-tags", mitigation=0.15, cost=2.0,
        primitive="integrity-check"))
    return AttackDefenceTree(root)


def fleet_scales() -> list[int]:
    """Fleet sizes the benchmarks sweep."""
    return [1, 2, 4, 8]
