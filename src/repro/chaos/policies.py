"""Resilience policies: retry, timeout, circuit breaker, hedging.

The MYRTUS KPIs promise "improved reliability" under faults; the chaos
campaigns in this package deliberately break things, and these policies
are what the rest of the stack uses to survive them. Each policy wraps
a *call factory* — a zero-argument callable returning a fresh DES
generator (so retries and hedges can re-issue the work) — and is itself
driven as a generator::

    policy = RetryPolicy(ctx=ctx, inner=Timeout(ctx=ctx, limit_s=0.5))
    result = yield from policy.call(lambda: hub.exchange(...))

Policies compose through ``inner``: the outermost policy sees the
composite behaviour of everything below it. All randomness (retry
jitter) comes from the context seed tree, so a chaos campaign replays
byte-identically for a given seed.
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from repro.core.errors import ConfigurationError, ReproError
from repro.continuum.simulator import Event, Process, Simulator
from repro.runtime import RuntimeContext

CallFactory = Callable[[], Generator]


class PolicyError(ReproError):
    """Base class for failures raised by resilience policies."""


class RetriesExhausted(PolicyError):
    """Every retry attempt failed; the last cause is chained."""


class CallTimeout(PolicyError):
    """The wrapped call exceeded its time limit."""


class CircuitOpenError(PolicyError):
    """The circuit breaker rejected the call without attempting it."""


def _defuse(event: Event) -> None:
    """Neutralize an abandoned event's failure.

    ``AnyOf`` only defuses the failure that *fails it*; children that
    fail after the race is decided (a timed-out attempt, a hedge loser
    we interrupted) would otherwise crash ``sim.run``.
    """
    if event._ok is False:
        event._defused = True


def _call_factory(policy: "Policy | None", factory: CallFactory) -> Generator:
    """One fresh invocation generator, threading through *policy*."""
    if policy is None:
        return factory()
    return policy.call(factory)


class Policy:
    """Base resilience policy.

    ``inner`` nests another policy inside this one (e.g. a retry around
    a timeout). Subclasses implement :meth:`call` as a generator
    delegated to with ``yield from``.
    """

    def __init__(self, *, ctx: "RuntimeContext | Simulator | None" = None,
                 inner: "Policy | None" = None, name: str = "policy"):
        self.ctx = RuntimeContext.adopt(ctx)
        self.sim = self.ctx.sim
        self.inner = inner
        self.name = name

    def call(self, factory: CallFactory) -> Generator:
        raise NotImplementedError

    def _spawn(self, factory: CallFactory, label: str) -> Process:
        return self.sim.process(_call_factory(self.inner, factory),
                                name=f"{self.name}-{label}")


class RetryPolicy(Policy):
    """Retry with exponential backoff and seeded jitter.

    Attempts the call up to ``max_attempts`` times; between attempts it
    sleeps ``base_delay_s * multiplier^k`` scaled by a jitter factor in
    ``[1, 1 + jitter]`` drawn from the context seed tree. Exceptions not
    matching ``retry_on`` propagate immediately; when every attempt
    fails, :class:`RetriesExhausted` chains the last cause.
    """

    def __init__(self, *, ctx: "RuntimeContext | Simulator | None" = None,
                 max_attempts: int = 3, base_delay_s: float = 0.05,
                 multiplier: float = 2.0, jitter: float = 0.5,
                 retry_on: tuple[type, ...] = (ReproError,),
                 name: str = "retry", inner: "Policy | None" = None):
        super().__init__(ctx=ctx, inner=inner, name=name)
        if max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if base_delay_s < 0 or multiplier <= 0 or jitter < 0:
            raise ConfigurationError(
                "backoff parameters must be non-negative "
                "(multiplier positive)")
        self.max_attempts = max_attempts
        self.base_delay_s = base_delay_s
        self.multiplier = multiplier
        self.jitter = jitter
        self.retry_on = retry_on
        self._rng = self.ctx.rng.python(f"chaos.policy.{name}")
        self.attempts = 0
        self.retries = 0

    def call(self, factory: CallFactory) -> Generator:
        delay = self.base_delay_s
        for attempt in range(1, self.max_attempts + 1):
            self.attempts += 1
            try:
                result = yield self._spawn(factory, f"attempt-{attempt}")
            except self.retry_on as exc:
                if attempt == self.max_attempts:
                    raise RetriesExhausted(
                        f"policy {self.name!r}: {self.max_attempts} "
                        f"attempts failed") from exc
                self.retries += 1
                sleep = delay * (1.0 + self.jitter * self._rng.random())
                self.ctx.publish("chaos.policy.retry", {
                    "policy": self.name, "attempt": attempt,
                    "delay_s": sleep, "error": type(exc).__name__})
                yield self.sim.timeout(sleep)
                delay *= self.multiplier
            else:
                return result


class Timeout(Policy):
    """Abandon the call after ``limit_s`` of simulated time.

    The abandoned attempt is interrupted and its eventual failure
    defused; the caller sees :class:`CallTimeout`.
    """

    def __init__(self, *, ctx: "RuntimeContext | Simulator | None" = None,
                 limit_s: float = 1.0, name: str = "timeout",
                 inner: "Policy | None" = None):
        super().__init__(ctx=ctx, inner=inner, name=name)
        if limit_s <= 0:
            raise ConfigurationError("timeout limit must be positive")
        self.limit_s = limit_s
        self.timeouts = 0

    def call(self, factory: CallFactory) -> Generator:
        attempt = self._spawn(factory, "attempt")
        attempt.add_callback(_defuse)
        timer = self.sim.timeout(self.limit_s)
        fired = yield self.sim.any_of([attempt, timer])
        if attempt in fired:
            return fired[attempt]
        attempt.interrupt("timeout")
        self.timeouts += 1
        self.ctx.publish("chaos.policy.timeout", {
            "policy": self.name, "limit_s": self.limit_s,
            "time_s": self.ctx.now})
        raise CallTimeout(
            f"policy {self.name!r}: call exceeded {self.limit_s}s")


class CircuitBreaker(Policy):
    """Classic closed → open → half-open breaker on the DES clock.

    ``failure_threshold`` consecutive failures open the circuit; while
    open, calls fail fast with :class:`CircuitOpenError`. After
    ``recovery_time_s`` the breaker admits a single half-open probe:
    success closes the circuit, failure re-opens it. State transitions
    are recorded (for scorecards) and published on the bus as
    ``chaos.breaker.state``.

    The breaker can also be used without :meth:`call` — the kube
    control plane drives :meth:`allow` / :meth:`record_success` /
    :meth:`record_failure` directly around bind/evict decisions.
    """

    def __init__(self, *, ctx: "RuntimeContext | Simulator | None" = None,
                 failure_threshold: int = 3, recovery_time_s: float = 30.0,
                 name: str = "breaker", inner: "Policy | None" = None):
        super().__init__(ctx=ctx, inner=inner, name=name)
        if failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be >= 1")
        if recovery_time_s <= 0:
            raise ConfigurationError("recovery_time_s must be positive")
        self.failure_threshold = failure_threshold
        self.recovery_time_s = recovery_time_s
        self.state = "closed"
        self.consecutive_failures = 0
        self._opened_at = 0.0
        self._probing = False
        self.transitions: list[tuple[float, str]] = [
            (self.ctx.now, "closed")]
        self.rejected = 0

    def _transition(self, state: str) -> None:
        if state == self.state:
            return
        self.state = state
        self.transitions.append((self.ctx.now, state))
        self.ctx.publish("chaos.breaker.state", {
            "breaker": self.name, "state": state,
            "time_s": self.ctx.now})

    def allow(self) -> bool:
        """Would the breaker admit a call right now?

        Moving from open to half-open happens here (lazily, on the DES
        clock); in half-open only one probe is admitted at a time.
        """
        if self.state == "closed":
            return True
        if self.state == "open":
            if self.ctx.now < self._opened_at + self.recovery_time_s:
                return False
            self._transition("half-open")
            self._probing = False
        if self._probing:
            return False
        self._probing = True
        return True

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self._probing = False
        self._transition("closed")

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state == "half-open":
            self._probing = False
            self._opened_at = self.ctx.now
            self._transition("open")
        elif self.state == "closed" \
                and self.consecutive_failures >= self.failure_threshold:
            self._opened_at = self.ctx.now
            self._transition("open")

    def call(self, factory: CallFactory) -> Generator:
        if not self.allow():
            self.rejected += 1
            raise CircuitOpenError(
                f"breaker {self.name!r} is {self.state}")
        try:
            result = yield self._spawn(factory, "call")
        except ReproError:
            self.record_failure()
            raise
        self.record_success()
        return result


class Hedge(Policy):
    """Launch a backup attempt when the primary is slow.

    If the primary has not completed within ``delay_s``, a second
    identical attempt races it; the first completion wins and (by
    default) the loser is interrupted. Hedging covers *slowness*, not
    failure — a failed attempt propagates; compose with
    :class:`RetryPolicy` to also cover failures.
    """

    def __init__(self, *, ctx: "RuntimeContext | Simulator | None" = None,
                 delay_s: float = 0.1, cancel_loser: bool = True,
                 name: str = "hedge", inner: "Policy | None" = None):
        super().__init__(ctx=ctx, inner=inner, name=name)
        if delay_s <= 0:
            raise ConfigurationError("hedge delay must be positive")
        self.delay_s = delay_s
        self.cancel_loser = cancel_loser
        self.hedged = 0

    def call(self, factory: CallFactory) -> Generator:
        primary = self._spawn(factory, "primary")
        primary.add_callback(_defuse)
        timer = self.sim.timeout(self.delay_s)
        fired = yield self.sim.any_of([primary, timer])
        if primary in fired:
            return fired[primary]
        self.hedged += 1
        self.ctx.publish("chaos.policy.hedge", {
            "policy": self.name, "delay_s": self.delay_s,
            "time_s": self.ctx.now})
        secondary = self._spawn(factory, "secondary")
        secondary.add_callback(_defuse)
        fired = yield self.sim.any_of([primary, secondary])
        winner = primary if primary in fired else secondary
        loser = secondary if winner is primary else primary
        if self.cancel_loser and loser.is_alive:
            loser.interrupt("hedge-loser")
        return fired[winner]
