"""Chaos scorecards: one campaign, N seeds, deterministic JSON.

The harness wires the full stack — reference infrastructure, MIRTO
cognitive engine, a kube cluster mirroring the edge devices, a gateway
with a policy-protected sensor — runs a named campaign against it and
scores the outcome: availability, MTTR, tasks lost vs. recovered, SLO
violations, graceful-degradation time. Everything derives from the
context seed tree, so ``run --seed 7`` twice emits byte-identical JSON;
CI diffs the report against a committed baseline.
"""

from __future__ import annotations

import json
from typing import Any

from repro.chaos.actions import (
    DeviceFlap,
    GatewayBrownout,
    LatencyInflation,
    LinkDegradation,
    NetworkPartition,
    ZoneOutage,
)
from repro.chaos.campaign import ChaosCampaign
from repro.chaos.controller import ChaosController
from repro.chaos.policies import RetryPolicy, Timeout
from repro.continuum.endpoints import SensorProcess
from repro.continuum.gateway import GatewayHub
from repro.continuum.infrastructure import build_reference_infrastructure
from repro.continuum.workload import KernelClass
from repro.core.errors import NotFoundError
from repro.dpe import ComponentModel, ScenarioModel
from repro.kube import (
    Deployment,
    KubeCluster,
    Node,
    PodPhase,
    PodSpec,
    ResourceRequest,
)
from repro.mirto import CognitiveEngine, EngineConfig
from repro.runtime import RuntimeContext


def build_campaign(name: str) -> ChaosCampaign:
    """The named campaign catalogue the CLI and CI run from."""
    if name == "smoke":
        return ChaosCampaign("smoke", [
            ZoneOutage(zone="mc-00", at_s=5.0, duration_s=6.0),
            LinkDegradation(a="gw-00-0", b="fmdc-00", at_s=8.0,
                            duration_s=8.0, latency_factor=20.0,
                            bandwidth_factor=0.05),
        ])
    if name == "full":
        return ChaosCampaign("full", [
            ZoneOutage(zone="mc-00", at_s=5.0, duration_s=6.0),
            LinkDegradation(a="gw-00-0", b="fmdc-00", at_s=8.0,
                            duration_s=8.0, latency_factor=20.0,
                            bandwidth_factor=0.05),
            NetworkPartition(group_a=("fmdc-00",),
                             group_b=("cloud-00", "cloud-01"),
                             at_s=12.0, duration_s=5.0),
            GatewayBrownout(gateway="gw-00-0", at_s=18.0,
                            duration_s=7.0, peak_drop_rate=0.8,
                            ramp_steps=4),
            DeviceFlap(device="fpga-01-0", at_s=22.0, duration_s=6.0,
                       cycles=3),
            LatencyInflation(factor=5.0, at_s=28.0, duration_s=4.0),
        ])
    raise NotFoundError(f"unknown campaign {name!r} "
                        f"(known: smoke, full)")


def _scenario() -> ScenarioModel:
    scenario = ScenarioModel("chaos-pipeline", latency_budget_s=0.5)
    scenario.add_component(ComponentModel(
        "decode", megaops=100, input_bytes=100_000))
    scenario.add_component(ComponentModel(
        "detect", megaops=1200, kernel=KernelClass.DSP,
        accelerable=True))
    scenario.connect("decode", "detect", 100_000)
    return scenario


def run_scenario(seed: int, campaign_name: str = "smoke",
                 horizon_s: float = 40.0,
                 mape_period_s: float = 4.0) -> dict[str, Any]:
    """One seeded campaign run over the full stack; returns the raw
    scored metrics plus the context (for trace inspection)."""
    ctx = RuntimeContext(seed=seed)
    infra = build_reference_infrastructure(ctx)
    engine = CognitiveEngine(EngineConfig(seed=seed),
                             infrastructure=infra)

    cluster = KubeCluster("edge", ctx=ctx)
    for node_name in ("mc-00-0", "fpga-00-0", "mc-01-0", "fpga-01-0"):
        cluster.add_node(Node(name=node_name,
                              capacity=ResourceRequest(4000, 8 * 2**30)))
    cluster.watch_device_faults()
    cluster.enable_bind_breakers(failure_threshold=1,
                                 recovery_time_s=6.0)
    cluster.create_deployment(Deployment(
        name="svc",
        template=PodSpec(name="svc", request=ResourceRequest(500, 2**20)),
        replicas=2))
    cluster.reconcile()
    for pod in cluster.pods_in_phase(PodPhase.SCHEDULED):
        cluster.mark_running(pod.uid)

    response = engine.deploy(_scenario().to_service_template(),
                             strategy="greedy")
    if not response.ok:  # pragma: no cover - deploy is deterministic
        raise RuntimeError(f"initial deploy failed: {response.body}")

    hub = GatewayHub(infra.network, "gw-00-0", ctx=ctx)
    hub.register("mc-00-0", ["mqtt"])
    hub.register("cloud-00", ["http"])
    sensor = SensorProcess(
        hub, "mc-00-0", "cloud-00", "telemetry",
        lambda seq: {"reading": seq}, period_s=0.5, ctx=ctx,
        policy=RetryPolicy(
            ctx=ctx, max_attempts=3, base_delay_s=0.1,
            name=f"sensor.{seed}",
            inner=Timeout(ctx=ctx, limit_s=2.0)))

    controller = ChaosController(infra)
    controller.register_gateway(hub)
    campaign = build_campaign(campaign_name)
    runner = controller.run_campaign(campaign)

    def mape_driver():
        while True:
            yield ctx.sim.timeout(mape_period_s)
            record = engine.mape.iterate()
            fault_seen = any(t.kind == "fault" for t in record.triggers)
            if fault_seen or cluster.pods_in_phase(PodPhase.PENDING):
                # Remediate inside the cycle's causal scope so the
                # re-binds land in the fault's span tree.
                with ctx.tracer.resume(record.span_context):
                    cluster.reconcile()
                    for pod in cluster.pods_in_phase(PodPhase.SCHEDULED):
                        cluster.mark_running(pod.uid)

    ctx.sim.process(mape_driver(), name="mape-driver")
    ctx.run(until=horizon_s)
    sensor.stop()

    return {
        "ctx": ctx,
        "engine": engine,
        "cluster": cluster,
        "hub": hub,
        "sensor": sensor,
        "controller": controller,
        "runner": runner,
        "horizon_s": horizon_s,
    }


def _mttr(events) -> float:
    """Mean time-to-repair over completed fail→repair pairs."""
    down_since: dict[str, float] = {}
    repairs: list[float] = []
    for event in events:
        if event.kind == "fail":
            down_since.setdefault(event.device, event.time_s)
        elif event.kind == "repair" and event.device in down_since:
            repairs.append(event.time_s - down_since.pop(event.device))
    if not repairs:
        return 0.0
    return sum(repairs) / len(repairs)


def score_run(run: dict[str, Any]) -> dict[str, Any]:
    """Reduce one run to the scorecard metrics (plain JSON types)."""
    ctx = run["ctx"]
    engine = run["engine"]
    cluster = run["cluster"]
    hub = run["hub"]
    sensor = run["sensor"]
    tracker = run["controller"].tracker
    horizon = run["horizon_s"]

    devices = sorted(engine.infrastructure.devices)
    availability = sum(tracker.availability(d, horizon)
                      for d in devices) / len(devices)
    delivered = sum(1 for r in hub.deliveries if r.wire_bytes > 0)
    evictions = sum(1 for e in cluster.events if e.kind == "PodEvicted")
    recovered = sum(1 for p in cluster.pods.values()
                    if p.restarts > 0 and p.phase in
                    (PodPhase.SCHEDULED, PodPhase.RUNNING))
    outcomes = engine.manager.workload.deployments
    breakers = {
        name: [state for _, state in breaker.transitions]
        for name, breaker in sorted(
            (cluster._bind_breakers or {}).items())
    }
    return {
        "availability": availability,
        "mttr_s": _mttr(tracker.events),
        "tasks_lost": (tracker.tasks_interrupted + hub.dropped
                       + sensor.lost),
        "tasks_recovered": recovered,
        "pods_evicted": evictions,
        "slo_violations": sum(1 for o in outcomes if not o.deadline_met),
        "deployments": len(outcomes),
        "degradation_time_s": engine.mape.degradation_time_s,
        "deliveries": delivered,
        "messages_dropped": hub.dropped,
        "sensor_lost": sensor.lost,
        "mape_iterations": len(engine.mape.records),
        "fault_events": len(tracker.events),
        "mutations_executed": len(run["runner"].executed),
        "breaker_states": breakers,
        "trace_records": len(list(ctx.trace)),
    }


def _round(value: Any) -> Any:
    if isinstance(value, float):
        return round(value, 6)
    if isinstance(value, dict):
        return {k: _round(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_round(v) for v in value]
    return value


def scorecard(campaign_name: str, seeds: list[int],
              horizon_s: float = 40.0) -> dict[str, Any]:
    """Run *campaign_name* across *seeds*; aggregate + per-seed report."""
    per_seed: dict[str, Any] = {}
    for seed in seeds:
        run = run_scenario(seed, campaign_name, horizon_s=horizon_s)
        per_seed[str(seed)] = score_run(run)
    numeric = [k for k, v in next(iter(per_seed.values())).items()
               if isinstance(v, (int, float))]
    aggregate = {
        key: sum(card[key] for card in per_seed.values()) / len(per_seed)
        for key in numeric
    }
    return _round({
        "campaign": build_campaign(campaign_name).describe(),
        "horizon_s": horizon_s,
        "seeds": list(seeds),
        "aggregate": aggregate,
        "per_seed": per_seed,
    })


def render_report(report: dict[str, Any]) -> str:
    """Canonical JSON form (sorted keys — byte-stable per seed)."""
    return json.dumps(report, sort_keys=True, indent=2)
