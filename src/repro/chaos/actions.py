"""Typed chaos actions: the vocabulary of a declarative campaign.

Each action is a frozen dataclass describing *what* to break, *when*
(``at_s`` relative to campaign start) and *for how long*
(``duration_s``). Actions compile to a sequence of timed *mutations* —
``(delay_s, phase, thunk)`` triples executed by the campaign runner —
so an action with internal structure (a brownout ramp, a flapping
device) still replays deterministically from its declaration alone.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Callable, ClassVar, Iterator

Mutation = tuple[float, str, Callable[[], Any]]


@dataclass(frozen=True)
class ChaosAction:
    """Base action: a begin mutation and, if ``duration_s`` > 0, an end.

    Subclasses implement :meth:`apply` / :meth:`revert` against a
    :class:`~repro.chaos.controller.ChaosController`, or override
    :meth:`mutations` entirely for multi-step behaviour.
    """

    kind: ClassVar[str] = "noop"

    at_s: float = 0.0
    duration_s: float = 0.0

    def describe(self) -> dict[str, Any]:
        """Declarative form of the action, for traces and scorecards."""
        data = {k: (list(v) if isinstance(v, tuple) else v)
                for k, v in asdict(self).items()}
        data["kind"] = self.kind
        return data

    def apply(self, controller) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def revert(self, controller) -> None:
        """Undo :meth:`apply`; default is a no-op for one-shot actions."""

    def mutations(self, controller) -> Iterator[Mutation]:
        """Timed mutation sequence, delays relative to the previous one."""
        yield 0.0, "begin", lambda: self.apply(controller)
        if self.duration_s > 0:
            yield self.duration_s, "end", lambda: self.revert(controller)


@dataclass(frozen=True)
class ZoneOutage(ChaosAction):
    """Correlated outage: every device in *zone* fails at once.

    ``zone`` is a continuum layer name (``edge``/``fog``/``cloud``) or
    a device-name prefix (``mc-00`` takes out all site-0 multicores).
    """

    kind: ClassVar[str] = "zone-outage"

    zone: str = ""

    def apply(self, controller) -> None:
        controller.fail_zone(self.zone)

    def revert(self, controller) -> None:
        controller.repair_zone(self.zone)


@dataclass(frozen=True)
class DeviceOutage(ChaosAction):
    """One device fails, then (after ``duration_s``) is repaired."""

    kind: ClassVar[str] = "device-outage"

    device: str = ""

    def apply(self, controller) -> None:
        controller.fail_device(self.device)

    def revert(self, controller) -> None:
        controller.repair_device(self.device)


@dataclass(frozen=True)
class LinkDegradation(ChaosAction):
    """Degrade one link: inflate latency, shrink bandwidth."""

    kind: ClassVar[str] = "link-degradation"

    a: str = ""
    b: str = ""
    latency_factor: float = 10.0
    bandwidth_factor: float = 0.1

    def apply(self, controller) -> None:
        controller.degrade_link(self.a, self.b,
                                latency_factor=self.latency_factor,
                                bandwidth_factor=self.bandwidth_factor)

    def revert(self, controller) -> None:
        controller.restore_link(self.a, self.b)


@dataclass(frozen=True)
class NetworkPartition(ChaosAction):
    """Cut every link between two device groups (zones or names)."""

    kind: ClassVar[str] = "network-partition"

    group_a: tuple[str, ...] = ()
    group_b: tuple[str, ...] = ()

    def apply(self, controller) -> None:
        controller.partition(self.group_a, self.group_b)

    def revert(self, controller) -> None:
        controller.heal_partition()


@dataclass(frozen=True)
class GatewayBrownout(ChaosAction):
    """Ramp a gateway's in-flight drop rate up to a peak and back down.

    The ramp has ``ramp_steps`` levels up and the mirror image down,
    dwelling ``duration_s / (2 * ramp_steps - 1)`` at each level, so the
    whole brownout fits exactly in ``duration_s``.
    """

    kind: ClassVar[str] = "gateway-brownout"

    gateway: str = ""
    peak_drop_rate: float = 0.8
    ramp_steps: int = 4

    def mutations(self, controller) -> Iterator[Mutation]:
        steps = max(1, self.ramp_steps)
        dwell = self.duration_s / max(1, 2 * steps - 1)
        for i in range(1, steps + 1):
            rate = self.peak_drop_rate * i / steps
            yield (0.0 if i == 1 else dwell,
                   "begin" if i == 1 else "ramp-up",
                   lambda r=rate: controller.set_gateway_drop_rate(
                       self.gateway, r))
        for i in range(steps - 1, 0, -1):
            rate = self.peak_drop_rate * i / steps
            yield (dwell, "ramp-down",
                   lambda r=rate: controller.set_gateway_drop_rate(
                       self.gateway, r))
        yield (dwell, "end",
               lambda: controller.set_gateway_drop_rate(self.gateway, 0.0))


@dataclass(frozen=True)
class DeviceFlap(ChaosAction):
    """Fail/repair one device ``cycles`` times within ``duration_s``."""

    kind: ClassVar[str] = "device-flap"

    device: str = ""
    cycles: int = 3

    def mutations(self, controller) -> Iterator[Mutation]:
        cycles = max(1, self.cycles)
        half = (self.duration_s / cycles) / 2.0
        for cycle in range(cycles):
            yield (0.0 if cycle == 0 else half,
                   "begin" if cycle == 0 else "fail",
                   lambda: controller.fail_device(self.device))
            yield (half,
                   "end" if cycle == cycles - 1 else "repair",
                   lambda: controller.repair_device(self.device))


@dataclass(frozen=True)
class LatencyInflation(ChaosAction):
    """Inflate latency on every link in the topology by ``factor``."""

    kind: ClassVar[str] = "latency-inflation"

    factor: float = 5.0

    def apply(self, controller) -> None:
        controller.inflate_latency(self.factor)

    def revert(self, controller) -> None:
        controller.restore_latency()
