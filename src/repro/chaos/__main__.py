"""Entry point for ``python -m repro.chaos``."""

import sys

from repro.chaos.cli import main

if __name__ == "__main__":
    sys.exit(main())
