"""``repro-chaos``: run chaos campaigns and score the outcome.

Subcommands::

    repro-chaos run --campaign smoke --seed 7        # one seed
    repro-chaos run --campaign full --seeds 3        # seeds 0..2
    repro-chaos run --check baseline.json            # CI gate
    repro-chaos list                                 # campaign catalogue

``run`` prints the deterministic scorecard JSON (same seed → identical
bytes); ``--check`` compares against a committed baseline report and
exits non-zero on drift, which is how CI catches accidental changes to
campaign semantics.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.chaos.scorecard import build_campaign, render_report, scorecard
from repro.core.errors import ReproError

CAMPAIGNS = ("smoke", "full")


def _cmd_list(_args) -> int:
    for name in CAMPAIGNS:
        campaign = build_campaign(name)
        print(f"{name}: {len(campaign.actions)} actions")
        for action in campaign.actions:
            desc = action.describe()
            kind = desc.pop("kind")
            at = desc.pop("at_s")
            duration = desc.pop("duration_s")
            rest = ", ".join(f"{k}={v}" for k, v in sorted(desc.items()))
            print(f"  t={at:>5.1f}s +{duration:>4.1f}s  {kind}  {rest}")
    return 0


def _cmd_run(args) -> int:
    seeds = [args.seed + i for i in range(args.seeds)]
    report = scorecard(args.campaign, seeds, horizon_s=args.horizon)
    rendered = render_report(report)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(rendered + "\n")
        print(f"wrote {args.out}")
    else:
        print(rendered)
    if args.check:
        with open(args.check, encoding="utf-8") as fh:
            baseline = json.load(fh)
        if baseline != report:
            drifted = _drifted_keys(baseline, report)
            print(f"scorecard drift vs {args.check}: "
                  f"{', '.join(drifted) or 'structure changed'}",
                  file=sys.stderr)
            return 1
        print(f"scorecard matches {args.check}")
    return 0


def _drifted_keys(baseline, report, prefix="") -> list[str]:
    if not isinstance(baseline, dict) or not isinstance(report, dict):
        return [prefix or "<root>"] if baseline != report else []
    drifted = []
    for key in sorted(set(baseline) | set(report)):
        path = f"{prefix}.{key}" if prefix else key
        if key not in baseline or key not in report:
            drifted.append(path)
        elif baseline[key] != report[key]:
            drifted.extend(_drifted_keys(baseline[key], report[key],
                                         path))
    return drifted


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-chaos",
        description="Chaos campaigns and resilience scorecards for the "
                    "MYRTUS continuum reproduction.")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a campaign and print the "
                                     "scorecard JSON")
    run.add_argument("--campaign", default="smoke", choices=CAMPAIGNS)
    run.add_argument("--seed", type=int, default=7,
                     help="first seed (default 7)")
    run.add_argument("--seeds", type=int, default=1,
                     help="number of consecutive seeds (default 1)")
    run.add_argument("--horizon", type=float, default=40.0,
                     help="simulated horizon in seconds")
    run.add_argument("--out", help="write the report to a file")
    run.add_argument("--check",
                     help="compare against a baseline report; exit 1 "
                          "on drift")
    run.set_defaults(func=_cmd_run)

    lst = sub.add_parser("list", help="show the campaign catalogue")
    lst.set_defaults(func=_cmd_list)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
