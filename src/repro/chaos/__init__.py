"""Chaos engineering for the MYRTUS continuum reproduction.

The paper's KPI table commits the orchestration stack to "improved
reliability"; this package is how the repo *proves* it. Three layers:

- :mod:`repro.chaos.actions` + :mod:`repro.chaos.campaign` — declarative
  campaigns of typed chaos actions (zone outages, link degradation,
  partitions, gateway brownouts, device flapping, latency inflation)
  scheduled on the shared DES clock and seeded from the context RNG
  tree, so a campaign replays byte-identically.
- :mod:`repro.chaos.policies` — the resilience the stack fights back
  with: retry with seeded backoff, timeouts, circuit breakers (also
  driven by the kube control plane around binds) and hedged requests.
- :mod:`repro.chaos.scorecard` + the ``repro-chaos`` CLI — campaign
  runs across N seeds reduced to a deterministic JSON scorecard
  (availability, MTTR, tasks lost/recovered, SLO violations,
  degradation time) that CI diffs against a committed baseline.

Every action's blast radius is one causal span tree
(``chaos.action.begin → continuum.fault.inject → mirto.mape.cycle →
kube.bind``), inspectable with ``repro-obs tree``.
"""

from repro.chaos.actions import (
    ChaosAction,
    DeviceFlap,
    DeviceOutage,
    GatewayBrownout,
    LatencyInflation,
    LinkDegradation,
    NetworkPartition,
    ZoneOutage,
)
from repro.chaos.campaign import CampaignRunner, ChaosCampaign
from repro.chaos.controller import ChaosController
from repro.chaos.policies import (
    CallTimeout,
    CircuitBreaker,
    CircuitOpenError,
    Hedge,
    Policy,
    PolicyError,
    RetriesExhausted,
    RetryPolicy,
    Timeout,
)
from repro.chaos.scorecard import (
    build_campaign,
    render_report,
    run_scenario,
    score_run,
    scorecard,
)

__all__ = [
    "CallTimeout",
    "CampaignRunner",
    "ChaosAction",
    "ChaosCampaign",
    "ChaosController",
    "CircuitBreaker",
    "CircuitOpenError",
    "DeviceFlap",
    "DeviceOutage",
    "GatewayBrownout",
    "Hedge",
    "LatencyInflation",
    "LinkDegradation",
    "NetworkPartition",
    "Policy",
    "PolicyError",
    "RetriesExhausted",
    "RetryPolicy",
    "Timeout",
    "ZoneOutage",
    "build_campaign",
    "render_report",
    "run_scenario",
    "score_run",
    "scorecard",
]
