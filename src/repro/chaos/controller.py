"""ChaosController: one imperative facade over every fault surface.

Campaign actions never reach into subsystems directly — they go through
the controller, which unifies device fault injection
(:class:`~repro.continuum.faults.FaultInjector`), network link state
(:meth:`~repro.net.topology.Network.set_link_state`) and gateway
brownouts behind one API. That keeps actions declarative and gives
tests a single seam for asserting what a campaign actually did.
"""

from __future__ import annotations

from repro.core.errors import NotFoundError
from repro.continuum.devices import Layer
from repro.continuum.faults import FaultInjector, ReliabilityTracker
from repro.continuum.gateway import GatewayHub
from repro.continuum.infrastructure import Infrastructure

_LAYER_VALUES = {layer.value for layer in Layer}


class ChaosController:
    """Imperative chaos surface over one infrastructure.

    Wraps (or creates) a :class:`FaultInjector` for device faults —
    without starting its stochastic processes — and adds link, zone,
    partition and gateway mutations on top.
    """

    def __init__(self, infrastructure: Infrastructure, *,
                 injector: FaultInjector | None = None):
        self.infrastructure = infrastructure
        self.ctx = infrastructure.ctx
        self.network = infrastructure.network
        self.injector = injector or FaultInjector(infrastructure)
        self.gateways: dict[str, GatewayHub] = {}
        self._partition_cut: list[tuple[str, str]] = []
        self._inflated = False

    @property
    def tracker(self) -> ReliabilityTracker:
        """Reliability accounting shared with the fault injector."""
        return self.injector.tracker

    # -- device faults -------------------------------------------------------

    def fail_device(self, name: str) -> None:
        """Fail *name* now (idempotent: already-failed is a no-op)."""
        if not self.infrastructure.device(name).failed:
            self.injector.inject_now(name)

    def repair_device(self, name: str) -> None:
        """Repair *name* now (idempotent)."""
        if self.infrastructure.device(name).failed:
            self.injector.repair_now(name)

    def zone_devices(self, zone: str) -> list[str]:
        """Devices in *zone*: a layer name or a device-name prefix."""
        if zone in _LAYER_VALUES:
            return [d.name for d in self.infrastructure.devices.values()
                    if d.spec.layer.value == zone]
        members = [name for name in self.infrastructure.devices
                   if name.startswith(zone)]
        if not members:
            raise NotFoundError(f"zone {zone!r} matches no devices")
        return members

    def fail_zone(self, zone: str) -> list[str]:
        """Correlated outage: fail every device in *zone*."""
        failed = self.zone_devices(zone)
        for name in failed:
            self.fail_device(name)
        self.ctx.publish("chaos.zone.fail", {
            "zone": zone, "devices": failed, "time_s": self.ctx.now})
        return failed

    def repair_zone(self, zone: str) -> list[str]:
        """Repair every device in *zone*."""
        repaired = self.zone_devices(zone)
        for name in repaired:
            self.repair_device(name)
        self.ctx.publish("chaos.zone.repair", {
            "zone": zone, "devices": repaired, "time_s": self.ctx.now})
        return repaired

    # -- network -------------------------------------------------------------

    def degrade_link(self, a: str, b: str, *, latency_factor: float = 10.0,
                     bandwidth_factor: float = 0.1) -> None:
        self.network.set_link_state(a, b, latency_factor=latency_factor,
                                    bandwidth_factor=bandwidth_factor)

    def restore_link(self, a: str, b: str) -> None:
        self.network.set_link_state(a, b, latency_factor=1.0,
                                    bandwidth_factor=1.0)

    def _expand(self, group: tuple[str, ...]) -> set[str]:
        names: set[str] = set()
        for entry in group:
            if entry in self.infrastructure.devices:
                names.add(entry)
            else:
                names.update(self.zone_devices(entry))
        return names

    def partition(self, group_a: tuple[str, ...],
                  group_b: tuple[str, ...]) -> list[tuple[str, str]]:
        """Cut every up link crossing between the two groups."""
        side_a = self._expand(group_a)
        side_b = self._expand(group_b)
        cut: list[tuple[str, str]] = []
        for link in self.network.links:
            if not link.up:
                continue
            crosses = (link.a in side_a and link.b in side_b) or \
                (link.a in side_b and link.b in side_a)
            if crosses:
                self.network.set_link_state(link.a, link.b, up=False)
                cut.append((link.a, link.b))
        self._partition_cut.extend(cut)
        self.ctx.publish("chaos.net.partition", {
            "cut": sorted(cut), "time_s": self.ctx.now})
        return cut

    def heal_partition(self) -> int:
        """Restore every link cut by previous :meth:`partition` calls."""
        healed = 0
        while self._partition_cut:
            a, b = self._partition_cut.pop()
            self.network.set_link_state(a, b, up=True)
            healed += 1
        if healed:
            self.ctx.publish("chaos.net.heal", {
                "links": healed, "time_s": self.ctx.now})
        return healed

    def inflate_latency(self, factor: float) -> None:
        """Multiply every link's latency by *factor*."""
        for link in self.network.links:
            self.network.set_link_state(link.a, link.b,
                                        latency_factor=factor)
        self._inflated = True

    def restore_latency(self) -> None:
        if not self._inflated:
            return
        for link in self.network.links:
            self.network.set_link_state(link.a, link.b, latency_factor=1.0)
        self._inflated = False

    # -- gateways ------------------------------------------------------------

    def register_gateway(self, hub: GatewayHub) -> None:
        """Make *hub* addressable by brownout actions."""
        self.gateways[hub.name] = hub

    def set_gateway_drop_rate(self, name: str, rate: float) -> None:
        if name not in self.gateways:
            raise NotFoundError(f"gateway {name!r} not registered "
                                f"with the chaos controller")
        self.gateways[name].set_drop_rate(rate)

    # -- campaigns -----------------------------------------------------------

    def run_campaign(self, campaign):
        """Schedule *campaign* against this controller; returns the
        :class:`~repro.chaos.campaign.CampaignRunner`."""
        from repro.chaos.campaign import CampaignRunner
        runner = CampaignRunner(campaign, self)
        runner.schedule()
        return runner
