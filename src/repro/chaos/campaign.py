"""Declarative chaos campaigns scheduled on the shared DES clock.

A :class:`ChaosCampaign` is a named list of
:class:`~repro.chaos.actions.ChaosAction`s; the
:class:`CampaignRunner` compiles each action's mutation sequence into
one DES process, optionally jittering start times from the context seed
tree (same seed → identical campaign). Every action opens a
``chaos.action.begin`` root span and executes all of its mutations
*resumed* under that span, so the whole blast radius — fault injection,
kube evictions, MAPE reactions, re-binds — hangs off one causal tree::

    chaos.action.begin → continuum.fault.inject → kube.evict
                       → mirto.mape.cycle → kube.bind
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chaos.actions import ChaosAction
from repro.chaos.controller import ChaosController
from repro.core.errors import ConfigurationError


@dataclass
class ChaosCampaign:
    """A named, ordered set of chaos actions.

    ``time_jitter_s`` > 0 adds a seeded uniform offset in
    ``[0, time_jitter_s]`` to each action's start — deterministic for a
    given context seed, different across seeds, which is what the
    multi-seed scorecard wants.
    """

    name: str
    actions: list[ChaosAction] = field(default_factory=list)
    time_jitter_s: float = 0.0

    def __post_init__(self):
        if not self.name:
            raise ConfigurationError("campaign needs a name")
        if self.time_jitter_s < 0:
            raise ConfigurationError("time jitter must be >= 0")

    def add(self, action: ChaosAction) -> "ChaosCampaign":
        """Append *action*; returns self for chaining."""
        self.actions.append(action)
        return self

    def describe(self) -> dict:
        """Declarative form of the whole campaign."""
        return {"name": self.name,
                "time_jitter_s": self.time_jitter_s,
                "actions": [a.describe() for a in self.actions]}


class CampaignRunner:
    """Drives one campaign's actions as DES processes."""

    def __init__(self, campaign: ChaosCampaign,
                 controller: ChaosController):
        self.campaign = campaign
        self.controller = controller
        self.ctx = controller.ctx
        self.sim = self.ctx.sim
        self._jitter_rng = self.ctx.rng.python(
            f"chaos.campaign.{campaign.name}")
        self.completed = None
        #: (time_s, action kind, phase) log of executed mutations.
        self.executed: list[tuple[float, str, str]] = []

    def schedule(self) -> None:
        """Arm one DES process per action at its (jittered) start."""
        procs = []
        for index, action in enumerate(self.campaign.actions):
            at = action.at_s
            if self.campaign.time_jitter_s > 0:
                at += self._jitter_rng.uniform(
                    0.0, self.campaign.time_jitter_s)
            procs.append(self.sim.process(
                self._drive(action, index, at),
                name=f"chaos-{self.campaign.name}-{index}"))
        self.ctx.publish("chaos.campaign.begin", {
            "campaign": self.campaign.name,
            "actions": len(procs), "time_s": self.ctx.now})
        self.completed = self.sim.all_of(procs)
        self.completed.add_callback(self._finish)

    def _finish(self, event) -> None:
        status = "ok" if event._ok else "error"
        event._defused = True
        self.ctx.publish("chaos.campaign.end", {
            "campaign": self.campaign.name, "status": status,
            "time_s": self.ctx.now})

    def _drive(self, action: ChaosAction, index: int, at_s: float):
        if at_s > 0:
            yield self.sim.timeout(at_s)
        tracer = self.ctx.tracer
        begun = False
        begin_context = None
        for delay, phase, thunk in action.mutations(self.controller):
            if delay > 0:
                yield self.sim.timeout(delay)
            payload = {"campaign": self.campaign.name,
                       "action": action.kind, "index": index,
                       "phase": phase, "time_s": self.ctx.now,
                       **action.describe()}
            if not begun:
                begun = True
                # The begin span is the causal root of everything this
                # action breaks; fault-inject spans open with root=True,
                # which only a *resumed* scope overrides, so every
                # mutation thunk runs resumed under it.
                with tracer.start_span(
                        "chaos.action.begin", layer="chaos", root=True,
                        campaign=self.campaign.name, action=action.kind,
                        index=index) as span:
                    begin_context = getattr(span, "context", None)
                    self.ctx.publish("chaos.action.begin", payload)
                    with tracer.resume(begin_context):
                        thunk()
            else:
                with tracer.resume(begin_context):
                    self.ctx.publish(f"chaos.action.{phase}", payload)
                    thunk()
            self.executed.append((self.ctx.now, action.kind, phase))
        return action.kind
