"""Device models for the layered continuum.

Each device class from the paper's Figure 2 is modelled with calibrated
performance and power parameters:

* edge: commercial multicores, HMPSoC FPGA accelerators, adaptive RISC-V
  processors with CGRA overlays;
* fog: smart gateways and Fog Micro Data Centers (FMDCs);
* cloud: data-center servers.

A device executes :class:`~repro.continuum.workload.Task`s. Execution time
follows a roofline-style model: compute time from megaops and effective
throughput, data time from the device's local I/O bandwidth. Energy
integrates idle plus dynamic power. FPGA-class devices expose performance
monitoring counters (PMCs) and switch between operating points, which is
what the MIRTO Node Manager adapts at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.core.errors import CapacityError, ConfigurationError, NotFoundError
from repro.continuum.simulator import Resource, Simulator
from repro.runtime import RuntimeContext
from repro.continuum.workload import KernelClass, Task


class Layer(str, Enum):
    """Continuum layer a component belongs to (paper Fig. 2)."""

    EDGE = "edge"
    FOG = "fog"
    CLOUD = "cloud"


class DeviceKind(str, Enum):
    """Concrete device family."""

    EDGE_MULTICORE = "edge_multicore"
    HMPSOC_FPGA = "hmpsoc_fpga"
    RISCV_CGRA = "riscv_cgra"
    SMART_GATEWAY = "smart_gateway"
    FMDC = "fmdc"
    CLOUD_SERVER = "cloud_server"


@dataclass(frozen=True)
class OperatingPoint:
    """A DVFS-style configuration the Node Manager can select.

    ``perf_scale`` multiplies compute throughput; ``power_scale``
    multiplies dynamic power. Exported by the DPE's DSE step as
    deployment meta-information (paper refs [29], [30]).
    """

    name: str
    perf_scale: float
    power_scale: float

    def __post_init__(self):
        if self.perf_scale <= 0 or self.power_scale <= 0:
            raise ConfigurationError(
                f"operating point {self.name}: scales must be positive"
            )


DEFAULT_OPERATING_POINTS = (
    OperatingPoint("low-power", perf_scale=0.5, power_scale=0.35),
    OperatingPoint("balanced", perf_scale=1.0, power_scale=1.0),
    OperatingPoint("performance", perf_scale=1.4, power_scale=1.9),
)


@dataclass(frozen=True)
class DeviceSpec:
    """Static capability sheet for a device.

    Parameters are deliberately simple and dimensionally explicit:
    ``gops`` is peak giga-operations per second across all cores,
    ``io_bw_bps`` local data movement bandwidth, powers in watts.
    ``accel_kernels`` maps kernel classes to speed-up factors available
    on this device (e.g. FPGA fabric gives DSP kernels 8x).
    """

    kind: DeviceKind
    layer: Layer
    cores: int
    gops: float
    memory_bytes: int
    io_bw_bps: float
    idle_power_w: float
    busy_power_w: float
    accel_kernels: dict[KernelClass, float] = field(default_factory=dict)
    max_security_level: str = "high"
    reconfig_regions: int = 0
    reconfig_time_s: float = 0.0

    def __post_init__(self):
        if self.cores < 1:
            raise ConfigurationError("device needs at least one core")
        if self.gops <= 0 or self.io_bw_bps <= 0:
            raise ConfigurationError("throughput parameters must be positive")
        if self.busy_power_w < self.idle_power_w:
            raise ConfigurationError("busy power below idle power")


# Calibrated catalogue. Magnitudes follow public datasheets for the device
# classes the paper names (Zynq-class HMPSoC, microcontroller-class RISC-V
# with CGRA overlay, ARM edge multicore, FMDC rack node, cloud server).
SPEC_CATALOGUE: dict[DeviceKind, DeviceSpec] = {
    DeviceKind.EDGE_MULTICORE: DeviceSpec(
        kind=DeviceKind.EDGE_MULTICORE,
        layer=Layer.EDGE,
        cores=4,
        gops=8.0,
        memory_bytes=4 * 1024**3,
        io_bw_bps=2e9,
        idle_power_w=2.0,
        busy_power_w=7.0,
        max_security_level="medium",
    ),
    DeviceKind.HMPSOC_FPGA: DeviceSpec(
        kind=DeviceKind.HMPSOC_FPGA,
        layer=Layer.EDGE,
        cores=2,
        gops=4.0,
        memory_bytes=2 * 1024**3,
        io_bw_bps=1.5e9,
        idle_power_w=2.5,
        busy_power_w=9.0,
        accel_kernels={KernelClass.DSP: 8.0, KernelClass.NEURAL: 6.0,
                       KernelClass.CRYPTO: 10.0},
        max_security_level="high",
        reconfig_regions=2,
        reconfig_time_s=0.004,
    ),
    DeviceKind.RISCV_CGRA: DeviceSpec(
        kind=DeviceKind.RISCV_CGRA,
        layer=Layer.EDGE,
        cores=1,
        gops=1.2,
        memory_bytes=512 * 1024**2,
        io_bw_bps=0.5e9,
        idle_power_w=0.3,
        busy_power_w=1.5,
        accel_kernels={KernelClass.DSP: 5.0, KernelClass.NEURAL: 4.0},
        max_security_level="low",
        reconfig_regions=1,
        reconfig_time_s=0.001,
    ),
    DeviceKind.SMART_GATEWAY: DeviceSpec(
        kind=DeviceKind.SMART_GATEWAY,
        layer=Layer.FOG,
        cores=4,
        gops=12.0,
        memory_bytes=8 * 1024**3,
        io_bw_bps=4e9,
        idle_power_w=5.0,
        busy_power_w=15.0,
        max_security_level="medium",
    ),
    DeviceKind.FMDC: DeviceSpec(
        kind=DeviceKind.FMDC,
        layer=Layer.FOG,
        cores=32,
        gops=180.0,
        memory_bytes=128 * 1024**3,
        io_bw_bps=20e9,
        idle_power_w=90.0,
        busy_power_w=350.0,
        accel_kernels={KernelClass.ANALYTICS: 3.0, KernelClass.NEURAL: 4.0},
        max_security_level="high",
    ),
    DeviceKind.CLOUD_SERVER: DeviceSpec(
        kind=DeviceKind.CLOUD_SERVER,
        layer=Layer.CLOUD,
        cores=64,
        gops=900.0,
        memory_bytes=512 * 1024**3,
        io_bw_bps=50e9,
        idle_power_w=180.0,
        busy_power_w=700.0,
        accel_kernels={KernelClass.NEURAL: 12.0, KernelClass.ANALYTICS: 6.0},
        max_security_level="high",
    ),
}


@dataclass
class TaskRecord:
    """Completion record for one executed task."""

    task_name: str
    device_name: str
    start_s: float
    end_s: float
    energy_j: float
    accelerated: bool
    operating_point: str

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


class PerformanceCounters:
    """Performance monitoring counters, as instrumented on the FPGA edge
    devices (paper Sec. III, Monitoring and Observability)."""

    def __init__(self):
        self.tasks_executed = 0
        self.accelerated_tasks = 0
        self.busy_time_s = 0.0
        self.energy_j = 0.0
        self.bytes_moved = 0
        self.reconfigurations = 0

    def snapshot(self) -> dict[str, float]:
        """Return counter values as a plain dict for telemetry export."""
        return {
            "tasks_executed": self.tasks_executed,
            "accelerated_tasks": self.accelerated_tasks,
            "busy_time_s": self.busy_time_s,
            "energy_j": self.energy_j,
            "bytes_moved": self.bytes_moved,
            "reconfigurations": self.reconfigurations,
        }


class Device:
    """A simulated computing component executing tasks under a DES.

    Tasks contend for the device's cores (a :class:`Resource`); execution
    time and energy follow the spec plus the active operating point.
    """

    def __init__(self, name: str, spec: DeviceSpec,
                 operating_points: tuple[OperatingPoint, ...] | None = None,
                 *, ctx: "RuntimeContext | Simulator | None" = None):
        self.ctx = RuntimeContext.adopt(ctx)
        sim = self.ctx.sim
        self.sim = sim
        self.name = name
        self.spec = spec
        self.cores = Resource(sim, capacity=spec.cores)
        self.pmc = PerformanceCounters()
        self.records: list[TaskRecord] = []
        self.operating_points = {
            op.name: op for op in (operating_points or DEFAULT_OPERATING_POINTS)
        }
        self._active_op = self.operating_points.get(
            "balanced", next(iter(self.operating_points.values()))
        )
        self._memory_used = 0
        self._loaded_bitstreams: list[str] = []
        self._start_time = sim.now
        #: Compute admitted but not yet finished, in megaops — the
        #: backlog signal load-aware placement estimates consult.
        self.pending_megaops = 0.0
        #: Set by fault injection; failed devices reject new work.
        self.failed = False

    # -- operating points ---------------------------------------------------

    @property
    def operating_point(self) -> OperatingPoint:
        """Currently active operating point."""
        return self._active_op

    def set_operating_point(self, name: str) -> OperatingPoint:
        """Switch the device to operating point *name*."""
        if name not in self.operating_points:
            raise NotFoundError(
                f"device {self.name}: unknown operating point {name!r}"
            )
        self._active_op = self.operating_points[name]
        return self._active_op

    # -- capacity accounting --------------------------------------------------

    @property
    def memory_free(self) -> int:
        """Bytes of memory not currently reserved by running tasks."""
        return self.spec.memory_bytes - self._memory_used

    def can_fit(self, task: Task) -> bool:
        """True when the task's memory footprint fits right now."""
        return task.memory_bytes <= self.memory_free

    # -- performance model ------------------------------------------------------

    def speedup_for(self, task: Task) -> float:
        """Accelerator speed-up this device offers the task's kernel."""
        return self.spec.accel_kernels.get(task.kernel, 1.0)

    def backlog_seconds(self) -> float:
        """Rough time to drain currently admitted work (all cores,
        active operating point, no accelerator assumption)."""
        effective_gops = self.spec.gops * self._active_op.perf_scale
        return (self.pending_megaops / 1e3) / effective_gops

    def estimate_duration(self, task: Task,
                          operating_point: str | None = None) -> float:
        """Predicted wall time for *task* on an otherwise idle device."""
        op = (self.operating_points[operating_point]
              if operating_point else self._active_op)
        per_core_gops = self.spec.gops / self.spec.cores
        effective_gops = per_core_gops * op.perf_scale * self.speedup_for(task)
        compute_s = (task.megaops / 1e3) / effective_gops
        data_s = (task.input_bytes + task.output_bytes) / self.spec.io_bw_bps
        return compute_s + data_s

    def estimate_energy(self, task: Task,
                        operating_point: str | None = None) -> float:
        """Predicted *dynamic* energy for running *task* here.

        Idle power is charged device-wide over elapsed time by
        :meth:`total_energy`; charging a per-task idle share here would
        double-count it and make DVFS-style low-power points look
        useless (the race-to-idle fallacy).
        """
        op = (self.operating_points[operating_point]
              if operating_point else self._active_op)
        duration = self.estimate_duration(task, operating_point)
        dynamic_w = (self.spec.busy_power_w - self.spec.idle_power_w)
        dynamic_w = dynamic_w * op.power_scale / self.spec.cores
        return duration * dynamic_w

    # -- execution -------------------------------------------------------------

    def execute(self, task: Task):
        """DES process: run *task* to completion on this device.

        Yields simulator events; the process's value is the
        :class:`TaskRecord`. Raises :class:`CapacityError` immediately if
        the task can never fit in this device's memory.
        """
        if self.failed:
            raise CapacityError(
                f"device {self.name} has failed; cannot admit "
                f"{task.name}")
        if task.memory_bytes > self.spec.memory_bytes:
            raise CapacityError(
                f"task {task.name} needs {task.memory_bytes} B, device "
                f"{self.name} has {self.spec.memory_bytes} B"
            )
        self.pending_megaops += task.megaops
        grant = self.cores.request()
        yield grant
        while not self.can_fit(task):
            # Memory pressure: wait a scheduling quantum and re-check.
            yield self.sim.timeout(0.001)
        self._memory_used += task.memory_bytes
        op = self._active_op
        start = self.sim.now
        duration = self.estimate_duration(task)
        energy = self.estimate_energy(task)
        accelerated = self.speedup_for(task) > 1.0
        try:
            yield self.sim.timeout(duration)
        finally:
            self._memory_used -= task.memory_bytes
            self.pending_megaops -= task.megaops
            self.cores.release(grant)
        record = TaskRecord(
            task_name=task.name,
            device_name=self.name,
            start_s=start,
            end_s=self.sim.now,
            energy_j=energy,
            accelerated=accelerated,
            operating_point=op.name,
        )
        self.records.append(record)
        self.pmc.tasks_executed += 1
        self.pmc.accelerated_tasks += int(accelerated)
        self.pmc.busy_time_s += record.duration_s
        self.pmc.energy_j += energy
        self.pmc.bytes_moved += task.input_bytes + task.output_bytes
        return record

    def reconfigure(self, bitstream: str):
        """DES process: load a bitstream into a reconfigurable region.

        Only meaningful on devices with ``reconfig_regions > 0`` (HMPSoC
        FPGA, RISC-V CGRA). Evicts the oldest bitstream when full.
        """
        if self.spec.reconfig_regions == 0:
            raise ConfigurationError(
                f"device {self.name} ({self.spec.kind.value}) is not "
                "reconfigurable"
            )
        yield self.sim.timeout(self.spec.reconfig_time_s)
        if bitstream not in self._loaded_bitstreams:
            self._loaded_bitstreams.append(bitstream)
            while len(self._loaded_bitstreams) > self.spec.reconfig_regions:
                self._loaded_bitstreams.pop(0)
        self.pmc.reconfigurations += 1
        return bitstream

    @property
    def loaded_bitstreams(self) -> tuple[str, ...]:
        """Bitstreams currently resident in reconfigurable regions."""
        return tuple(self._loaded_bitstreams)

    # -- telemetry --------------------------------------------------------------

    def utilization(self) -> float:
        """Fraction of core-time spent busy since device creation."""
        elapsed = self.sim.now - self._start_time
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.pmc.busy_time_s / (elapsed * self.spec.cores))

    def total_energy(self) -> float:
        """Idle energy since creation plus dynamic energy of tasks."""
        elapsed = self.sim.now - self._start_time
        return self.spec.idle_power_w * elapsed + self.pmc.energy_j

    def telemetry(self) -> dict[str, float]:
        """One telemetry sample in the shape the monitors publish."""
        return {
            "utilization": self.utilization(),
            "memory_free_bytes": float(self.memory_free),
            "queue_length": float(len(self.cores.queue)),
            "energy_j": self.total_energy(),
            **self.pmc.snapshot(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Device({self.name!r}, {self.spec.kind.value})"


def make_device(name: str, kind: DeviceKind,
                operating_points: tuple[OperatingPoint, ...] | None = None,
                *, ctx=None) -> Device:
    """Instantiate a device of *kind* from the calibrated catalogue.

    *ctx* may be a :class:`~repro.runtime.RuntimeContext`, the canonical
    :class:`Simulator` (wrapped via :meth:`RuntimeContext.adopt`) or
    None (a fresh context).
    """
    return Device(name, SPEC_CATALOGUE[kind], operating_points, ctx=ctx)
